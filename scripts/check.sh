#!/usr/bin/env bash
# Tier-1 gate: configure, build everything, run the full test suite.
#
#   scripts/check.sh                 # default RelWithDebInfo build/
#   BUILD_DIR=build-asan CMAKE_ARGS="-DUNILOC_SANITIZE=address" \
#     scripts/check.sh               # sanitized tree in its own dir
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
