#!/usr/bin/env bash
# Tier-1 gate: configure, build everything, run the full test suite.
#
#   scripts/check.sh                 # default RelWithDebInfo build/
#   BUILD_DIR=build-asan CMAKE_ARGS="-DUNILOC_SANITIZE=address" \
#     scripts/check.sh               # sanitized tree in its own dir
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Property-test quick gate: rerun the generative chaos sweeps at a fixed
# 64 cases per engine so the gate's depth does not silently drift with
# the in-tree defaults. Replays tests/corpus/reproducers.jsonl first; on
# a violation the engine prints a greppable `UNILOC_REPRO seed=...` line
# and the shrunk minimal spec.
UNILOC_PROPTEST_CASES=64 \
  ctest --test-dir "$BUILD_DIR" -L '^proptest$' --output-on-failure -j "$JOBS"

# SIMD differential gate: the vectorization-aware kernel tier (det_exp /
# det_log / det_sincos accuracy, vector kernel == scalar oracle at every
# lane-tail size, denormal and +-inf inputs, the 10k-particle systematic
# resampling distribution check) reruns explicitly so a vectorization
# regression fails greppably, not buried in the full-suite run above.
ctest --test-dir "$BUILD_DIR" -L '^simd$' --output-on-failure -j "$JOBS"

# Scalar-fallback gate: the whole suite again in a -DUNILOC_NO_SIMD=ON
# tree (vector kernels compiled out, no -fopenmp-simd). Golden traces and
# differential expectations are shared with the native build, so this
# gate proves the scalar and vectorized pipelines are bit-identical, not
# merely both self-consistent. Set NOSIMD=0 to skip.
if [[ "${NOSIMD:-1}" != "0" ]]; then
  NOSIMD_DIR="${NOSIMD_DIR:-build-nosimd}"
  cmake -B "$NOSIMD_DIR" -S . -DUNILOC_NO_SIMD=ON
  cmake --build "$NOSIMD_DIR" -j "$JOBS"
  ctest --test-dir "$NOSIMD_DIR" --output-on-failure -j "$JOBS"
fi

# Tier-2 gate A: the src/svc concurrency suite must be clean under
# ThreadSanitizer (worker pool, session strands, server instrumentation).
# Only test_svc is built in the sanitized tree -- the `svc` ctest label
# selects exactly its tests. Set TSAN=0 to skip (e.g. no libtsan).
if [[ "${TSAN:-1}" != "0" ]]; then
  TSAN_DIR="${TSAN_DIR:-build-tsan}"
  cmake -B "$TSAN_DIR" -S . -DUNILOC_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_svc test_shard test_differential test_obs
  ctest --test-dir "$TSAN_DIR" -L '^svc$' --output-on-failure -j "$JOBS"
  # Fleet gate: the shard suite routes, migrates and rebalances across
  # per-shard worker pools while a control thread checkpoints the fleet
  # -- the router's route table and buffers are exactly where TSan finds
  # lost-frame races.
  ctest --test-dir "$TSAN_DIR" -L '^shard$' --output-on-failure -j "$JOBS"
  # Observability gate: the lock-free metrics (atomic counters/gauges),
  # the span tracer, and the flight recorder are all recorded from worker
  # threads concurrently -- the `obs` label's concurrency tests must be
  # clean under TSan too.
  ctest --test-dir "$TSAN_DIR" -L '^obs$' --output-on-failure -j "$JOBS"
  # Fast-path gate: the differential seed sweeps drive the service at
  # workers=4, so TSan checks that per-session epoch scratch (including
  # the shared scan memos) really is confined to its session strand.
  ctest --test-dir "$TSAN_DIR" -R '^diff\.' --output-on-failure -j "$JOBS"
  # Property-test concurrency gate: the generated-world sweep spawns
  # workers>0 and fleet passes for a quarter of its cases -- TSan watches
  # the same pools/strands the svc gate covers, but under generated fault
  # schedules and membership churn instead of hand-picked ones.
  cmake --build "$TSAN_DIR" -j "$JOBS" --target test_proptest
  UNILOC_PROPTEST_CASES=32 ctest --test-dir "$TSAN_DIR" \
    -R '^proptest\.ChaosSweep' --output-on-failure -j "$JOBS"
  # Batched-path gate: the EpochBatcher hands assembled cross-session
  # batches to whichever worker drains the FIFO, so batch assembly,
  # runner retirement and the per-session ordering guarantee all run
  # under TSan here (the allocation-counting hook is compiled out under
  # sanitizers; the ordering/semantic assertions still run).
  cmake --build "$TSAN_DIR" -j "$JOBS" --target test_perf_contracts
  ctest --test-dir "$TSAN_DIR" -R '^perf\..*Batch' --output-on-failure \
    -j "$JOBS"
fi

# Tier-2 gate B: the fault-injection path (svc + chaos labels: the
# concurrency suite, the chaos suite, and the golden-trace replays) must
# be clean under AddressSanitizer + UndefinedBehaviorSanitizer -- the
# FaultyLink juggles promise/future lifetimes and cached reply buffers
# across retries, exactly where ASan finds use-after-move/free bugs.
# Set ASAN=0 to skip (e.g. no libasan).
if [[ "${ASAN:-1}" != "0" ]]; then
  ASAN_DIR="${ASAN_DIR:-build-asan}"
  cmake -B "$ASAN_DIR" -S . "-DUNILOC_SANITIZE=address;undefined"
  cmake --build "$ASAN_DIR" -j "$JOBS" \
    --target test_svc test_fault test_golden test_differential
  ctest --test-dir "$ASAN_DIR" -L 'svc|chaos' --output-on-failure -j "$JOBS"
  # Fast-path gate: the reference-vs-fast differential must stay clean
  # under ASan/UBSan -- the zero-allocation arena reuses buffers across
  # epochs and sessions, exactly where stale-pointer bugs would hide.
  ctest --test-dir "$ASAN_DIR" -R '^diff\.' --output-on-failure -j "$JOBS"
  # Crash-recovery gate: the checkpoint suite (snapshot codec round
  # trips, kProcessCrash chaos, truncated/bit-flipped snapshot fuzz)
  # must be clean under ASan+UBSan -- restore() is the server's hostile
  # deserialization boundary, exactly where OOB reads would hide.
  cmake --build "$ASAN_DIR" -j "$JOBS" --target test_checkpoint
  ctest --test-dir "$ASAN_DIR" -L '^checkpoint$' --output-on-failure -j "$JOBS"
  # Fleet gates: the whole shard suite under ASan (kMigrate adoption and
  # checkpoint splitting are hostile-input boundaries), then the
  # shard-crash chaos tests rerun by name -- the zero-session-loss claim
  # (kill 1 of N shards, every session resurrects from its checkpoint,
  # bit-identical) must fail loudly and greppably here.
  cmake --build "$ASAN_DIR" -j "$JOBS" --target test_shard
  ctest --test-dir "$ASAN_DIR" -L '^shard$' --output-on-failure -j "$JOBS"
  ctest --test-dir "$ASAN_DIR" -R 'shard\..*Crash' --output-on-failure -j "$JOBS"
  # Chaos-with-tracing gate: the chaos suite includes fault.trace_*
  # tests that run scripted disasters with the span tracer attached and
  # assert zero span leaks (spans opened == spans closed) -- every epoch
  # abandoned to a drop, blackout, crash or backpressure must still
  # close its span tree. They ran under ASan in the `chaos` label above;
  # rerun them by name so a leak fails loudly and greppably here.
  ctest --test-dir "$ASAN_DIR" -R '\.trace_' --output-on-failure -j "$JOBS"
  # Property-test deep gate: 512 generated cases per engine under
  # ASan+UBSan. The generator reaches configurations no hand-written
  # suite pins (burst arrival x blackout x crash/restore x churn), and
  # the oracle's differential passes replay every frame through the
  # FaultyLink retry path -- the densest traffic the codec and reply
  # buffers ever see. A failure shrinks, prints UNILOC_REPRO, and
  # appends the minimal spec to tests/corpus/reproducers.jsonl.
  cmake --build "$ASAN_DIR" -j "$JOBS" --target test_proptest
  UNILOC_PROPTEST_CASES=512 ctest --test-dir "$ASAN_DIR" \
    -L '^proptest$' --output-on-failure -j "$JOBS"
  # SIMD-kernel gate: the vector kernels read SoA arrays through raw
  # pointers with hand-managed lane tails -- exactly where an
  # off-by-one past the last lane would hide. The kernel tier reruns
  # under ASan+UBSan (which also checks the bit_cast exponent tricks in
  # stats/vecmath.h for UB).
  cmake --build "$ASAN_DIR" -j "$JOBS" --target test_simd_kernels
  ctest --test-dir "$ASAN_DIR" -L '^simd$' --output-on-failure -j "$JOBS"
  # Decoder-fuzz gate: the delta suite is the wave-chain hostile-input
  # boundary -- the wave decoder's bit-flip/truncation fuzz, the
  # quantized (v2) particle codec fuzz, the torn-publish fault
  # injection, and collapse_chain over damaged chains all rerun under
  # ASan+UBSan, exactly where an OOB read in a length-prefixed parser
  # would hide.
  cmake --build "$ASAN_DIR" -j "$JOBS" --target test_delta
  ctest --test-dir "$ASAN_DIR" -L '^delta$' --output-on-failure -j "$JOBS"
fi

# City-scale smoke: the soak bench at 2k walkers (the full 100k run
# lives in EXPERIMENTS.md) -- arrival, churn, rotating traffic, delta
# waves through the async group committer, and a cold restore_chain of
# the directory it wrote. Exits nonzero if the restore loses a session.
# Set SOAK=0 to skip.
if [[ "${SOAK:-1}" != "0" ]]; then
  # cwd = the build tree so the smoke's BENCH_soak.json does not clobber
  # the committed full-scale report at the repo root.
  (cd "$BUILD_DIR" && UNILOC_SOAK_WALKERS=2000 UNILOC_SOAK_ROUNDS=6 \
    bench/soak)
fi
