#!/usr/bin/env python3
"""Convert uniloc span JSONL to Chrome trace_event JSON.

Input: one obs::SpanEvent JSON object per line, as written by
obs::JsonlSpanSink (keys: trace, span, parent, session, name, cat, note,
start_us, dur_us). Output: a Chrome/Perfetto-loadable trace (open
chrome://tracing or https://ui.perfetto.dev and load the file).

Mapping: each span becomes one complete ("ph":"X") event; process id =
session id (0 = unsessioned spans), thread id = trace id -- so every
epoch's span tree renders on its own row, nested by start/duration.

Usage:
    scripts/trace2chrome.py spans.jsonl -o trace.json
    cat spans.jsonl | scripts/trace2chrome.py > trace.json
"""

import argparse
import json
import sys


def convert_line(line):
    """One JSONL span -> one trace_event dict (None for blank lines)."""
    line = line.strip()
    if not line:
        return None
    span = json.loads(line)
    event = {
        "ph": "X",
        "name": span.get("name", "?"),
        "cat": span.get("cat", ""),
        "ts": span.get("start_us", 0),
        "dur": span.get("dur_us", 0),
        "pid": span.get("session", 0),
        "tid": span.get("trace", 0),
        "args": {
            "span": span.get("span", 0),
            "parent": span.get("parent", 0),
        },
    }
    note = span.get("note")
    if note:
        event["args"]["note"] = note
    return event


def convert(lines):
    events = []
    bad = 0
    for i, line in enumerate(lines, 1):
        try:
            event = convert_line(line)
        except (json.JSONDecodeError, AttributeError):
            bad += 1
            print(f"trace2chrome: skipping malformed line {i}",
                  file=sys.stderr)
            continue
        if event is not None:
            events.append(event)
    return events, bad


def main():
    parser = argparse.ArgumentParser(
        description="Convert uniloc span JSONL to Chrome trace_event JSON")
    parser.add_argument("input", nargs="?", default="-",
                        help="span JSONL file (default: stdin)")
    parser.add_argument("-o", "--output", default="-",
                        help="output trace file (default: stdout)")
    args = parser.parse_args()

    if args.input == "-":
        events, _ = convert(sys.stdin)
    else:
        with open(args.input, encoding="utf-8") as fh:
            events, _ = convert(fh)

    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if args.output == "-":
        json.dump(doc, sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"trace2chrome: wrote {len(events)} events to {args.output}",
              file=sys.stderr)


if __name__ == "__main__":
    main()
