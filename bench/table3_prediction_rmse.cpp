// Table III: normalized RMSE of the online error prediction, per scheme,
// across the four validation configurations of the paper:
// {same places, new places} x {same device, different device}.
//
// "Same places" are the training venues (office + open space); "new
// places" are venues the error models never saw (the mall and a campus
// path). The different device is the LG G3 model (affine RSSI offset vs
// the Nexus 5X used for training and fingerprinting).
//
// Paper result: average ~0.49 same-place/same-device, rising to ~0.76 for
// new place + new device -- imperfect but sufficient to rank schemes.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

namespace {

/// Per-scheme normalized RMSE of predicted vs measured error over a run.
std::vector<double> prediction_rmse(const core::RunResult& run,
                                    std::size_t max_tuples = 200) {
  const std::size_t n = run.scheme_names.size();
  std::vector<double> out(n, -1.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> pred, truth;
    for (const core::EpochRecord& e : run.epochs) {
      if (std::isnan(e.scheme_err[i]) || std::isnan(e.predicted_mu[i])) {
        continue;
      }
      pred.push_back(e.predicted_mu[i]);
      truth.push_back(e.scheme_err[i]);
      if (pred.size() >= max_tuples) break;
    }
    if (pred.size() >= 20) {
      out[i] = stats::normalized_rmse(pred, truth);
    }
  }
  return out;
}

core::RunResult run_config(const core::Deployment& d,
                           const core::TrainedModels& models,
                           bool lg_device, std::uint64_t seed) {
  core::RunResult all;
  for (std::size_t w = 0; w < d.place->walkways().size() && w < 3; ++w) {
    core::Uniloc u = core::make_uniloc(d, models, {}, false, seed + w);
    bench::instrument(u, d);
    core::RunOptions opts;
    opts.walk.seed = seed + 100 + w;
    if (lg_device) opts.walk.device = sim::lg_g3();
    opts.record_every = 3;
    all.append(core::run_walk(u, d, w, opts));
  }
  return all;
}

}  // namespace

int main() {
  obs::BenchReport report = bench::make_report("table3_prediction_rmse");
  const core::TrainedModels& models = bench::standard_models();

  // Same places: the training venues.
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  core::Deployment open = core::make_deployment(
      sim::open_space_place(42), core::DeploymentOptions{.seed = 43});
  // New places: the mall and a second campus that nothing else trains or
  // tunes on (models never saw either).
  core::Deployment mall = core::make_deployment(
      sim::mall_place(7), core::DeploymentOptions{.seed = 7});
  core::Deployment campus = core::make_deployment(
      sim::campus_b(), core::DeploymentOptions{.seed = 1234});

  struct Config {
    const char* name;
    std::vector<core::RunResult> runs;
  };
  auto gather = [&](bool lg, std::uint64_t seed, bool new_places) {
    std::vector<core::RunResult> rs;
    if (new_places) {
      rs.push_back(run_config(mall, models, lg, seed));
      rs.push_back(run_config(campus, models, lg, seed + 1000));
    } else {
      rs.push_back(run_config(office, models, lg, seed));
      rs.push_back(run_config(open, models, lg, seed + 1000));
    }
    return rs;
  };

  Config configs[] = {
      {"same place / same device", gather(false, 10, false)},
      {"same place / diff device", gather(true, 20, false)},
      {"new place / same device", gather(false, 30, true)},
      {"new place / diff device", gather(true, 40, true)},
  };

  std::printf("Table III -- normalized RMSE of online error prediction\n\n");
  const std::vector<std::string> names = configs[0].runs[0].scheme_names;
  io::Table t({"scheme", "same pl/same dev", "same pl/diff dev",
               "new pl/same dev", "new pl/diff dev"});
  std::vector<double> col_sums(4, 0.0);
  std::vector<int> col_counts(4, 0);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> cells{names[i]};
    for (int c = 0; c < 4; ++c) {
      // Merge all runs of a config and compute the scheme's RMSE.
      core::RunResult merged;
      for (const core::RunResult& r : configs[c].runs) merged.append(r);
      const std::vector<double> rmse = prediction_rmse(merged);
      if (rmse[i] >= 0.0) {
        report.add_scalar("nrmse." + names[i] + "." +
                              std::to_string(c),
                          rmse[i]);
        cells.push_back(io::Table::num(rmse[i], 2));
        col_sums[static_cast<std::size_t>(c)] += rmse[i];
        col_counts[static_cast<std::size_t>(c)]++;
      } else {
        cells.push_back("-");
      }
    }
    t.add_row(cells);
  }
  std::vector<std::string> avg{"Average"};
  for (int c = 0; c < 4; ++c) {
    avg.push_back(col_counts[c] > 0
                      ? io::Table::num(col_sums[c] / col_counts[c], 2)
                      : "-");
  }
  t.add_row(avg);
  std::printf("%s", t.to_string().c_str());
  std::printf("\nPaper shape: prediction degrades from same-place/same-"
              "device toward new-place/new-device but remains usable for "
              "ranking schemes.\n");

  bench::report_json(report);
  return 0;
}
