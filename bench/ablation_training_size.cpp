// Ablation: error-model quality vs number of training measurements.
//
// The paper claims 300 measurements per venue are sufficient to train
// models that transfer to new places. Sweep the training-set size and
// measure UniLoc2 accuracy on (unseen) Path 1.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_training_size");
  core::Deployment campus = core::make_deployment(sim::campus());

  std::printf("Ablation -- UniLoc2 on Path 1 vs training-set size\n\n");
  io::Table t({"training samples/venue", "UniLoc2 mean (m)",
               "UniLoc2 p90 (m)"});

  for (std::size_t samples : {std::size_t{50}, std::size_t{100},
                              std::size_t{300}, std::size_t{600}}) {
    const core::TrainedModels models =
        core::train_standard_models(42, samples);
    core::Uniloc uniloc = core::make_uniloc(campus, models);
    bench::instrument(uniloc, campus);
    core::RunOptions opts;
    opts.walk.seed = 2024;
    const core::RunResult run = core::run_walk(uniloc, campus, 0, opts);
    t.add_row({std::to_string(samples),
               io::Table::num(stats::mean(run.uniloc2_errors())),
               io::Table::num(
                   stats::percentile(run.uniloc2_errors(), 90.0))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nAccuracy saturates around 300 samples -- the paper's "
              "one-person-one-day training budget.\n");

  bench::report_json(bench_report);
  return 0;
}
