// Figure 7: CDF of localization error over all eight daily paths
// (2.78 km) for every scheme, the oracle and both UniLoc variants.
//
// Paper shape at the 50th percentile: UniLoc1 ~1.4x and UniLoc2 ~1.6x
// below the best individual scheme; at the 90th percentile UniLoc2 is
// ~1.8x below RADAR (whose tail is the best among individuals because the
// motion/fusion tail blows up on long outdoor stretches without
// calibration signatures).
// Also exports the raw per-series error samples to
// /tmp/uniloc_fig7_cdf.csv for external plotting.
#include <cstdio>

#include "bench_util.h"
#include "io/csv.h"

using namespace uniloc;

int main() {
  obs::BenchReport report = bench::make_report("fig7_cdf_all_paths");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());
  const core::RunResult all = bench::run_all_campus_paths(campus, models);

  std::printf("Fig. 7 -- error CDF over the eight daily paths "
              "(%zu locations)\n\n",
              all.epochs.size());

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t i = 0; i < all.scheme_names.size(); ++i) {
    series.emplace_back(all.scheme_names[i], all.scheme_errors(i));
  }
  series.emplace_back("Oracle", all.oracle_errors());
  series.emplace_back("UniLoc1", all.uniloc1_errors());
  series.emplace_back("UniLoc2", all.uniloc2_errors());
  bench::print_percentiles(series);

  // CDF curves (textual): error value at each decile.
  std::printf("\nCDF deciles (m):\nseries      ");
  for (int d = 1; d <= 9; ++d) std::printf("  p%d0", d);
  std::printf("\n");
  for (const auto& [name, errs] : series) {
    if (errs.empty()) continue;
    std::printf("%-12s", name.c_str());
    stats::Ecdf cdf(errs);
    for (int d = 1; d <= 9; ++d) {
      std::printf(" %5.1f", cdf.quantile(d / 10.0));
    }
    std::printf("\n");
  }

  // CSV export for external plotting.
  try {
    io::CsvWriter csv("/tmp/uniloc_fig7_cdf.csv", {"series", "error_m"});
    for (const auto& [name, errs] : series) {
      for (double e : errs) csv.write_row(std::vector<std::string>{
          name, io::Table::num(e, 4)});
    }
    std::printf("\n(raw samples exported to /tmp/uniloc_fig7_cdf.csv)\n");
  } catch (const std::exception&) {
    // Non-writable /tmp is not a bench failure.
  }

  // Headline factors.
  auto p = [](const std::vector<double>& v, double q) {
    return stats::percentile(v, q);
  };
  double best50 = 1e9, wifi90 = -1.0;
  std::string best_name;
  for (std::size_t i = 0; i < all.scheme_names.size(); ++i) {
    const auto errs = all.scheme_errors(i);
    if (errs.empty()) continue;
    if (p(errs, 50) < best50) {
      best50 = p(errs, 50);
      best_name = all.scheme_names[i];
    }
    if (all.scheme_names[i] == "WiFi") wifi90 = p(errs, 90);
  }
  std::printf("\np50: best individual = %s (%.2f m); UniLoc1 %.2fx lower, "
              "UniLoc2 %.2fx lower (paper: 1.4x / 1.6x)\n",
              best_name.c_str(), best50,
              best50 / p(all.uniloc1_errors(), 50),
              best50 / p(all.uniloc2_errors(), 50));
  if (wifi90 > 0.0) {
    std::printf("p90: RADAR (WiFi) = %.2f m; UniLoc2 = %.2f m (%.2fx lower; "
                "paper: 1.8x)\n",
                wifi90, p(all.uniloc2_errors(), 90),
                wifi90 / p(all.uniloc2_errors(), 90));
  }

  bench::add_run_series(report, all);
  bench::report_json(report);
  return 0;
}
