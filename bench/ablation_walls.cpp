// Ablation: map-constraint strength for the motion PDR --
// none vs soft corridor tube vs physical floor-plan walls (the original
// [7] setup kills wall-crossing particles).
#include <cstdio>

#include "bench_util.h"
#include "schemes/pdr_scheme.h"
#include "sim/floorplan.h"
#include "sim/walker.h"

using namespace uniloc;

namespace {

std::vector<double> run_pdr(const core::Deployment& d,
                            const schemes::PdrOptions& opts,
                            std::uint64_t seed) {
  schemes::PdrScheme pdr(d.place.get(), opts);
  sim::WalkConfig wc;
  wc.seed = seed;
  sim::Walker walker(d.place.get(), d.radio.get(), 0, wc);
  pdr.reset({walker.start_position(), walker.start_heading()});
  std::vector<double> errs;
  while (!walker.done()) {
    const sim::SensorFrame f = walker.step(false);
    const schemes::SchemeOutput out = pdr.update(f);
    if (out.available) errs.push_back(geo::distance(out.estimate, f.truth_pos));
  }
  return errs;
}

}  // namespace

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_walls");
  core::Deployment campus = core::make_deployment(sim::campus());
  sim::deploy_walls(*campus.place,
                    sim::hub_aware_wall_options(*campus.place));
  std::printf("Ablation -- PDR map-constraint strength on Path 1 "
              "(%zu wall segments deployed)\n\n",
              campus.place->walls().size());

  struct Config {
    const char* name;
    bool map, walls, landmarks;
  };
  const Config configs[] = {
      {"dead reckoning only", false, false, false},
      {"+ landmarks", false, false, true},
      {"+ corridor tube (default)", true, false, true},
      {"+ floor-plan walls", true, true, true},
  };
  io::Table t({"constraint", "mean err (m)", "p50 (m)", "p90 (m)"});
  for (const Config& c : configs) {
    schemes::PdrOptions o;
    o.use_map = c.map;
    o.use_walls = c.walls;
    o.use_landmarks = c.landmarks;
    std::vector<double> errs;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      for (double e : run_pdr(campus, o, seed)) errs.push_back(e);
    }
    bench_report.add_series(c.name, errs);
    t.add_row({c.name, io::Table::num(stats::mean(errs)),
               io::Table::num(stats::percentile(errs, 50.0)),
               io::Table::num(stats::percentile(errs, 90.0))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nEach constraint layer tightens PDR: landmarks bound the "
              "longitudinal drift, the tube/walls bound the lateral "
              "drift.\n");

  bench::report_json(bench_report);
  return 0;
}
