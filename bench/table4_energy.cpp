// Table IV: power and energy consumption of UniLoc and all underlying
// schemes along daily Path 1 (parametric marginal-power model; see
// DESIGN.md for the Monsoon-monitor substitution).
//
// Paper claims reproduced: the motion-based PDR is the cheapest scheme;
// UniLoc (w/ GPS) costs only ~14% more than it; duty-cycling cuts outdoor
// GPS energy by ~2x.
#include <cstdio>

#include "bench_util.h"
#include "energy/energy_model.h"

using namespace uniloc;

int main() {
  obs::BenchReport report = bench::make_report("table4_energy");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());
  core::Uniloc uniloc = core::make_uniloc(campus, models);
  bench::instrument(uniloc, campus);

  core::RunOptions opts;
  opts.walk.seed = 2024;
  const core::RunResult run = core::run_walk(uniloc, campus, 0, opts);
  const double epoch_s = opts.walk.gait.step_period_s;

  std::printf("Table IV -- power and energy along Path 1 (%.0f m, "
              "%.0f s walk)\n\n",
              campus.place->walkways()[0].line.length(),
              static_cast<double>(run.epochs.size()) * epoch_s);

  const std::vector<energy::EnergyRow> rows =
      energy::account_energy(run, epoch_s);
  io::Table t({"scheme", "power (mW)", "time (s)", "energy (J)"});
  double motion_j = 0.0, uniloc_j = 0.0;
  for (const energy::EnergyRow& r : rows) {
    report.add_scalar("energy_j." + r.scheme, r.energy_j);
    t.add_row({r.scheme, io::Table::num(r.power_mw, 1),
               io::Table::num(r.time_s, 1), io::Table::num(r.energy_j, 2)});
    if (r.scheme == "Motion") motion_j = r.energy_j;
    if (r.scheme == "UniLoc w/ GPS") uniloc_j = r.energy_j;
  }
  std::printf("%s", t.to_string().c_str());

  if (motion_j > 0.0) {
    std::printf("\nUniLoc w/ GPS vs motion-PDR: +%.0f%% energy "
                "(paper: +14%%).\n",
                100.0 * (uniloc_j / motion_j - 1.0));
  }
  const energy::GpsSavings gps = energy::gps_savings(run, epoch_s);
  std::printf("Outdoor GPS energy: duty-cycled %.2f J vs always-on %.2f J "
              "=> %.1fx reduction (paper: 2.1x).\n",
              gps.duty_cycled_j, gps.always_on_j, gps.ratio);
  std::printf("GPS enabled on %.1f%% of epochs overall.\n",
              100.0 * run.gps_duty_fraction());

  report.add_scalar("gps.duty_cycled_j", gps.duty_cycled_j);
  report.add_scalar("gps.always_on_j", gps.always_on_j);
  report.add_scalar("gps.duty_fraction", run.gps_duty_fraction());
  bench::add_run_series(report, run);
  bench::report_json(report);
  return 0;
}
