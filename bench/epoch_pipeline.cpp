// Fast-path epoch pipeline bench: reference Uniloc::update() vs the
// zero-allocation Uniloc::update_fast() on identical recorded frames.
//
// Reports epochs/sec, per-epoch latency percentiles (p50/p99), the
// likelihood-cache hit rate, and the steady-state scratch footprint --
// the before/after evidence behind the fast path's throughput claim.
// The differential suite (tests/test_differential.cc) proves the two
// pipelines are bit-identical; this bench quantifies what the identity
// buys. A third pass runs the fast path with live span tracing attached
// and reports tracing_overhead_pct (contract: < 5% of epoch throughput).
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "core/epoch_scratch.h"
#include "core/uniloc.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "sim/walker.h"

using namespace uniloc;

namespace {

struct ReplayFixture {
  std::vector<sim::SensorFrame> frames;
  geo::Vec2 start_pos{};
  double start_heading{0.0};
};

ReplayFixture record_walk(const core::Deployment& d, std::size_t walkway,
                          std::uint64_t seed) {
  ReplayFixture r;
  sim::WalkConfig wc;
  wc.seed = seed;
  sim::Walker walker(d.place.get(), d.radio.get(), walkway, wc);
  r.start_pos = walker.start_position();
  r.start_heading = walker.start_heading();
  while (!walker.done()) r.frames.push_back(walker.step(true));
  return r;
}

struct PipelineStats {
  std::vector<double> epoch_us;  ///< One latency sample per epoch.
  double epochs_per_sec{0.0};
  double cache_hit_rate{0.0};
  std::size_t scratch_bytes{0};
};

/// Replay `fx` through one pipeline `passes` times (resetting between
/// passes), timing every epoch individually. With a tracer, every epoch
/// runs under an attached SpanTracer (one scheme span per registered
/// scheme plus the fuse span, serialized to the tracer's sink).
PipelineStats run_pipeline(const core::Deployment& d,
                           const ReplayFixture& fx, bool fast, int passes,
                           obs::SpanTracer* tracer = nullptr) {
  core::Uniloc uniloc = core::make_uniloc(d, bench::standard_models());
  core::EpochScratch scratch;
  uniloc.attach_tracer(tracer);

  // One untimed pass grows every scratch buffer to steady capacity, so
  // the timed passes measure the regime the service actually runs in.
  uniloc.reset({fx.start_pos, fx.start_heading});
  for (const sim::SensorFrame& frame : fx.frames) {
    if (fast) {
      uniloc.update_fast(frame, scratch);
    } else {
      (void)uniloc.update(frame);
    }
  }

  PipelineStats stats;
  stats.epoch_us.reserve(fx.frames.size() * static_cast<std::size_t>(passes));
  double total_us = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    uniloc.reset({fx.start_pos, fx.start_heading});
    for (const sim::SensorFrame& frame : fx.frames) {
      const obs::Stopwatch sw;
      if (fast) {
        uniloc.update_fast(frame, scratch);
      } else {
        (void)uniloc.update(frame);
      }
      const double us = sw.elapsed_us();
      stats.epoch_us.push_back(us);
      total_us += us;
    }
  }
  stats.epochs_per_sec =
      1e6 * static_cast<double>(stats.epoch_us.size()) / total_us;
  const std::uint64_t hits =
      uniloc.scheme_cache_hits() + scratch.cache_hits();
  const std::uint64_t misses =
      uniloc.scheme_cache_misses() + scratch.cache_misses();
  if (hits + misses > 0) {
    stats.cache_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  stats.scratch_bytes = scratch.bytes();
  return stats;
}

}  // namespace

int main() {
  obs::BenchReport report = bench::make_report("epoch_pipeline");

  // The campus is the paper's primary venue (the eight daily paths) and
  // the regime the cache is built for: hundreds of fingerprints, so the
  // reference pipeline's per-epoch map-walk over every fingerprint is
  // the dominant cost the precomputed tables remove.
  const core::Deployment d = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});
  const ReplayFixture fx = record_walk(d, /*walkway=*/0, /*seed=*/99);
  std::printf("replaying %zu recorded epochs per pass (wifi db %zu, cell db %zu)\n",
              fx.frames.size(), d.wifi_db->size(), d.cell_db->size());

  constexpr int kPasses = 20;
  const PipelineStats ref = run_pipeline(d, fx, /*fast=*/false, kPasses);
  const PipelineStats fast = run_pipeline(d, fx, /*fast=*/true, kPasses);

  // The fast path again, with live span tracing serializing every
  // scheme/fuse span as JSONL into a memory buffer -- the worst-case
  // enabled-tracing tax the service can pay per epoch. The acceptance
  // contract bounds it below 5% of epoch throughput.
  std::ostringstream span_buf;
  obs::JsonlSpanSink span_sink(span_buf);
  obs::SpanTracer tracer(&span_sink);
  const PipelineStats traced =
      run_pipeline(d, fx, /*fast=*/true, kPasses, &tracer);

  const double speedup = fast.epochs_per_sec / ref.epochs_per_sec;
  const double tracing_overhead_pct =
      fast.epochs_per_sec > 0.0
          ? 100.0 * (1.0 - traced.epochs_per_sec / fast.epochs_per_sec)
          : 0.0;

  io::Table t({"pipeline", "epochs/s", "p50 (us)", "p99 (us)",
               "cache hit", "scratch (KiB)"});
  const auto row = [&t](const char* name, const PipelineStats& s) {
    t.add_row({name, io::Table::num(s.epochs_per_sec),
               io::Table::num(stats::percentile(s.epoch_us, 50.0)),
               io::Table::num(stats::percentile(s.epoch_us, 99.0)),
               io::Table::num(s.cache_hit_rate),
               io::Table::num(static_cast<double>(s.scratch_bytes) / 1024.0)});
  };
  row("reference update()", ref);
  row("fast update_fast()", fast);
  row("fast + span tracing", traced);
  std::printf("%s", t.to_string().c_str());
  std::printf("speedup: %.2fx\n", speedup);
  std::printf("tracing overhead: %.2f%% (%zu spans emitted)\n",
              tracing_overhead_pct, span_sink.spans_written());

  report.add_series("reference_epoch_us", ref.epoch_us);
  report.add_series("fast_epoch_us", fast.epoch_us);
  report.add_series("traced_epoch_us", traced.epoch_us);
  report.add_scalar("reference_epochs_per_sec", ref.epochs_per_sec);
  report.add_scalar("fast_epochs_per_sec", fast.epochs_per_sec);
  report.add_scalar("speedup", speedup);
  report.add_scalar("reference_p50_us", stats::percentile(ref.epoch_us, 50.0));
  report.add_scalar("reference_p99_us", stats::percentile(ref.epoch_us, 99.0));
  report.add_scalar("fast_p50_us", stats::percentile(fast.epoch_us, 50.0));
  report.add_scalar("fast_p99_us", stats::percentile(fast.epoch_us, 99.0));
  report.add_scalar("fast_cache_hit_rate", fast.cache_hit_rate);
  report.add_scalar("fast_scratch_bytes",
                    static_cast<double>(fast.scratch_bytes));
  report.add_scalar("traced_epochs_per_sec", traced.epochs_per_sec);
  report.add_scalar("tracing_overhead_pct", tracing_overhead_pct);
  report.add_scalar("traced_spans",
                    static_cast<double>(span_sink.spans_written()));
  bench::report_json(report);
  return 0;
}
