// Ablation: HMM map matching (MapCraft-style [47]) on top of UniLoc2.
//
// The fused estimate can float off the walkable paths; snapping it onto
// the walkway graph with walking-continuity transitions removes the
// off-path error component.
#include <cstdio>

#include "bench_util.h"
#include "core/map_matching.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_map_matching");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  std::printf("Ablation -- map matching on top of UniLoc2 (Paths 1-3)\n\n");
  io::Table t({"path", "UniLoc2 mean (m)", "+map matching (m)",
               "UniLoc2 p90 (m)", "+map matching p90 (m)"});

  for (std::size_t path : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    core::Uniloc uniloc = core::make_uniloc(campus, models, {}, false,
                                            500 + path);
    bench::instrument(uniloc, campus);
    core::MapMatcher matcher(campus.place.get());

    sim::WalkConfig wc;
    wc.seed = 2024 + path;
    sim::Walker walker(campus.place.get(), campus.radio.get(), path, wc);
    uniloc.reset({walker.start_position(), walker.start_heading()});
    matcher.reset();

    std::vector<double> raw, matched;
    while (!walker.done()) {
      const sim::SensorFrame f = walker.step(uniloc.gps_enabled());
      const core::EpochDecision d = uniloc.update(f);
      raw.push_back(geo::distance(d.uniloc2, f.truth_pos));
      matched.push_back(
          geo::distance(matcher.update(d.uniloc2), f.truth_pos));
    }
    t.add_row({campus.place->walkways()[path].name,
               io::Table::num(stats::mean(raw)),
               io::Table::num(stats::mean(matched)),
               io::Table::num(stats::percentile(raw, 90.0)),
               io::Table::num(stats::percentile(matched, 90.0))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nMap matching is a drop-in post-processor over the fused "
              "stream (%zu HMM states for the whole campus).\n",
              core::MapMatcher(campus.place.get()).num_states());

  bench::report_json(bench_report);
  return 0;
}
