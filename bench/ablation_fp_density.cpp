// Ablation: fingerprint density sweep -- RADAR's accuracy vs fingerprint
// spacing (3/5/10/15 m), the relation the beta1 error-model feature
// captures (paper Sec. III-B downsamples the fine-grained database to
// exactly these spacings).
#include <cstdio>

#include "bench_util.h"
#include "schemes/fingerprint_scheme.h"
#include "sim/walker.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_fp_density");
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});

  std::printf("Ablation -- RADAR error vs fingerprint spacing (office)\n\n");
  io::Table t({"spacing (m)", "fingerprints", "mean err (m)", "p50 (m)",
               "p90 (m)"});

  // Native spacing 3 m; downsample by 1/2/3/5 => ~3/6/9/15 m.
  const std::size_t factors[] = {1, 2, 3, 5};
  for (std::size_t factor : factors) {
    schemes::FingerprintDatabase db =
        office.wifi_db->downsampled(factor, 3);
    schemes::FingerprintScheme::Options o;
    o.softmax_scale_db = 3.0;
    schemes::FingerprintScheme radar(&db, o);
    db.attach_metrics(&obs::default_registry(),
                      "fpdb.spacing_" +
                          std::to_string(3 * factor) + "m");

    std::vector<double> errs;
    for (std::uint64_t s = 0; s < 3; ++s) {
      sim::WalkConfig wc;
      wc.seed = 1000 + s;
      sim::Walker walker(office.place.get(), office.radio.get(), 0, wc);
      radar.reset({walker.start_position(), walker.start_heading()});
      while (!walker.done()) {
        const sim::SensorFrame f = walker.step(false);
        const schemes::SchemeOutput out = radar.update(f);
        if (out.available) {
          errs.push_back(geo::distance(out.estimate, f.truth_pos));
        }
      }
    }
    bench_report.add_series(
        "radar.spacing_" + std::to_string(3 * factor) + "m", errs);
    t.add_row({io::Table::num(3.0 * static_cast<double>(factor), 0),
               std::to_string(db.size()), io::Table::num(stats::mean(errs)),
               io::Table::num(stats::percentile(errs, 50.0)),
               io::Table::num(stats::percentile(errs, 90.0))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nError grows with spacing -- the positive beta1 "
              "coefficient of the WiFi error model (Table II).\n");

  bench::report_json(bench_report);
  return 0;
}
