// Figure 8a-8c: error CDFs for all schemes and UniLoc2 in three further
// environments -- a shopping-mall floor (8a), an urban open space (8b)
// and the office (8c). Ten ~300 m trajectories per venue, estimates every
// ~3 m, as in the paper.
//
// Paper findings reproduced here: (1) every system does better in the
// office than in the mall (stabler signals, narrow corridors with many
// turns); cellular is poor in the mall (basement floor, ~2 towers);
// (2) outdoors all individual schemes are high-error and unstable;
// (3) UniLoc2 gains ~1.7x at the 50th and 90th percentiles everywhere,
// even though the error models were trained elsewhere.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

namespace {

void run_venue(const char* title, const char* tag, core::Deployment& d,
               const core::TrainedModels& models, std::uint64_t seed,
               obs::BenchReport& report) {
  // Ten ~300 m trajectories (the venue's own walkways plus random ones).
  sim::SegmentType type = d.place->walkways()[0].segments[0].type;
  const std::vector<std::size_t> trajs =
      sim::add_random_walkways(*d.place, 10, 300.0, type, seed);

  core::RunResult all;
  for (std::size_t idx : trajs) {
    core::Uniloc u = core::make_uniloc(d, models, {}, false, seed + idx);
    bench::instrument(u, d);
    core::RunOptions opts;
    opts.walk.seed = seed + 7 * idx;
    opts.record_every = 4;  // ~every 3 m
    all.append(core::run_walk(u, d, idx, opts));
  }

  std::printf("\n--- %s (%zu locations over 10 trajectories) ---\n", title,
              all.epochs.size());
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t i = 0; i < all.scheme_names.size(); ++i) {
    series.emplace_back(all.scheme_names[i], all.scheme_errors(i));
  }
  series.emplace_back("UniLoc2", all.uniloc2_errors());
  bench::print_percentiles(series);

  double best50 = 1e9, best90 = 1e9;
  for (std::size_t i = 0; i < all.scheme_names.size(); ++i) {
    const auto errs = all.scheme_errors(i);
    if (errs.size() < all.epochs.size() / 4) continue;  // niche schemes
    best50 = std::min(best50, stats::percentile(errs, 50.0));
    best90 = std::min(best90, stats::percentile(errs, 90.0));
  }
  std::printf("UniLoc2 gain vs best individual: %.2fx at p50, %.2fx at "
              "p90 (paper: ~1.7x)\n",
              best50 / stats::percentile(all.uniloc2_errors(), 50.0),
              best90 / stats::percentile(all.uniloc2_errors(), 90.0));

  for (std::size_t i = 0; i < all.scheme_names.size(); ++i) {
    report.add_series(std::string(tag) + "." + all.scheme_names[i],
                      all.scheme_errors(i));
  }
  report.add_series(std::string(tag) + ".UniLoc2", all.uniloc2_errors());
}

}  // namespace

int main() {
  obs::BenchReport report = bench::make_report("fig8_environments");
  const core::TrainedModels& models = bench::standard_models();
  std::printf("Fig. 8a-8c -- UniLoc in different environments (error "
              "models trained only in the office + open space)\n");

  // The mall sits on a basement floor: only ~2 towers effectively
  // audible (high non-reachable loss).
  core::DeploymentOptions mall_opts;
  mall_opts.seed = 7;
  mall_opts.cell.nonreachable_extra_db = 45.0;
  core::Deployment mall = core::make_deployment(sim::mall_place(7), mall_opts);
  run_venue("Fig. 8a: shopping mall", "mall", mall, models, 81, report);

  core::Deployment open = core::make_deployment(
      sim::open_space_place(99), core::DeploymentOptions{.seed = 99});
  run_venue("Fig. 8b: urban open space", "open_space", open, models, 82,
            report);

  core::Deployment office = core::make_deployment(
      sim::office_place(55), core::DeploymentOptions{.seed = 55});
  run_venue("Fig. 8c: office", "office", office, models, 83, report);

  bench::report_json(report);
  return 0;
}
