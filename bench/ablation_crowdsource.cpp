// Ablation: fingerprint aging and crowdsourced maintenance.
//
// The paper assumes the fingerprint database "is updated by service
// providers or crowdsourcing [9], [10]" (Sec. III-B). This bench shows
// why: the radio environment drifts day by day (per-AP random-walk
// offsets: furniture, humidity, AP swaps), a stale database rots, and a
// crowdsourced database -- refreshed by walkers' own scans, gated on
// their position confidence -- tracks the drift.
#include <cstdio>

#include "bench_util.h"
#include "schemes/crowdsource.h"
#include "schemes/fingerprint_scheme.h"
#include "sim/walker.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_crowdsource");
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});

  schemes::FingerprintDatabase stale_db = *office.wifi_db;
  schemes::FingerprintDatabase crowd_db = *office.wifi_db;
  schemes::FingerprintScheme::Options ropts;
  ropts.softmax_scale_db = 3.0;
  schemes::FingerprintScheme radar_stale(&stale_db, ropts);
  schemes::FingerprintScheme radar_crowd(&crowd_db, ropts);
  schemes::FingerprintCrowdsourcer crowdsourcer(&crowd_db);
  stale_db.attach_metrics(&obs::default_registry(), "fpdb.stale");
  crowd_db.attach_metrics(&obs::default_registry(), "fpdb.crowd");

  // The environment's cumulative per-AP drift.
  std::map<int, double> drift;
  stats::Rng rng(5);

  std::printf("Ablation -- fingerprint aging vs crowdsourced maintenance "
              "(office, 8 days, ~1.2 dB/AP/day drift)\n\n");
  io::Table t({"day", "stale DB mean err (m)", "crowdsourced mean err (m)",
               "contributions"});

  for (int day = 0; day < 8; ++day) {
    for (const sim::AccessPoint& ap : office.place->access_points()) {
      drift[ap.id] += rng.normal(0.0, 1.2);
    }
    sim::WalkConfig wc;
    wc.seed = 300 + static_cast<std::uint64_t>(day);
    wc.wifi_bias_sd_db = 0.0;  // drift is modeled explicitly here
    sim::Walker walker(office.place.get(), office.radio.get(), 0, wc);
    radar_stale.reset({walker.start_position(), walker.start_heading()});
    radar_crowd.reset({walker.start_position(), walker.start_heading()});

    std::vector<double> err_stale, err_crowd;
    while (!walker.done()) {
      sim::SensorFrame f = walker.step(false);
      for (sim::ApReading& r : f.wifi) r.rssi_dbm += drift[r.id];

      const schemes::SchemeOutput s = radar_stale.update(f);
      if (s.available) {
        err_stale.push_back(geo::distance(s.estimate, f.truth_pos));
      }
      const schemes::SchemeOutput c = radar_crowd.update(f);
      if (c.available) {
        err_crowd.push_back(geo::distance(c.estimate, f.truth_pos));
      }
      // Contributors report their own (confident) position estimates.
      const geo::Vec2 reported = f.truth_pos +
                                 geo::Vec2{rng.normal(0.0, 1.2),
                                           rng.normal(0.0, 1.2)};
      crowdsourcer.contribute(reported, 2.5, f.wifi);
    }
    bench_report.add_scalar("stale.mean_err.day" +
                                std::to_string(day + 1),
                            stats::mean(err_stale));
    bench_report.add_scalar("crowd.mean_err.day" +
                                std::to_string(day + 1),
                            stats::mean(err_crowd));
    if (day == 7) {
      bench_report.add_series("stale.final_day", err_stale);
      bench_report.add_series("crowd.final_day", err_crowd);
    }
    t.add_row({std::to_string(day + 1),
               io::Table::num(stats::mean(err_stale)),
               io::Table::num(stats::mean(err_crowd)),
               std::to_string(crowdsourcer.accepted())});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nThe stale database degrades as the radio environment "
              "drifts; the crowdsourced one tracks it -- the maintenance "
              "assumption UniLoc builds on.\n");

  bench::report_json(bench_report);
  return 0;
}
