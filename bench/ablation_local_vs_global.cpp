// Ablation: locally-weighted BMA (UniLoc2) vs globally-weighted BMA (the
// prior approach [29] the paper contrasts with: one fixed weight per
// scheme for the entire place, derived from training-set accuracy).
//
// Expected: global weights cannot react to the spatial variation of
// sensor-data quality (e.g. cellular being the only radio in the
// basement), so UniLoc2's per-location weights win.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_local_vs_global");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  // Global weights from training-venue mean errors per scheme (a fair
  // stand-in for [29]'s offline global accuracy estimate).
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  core::CollectOptions copts;
  copts.target_samples = 200;
  copts.seed = 91;
  const core::TrainingData td = core::collect_training_data(office, copts);
  // Mean error per family from the collected rows; GPS uses its constant.
  auto family_mean = [&](schemes::SchemeFamily f) {
    const auto it = td.by_family.find(f);
    if (it == td.by_family.end() || it->second.rows.empty()) return 13.5;
    double s = 0.0;
    for (const core::TrainingRow& r : it->second.rows) s += r.y;
    return s / static_cast<double>(it->second.rows.size());
  };
  using SF = schemes::SchemeFamily;
  const std::vector<double> mean_errors = {
      13.5, family_mean(SF::kWifiFingerprint), family_mean(SF::kCellFingerprint),
      family_mean(SF::kMotionPdr), family_mean(SF::kFusion)};
  const core::GlobalWeightBma global(mean_errors);

  core::RunResult all;
  for (std::size_t p = 0; p < campus.place->walkways().size(); ++p) {
    core::Uniloc uniloc = core::make_uniloc(campus, models, {}, false,
                                            300 + 31 * p);
    bench::instrument(uniloc, campus);
    core::RunOptions opts;
    opts.walk.seed = 500 + p;
    opts.global_bma = &global;
    all.append(core::run_walk(uniloc, campus, p, opts));
  }

  std::vector<double> global_errs;
  for (const core::EpochRecord& e : all.epochs) {
    if (e.global_bma_err.has_value()) global_errs.push_back(*e.global_bma_err);
  }

  std::printf("Ablation -- locally-weighted vs globally-weighted BMA "
              "(all 8 paths, %zu locations)\n\n",
              all.epochs.size());
  std::printf("Fixed global weights (from training accuracy): ");
  for (std::size_t i = 0; i < global.weights().size(); ++i) {
    std::printf("%s=%.2f ", all.scheme_names[i].c_str(), global.weights()[i]);
  }
  std::printf("\n\n");
  bench::print_percentiles({
      {"Global-weight BMA [29]", global_errs},
      {"UniLoc2 (local weights)", all.uniloc2_errors()},
  });
  std::printf("\nUniLoc2 p50 gain over global weighting: %.2fx\n",
              stats::percentile(global_errs, 50.0) /
                  stats::percentile(all.uniloc2_errors(), 50.0));

  bench::report_json(bench_report);
  return 0;
}
