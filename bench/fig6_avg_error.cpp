// Figure 6: average localization error of every scheme, the oracle and
// both UniLoc variants along daily Path 1.
//
// Paper shape: fusion is the best individual (4.0 m), UniLoc1 slightly
// better (3.7 m), UniLoc2 clearly best (2.6 m).
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport report = bench::make_report("fig6_avg_error");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  // Average over several walk seeds to smooth single-walk noise (the
  // paper averages over repeated traversals of the daily path).
  core::RunResult all;
  for (std::uint64_t s = 0; s < 3; ++s) {
    core::Uniloc uniloc = core::make_uniloc(campus, models, {}, false,
                                            7 + 13 * s);
    bench::instrument(uniloc, campus);
    core::RunOptions opts;
    opts.walk.seed = 2024 + s;
    all.append(core::run_walk(uniloc, campus, 0, opts));
  }

  std::printf("Fig. 6 -- average localization error along Path 1 "
              "(%zu locations, 3 traversals)\n\n",
              all.epochs.size());
  io::Table t({"series", "mean error (m)", "availability"});
  double best_individual = 1e9;
  std::string best_name;
  for (std::size_t i = 0; i < all.scheme_names.size(); ++i) {
    const std::vector<double> errs = all.scheme_errors(i);
    if (errs.empty()) continue;
    const double m = stats::mean(errs);
    t.add_row({all.scheme_names[i], io::Table::num(m),
               io::Table::pct(static_cast<double>(errs.size()) /
                              static_cast<double>(all.epochs.size()))});
    if (m < best_individual) {
      best_individual = m;
      best_name = all.scheme_names[i];
    }
  }
  const double oracle = stats::mean(all.oracle_errors());
  const double u1 = stats::mean(all.uniloc1_errors());
  const double u2 = stats::mean(all.uniloc2_errors());
  t.add_row({"Oracle", io::Table::num(oracle), "100.0%"});
  t.add_row({"UniLoc1", io::Table::num(u1), "100.0%"});
  t.add_row({"UniLoc2", io::Table::num(u2), "100.0%"});
  std::printf("%s", t.to_string().c_str());

  std::printf("\nBest individual scheme: %s (%.2f m).\n", best_name.c_str(),
              best_individual);
  std::printf("UniLoc2 reduces the best individual scheme's error by "
              "%.2fx (paper: 1.5x vs fusion).\n",
              best_individual / u2);
  std::printf("UniLoc2 vs UniLoc1: %.2fx.\n", u1 / u2);

  bench::add_run_series(report, all);
  bench::report_json(report);
  return 0;
}
