// Bench: checkpoint cost -- snapshot latency and bytes per session.
//
// A LocalizationServer carrying N warm sessions (N in {1, 8, 32, 128},
// round-robin over the eight campus paths, a few epochs of traffic each
// so particle clouds and calibrators hold real state) is snapshotted
// repeatedly. Reported per N:
//
//   snapshot_p50/p99_us   full-population snapshot latency (quiesce is
//                         free here: workers == 0, every session idle)
//   bytes_per_session     snapshot size divided by N (the per-phone
//                         checkpoint footprint; dominated by the two
//                         particle filters at ~600 doubles each)
//   restore_us            one cold restore of the final snapshot
//
// Headline: bytes/session is flat in N (the format has no cross-session
// state) and snapshot latency is linear in N.
//
// Delta section (ISSUE 10): the same warm population checkpointed
// through the wave chain -- full lossless keyframes vs quantized delta
// waves where only the sessions that advanced since the previous wave
// carry a record. Reported: bytes/session for each mode and the
// reduction factor (acceptance floor: >= 4x), plus a collapse_chain
// restore of the measured chain to prove the cheap waves are the real
// durable artifact and not a trimmed imitation.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "svc/delta.h"
#include "svc/epoch_codec.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "svc/wire.h"

using namespace uniloc;

namespace {

constexpr std::size_t kWarmEpochs = 6;
constexpr std::size_t kSnapshotReps = 50;

std::vector<std::uint8_t> hello_frame(std::uint64_t sid, geo::Vec2 start,
                                      double heading) {
  svc::Frame f;
  f.type = svc::FrameType::kHello;
  f.session_id = sid;
  f.payload = svc::encode_hello({start, heading});
  return svc::encode_frame(f);
}

std::vector<std::uint8_t> epoch_frame(std::uint64_t sid) {
  svc::Frame f;
  f.type = svc::FrameType::kEpoch;
  f.session_id = sid;
  f.payload = svc::encode_epoch({}, sim::SensorFrame{});
  return svc::encode_frame(f);
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  obs::BenchReport report = bench::make_report("checkpoint");
  const core::Deployment campus = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});
  const auto factory = [&campus](std::uint64_t sid) {
    return std::make_unique<core::Uniloc>(core::make_uniloc(
        campus, bench::standard_models(), {}, false, /*seed=*/7 + sid));
  };

  io::Table table({"sessions", "bytes/session", "snap p50 (us)",
                   "snap p99 (us)", "restore (us)"});
  for (const std::size_t n : {1u, 8u, 32u, 128u}) {
    svc::LocalizationServer server(svc::ServerConfig{}, factory, nullptr);
    const auto& ways = campus.place->walkways();
    for (std::uint64_t sid = 1; sid <= n; ++sid) {
      const sim::Walkway& way = ways[(sid - 1) % ways.size()];
      server.submit(hello_frame(sid, way.line.points().front(), 0.0)).get();
      for (std::size_t e = 0; e < kWarmEpochs; ++e) {
        server.submit(epoch_frame(sid)).get();
      }
    }

    std::vector<double> latencies;
    std::vector<std::uint8_t> snap;
    for (std::size_t rep = 0; rep < kSnapshotReps; ++rep) {
      const double t0 = now_us();
      snap = server.snapshot();
      latencies.push_back(now_us() - t0);
    }
    const double p50 = stats::percentile(latencies, 50.0);
    const double p99 = stats::percentile(latencies, 99.0);
    const double per_session =
        static_cast<double>(snap.size()) / static_cast<double>(n);

    svc::LocalizationServer cold(svc::ServerConfig{}, factory, nullptr);
    const double r0 = now_us();
    const bool ok = cold.restore(snap);
    const double restore_us = now_us() - r0;
    if (!ok || cold.live_sessions() != n) {
      std::fprintf(stderr, "restore failed at n=%zu\n", n);
      return 1;
    }

    table.add_row({std::to_string(n), io::Table::num(per_session, 0),
                   io::Table::num(p50, 1), io::Table::num(p99, 1),
                   io::Table::num(restore_us, 1)});
    const std::string prefix = "n" + std::to_string(n) + "_";
    report.add_scalar(prefix + "snapshot_bytes",
                      static_cast<double>(snap.size()));
    report.add_scalar(prefix + "bytes_per_session", per_session);
    report.add_scalar(prefix + "snapshot_p50_us", p50);
    report.add_scalar(prefix + "snapshot_p99_us", p99);
    report.add_scalar(prefix + "restore_us", restore_us);
    report.add_series(prefix + "snapshot_us", latencies);
  }

  std::printf("Checkpoint cost (campus deployment, %zu warm epochs/session)\n",
              kWarmEpochs);
  std::printf("%s", table.to_string().c_str());

  // ---- delta section: wave chain vs full keyframes -------------------
  // Steady state at n=128: every round a rotating 1/4 of the population
  // advances by one epoch, then one delta wave is cut. The keyframe
  // baseline is the v1 (lossless f64) keyframe wave over the same
  // population; the delta figure is the quantized (v2) delta wave that
  // carries only the dirty quarter.
  {
    constexpr std::size_t kDeltaSessions = 128;
    constexpr std::size_t kActivePerRound = kDeltaSessions / 4;
    constexpr std::size_t kDeltaRounds = 16;

    svc::ServerConfig qcfg;
    qcfg.snapshot_quantize = true;
    svc::LocalizationServer server(qcfg, factory, nullptr);
    const auto& ways = campus.place->walkways();
    for (std::uint64_t sid = 1; sid <= kDeltaSessions; ++sid) {
      const sim::Walkway& way = ways[(sid - 1) % ways.size()];
      server.submit(hello_frame(sid, way.line.points().front(), 0.0)).get();
      for (std::size_t e = 0; e < kWarmEpochs; ++e) {
        server.submit(epoch_frame(sid)).get();
      }
    }

    // Lossless keyframe baseline over the identical state (same seeds).
    svc::LocalizationServer lossless(svc::ServerConfig{}, factory, nullptr);
    for (std::uint64_t sid = 1; sid <= kDeltaSessions; ++sid) {
      const sim::Walkway& way = ways[(sid - 1) % ways.size()];
      lossless.submit(hello_frame(sid, way.line.points().front(), 0.0))
          .get();
      for (std::size_t e = 0; e < kWarmEpochs; ++e) {
        lossless.submit(epoch_frame(sid)).get();
      }
    }
    const double keyframe_per_session =
        static_cast<double>(lossless.snapshot_wave(true).size()) /
        static_cast<double>(kDeltaSessions);

    std::vector<std::vector<std::uint8_t>> chain;
    chain.push_back(server.snapshot_wave(true));  // quantized anchor
    const double quant_keyframe_per_session =
        static_cast<double>(chain.back().size()) /
        static_cast<double>(kDeltaSessions);

    std::vector<double> wave_us;
    std::uint64_t delta_bytes = 0;
    for (std::size_t round = 0; round < kDeltaRounds; ++round) {
      for (std::size_t i = 0; i < kActivePerRound; ++i) {
        const std::uint64_t sid =
            1 + (round * kActivePerRound + i) % kDeltaSessions;
        server.submit(epoch_frame(sid)).get();
      }
      const double t0 = now_us();
      chain.push_back(server.snapshot_wave(false));
      wave_us.push_back(now_us() - t0);
      delta_bytes += chain.back().size();
    }
    const double delta_per_session =
        static_cast<double>(delta_bytes) /
        static_cast<double>(kDeltaRounds * kDeltaSessions);
    const double reduction = keyframe_per_session / delta_per_session;

    // The cheap waves must still be the durable artifact: collapse the
    // measured chain and restore a cold server from it.
    const svc::ChainCollapse collapsed = svc::collapse_chain(chain);
    svc::LocalizationServer cold(qcfg, factory, nullptr);
    if (!collapsed.ok || collapsed.waves_rejected != 0 ||
        !cold.restore(collapsed.snapshot) ||
        cold.live_sessions() != kDeltaSessions) {
      std::fprintf(stderr, "delta chain restore failed\n");
      return 1;
    }

    io::Table dt({"mode", "bytes/session"});
    dt.add_row({"keyframe (v1 f64)", io::Table::num(keyframe_per_session, 0)});
    dt.add_row({"keyframe (v2 quant)",
                io::Table::num(quant_keyframe_per_session, 0)});
    dt.add_row({"delta (v2, 1/4 dirty)",
                io::Table::num(delta_per_session, 0)});
    std::printf(
        "\nDelta chain (n=%zu, %zu rounds, %zu active/round, keyframe "
        "baseline)\n%sreduction vs full keyframes: %.1fx (floor 4.0x)\n",
        kDeltaSessions, kDeltaRounds, kActivePerRound,
        dt.to_string().c_str(), reduction);

    report.add_scalar("delta.keyframe_bytes_per_session",
                      keyframe_per_session);
    report.add_scalar("delta.quant_keyframe_bytes_per_session",
                      quant_keyframe_per_session);
    report.add_scalar("delta.delta_bytes_per_session", delta_per_session);
    report.add_scalar("delta.reduction_x", reduction);
    report.add_scalar("delta.wave_p50_us",
                      stats::percentile(wave_us, 50.0));
    report.add_scalar("delta.restore_ok", 1.0);
  }

  bench::report_json(report);
  return 0;
}
