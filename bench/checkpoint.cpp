// Bench: checkpoint cost -- snapshot latency and bytes per session.
//
// A LocalizationServer carrying N warm sessions (N in {1, 8, 32, 128},
// round-robin over the eight campus paths, a few epochs of traffic each
// so particle clouds and calibrators hold real state) is snapshotted
// repeatedly. Reported per N:
//
//   snapshot_p50/p99_us   full-population snapshot latency (quiesce is
//                         free here: workers == 0, every session idle)
//   bytes_per_session     snapshot size divided by N (the per-phone
//                         checkpoint footprint; dominated by the two
//                         particle filters at ~600 doubles each)
//   restore_us            one cold restore of the final snapshot
//
// Headline: bytes/session is flat in N (the format has no cross-session
// state) and snapshot latency is linear in N.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "svc/epoch_codec.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "svc/wire.h"

using namespace uniloc;

namespace {

constexpr std::size_t kWarmEpochs = 6;
constexpr std::size_t kSnapshotReps = 50;

std::vector<std::uint8_t> hello_frame(std::uint64_t sid, geo::Vec2 start,
                                      double heading) {
  svc::Frame f;
  f.type = svc::FrameType::kHello;
  f.session_id = sid;
  f.payload = svc::encode_hello({start, heading});
  return svc::encode_frame(f);
}

std::vector<std::uint8_t> epoch_frame(std::uint64_t sid) {
  svc::Frame f;
  f.type = svc::FrameType::kEpoch;
  f.session_id = sid;
  f.payload = svc::encode_epoch({}, sim::SensorFrame{});
  return svc::encode_frame(f);
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  obs::BenchReport report = bench::make_report("checkpoint");
  const core::Deployment campus = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});
  const auto factory = [&campus](std::uint64_t sid) {
    return std::make_unique<core::Uniloc>(core::make_uniloc(
        campus, bench::standard_models(), {}, false, /*seed=*/7 + sid));
  };

  io::Table table({"sessions", "bytes/session", "snap p50 (us)",
                   "snap p99 (us)", "restore (us)"});
  for (const std::size_t n : {1u, 8u, 32u, 128u}) {
    svc::LocalizationServer server(svc::ServerConfig{}, factory, nullptr);
    const auto& ways = campus.place->walkways();
    for (std::uint64_t sid = 1; sid <= n; ++sid) {
      const sim::Walkway& way = ways[(sid - 1) % ways.size()];
      server.submit(hello_frame(sid, way.line.points().front(), 0.0)).get();
      for (std::size_t e = 0; e < kWarmEpochs; ++e) {
        server.submit(epoch_frame(sid)).get();
      }
    }

    std::vector<double> latencies;
    std::vector<std::uint8_t> snap;
    for (std::size_t rep = 0; rep < kSnapshotReps; ++rep) {
      const double t0 = now_us();
      snap = server.snapshot();
      latencies.push_back(now_us() - t0);
    }
    const double p50 = stats::percentile(latencies, 50.0);
    const double p99 = stats::percentile(latencies, 99.0);
    const double per_session =
        static_cast<double>(snap.size()) / static_cast<double>(n);

    svc::LocalizationServer cold(svc::ServerConfig{}, factory, nullptr);
    const double r0 = now_us();
    const bool ok = cold.restore(snap);
    const double restore_us = now_us() - r0;
    if (!ok || cold.live_sessions() != n) {
      std::fprintf(stderr, "restore failed at n=%zu\n", n);
      return 1;
    }

    table.add_row({std::to_string(n), io::Table::num(per_session, 0),
                   io::Table::num(p50, 1), io::Table::num(p99, 1),
                   io::Table::num(restore_us, 1)});
    const std::string prefix = "n" + std::to_string(n) + "_";
    report.add_scalar(prefix + "snapshot_bytes",
                      static_cast<double>(snap.size()));
    report.add_scalar(prefix + "bytes_per_session", per_session);
    report.add_scalar(prefix + "snapshot_p50_us", p50);
    report.add_scalar(prefix + "snapshot_p99_us", p99);
    report.add_scalar(prefix + "restore_us", restore_us);
    report.add_series(prefix + "snapshot_us", latencies);
  }

  std::printf("Checkpoint cost (campus deployment, %zu warm epochs/session)\n",
              kWarmEpochs);
  std::printf("%s", table.to_string().c_str());
  bench::report_json(report);
  return 0;
}
