// Figure 5: usage of the different localization schemes -- how often each
// scheme is chosen by UniLoc1 vs by the oracle along Path 1.
//
// Paper finding: UniLoc1's usage mix tracks the oracle's even though the
// online error prediction is imperfect; when UniLoc1 picks a suboptimal
// scheme, the top schemes' accuracies are close, so the mistake is cheap.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport report = bench::make_report("fig5_scheme_usage");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());
  core::Uniloc uniloc = core::make_uniloc(campus, models);
  bench::instrument(uniloc, campus);

  core::RunOptions opts;
  opts.walk.seed = 2024;
  const core::RunResult run = core::run_walk(uniloc, campus, 0, opts);

  std::printf("Fig. 5 -- scheme usage along Path 1 (%zu locations)\n\n",
              run.epochs.size());
  const std::vector<double> u1 = run.uniloc1_usage();
  const std::vector<double> oracle = run.oracle_usage();
  io::Table t({"scheme", "UniLoc1 usage", "Oracle usage"});
  for (std::size_t i = 0; i < run.scheme_names.size(); ++i) {
    t.add_row({run.scheme_names[i], io::Table::pct(u1[i]),
               io::Table::pct(oracle[i])});
  }
  std::printf("%s", t.to_string().c_str());

  // Cost of misclassification: at locations where UniLoc1 != oracle, how
  // much worse is the chosen scheme than the best one?
  std::vector<double> regret;
  for (const core::EpochRecord& e : run.epochs) {
    if (e.uniloc1_choice >= 0 && e.oracle_choice >= 0 &&
        e.uniloc1_choice != e.oracle_choice) {
      regret.push_back(e.uniloc1_err - e.oracle_err);
    }
  }
  if (!regret.empty()) {
    std::printf("\nUniLoc1 disagreed with the oracle at %zu locations; "
                "median extra error at those locations: %.2f m (the "
                "misclassified schemes are usually close in accuracy).\n",
                regret.size(), stats::median(regret));
  }

  for (std::size_t i = 0; i < run.scheme_names.size(); ++i) {
    report.add_scalar("usage_uniloc1." + run.scheme_names[i], u1[i]);
    report.add_scalar("usage_oracle." + run.scheme_names[i], oracle[i]);
  }
  report.add_series("regret", regret);
  bench::add_run_series(report, run);
  bench::report_json(report);
  return 0;
}
