// Ablation: UniLoc vs the A-Loc baseline ([28]).
//
// A-Loc picks the cheapest scheme that meets an accuracy requirement; it
// saves energy but (a) never combines outputs and (b) an aggressive
// requirement forces it onto expensive schemes. The paper's two
// differences (Sec. VI) are exactly what this bench quantifies: accuracy
// (UniLoc2 combines, A-Loc selects) and the energy/accuracy trade-off.
#include <cstdio>

#include "bench_util.h"
#include "core/aloc_baseline.h"
#include "sim/walker.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_aloc");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  std::printf("Ablation -- UniLoc vs A-Loc [28] on Path 1\n\n");
  io::Table t({"policy", "mean err (m)", "p90 (m)", "avg sensor power (mW)"});

  for (double req : {5.0, 10.0, 20.0}) {
    const core::ALocSelector aloc(core::standard_scheme_costs(), req);
    core::Uniloc uniloc = core::make_uniloc(campus, models);
    bench::instrument(uniloc, campus);

    sim::WalkConfig wc;
    wc.seed = 2024;
    sim::Walker walker(campus.place.get(), campus.radio.get(), 0, wc);
    uniloc.reset({walker.start_position(), walker.start_heading()});

    std::vector<double> errs;
    double power_sum = 0.0;
    std::size_t epochs = 0;
    while (!walker.done()) {
      // A-Loc drives its own duty cycling: it only samples the sensor of
      // the scheme it selected; for comparability we let all sensors run
      // and account the selected scheme's marginal power.
      const sim::SensorFrame f = walker.step(true);
      const core::EpochDecision d = uniloc.update(f);
      const int pick = aloc.select(d.outputs, d.predicted_error);
      ++epochs;
      if (pick >= 0) {
        errs.push_back(geo::distance(
            d.outputs[static_cast<std::size_t>(pick)].estimate, f.truth_pos));
        power_sum +=
            core::standard_scheme_costs()[static_cast<std::size_t>(pick)]
                .power_mw;
      }
    }
    t.add_row({"A-Loc, req " + io::Table::num(req, 0) + " m",
               io::Table::num(stats::mean(errs)),
               io::Table::num(stats::percentile(errs, 90.0)),
               io::Table::num(power_sum / static_cast<double>(epochs), 1)});
  }

  // UniLoc2 for reference (runs everything; sensors ~104 mW marginal with
  // duty-cycled GPS, see Table IV).
  core::Uniloc uniloc = core::make_uniloc(campus, models);
  bench::instrument(uniloc, campus);
  core::RunOptions opts;
  opts.walk.seed = 2024;
  const core::RunResult run = core::run_walk(uniloc, campus, 0, opts);
  t.add_row({"UniLoc2 (all schemes)",
             io::Table::num(stats::mean(run.uniloc2_errors())),
             io::Table::num(stats::percentile(run.uniloc2_errors(), 90.0)),
             "~100 (Table IV)"});
  std::printf("%s", t.to_string().c_str());
  std::printf("\nA-Loc trades accuracy for energy by selection; UniLoc "
              "spends slightly more power to combine everything and wins "
              "on accuracy (paper Sec. VI).\n");

  bench::report_json(bench_report);
  return 0;
}
