// Ablation: the offloading decision (paper Sec. IV-C).
//
// Running the 300-particle filters locally is infeasible on the paper's
// phone ("the updating cannot be accomplished within 0.5 s on Google
// Nexus 5") and expensive in energy; offloading costs uplink bytes
// instead. This bench measures the actual wire traffic of a full
// offloaded walk (uniloc_offload payload encodings) and compares the
// phone energy of both designs under the energy model.
#include <cstdio>

#include "bench_util.h"
#include "energy/energy_model.h"
#include "offload/session.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_offload");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());
  core::Uniloc uniloc = core::make_uniloc(campus, models);
  bench::instrument(uniloc, campus);

  sim::WalkConfig wc;
  wc.seed = 2024;
  sim::Walker walker(campus.place.get(), campus.radio.get(), 0, wc);
  const offload::TrafficStats traffic =
      offload::run_offloaded_walk(uniloc, walker,
                                  &obs::default_registry());

  const double walk_s =
      static_cast<double>(traffic.epochs) * wc.gait.step_period_s;
  std::printf("Ablation -- offloading vs phone-local ensemble (Path 1, "
              "%zu epochs, %.0f s)\n\n",
              traffic.epochs, walk_s);

  std::printf("measured wire traffic:\n");
  std::printf("  uplink   %7zu B total, %5.1f B/epoch (4-byte step model "
              "+ scans + GPS when valid)\n",
              traffic.uplink_bytes, traffic.uplink_bytes_per_epoch());
  std::printf("  downlink %7zu B total (8 B fused coordinate per epoch)\n\n",
              traffic.downlink_bytes);

  // Energy comparison: transmit payloads vs run two 300-particle filters
  // plus the ensemble locally. A phone-class core spends vastly more on
  // sustained compute than on shipping tens of bytes.
  const energy::EnergyParams p;
  const double tx_j =
      static_cast<double>(traffic.uplink_bytes + traffic.downlink_bytes) *
      p.tx_uj_per_byte * 1e-6;
  const double local_particle_mw = 240.0;  // sustained PF load, phone core
  const double local_j = local_particle_mw * 1e-3 * walk_s;
  std::printf("phone energy for the heavy computation:\n");
  std::printf("  offloaded: %6.2f J  (radio transmissions only)\n", tx_j);
  std::printf("  local:     %6.2f J  (two particle filters + ensemble on "
              "the phone)\n",
              local_j);
  std::printf("  => offloading saves %.0fx on this component (and the "
              "paper's phone could not finish the update in 0.5 s at "
              "all)\n",
              local_j / std::max(1e-9, tx_j));

  // What raw-IMU streaming would have cost instead of the 4-byte model.
  const double raw_imu_bytes =
      static_cast<double>(traffic.epochs) * 27.0 * 3.0 * 4.0;
  std::printf("\npre-processing on the phone shrinks the IMU stream "
              "%.0fx (4 B/epoch vs %.0f B/epoch raw 50 Hz samples).\n",
              raw_imu_bytes /
                  (4.0 * static_cast<double>(traffic.epochs)),
              raw_imu_bytes / static_cast<double>(traffic.epochs));

  bench_report.add_scalar("uplink_bytes_per_epoch",
                          traffic.uplink_bytes_per_epoch());
  bench_report.add_scalar("offloaded_tx_j", tx_j);
  bench_report.add_scalar("local_compute_j", local_j);
  bench::report_json(bench_report);
  return 0;
}
