// Figure 8d: heterogeneous devices. Online localization with an LG G3
// against fingerprints and error models built with a Nexus 5X, with and
// without online RSSI offset calibration, for both RADAR (WiFi) and
// UniLoc2.
//
// Paper findings: calibration recovers most of the loss (1.9x at the
// 90th percentile for RADAR), and UniLoc assimilates the gain of the
// underlying scheme's heterogeneity handling.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

namespace {

core::RunResult run_cfg(core::Deployment& d, const core::TrainedModels& m,
                        bool lg, bool calibrate, std::uint64_t seed) {
  core::RunResult all;
  for (std::size_t w = 0; w < d.place->walkways().size(); ++w) {
    core::Uniloc u = core::make_uniloc(d, m, {}, calibrate, seed + w);
    bench::instrument(u, d);
    core::RunOptions opts;
    opts.walk.seed = seed + 50 + w;
    if (lg) opts.walk.device = sim::lg_g3();
    opts.record_every = 2;
    all.append(core::run_walk(u, d, w, opts));
  }
  return all;
}

std::size_t wifi_index(const core::RunResult& r) {
  for (std::size_t i = 0; i < r.scheme_names.size(); ++i) {
    if (r.scheme_names[i] == "WiFi") return i;
  }
  return 1;
}

}  // namespace

int main() {
  obs::BenchReport report = bench::make_report("fig8d_hetero_devices");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});

  const core::RunResult nexus = run_cfg(office, models, false, false, 11);
  const core::RunResult lg_raw = run_cfg(office, models, true, false, 11);
  const core::RunResult lg_cal = run_cfg(office, models, true, true, 11);

  std::printf("Fig. 8d -- heterogeneous devices (LG G3 on Nexus-5X "
              "fingerprints), office venue\n\n");
  auto wifi = [&](const core::RunResult& r) {
    return r.scheme_errors(wifi_index(r));
  };
  bench::print_percentiles({
      {"RADAR, Nexus 5X (reference)", wifi(nexus)},
      {"RADAR, LG G3 w/o calibration", wifi(lg_raw)},
      {"RADAR, LG G3 w/ calibration", wifi(lg_cal)},
      {"UniLoc2, Nexus 5X (reference)", nexus.uniloc2_errors()},
      {"UniLoc2, LG G3 w/o calibration", lg_raw.uniloc2_errors()},
      {"UniLoc2, LG G3 w/ calibration", lg_cal.uniloc2_errors()},
  });

  const double radar_raw90 = stats::percentile(wifi(lg_raw), 90.0);
  const double radar_cal90 = stats::percentile(wifi(lg_cal), 90.0);
  const double u2_raw90 = stats::percentile(lg_raw.uniloc2_errors(), 90.0);
  const double u2_cal90 = stats::percentile(lg_cal.uniloc2_errors(), 90.0);
  std::printf("\np90 reduction from calibration: RADAR %.2fx (paper: 1.9x), "
              "UniLoc2 %.2fx.\nUniLoc assimilates the heterogeneity "
              "handling of its underlying schemes.\n",
              radar_raw90 / radar_cal90, u2_raw90 / u2_cal90);

  report.add_series("radar_nexus", wifi(nexus));
  report.add_series("radar_lg_raw", wifi(lg_raw));
  report.add_series("radar_lg_cal", wifi(lg_cal));
  report.add_series("uniloc2_nexus", nexus.uniloc2_errors());
  report.add_series("uniloc2_lg_raw", lg_raw.uniloc2_errors());
  report.add_series("uniloc2_lg_cal", lg_cal.uniloc2_errors());
  bench::report_json(report);
  return 0;
}
