// Bench: multi-session service throughput vs worker-pool size.
//
// 32 simulated phones (round-robin over the eight campus paths, distinct
// walk seeds) speak the svc wire protocol against one LocalizationServer
// at 1, 2, 4, and 8 workers. Each epoch blocks its worker for the
// simulated network push (Table V measures 52 + 63 ms of WLAN
// transmissions per fix; we use a compressed stand-in so the bench runs
// in seconds) -- so throughput scales with workers until the CPU
// saturates, exactly like the real synchronous server.
//
// Reported per worker count: epochs/s, client-side p50/p95/p99 latency,
// and backpressure rejections. The scaling headline: epochs/s must rise
// monotonically from 1 to 4 workers.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "stats/descriptive.h"

using namespace uniloc;

namespace {

constexpr std::size_t kWalkers = 32;
constexpr std::size_t kEpochsPerWalker = 20;
constexpr std::chrono::microseconds kSimulatedNetwork{8000};

svc::LoadReport run_config(const core::Deployment& campus, int workers) {
  svc::ServerConfig cfg;
  cfg.workers = workers;
  cfg.simulated_network = kSimulatedNetwork;
  svc::LocalizationServer server(
      cfg,
      [&campus](std::uint64_t sid) {
        return std::make_unique<core::Uniloc>(core::make_uniloc(
            campus, bench::standard_models(), {}, false, /*seed=*/7 + sid));
      },
      &obs::default_registry());

  svc::LoadGenConfig lg;
  lg.walkers = kWalkers;
  lg.max_epochs_per_walker = kEpochsPerWalker;
  lg.burst = 2;  // two epochs in flight per session: exercises the inbox
  lg.seed = 2024;
  svc::LoadReport report =
      svc::run_load(server, campus, lg, &obs::default_registry());
  server.shutdown();
  return report;
}

}  // namespace

int main() {
  obs::BenchReport bench_report = bench::make_report("svc_throughput");
  (void)bench::standard_models();  // train before the clock matters
  core::Deployment campus = core::make_deployment(sim::campus());

  std::printf(
      "svc throughput -- %zu walkers x %zu epochs over %zu campus paths, "
      "%.0f ms simulated network per epoch\n\n",
      kWalkers, kEpochsPerWalker, campus.place->walkways().size(),
      static_cast<double>(kSimulatedNetwork.count()) / 1000.0);

  io::Table table({"workers", "epochs", "epochs/s", "p50 (ms)", "p95 (ms)",
                   "p99 (ms)", "backpressure"});
  double eps_w1 = 0.0, eps_w4 = 0.0;
  bool monotonic_1_to_4 = true;
  double prev_eps = 0.0;
  for (const int workers : {1, 2, 4, 8}) {
    const svc::LoadReport r = run_config(campus, workers);
    const double eps = r.throughput_eps();
    const double p50 = stats::percentile(r.latencies_us, 50.0) / 1000.0;
    const double p95 = stats::percentile(r.latencies_us, 95.0) / 1000.0;
    const double p99 = stats::percentile(r.latencies_us, 99.0) / 1000.0;
    table.add_row({std::to_string(workers), std::to_string(r.total_epochs),
                   io::Table::num(eps), io::Table::num(p50),
                   io::Table::num(p95), io::Table::num(p99),
                   std::to_string(r.backpressure_total)});

    const std::string prefix = "workers" + std::to_string(workers) + ".";
    bench_report.add_scalar(prefix + "throughput_eps", eps);
    bench_report.add_scalar(prefix + "latency_p50_ms", p50);
    bench_report.add_scalar(prefix + "latency_p95_ms", p95);
    bench_report.add_scalar(prefix + "latency_p99_ms", p99);
    bench_report.add_scalar(prefix + "backpressure",
                            static_cast<double>(r.backpressure_total));
    bench_report.add_series("latency_us_w" + std::to_string(workers),
                            r.latencies_us);

    if (workers == 1) eps_w1 = eps;
    if (workers == 4) eps_w4 = eps;
    if (workers <= 4 && eps <= prev_eps) monotonic_1_to_4 = false;
    prev_eps = eps;
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("scaling 1 -> 4 workers: %.2fx, monotonic: %s\n",
              eps_w1 > 0.0 ? eps_w4 / eps_w1 : 0.0,
              monotonic_1_to_4 ? "yes" : "NO");
  bench_report.add_scalar("scaling_1_to_4", eps_w1 > 0.0 ? eps_w4 / eps_w1
                                                         : 0.0);
  bench_report.add_scalar("monotonic_1_to_4", monotonic_1_to_4 ? 1.0 : 0.0);

  bench::report_json(bench_report);
  return monotonic_1_to_4 ? 0 : 1;
}
