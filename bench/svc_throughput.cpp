// Bench: multi-session service throughput vs worker-pool size.
//
// 32 simulated phones (round-robin over the eight campus paths, distinct
// walk seeds) speak the svc wire protocol against one LocalizationServer
// at 1, 2, 4, and 8 workers. Each epoch blocks its worker for the
// simulated network push (Table V measures 52 + 63 ms of WLAN
// transmissions per fix; we use a compressed stand-in so the bench runs
// in seconds) -- so throughput scales with workers until the CPU
// saturates, exactly like the real synchronous server.
//
// Two scenarios:
//   clean  the perfect wire, as before. Headline: epochs/s must rise
//          monotonically from 1 to 4 workers.
//   chaos  every phone behind a fault::FaultyLink with 1% request drops
//          and a 50 ms simulated link delay. Headlines: no deadlock and
//          no session loss at any worker count, goodput degrades
//          gracefully (retransmits burn capacity, sessions all finish),
//          and a same-seed rerun is byte-identical per session.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "fault/link.h"
#include "fault/plan.h"
#include "shard/router.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "stats/descriptive.h"

using namespace uniloc;

namespace {

constexpr std::size_t kWalkers = 32;
constexpr std::size_t kEpochsPerWalker = 20;
constexpr std::chrono::microseconds kSimulatedNetwork{8000};

svc::LoadReport run_config(const core::Deployment& campus, int workers,
                           const fault::FaultPlan* plan,
                           std::size_t epoch_batch = 1) {
  svc::ServerConfig cfg;
  cfg.workers = workers;
  cfg.epoch_batch = epoch_batch;
  cfg.simulated_network = kSimulatedNetwork;
  // UNILOC_SVC_REFERENCE=1 serves every epoch through the reference
  // Uniloc::update() instead of the zero-allocation fast path -- the A/B
  // behind the fast pipeline's goodput claim (EXPERIMENTS.md). Traces are
  // bit-identical either way (tests/test_differential.cc).
  if (std::getenv("UNILOC_SVC_REFERENCE") != nullptr) {
    cfg.use_fast_path = false;
  }
  svc::LocalizationServer server(
      cfg,
      [&campus](std::uint64_t sid) {
        return std::make_unique<core::Uniloc>(core::make_uniloc(
            campus, bench::standard_models(), {}, false, /*seed=*/7 + sid));
      },
      &obs::default_registry());

  svc::LoadGenConfig lg;
  lg.walkers = kWalkers;
  lg.max_epochs_per_walker = kEpochsPerWalker;
  lg.burst = 2;  // two epochs in flight per session: exercises the inbox
  lg.seed = 2024;
  if (plan != nullptr) {
    lg.make_link = [plan](svc::Endpoint& s, std::uint64_t sid) {
      return std::make_unique<fault::FaultyLink>(
          std::make_unique<svc::DirectLink>(&s), plan, sid);
    };
  }
  svc::LoadReport report =
      svc::run_load(server, campus, lg, &obs::default_registry());
  server.shutdown();
  return report;
}

/// One run against a ShardRouter over `shards` servers, each with its own
/// `workers`-thread pool (the fleet scaling axis: more shards = more
/// concurrent simulated-network pushes in flight).
svc::LoadReport run_fleet(const core::Deployment& campus, std::size_t shards,
                          int workers) {
  shard::RouterConfig cfg;
  cfg.shards = shards;
  cfg.server.workers = workers;
  cfg.server.simulated_network = kSimulatedNetwork;
  if (std::getenv("UNILOC_SVC_REFERENCE") != nullptr) {
    cfg.server.use_fast_path = false;
  }
  shard::ShardRouter router(
      cfg,
      [&campus](std::uint64_t sid) {
        return std::make_unique<core::Uniloc>(core::make_uniloc(
            campus, bench::standard_models(), {}, false, /*seed=*/7 + sid));
      },
      &obs::default_registry());

  svc::LoadGenConfig lg;
  lg.walkers = kWalkers;
  lg.max_epochs_per_walker = kEpochsPerWalker;
  lg.burst = 2;
  lg.seed = 2024;
  svc::LoadReport report =
      svc::run_load(router, campus, lg, &obs::default_registry());
  router.shutdown();
  return report;
}

/// Per-session byte-identity of two same-seed runs (wall-clock latencies
/// are the only fields allowed to differ).
bool outcomes_identical(const svc::LoadReport& a, const svc::LoadReport& b) {
  if (a.walkers.size() != b.walkers.size()) return false;
  if (a.traffic.uplink_bytes != b.traffic.uplink_bytes) return false;
  if (a.traffic.retransmitted_bytes != b.traffic.retransmitted_bytes) {
    return false;
  }
  for (std::size_t i = 0; i < a.walkers.size(); ++i) {
    const svc::WalkerOutcome& x = a.walkers[i];
    const svc::WalkerOutcome& y = b.walkers[i];
    if (x.epochs_accepted != y.epochs_accepted || x.retries != y.retries ||
        x.timeouts != y.timeouts || x.local_epochs != y.local_epochs ||
        x.mean_error_m != y.mean_error_m ||
        x.final_estimate.x != y.final_estimate.x ||
        x.final_estimate.y != y.final_estimate.y) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  obs::BenchReport bench_report = bench::make_report("svc_throughput");
  (void)bench::standard_models();  // train before the clock matters
  core::Deployment campus = core::make_deployment(sim::campus());

  std::printf(
      "svc throughput -- %zu walkers x %zu epochs over %zu campus paths, "
      "%.0f ms simulated network per epoch\n\n",
      kWalkers, kEpochsPerWalker, campus.place->walkways().size(),
      static_cast<double>(kSimulatedNetwork.count()) / 1000.0);

  io::Table table({"workers", "epochs", "epochs/s", "p50 (ms)", "p95 (ms)",
                   "p99 (ms)", "backpressure"});
  double eps_w1 = 0.0, eps_w4 = 0.0;
  bool monotonic_1_to_4 = true;
  double prev_eps = 0.0;
  double clean_eps[9] = {0.0};
  for (const int workers : {1, 2, 4, 8}) {
    const svc::LoadReport r = run_config(campus, workers, nullptr);
    const double eps = r.throughput_eps();
    clean_eps[workers] = eps;
    const double p50 = stats::percentile(r.latencies_us, 50.0) / 1000.0;
    const double p95 = stats::percentile(r.latencies_us, 95.0) / 1000.0;
    const double p99 = stats::percentile(r.latencies_us, 99.0) / 1000.0;
    table.add_row({std::to_string(workers), std::to_string(r.total_epochs),
                   io::Table::num(eps), io::Table::num(p50),
                   io::Table::num(p95), io::Table::num(p99),
                   std::to_string(r.backpressure_total)});

    const std::string prefix = "workers" + std::to_string(workers) + ".";
    bench_report.add_scalar(prefix + "throughput_eps", eps);
    bench_report.add_scalar(prefix + "latency_p50_ms", p50);
    bench_report.add_scalar(prefix + "latency_p95_ms", p95);
    bench_report.add_scalar(prefix + "latency_p99_ms", p99);
    bench_report.add_scalar(prefix + "backpressure",
                            static_cast<double>(r.backpressure_total));
    bench_report.add_series("latency_us_w" + std::to_string(workers),
                            r.latencies_us);

    if (workers == 1) eps_w1 = eps;
    if (workers == 4) eps_w4 = eps;
    if (workers <= 4 && eps <= prev_eps) monotonic_1_to_4 = false;
    prev_eps = eps;
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("scaling 1 -> 4 workers: %.2fx, monotonic: %s\n",
              eps_w1 > 0.0 ? eps_w4 / eps_w1 : 0.0,
              monotonic_1_to_4 ? "yes" : "NO");
  bench_report.add_scalar("scaling_1_to_4", eps_w1 > 0.0 ? eps_w4 / eps_w1
                                                         : 0.0);
  bench_report.add_scalar("monotonic_1_to_4", monotonic_1_to_4 ? 1.0 : 0.0);

  // ------------------------------------------------- batched scenario
  // Cross-session epoch batching (svc/batcher.h): concurrently-arriving
  // uplinks are grouped into batches of up to `epoch_batch` sessions and
  // drained by one worker grab, cutting per-epoch queue/wake overhead at
  // high worker counts. Traces are bit-identical to the unbatched path
  // (proptest invariant I8); this measures what the identity costs/buys
  // at the contended end of the worker axis.
  std::printf("\nbatched scenario -- epoch_batch x workers, clean wire\n\n");
  io::Table batch_table(
      {"workers", "batch", "epochs/s", "vs unbatched", "p95 (ms)"});
  double batch_best_ratio = 0.0;
  for (const int workers : {4, 8}) {
    for (const std::size_t batch : {2u, 4u}) {
      const svc::LoadReport r = run_config(campus, workers, nullptr, batch);
      const double eps = r.throughput_eps();
      const double ratio =
          clean_eps[workers] > 0.0 ? eps / clean_eps[workers] : 0.0;
      if (workers == 8) batch_best_ratio = std::max(batch_best_ratio, ratio);
      const double p95 = stats::percentile(r.latencies_us, 95.0) / 1000.0;
      batch_table.add_row({std::to_string(workers), std::to_string(batch),
                           io::Table::num(eps), io::Table::num(ratio),
                           io::Table::num(p95)});
      const std::string prefix = "batch" + std::to_string(batch) +
                                 ".workers" + std::to_string(workers) + ".";
      bench_report.add_scalar(prefix + "throughput_eps", eps);
      bench_report.add_scalar(prefix + "vs_unbatched", ratio);
      bench_report.add_scalar(prefix + "latency_p95_ms", p95);
    }
  }
  std::printf("%s\n", batch_table.to_string().c_str());
  std::printf("best batched-vs-unbatched ratio at 8 workers: %.2fx\n",
              batch_best_ratio);
  bench_report.add_scalar("batch.best_ratio_w8", batch_best_ratio);

  // ------------------------------------------------------ chaos scenario
  fault::FaultRates rates;
  rates.drop = 0.01;
  rates.base_delay_us = 50'000;  // under the 200 ms timeout: pure latency
  const fault::FaultPlan plan(2024, rates);

  std::printf("\nchaos scenario -- 1%% request drops, 50 ms link delay\n\n");
  io::Table chaos_table({"workers", "goodput/s", "vs clean", "retransmits",
                         "timeouts", "sessions ok"});
  bool no_session_loss = true;
  bool graceful = true;
  for (const int workers : {1, 2, 4, 8}) {
    const svc::LoadReport r = run_config(campus, workers, &plan);
    const double eps = r.goodput_eps();
    // A session is lost if it stopped getting fixes: every phone must
    // finish its walk with every epoch answered by the server or, at
    // worst, by its local fallback.
    std::size_t ok = 0;
    for (const svc::WalkerOutcome& w : r.walkers) {
      if (w.epochs_accepted + w.local_epochs + w.backpressure ==
          kEpochsPerWalker) {
        ++ok;
      }
    }
    if (ok != r.walkers.size()) no_session_loss = false;
    // Graceful degradation: ~1% retransmits must not collapse throughput.
    const double ratio =
        clean_eps[workers] > 0.0 ? eps / clean_eps[workers] : 0.0;
    if (ratio < 0.3) graceful = false;
    chaos_table.add_row(
        {std::to_string(workers), io::Table::num(eps),
         io::Table::num(ratio), std::to_string(r.traffic.retransmits),
         std::to_string(r.timeouts_total),
         std::to_string(ok) + "/" + std::to_string(r.walkers.size())});

    const std::string prefix = "chaos.workers" + std::to_string(workers) + ".";
    bench_report.add_scalar(prefix + "goodput_eps", eps);
    bench_report.add_scalar(prefix + "vs_clean", ratio);
    bench_report.add_scalar(prefix + "retransmits",
                            static_cast<double>(r.traffic.retransmits));
    bench_report.add_scalar(prefix + "sessions_ok",
                            static_cast<double>(ok));
  }
  std::printf("%s\n", chaos_table.to_string().c_str());

  // Same seed, same plan -> per-session outcomes must match bit for bit
  // (run at 8 workers: determinism must survive maximal interleaving).
  const svc::LoadReport d1 = run_config(campus, 8, &plan);
  const svc::LoadReport d2 = run_config(campus, 8, &plan);
  const bool deterministic = outcomes_identical(d1, d2);
  std::printf("same-seed chaos reruns byte-identical per session: %s\n",
              deterministic ? "yes" : "NO");
  std::printf("no session loss: %s, graceful degradation: %s\n",
              no_session_loss ? "yes" : "NO", graceful ? "yes" : "NO");
  bench_report.add_scalar("chaos.deterministic", deterministic ? 1.0 : 0.0);
  bench_report.add_scalar("chaos.no_session_loss",
                          no_session_loss ? 1.0 : 0.0);
  bench_report.add_scalar("chaos.graceful", graceful ? 1.0 : 0.0);

  bench::report_json(bench_report);

  // --------------------------------------------------- fleet scaling
  // Same 32 phones, but the endpoint is a ShardRouter over {1, 2, 4}
  // shards with 2 workers each. Each shard owns its pool, so the fleet's
  // concurrent network pushes -- the bottleneck above -- scale with the
  // shard count. Headlines: epochs/s rises monotonically with shards and
  // the single-shard fleet pays no measurable routing tax. Written as its
  // own BENCH_shard_scaling.json (plus a BENCH_history.jsonl line).
  obs::BenchReport shard_report = bench::make_report("shard_scaling");
  std::printf("\nfleet scaling -- %zu walkers, 2 workers per shard\n\n",
              kWalkers);
  io::Table fleet_table(
      {"shards", "epochs", "epochs/s", "vs 1 shard", "p95 (ms)"});
  double fleet_eps1 = 0.0, fleet_eps4 = 0.0;
  bool fleet_monotonic = true;
  double fleet_prev = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    const svc::LoadReport r = run_fleet(campus, shards, /*workers=*/2);
    const double eps = r.throughput_eps();
    const double p95 = stats::percentile(r.latencies_us, 95.0) / 1000.0;
    if (shards == 1) fleet_eps1 = eps;
    if (shards == 4) fleet_eps4 = eps;
    if (eps <= fleet_prev) fleet_monotonic = false;
    fleet_prev = eps;
    fleet_table.add_row(
        {std::to_string(shards), std::to_string(r.total_epochs),
         io::Table::num(eps),
         io::Table::num(fleet_eps1 > 0.0 ? eps / fleet_eps1 : 0.0),
         io::Table::num(p95)});
    const std::string prefix = "shards" + std::to_string(shards) + ".";
    shard_report.add_scalar(prefix + "throughput_eps", eps);
    shard_report.add_scalar(prefix + "latency_p95_ms", p95);
    shard_report.add_series("latency_us_s" + std::to_string(shards),
                            r.latencies_us);
  }
  std::printf("%s\n", fleet_table.to_string().c_str());
  const double fleet_scaling =
      fleet_eps1 > 0.0 ? fleet_eps4 / fleet_eps1 : 0.0;
  // The routing tax: one shard behind the router vs the bare server at
  // the same 2-worker pool (from the clean table above).
  const double router_tax =
      fleet_eps1 > 0.0 ? clean_eps[2] / fleet_eps1 : 0.0;
  std::printf("fleet scaling 1 -> 4 shards: %.2fx, monotonic: %s, "
              "router tax vs bare server: %.2fx\n",
              fleet_scaling, fleet_monotonic ? "yes" : "NO", router_tax);
  shard_report.add_scalar("scaling_1_to_4", fleet_scaling);
  shard_report.add_scalar("monotonic_1_to_4", fleet_monotonic ? 1.0 : 0.0);
  shard_report.add_scalar("router_tax_vs_bare", router_tax);
  bench::report_json(shard_report);
  const bool fleet_pass = fleet_monotonic && fleet_scaling > 1.5;

  const bool pass = monotonic_1_to_4 && deterministic && no_session_loss &&
                    graceful && fleet_pass;
  return pass ? 0 : 1;
}
