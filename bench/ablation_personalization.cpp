// Ablation: person diversity (paper Sec. III-B: "We test with 6 persons,
// including both females and males with different ages... the individual
// difference does not impact the localization accuracy much", thanks to
// the per-particle step-scale personalization).
//
// Six gait profiles spanning step length 0.58-0.82 m, period 0.45-0.65 s
// and different hand-trembling levels walk Path 1; the table shows the
// motion scheme and UniLoc2 per person.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_personalization");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  struct Person {
    const char* label;
    double step_len, period, trembling;
  };
  const Person persons[] = {
      {"P1 (f, 20s)", 0.62, 0.48, 0.15}, {"P2 (m, 20s)", 0.78, 0.52, 0.10},
      {"P3 (f, 30s)", 0.66, 0.55, 0.25}, {"P4 (m, 30s)", 0.82, 0.58, 0.20},
      {"P5 (f, 50s)", 0.58, 0.63, 0.35}, {"P6 (m, 50s)", 0.70, 0.65, 0.30},
  };

  std::printf("Ablation -- person diversity on Path 1 (step-model "
              "personalization via per-particle scale adaptation)\n\n");
  io::Table t({"person", "step (m)", "period (s)", "trembling",
               "Motion mean (m)", "UniLoc2 mean (m)"});
  std::vector<double> motion_means, u2_means;
  for (std::size_t i = 0; i < std::size(persons); ++i) {
    const Person& p = persons[i];
    core::Uniloc uniloc = core::make_uniloc(campus, models, {}, false,
                                            40 + 3 * i);
    bench::instrument(uniloc, campus);
    core::RunOptions opts;
    opts.walk.seed = 900 + i;
    opts.walk.gait.step_length_m = p.step_len;
    opts.walk.gait.step_period_s = p.period;
    opts.walk.gait.trembling = p.trembling;
    const core::RunResult run = core::run_walk(uniloc, campus, 0, opts);

    double motion_mean = -1.0;
    for (std::size_t s = 0; s < run.scheme_names.size(); ++s) {
      if (run.scheme_names[s] == "Motion") {
        motion_mean = stats::mean(run.scheme_errors(s));
      }
    }
    const double u2 = stats::mean(run.uniloc2_errors());
    motion_means.push_back(motion_mean);
    u2_means.push_back(u2);
    t.add_row({p.label, io::Table::num(p.step_len, 2),
               io::Table::num(p.period, 2), io::Table::num(p.trembling, 2),
               io::Table::num(motion_mean), io::Table::num(u2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nSpread across persons: Motion %.1f-%.1f m (%.1fx), "
              "UniLoc2 %.1f-%.1f m (%.1fx).\nThe ensemble absorbs most of "
              "the per-person variation of the motion scheme -- extreme "
              "gaits (slow + trembling) defeat the step detector, but the "
              "other schemes carry those users.\n",
              stats::min_of(motion_means), stats::max_of(motion_means),
              stats::max_of(motion_means) / stats::min_of(motion_means),
              stats::min_of(u2_means), stats::max_of(u2_means),
              stats::max_of(u2_means) / stats::min_of(u2_means));

  bench::report_json(bench_report);
  return 0;
}
