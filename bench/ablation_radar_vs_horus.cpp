// Ablation: RADAR (deterministic nearest-neighbour) vs Horus
// (probabilistic Gaussian-likelihood) WiFi fingerprinting -- the two
// fingerprinting lineages of paper Table I -- both standalone and as the
// WiFi member inside UniLoc2.
#include <cstdio>

#include "bench_util.h"
#include "schemes/fingerprint_scheme.h"
#include "schemes/horus_scheme.h"
#include "sim/walker.h"

using namespace uniloc;

namespace {

std::vector<double> run_scheme(schemes::LocalizationScheme& s,
                               const core::Deployment& d,
                               std::size_t walkway, std::uint64_t seed) {
  sim::WalkConfig wc;
  wc.seed = seed;
  sim::Walker walker(d.place.get(), d.radio.get(), walkway, wc);
  s.reset({walker.start_position(), walker.start_heading()});
  std::vector<double> errs;
  while (!walker.done()) {
    const sim::SensorFrame f = walker.step(false);
    const schemes::SchemeOutput out = s.update(f);
    if (out.available) errs.push_back(geo::distance(out.estimate, f.truth_pos));
  }
  return errs;
}

}  // namespace

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_radar_vs_horus");
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});

  std::printf("Ablation -- RADAR vs Horus WiFi fingerprinting (office, 3 "
              "walks)\n\n");

  schemes::FingerprintScheme::Options radar_opts;
  radar_opts.softmax_scale_db = 3.0;
  schemes::FingerprintScheme radar(office.wifi_db.get(), radar_opts);
  schemes::HorusScheme horus(office.wifi_db.get(), {});

  std::vector<double> radar_errs, horus_errs;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (double e : run_scheme(radar, office, 0, seed)) radar_errs.push_back(e);
    for (double e : run_scheme(horus, office, 0, seed)) horus_errs.push_back(e);
  }
  bench_report.add_series("radar.standalone", radar_errs);
  bench_report.add_series("horus.standalone", horus_errs);
  bench::print_percentiles({{"RADAR (NN matching)", radar_errs},
                            {"Horus (probabilistic)", horus_errs}});

  // Inside UniLoc2: swap the WiFi member.
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());
  auto run_uniloc = [&](bool use_horus) {
    core::UnilocConfig cfg;
    cfg.place = campus.place.get();
    cfg.wifi_db = campus.wifi_db.get();
    cfg.cell_db = campus.cell_db.get();
    core::Uniloc u(cfg);
    u.attach_metrics(&obs::default_registry());
    std::vector<schemes::SchemePtr> standard =
        core::make_standard_schemes(campus, false, 7);
    for (std::size_t i = 0; i < standard.size(); ++i) {
      const schemes::SchemeFamily fam = standard[i]->family();
      if (use_horus && fam == schemes::SchemeFamily::kWifiFingerprint) {
        u.add_scheme(std::make_unique<schemes::HorusScheme>(
                         campus.wifi_db.get(), schemes::HorusScheme::Options{}),
                     models.for_family(fam));
      } else {
        u.add_scheme(std::move(standard[i]), models.for_family(fam));
      }
    }
    core::RunOptions opts;
    opts.walk.seed = 2024;
    return core::run_walk(u, campus, 0, opts);
  };
  const core::RunResult with_radar = run_uniloc(false);
  const core::RunResult with_horus = run_uniloc(true);
  std::printf("\nUniLoc2 on Path 1: %.2f m mean with RADAR, %.2f m with "
              "Horus -- the framework is agnostic to which member fills "
              "the WiFi slot.\n",
              stats::mean(with_radar.uniloc2_errors()),
              stats::mean(with_horus.uniloc2_errors()));

  bench_report.add_series("uniloc2.with_radar",
                          with_radar.uniloc2_errors());
  bench_report.add_series("uniloc2.with_horus",
                          with_horus.uniloc2_errors());
  bench::report_json(bench_report);
  return 0;
}
