// Table V: average response time of one location estimate, decomposed
// into phone-side sensing/pre-processing, uplink, server-side scheme
// execution (parallel => max over schemes), error prediction, BMA, and
// downlink.
//
// Scheme/ensemble compute is *measured* on this machine by timing the
// real implementations over a walk; network latencies are constants (see
// energy/latency_model.h). Paper shape: transmissions dominate (~73% of
// the total); the computation UniLoc adds on top of the schemes is a few
// milliseconds.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/confidence.h"
#include "energy/latency_model.h"

using namespace uniloc;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  obs::BenchReport bench_report = bench::make_report("table5_response_time");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  // Time each scheme's update() and the ensemble stages over one walk.
  std::vector<schemes::SchemePtr> scheme_list =
      core::make_standard_schemes(campus, false, 5);
  const std::size_t n = scheme_list.size();

  sim::WalkConfig wc;
  wc.seed = 77;
  sim::Walker walker(campus.place.get(), campus.radio.get(), 0, wc);
  const schemes::StartCondition start{walker.start_position(),
                                      walker.start_heading()};
  for (auto& s : scheme_list) s->reset(start);

  std::vector<double> scheme_ms(n, 0.0), predict_ms(n, 0.0);
  double bma_ms = 0.0;
  std::size_t epochs = 0;

  core::FeatureContext ctx;
  ctx.place = campus.place.get();
  ctx.wifi_db = campus.wifi_db.get();
  ctx.cell_db = campus.cell_db.get();

  while (!walker.done()) {
    const sim::SensorFrame frame = walker.step(true);
    ++epochs;
    ctx.predicted_location = frame.truth_pos;
    ctx.indoor = sim::is_indoor(frame.truth_env);

    std::vector<schemes::SchemeOutput> outs(n);
    std::vector<stats::Gaussian> preds(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto t0 = Clock::now();
      outs[i] = scheme_list[i]->update(frame);
      scheme_ms[i] += ms_since(t0);
      if (outs[i].available) {
        t0 = Clock::now();
        const auto x = core::extract_features(scheme_list[i]->family(), frame,
                                              outs[i], ctx);
        preds[i] =
            models.for_family(scheme_list[i]->family()).predict(x, ctx.indoor);
        predict_ms[i] += ms_since(t0);
      }
    }
    // BMA: confidences, weights, mixture mean.
    const auto t0 = Clock::now();
    std::vector<double> confs(n, 0.0);
    std::vector<stats::Gaussian> avail;
    for (std::size_t i = 0; i < n; ++i) {
      if (outs[i].available) avail.push_back(preds[i]);
    }
    const double tau = core::adaptive_tau(avail);
    for (std::size_t i = 0; i < n; ++i) {
      if (outs[i].available) confs[i] = core::confidence(preds[i], tau);
    }
    const std::vector<double> w = core::bma_weights(confs);
    geo::Vec2 fused{};
    for (std::size_t i = 0; i < n; ++i) {
      if (w[i] > 0.0) fused += outs[i].posterior.mean() * w[i];
    }
    bma_ms += ms_since(t0);
  }

  std::vector<energy::SchemeCompute> computes;
  for (std::size_t i = 0; i < n; ++i) {
    computes.push_back({scheme_list[i]->name(),
                        scheme_ms[i] / static_cast<double>(epochs),
                        predict_ms[i] / static_cast<double>(epochs)});
  }
  const energy::ResponseTimeReport report =
      energy::make_report(std::move(computes),
                          bma_ms / static_cast<double>(epochs));

  std::printf("Table V -- average response time for one location estimate "
              "(measured over %zu epochs)\n\n",
              epochs);
  io::Table t({"component", "time (ms)"});
  t.add_row({"phone: sensing + pre-processing",
             io::Table::num(report.phone_ms, 1)});
  t.add_row({"uplink", io::Table::num(report.uplink_ms, 1)});
  for (const energy::SchemeCompute& s : report.schemes) {
    t.add_row({"server: " + s.name + " execution",
               io::Table::num(s.server_ms, 3)});
  }
  double pred_total = 0.0;
  for (const energy::SchemeCompute& s : report.schemes) {
    pred_total += s.error_prediction_ms;
  }
  t.add_row({"server: error prediction (all schemes)",
             io::Table::num(pred_total, 3)});
  t.add_row({"server: BMA", io::Table::num(report.bma_ms, 3)});
  t.add_row({"server total (parallel schemes)",
             io::Table::num(report.server_ms(), 2)});
  t.add_row({"downlink", io::Table::num(report.downlink_ms, 1)});
  t.add_row({"TOTAL", io::Table::num(report.total_ms(), 1)});
  std::printf("%s", t.to_string().c_str());

  std::printf("\nTransmissions are %.0f%% of the response time "
              "(paper: 73%%); the computation UniLoc adds (error "
              "prediction + BMA) is %.2f ms (paper: ~6.1 ms).\n",
              100.0 * report.transmission_fraction(),
              pred_total + report.bma_ms);

  bench_report.add_scalar("phone_ms", report.phone_ms);
  bench_report.add_scalar("uplink_ms", report.uplink_ms);
  bench_report.add_scalar("downlink_ms", report.downlink_ms);
  bench_report.add_scalar("server_ms", report.server_ms());
  bench_report.add_scalar("bma_ms", report.bma_ms);
  bench_report.add_scalar("error_prediction_ms", pred_total);
  bench_report.add_scalar("total_ms", report.total_ms());
  bench_report.add_scalar("transmission_fraction",
                          report.transmission_fraction());
  for (const energy::SchemeCompute& s : report.schemes) {
    bench_report.add_scalar("server_ms." + s.name, s.server_ms);
  }
  bench::report_json(bench_report);
  return 0;
}
