// Ablation: adaptive tau (paper default -- the mean predicted error of
// the available schemes) vs fixed thresholds.
//
// A fixed tau misjudges either easy places (threshold too loose: bad
// schemes keep weight) or hard places (too tight: everything saturates
// near zero confidence); the adaptive threshold tracks the local regime.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_tau");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  std::printf("Ablation -- adaptive vs fixed confidence threshold tau "
              "(Path 1 + Path 3)\n\n");
  io::Table t({"tau", "UniLoc1 mean (m)", "UniLoc2 mean (m)",
               "UniLoc2 p90 (m)"});

  const double taus[] = {0.0, 2.0, 5.0, 10.0, 20.0, 40.0};
  for (double tau : taus) {
    core::UnilocConfig cfg;
    cfg.fixed_tau_m = tau;
    core::RunResult all;
    for (std::size_t p : {std::size_t{0}, std::size_t{2}}) {
      core::Uniloc uniloc = core::make_uniloc(campus, models, cfg, false,
                                              600 + 31 * p);
      bench::instrument(uniloc, campus);
      core::RunOptions opts;
      opts.walk.seed = 700 + p;
      all.append(core::run_walk(uniloc, campus, p, opts));
    }
    t.add_row({tau == 0.0 ? "adaptive" : io::Table::num(tau, 0) + " m",
               io::Table::num(stats::mean(all.uniloc1_errors())),
               io::Table::num(stats::mean(all.uniloc2_errors())),
               io::Table::num(
                   stats::percentile(all.uniloc2_errors(), 90.0))});
  }
  std::printf("%s", t.to_string().c_str());

  bench::report_json(bench_report);
  return 0;
}
