// Figure 2: localization error of the five schemes (and the oracle) along
// the 320 m daily path (office -> corridor -> basement -> car park ->
// open space).
//
// Prints (a) the error-vs-distance series the figure plots, sampled every
// ~3.5 m (91 locations as in the paper), and (b) a per-segment mean-error
// summary showing that no scheme wins everywhere and who wins where.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport report = bench::make_report("fig2_path_errors");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());
  core::Uniloc uniloc = core::make_uniloc(campus, models);
  bench::instrument(uniloc, campus);

  core::RunOptions opts;
  opts.walk.seed = 2024;
  opts.record_every = 5;  // ~every 3.5 m -> ~91 locations on 320 m
  const core::RunResult run = core::run_walk(uniloc, campus, 0, opts);

  std::printf("Fig. 2 -- scheme error along daily Path 1 (%zu locations)\n\n",
              run.epochs.size());

  // (a) error vs distance from the start.
  std::printf("%8s %-11s", "dist(m)", "segment");
  for (const std::string& n : run.scheme_names) std::printf(" %9s", n.c_str());
  std::printf(" %9s\n", "Oracle");
  for (const core::EpochRecord& e : run.epochs) {
    std::printf("%8.1f %-11s", e.arclen, sim::segment_name(e.env));
    for (double err : e.scheme_err) {
      if (std::isnan(err)) {
        std::printf(" %9s", "n/a");
      } else {
        std::printf(" %8.1fm", err);
      }
    }
    std::printf(" %8.1fm\n", e.oracle_err);
  }

  // (b) per-segment means.
  std::printf("\nPer-segment mean error (m):\n");
  std::vector<bench::SegmentErrors> per_scheme(run.scheme_names.size());
  bench::SegmentErrors oracle;
  for (const core::EpochRecord& e : run.epochs) {
    for (std::size_t i = 0; i < e.scheme_err.size(); ++i) {
      if (!std::isnan(e.scheme_err[i])) per_scheme[i].add(e.env, e.scheme_err[i]);
    }
    oracle.add(e.env, e.oracle_err);
  }
  const sim::SegmentType segs[] = {
      sim::SegmentType::kOffice, sim::SegmentType::kCorridor,
      sim::SegmentType::kBasement, sim::SegmentType::kCarPark,
      sim::SegmentType::kOpenSpace};
  io::Table t({"scheme", "office", "corridor", "basement", "car_park",
               "open_space"});
  auto row = [&](const std::string& name, const bench::SegmentErrors& se) {
    std::vector<std::string> cells{name};
    for (sim::SegmentType s : segs) {
      const std::optional<double> m = se.mean_of(s);
      cells.push_back(m.has_value() ? io::Table::num(*m, 1) : "n/a");
    }
    t.add_row(cells);
  };
  for (std::size_t i = 0; i < run.scheme_names.size(); ++i) {
    row(run.scheme_names[i], per_scheme[i]);
  }
  row("Oracle", oracle);
  std::printf("%s", t.to_string().c_str());

  // Who provides the highest accuracy where (the paper: cellular wins at
  // 15.4% of locations, mostly in the basement).
  std::printf("\nOracle picks (%% of locations): ");
  const std::vector<double> usage = run.oracle_usage();
  for (std::size_t i = 0; i < usage.size(); ++i) {
    std::printf("%s %.1f%%  ", run.scheme_names[i].c_str(), 100.0 * usage[i]);
  }
  std::printf("\n");

  bench::add_run_series(report, run);
  bench::report_json(report);
  return 0;
}
