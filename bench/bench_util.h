// Shared helpers for the experiment benches: standard training, standard
// deployments, error aggregation, CDF printing.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/runner.h"
#include "io/table.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

namespace uniloc::bench {

/// Train the standard error models once per process (cached).
inline const core::TrainedModels& standard_models() {
  static const core::TrainedModels models =
      core::train_standard_models(/*seed=*/42, /*target_samples=*/300);
  return models;
}

/// Mean of errors over epochs in a segment-type bucket for one scheme.
struct SegmentErrors {
  std::map<sim::SegmentType, std::vector<double>> by_segment;

  void add(sim::SegmentType t, double err) { by_segment[t].push_back(err); }
  double mean_of(sim::SegmentType t) const {
    const auto it = by_segment.find(t);
    return it == by_segment.end() || it->second.empty()
               ? -1.0
               : stats::mean(it->second);
  }
};

/// Print one "CDF" table: percentiles per series (the textual equivalent
/// of the paper's CDF figures).
inline void print_percentiles(
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  io::Table t({"series", "p50 (m)", "p90 (m)", "mean (m)", "max (m)", "n"});
  for (const auto& [name, errs] : series) {
    if (errs.empty()) {
      t.add_row({name, "-", "-", "-", "-", "0"});
      continue;
    }
    t.add_row({name, io::Table::num(stats::percentile(errs, 50.0)),
               io::Table::num(stats::percentile(errs, 90.0)),
               io::Table::num(stats::mean(errs)),
               io::Table::num(stats::max_of(errs)),
               std::to_string(errs.size())});
  }
  std::printf("%s", t.to_string().c_str());
}

/// Run all eight campus paths and concatenate the records.
inline core::RunResult run_all_campus_paths(const core::Deployment& campus,
                                            const core::TrainedModels& models,
                                            std::uint64_t seed = 2024) {
  core::RunResult all;
  for (std::size_t p = 0; p < campus.place->walkways().size(); ++p) {
    core::Uniloc uniloc = core::make_uniloc(campus, models, {}, false,
                                            seed + 31 * p);
    core::RunOptions opts;
    opts.walk.seed = seed + p;
    all.append(core::run_walk(uniloc, campus, p, opts));
  }
  return all;
}

}  // namespace uniloc::bench
