// Shared helpers for the experiment benches: standard training, standard
// deployments, error aggregation, CDF printing, and machine-readable
// BENCH_<name>.json reports (accuracy percentiles + per-stage timing
// histograms from the process-default metrics registry). Every report
// also appends one compact line to the cumulative BENCH_history.jsonl,
// so regressions show up as a greppable time series across runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.h"
#include "io/table.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

namespace uniloc::bench {

/// Train the standard error models once per process (cached).
inline const core::TrainedModels& standard_models() {
  static const core::TrainedModels models =
      core::train_standard_models(/*seed=*/42, /*target_samples=*/300);
  return models;
}

/// Mean of errors over epochs in a segment-type bucket for one scheme.
struct SegmentErrors {
  std::map<sim::SegmentType, std::vector<double>> by_segment;

  void add(sim::SegmentType t, double err) { by_segment[t].push_back(err); }

  /// Empty when the scheme produced no epochs in that segment type.
  std::optional<double> mean_of(sim::SegmentType t) const {
    const auto it = by_segment.find(t);
    if (it == by_segment.end() || it->second.empty()) return std::nullopt;
    return stats::mean(it->second);
  }
};

/// Print one "CDF" table: percentiles per series (the textual equivalent
/// of the paper's CDF figures).
inline void print_percentiles(
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  io::Table t({"series", "p50 (m)", "p90 (m)", "mean (m)", "max (m)", "n"});
  for (const auto& [name, errs] : series) {
    if (errs.empty()) {
      t.add_row({name, "-", "-", "-", "-", "0"});
      continue;
    }
    t.add_row({name, io::Table::num(stats::percentile(errs, 50.0)),
               io::Table::num(stats::percentile(errs, 90.0)),
               io::Table::num(stats::mean(errs)),
               io::Table::num(stats::max_of(errs)),
               std::to_string(errs.size())});
  }
  std::printf("%s", t.to_string().c_str());
}

/// Attach the process-default registry to a uniloc (and the deployment's
/// fingerprint databases) so the run feeds the per-stage timing
/// histograms the BENCH_*.json report exports.
inline void instrument(core::Uniloc& uniloc, const core::Deployment& d) {
  uniloc.attach_metrics(&obs::default_registry());
  if (d.wifi_db) {
    d.wifi_db->attach_metrics(&obs::default_registry(), "fpdb.wifi");
  }
  if (d.cell_db) {
    d.cell_db->attach_metrics(&obs::default_registry(), "fpdb.cell");
  }
}

/// Start a bench report bound to a freshly-zeroed process-default
/// registry. Call once at the top of main().
inline obs::BenchReport make_report(std::string name) {
  obs::default_registry().reset();
  return obs::BenchReport(std::move(name), &obs::default_registry());
}

/// Add the standard accuracy series of a run (per-scheme + oracle +
/// UniLoc1/2) to a report.
inline void add_run_series(obs::BenchReport& report,
                           const core::RunResult& run) {
  for (std::size_t i = 0; i < run.scheme_names.size(); ++i) {
    report.add_series(run.scheme_names[i], run.scheme_errors(i));
  }
  report.add_series("Oracle", run.oracle_errors());
  report.add_series("UniLoc1", run.uniloc1_errors());
  report.add_series("UniLoc2", run.uniloc2_errors());
}

/// Write BENCH_<name>.json next to the binary's working directory --
/// every bench calls this last; the files are the perf/accuracy
/// trajectory tooling diffs across commits. Each call also appends one
/// summary line to the cumulative history file (UNILOC_BENCH_HISTORY,
/// default BENCH_history.jsonl). The timestamp comes from the
/// UNILOC_BENCH_TS environment variable -- the bench layer never reads a
/// clock itself, so untimestamped runs stay byte-deterministic.
inline void report_json(const obs::BenchReport& report) {
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "[obs] failed to write %s\n",
                 report.default_path().c_str());
    return;
  }
  std::printf("\n[obs] wrote %s\n", path.c_str());

  const char* hist_env = std::getenv("UNILOC_BENCH_HISTORY");
  const std::string hist_path =
      (hist_env != nullptr && hist_env[0] != '\0') ? hist_env
                                                   : "BENCH_history.jsonl";
  const char* ts_env = std::getenv("UNILOC_BENCH_TS");
  const std::string timestamp = ts_env != nullptr ? ts_env : "";
  if (report.append_history(hist_path, timestamp)) {
    std::printf("[obs] appended %s\n", hist_path.c_str());
  } else {
    std::fprintf(stderr, "[obs] failed to append %s\n", hist_path.c_str());
  }
}

/// Run all eight campus paths and concatenate the records. Each per-path
/// Uniloc feeds the process-default registry.
inline core::RunResult run_all_campus_paths(const core::Deployment& campus,
                                            const core::TrainedModels& models,
                                            std::uint64_t seed = 2024) {
  core::RunResult all;
  for (std::size_t p = 0; p < campus.place->walkways().size(); ++p) {
    core::Uniloc uniloc = core::make_uniloc(campus, models, {}, false,
                                            seed + 31 * p);
    instrument(uniloc, campus);
    core::RunOptions opts;
    opts.walk.seed = seed + p;
    all.append(core::run_walk(uniloc, campus, p, opts));
  }
  return all;
}

}  // namespace uniloc::bench
