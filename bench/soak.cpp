// Bench: city-scale soak -- the 1M-session persistence story at a scale
// one build machine can actually hold. A single inline server (workers=0
// keeps the soak deterministic on any core count) carries
// UNILOC_SOAK_WALKERS warm sessions (default 100k). Steady state then
// runs UNILOC_SOAK_ROUNDS rounds of:
//
//   churn     kChurn sessions say kBye and kChurn new phones hello
//             (arrival/departure at ~1%/round, the mall-at-noon shape)
//   traffic   a rotating kActive-session window advances one epoch
//   wave      one quantized delta wave is cut and handed to the async
//             group committer (keyframe every kKeyframeInterval waves)
//
// Reported: arrival throughput, steady-state epoch throughput, wave
// latency (serialize + enqueue; the acceptance bar is sub-second delta
// waves), delta-vs-keyframe bytes ratio, bytes per dirty session, RSS
// per round (VmRSS from /proc/self/status; the bar is a bounded curve,
// not a creep), and a cold restore_chain of the directory the soak
// actually wrote -- population must survive bit-exactly at full scale.
//
// The scaled-down CI smoke (scripts/check.sh) runs the same binary with
// UNILOC_SOAK_WALKERS=2000.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/virtual_clock.h"
#include "svc/committer.h"
#include "svc/delta.h"
#include "svc/epoch_codec.h"
#include "svc/server.h"
#include "svc/wire.h"

using namespace uniloc;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::vector<std::uint8_t> hello_frame(std::uint64_t sid, geo::Vec2 start,
                                      double heading) {
  svc::Frame f;
  f.type = svc::FrameType::kHello;
  f.session_id = sid;
  f.payload = svc::encode_hello({start, heading});
  return svc::encode_frame(f);
}

std::vector<std::uint8_t> epoch_frame(std::uint64_t sid) {
  svc::Frame f;
  f.type = svc::FrameType::kEpoch;
  f.session_id = sid;
  f.payload = svc::encode_epoch({}, sim::SensorFrame{});
  return svc::encode_frame(f);
}

std::vector<std::uint8_t> bye_frame(std::uint64_t sid) {
  svc::Frame f;
  f.type = svc::FrameType::kBye;
  f.session_id = sid;
  return svc::encode_frame(f);
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// VmRSS in MiB from /proc/self/status (0.0 where the file is absent,
/// e.g. non-Linux -- the bench still runs, the RSS series is just flat).
double rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kib = std::atof(line + 6);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

}  // namespace

int main() {
  obs::BenchReport report = bench::make_report("soak");
  const std::size_t walkers = env_size("UNILOC_SOAK_WALKERS", 100'000);
  const std::size_t rounds = env_size("UNILOC_SOAK_ROUNDS", 12);
  // A delta wave is priced by the sessions that moved since the last
  // wave, not by the population -- that is the whole point of delta
  // checkpoints. The default models a 1-second wave cadence where 1% of
  // the city advances between waves (and 0.5% churns); crank
  // UNILOC_SOAK_ACTIVE to price hotter wave windows.
  const std::size_t active =
      env_size("UNILOC_SOAK_ACTIVE", std::max<std::size_t>(walkers / 100, 1));
  const std::size_t churn =
      env_size("UNILOC_SOAK_CHURN", std::max<std::size_t>(walkers / 200, 1));
  constexpr std::size_t kKeyframeInterval = 8;

  const core::Deployment campus = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});
  const auto factory = [&campus](std::uint64_t sid) {
    return std::make_unique<core::Uniloc>(core::make_uniloc(
        campus, bench::standard_models(), {}, false, /*seed=*/7 + sid));
  };
  const auto& ways = campus.place->walkways();
  const auto start_of = [&ways](std::uint64_t sid) {
    return ways[(sid - 1) % ways.size()].line.points().front();
  };

  const std::string dir =
      "/tmp/uniloc_soak_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);

  sim::VirtualClock clock;
  svc::GroupCommitter committer;
  svc::ServerConfig cfg;
  cfg.now_us = clock.now_fn();
  cfg.checkpoint_dir = dir;
  cfg.keyframe_interval = kKeyframeInterval;
  cfg.snapshot_quantize = true;
  cfg.committer = &committer;
  // TTL eviction stays out of the way: the soak's churn is explicit.
  cfg.idle_ttl_s = 1e9;
  svc::LocalizationServer server(cfg, factory, nullptr);

  // ---- arrival wave --------------------------------------------------
  const double rss_before = rss_mib();
  double t0 = now_us();
  for (std::uint64_t sid = 1; sid <= walkers; ++sid) {
    server.submit(hello_frame(sid, start_of(sid), 0.0)).get();
  }
  const double arrival_s = (now_us() - t0) / 1e6;
  const double rss_after_arrival = rss_mib();
  std::printf("soak: %zu walkers arrived in %.1fs (%.0f hellos/s), RSS %.0f"
              " -> %.0f MiB\n",
              walkers, arrival_s,
              static_cast<double>(walkers) / arrival_s, rss_before,
              rss_after_arrival);

  // Anchor the chain with one keyframe before steady state begins.
  server.checkpoint_wave_now();

  // ---- steady state --------------------------------------------------
  std::vector<double> wave_ms;           // delta waves (the latency bar)
  std::vector<double> keyframe_wave_ms;  // periodic re-anchors, reported apart
  std::vector<double> rss_rounds;
  std::vector<double> epoch_us;
  std::uint64_t next_sid = walkers + 1;   // arrivals take fresh ids
  std::uint64_t oldest_sid = 1;           // departures take the oldest
  std::size_t cursor = 0;                 // rotating activity window
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < churn; ++i) {
      server.submit(bye_frame(oldest_sid++)).get();
      const std::uint64_t sid = next_sid++;
      server.submit(hello_frame(sid, start_of(sid), 0.0)).get();
    }
    const std::uint64_t live_span = next_sid - oldest_sid;
    const double e0 = now_us();
    for (std::size_t i = 0; i < active; ++i) {
      const std::uint64_t sid =
          oldest_sid + (cursor + i) % live_span;
      server.submit(epoch_frame(sid)).get();
    }
    epoch_us.push_back((now_us() - e0) / static_cast<double>(active));
    cursor = (cursor + active) % live_span;

    clock.advance_s(60.0);
    const std::uint64_t keyframes_before =
        server.checkpoint_stats().keyframes;
    const double w0 = now_us();
    server.checkpoint_wave_now();
    const double ms = (now_us() - w0) / 1e3;
    if (server.checkpoint_stats().keyframes > keyframes_before) {
      keyframe_wave_ms.push_back(ms);
    } else {
      wave_ms.push_back(ms);
    }
    rss_rounds.push_back(rss_mib());
  }
  committer.flush();

  const svc::LocalizationServer::CheckpointStats st =
      server.checkpoint_stats();
  const svc::GroupCommitter::Stats gc = committer.stats();
  const double delta_waves =
      static_cast<double>(st.waves - st.keyframes);
  const double delta_wave_bytes =
      delta_waves > 0 ? static_cast<double>(st.delta_bytes) / delta_waves
                      : 0.0;
  const double keyframe_wave_bytes =
      st.keyframes > 0
          ? static_cast<double>(st.keyframe_bytes) /
                static_cast<double>(st.keyframes)
          : 0.0;
  const double bytes_per_dirty =
      st.delta_records > 0 ? static_cast<double>(st.delta_bytes) /
                                 static_cast<double>(st.delta_records)
                           : 0.0;

  // ---- cold restore of what the soak actually wrote ------------------
  svc::ServerConfig rcfg;
  rcfg.checkpoint_dir = dir;
  rcfg.snapshot_quantize = true;
  svc::LocalizationServer restored(rcfg, factory, nullptr);
  t0 = now_us();
  const svc::LocalizationServer::ChainRestoreResult rr =
      restored.restore_chain();
  const double restore_s = (now_us() - t0) / 1e6;
  const bool restore_ok = rr.ok && rr.waves_rejected == 0 &&
                          restored.live_sessions() == server.live_sessions();
  if (!restore_ok) {
    std::fprintf(stderr,
                 "soak: cold restore FAILED (ok=%d rejected=%zu live %zu "
                 "vs %zu)\n",
                 rr.ok ? 1 : 0, rr.waves_rejected, restored.live_sessions(),
                 server.live_sessions());
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  const double wave_p50 = stats::percentile(wave_ms, 50.0);
  const double wave_max = stats::max_of(wave_ms);
  const double rss_steady_growth =
      rss_rounds.size() > 1 ? rss_rounds.back() - rss_rounds.front() : 0.0;

  io::Table t({"metric", "value"});
  t.add_row({"live sessions", std::to_string(server.live_sessions())});
  t.add_row({"epoch cost (us, steady)",
             io::Table::num(stats::mean(epoch_us), 1)});
  t.add_row({"delta wave p50 (ms)", io::Table::num(wave_p50, 1)});
  t.add_row({"delta wave max (ms)", io::Table::num(wave_max, 1)});
  t.add_row({"keyframe wave (ms)",
             keyframe_wave_ms.empty()
                 ? std::string("-")
                 : io::Table::num(stats::max_of(keyframe_wave_ms), 1)});
  t.add_row({"delta wave bytes", io::Table::num(delta_wave_bytes, 0)});
  t.add_row({"keyframe wave bytes", io::Table::num(keyframe_wave_bytes, 0)});
  t.add_row({"bytes / dirty session", io::Table::num(bytes_per_dirty, 0)});
  t.add_row({"wave us / dirty session",
             io::Table::num(st.delta_records > 0
                                ? stats::mean(wave_ms) * 1e3 *
                                      static_cast<double>(wave_ms.size()) /
                                      static_cast<double>(st.delta_records)
                                : 0.0,
                            1)});
  t.add_row({"RSS end (MiB)", io::Table::num(rss_rounds.back(), 0)});
  t.add_row({"RSS steady growth (MiB)",
             io::Table::num(rss_steady_growth, 1)});
  t.add_row({"restore (s)", io::Table::num(restore_s, 2)});
  std::printf("%s", t.to_string().c_str());
  std::printf("soak: %zu waves (%zu keyframes), delta/keyframe bytes "
              "ratio %.3f, committer batches=%zu max_batch=%zu "
              "sync_fallbacks=%zu, restore %s\n",
              static_cast<std::size_t>(st.waves),
              static_cast<std::size_t>(st.keyframes),
              keyframe_wave_bytes > 0
                  ? delta_wave_bytes / keyframe_wave_bytes
                  : 0.0,
              static_cast<std::size_t>(gc.batches),
              static_cast<std::size_t>(gc.max_batch),
              static_cast<std::size_t>(st.sync_fallbacks),
              restore_ok ? "ok" : "FAILED");

  report.add_scalar("walkers", static_cast<double>(walkers));
  report.add_scalar("rounds", static_cast<double>(rounds));
  report.add_scalar("active_per_round", static_cast<double>(active));
  report.add_scalar("churn_per_round", static_cast<double>(churn));
  report.add_scalar("arrival_s", arrival_s);
  report.add_scalar("arrival_per_s",
                    static_cast<double>(walkers) / arrival_s);
  report.add_scalar("epoch_us_steady", stats::mean(epoch_us));
  report.add_scalar("wave_p50_ms", wave_p50);
  report.add_scalar("wave_max_ms", wave_max);
  if (!keyframe_wave_ms.empty()) {
    report.add_scalar("keyframe_wave_max_ms",
                      stats::max_of(keyframe_wave_ms));
  }
  report.add_scalar("delta_wave_bytes", delta_wave_bytes);
  report.add_scalar("keyframe_wave_bytes", keyframe_wave_bytes);
  report.add_scalar("bytes_per_dirty_session", bytes_per_dirty);
  report.add_scalar("wave_us_per_dirty_session",
                    st.delta_records > 0
                        ? stats::mean(wave_ms) * 1e3 *
                              static_cast<double>(wave_ms.size()) /
                              static_cast<double>(st.delta_records)
                        : 0.0);
  report.add_scalar("delta_vs_keyframe_ratio",
                    keyframe_wave_bytes > 0
                        ? delta_wave_bytes / keyframe_wave_bytes
                        : 0.0);
  report.add_scalar("publish_failures",
                    static_cast<double>(st.publish_failures));
  report.add_scalar("sync_fallbacks",
                    static_cast<double>(st.sync_fallbacks));
  report.add_scalar("rss_arrival_mib", rss_after_arrival);
  report.add_scalar("rss_end_mib", rss_rounds.back());
  report.add_scalar("rss_steady_growth_mib", rss_steady_growth);
  report.add_scalar("restore_s", restore_s);
  report.add_scalar("restore_ok", restore_ok ? 1.0 : 0.0);
  report.add_series("wave_ms", wave_ms);
  report.add_series("rss_mib", rss_rounds);
  bench::report_json(report);
  return restore_ok ? 0 : 1;
}
