// Ablation: confidence sharpness exponent.
//
// The paper's Eq. 5 normalizes raw Eq.-2 confidences into weights; with
// the paper's tiny regression residuals (sigma_eps down to 0.26 m) that
// already yields near-binary weights. Our simulator's honest residuals
// are meters, so UnilocConfig.confidence_sharpness restores the paper's
// effective weight concentration. This bench shows the sensitivity:
// exponent 1 (literal Eq. 5 with flat confidences) underperforms; gains
// saturate by ~4; very large exponents converge to UniLoc1 (selection).
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_sharpness");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  std::printf("Ablation -- BMA weight sharpness (Path 1 + Path 5)\n\n");
  io::Table t({"exponent", "UniLoc2 mean (m)", "UniLoc2 p90 (m)",
               "UniLoc1 mean (m)"});

  for (double sharp : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    core::UnilocConfig cfg;
    cfg.confidence_sharpness = sharp;
    core::RunResult all;
    for (std::size_t p : {std::size_t{0}, std::size_t{4}}) {
      core::Uniloc uniloc = core::make_uniloc(campus, models, cfg, false,
                                              800 + 31 * p);
      bench::instrument(uniloc, campus);
      core::RunOptions opts;
      opts.walk.seed = 850 + p;
      all.append(core::run_walk(uniloc, campus, p, opts));
    }
    t.add_row({io::Table::num(sharp, 0),
               io::Table::num(stats::mean(all.uniloc2_errors())),
               io::Table::num(stats::percentile(all.uniloc2_errors(), 90.0)),
               io::Table::num(stats::mean(all.uniloc1_errors()))});
  }
  std::printf("%s", t.to_string().c_str());

  bench::report_json(bench_report);
  return 0;
}
