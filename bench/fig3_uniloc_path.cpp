// Figure 3: localization error of the oracle ("optimal single-selection")
// and of UniLoc1/UniLoc2 along daily Path 1, plus the count of locations
// where UniLoc2 beats even the oracle (combination can move the result
// closer to the truth than the single best scheme, especially outdoors).
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport report = bench::make_report("fig3_uniloc_path");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());
  core::Uniloc uniloc = core::make_uniloc(campus, models);
  bench::instrument(uniloc, campus);

  core::RunOptions opts;
  opts.walk.seed = 2024;
  opts.record_every = 5;
  const core::RunResult run = core::run_walk(uniloc, campus, 0, opts);

  std::printf("Fig. 3 -- Oracle vs UniLoc1 vs UniLoc2 along Path 1\n\n");
  std::printf("%8s %-11s %8s %8s %8s\n", "dist(m)", "segment", "Oracle",
              "UniLoc1", "UniLoc2");
  std::size_t u2_beats_oracle = 0, u2_beats_oracle_outdoor = 0,
              outdoor_epochs = 0;
  for (const core::EpochRecord& e : run.epochs) {
    std::printf("%8.1f %-11s %7.1fm %7.1fm %7.1fm\n", e.arclen,
                sim::segment_name(e.env), e.oracle_err, e.uniloc1_err,
                e.uniloc2_err);
    if (e.uniloc2_err < e.oracle_err) {
      ++u2_beats_oracle;
      if (!e.indoor_truth) ++u2_beats_oracle_outdoor;
    }
    if (!e.indoor_truth) ++outdoor_epochs;
  }

  std::printf("\nSummary over %zu locations:\n", run.epochs.size());
  bench::print_percentiles({{"Oracle", run.oracle_errors()},
                            {"UniLoc1", run.uniloc1_errors()},
                            {"UniLoc2", run.uniloc2_errors()}});
  std::printf("\nUniLoc2 beats the oracle at %zu/%zu locations "
              "(%zu of them outdoor, of %zu outdoor locations) -- "
              "combining schemes can exceed the best single scheme where "
              "individual errors are large (paper Sec. V-B1).\n",
              u2_beats_oracle, run.epochs.size(), u2_beats_oracle_outdoor,
              outdoor_epochs);

  report.add_series("Oracle", run.oracle_errors());
  report.add_series("UniLoc1", run.uniloc1_errors());
  report.add_series("UniLoc2", run.uniloc2_errors());
  bench::report_json(report);
  return 0;
}
