// Figure 4: the eight daily campus paths -- geometry and composition.
//
// The paper: total 2.78 km, ~0.80 km outdoor / ~1.98 km indoor; path
// lengths between 290 m and 415 m, all from a common start.
#include <cstdio>

#include "bench_util.h"
#include "io/table.h"
#include "sim/builders.h"

using namespace uniloc;

int main() {
  obs::BenchReport report = bench::make_report("fig4_paths");
  const sim::Place campus = sim::campus();

  std::printf("Fig. 4 -- the eight daily paths on campus\n\n");
  io::Table t({"path", "length (m)", "indoor (m)", "outdoor (m)", "turns",
               "segments"});
  double total = 0.0, total_in = 0.0, total_out = 0.0;
  for (const sim::Walkway& w : campus.walkways()) {
    const double len = w.line.length();
    const double indoor = w.length_where(sim::is_indoor);
    const double outdoor = len - indoor;
    total += len;
    total_in += indoor;
    total_out += outdoor;
    std::string segs;
    for (const sim::PathSegment& s : w.segments) {
      if (!segs.empty()) segs += " > ";
      segs += sim::segment_name(s.type);
    }
    t.add_row({w.name, io::Table::num(len, 0), io::Table::num(indoor, 0),
               io::Table::num(outdoor, 0),
               std::to_string(w.turn_landmarks().size()), segs});
  }
  report.add_scalar("total_m", total);
  report.add_scalar("indoor_m", total_in);
  report.add_scalar("outdoor_m", total_out);
  report.add_scalar("paths", static_cast<double>(campus.walkways().size()));
  t.add_row({"TOTAL", io::Table::num(total, 0), io::Table::num(total_in, 0),
             io::Table::num(total_out, 0), "", ""});
  std::printf("%s", t.to_string().c_str());
  std::printf("\nInfrastructure: %zu WiFi APs, %zu cell towers, %zu "
              "landmarks.\nPaper: 2.78 km total, 1.98 km indoor, 0.80 km "
              "outdoor.\n",
              campus.access_points().size(), campus.cell_towers().size(),
              campus.landmarks().size());

  bench::report_json(report);
  return 0;
}
