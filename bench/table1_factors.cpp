// Table I: influence factors of typical localization models.
//
// Prints the feature registry: for each scheme family, the data source,
// representative schemes, and the candidate influence factors considered
// during error modeling (including the ones regression later rejects).
#include <cstdio>

#include "bench_util.h"
#include "core/features.h"
#include "io/table.h"

using namespace uniloc;

int main() {
  obs::BenchReport report = bench::make_report("table1_factors");
  std::printf("Table I -- influence factors of typical localization models\n\n");
  io::Table t({"model", "schemes", "influence factors"});

  struct Row {
    schemes::SchemeFamily family;
    const char* model;
    const char* schemes_txt;
  };
  const Row rows[] = {
      {schemes::SchemeFamily::kGps, "GPS", "smartphone GPS module"},
      {schemes::SchemeFamily::kWifiFingerprint, "WiFi RSSI",
       "RADAR [1], Horus [2], EZ [4]"},
      {schemes::SchemeFamily::kCellFingerprint, "Cellular RSSI",
       "Otsason et al. [22]"},
      {schemes::SchemeFamily::kMotionPdr, "IMU",
       "Li et al. [7], Constandache et al. [8]"},
      {schemes::SchemeFamily::kFusion, "WiFi+IMU fusion",
       "Travi-Navi [11], UnLoc [12]"},
  };
  for (const Row& r : rows) {
    std::string feats;
    if (r.family == schemes::SchemeFamily::kGps) {
      feats = "number of visible satellites; geometry (HDOP) -- constant "
              "error model, no online inputs";
    } else {
      for (const std::string& f : core::candidate_feature_names(r.family)) {
        if (!feats.empty()) feats += "; ";
        feats += f;
      }
    }
    t.add_row({r.model, r.schemes_txt, feats});
    report.add_scalar(std::string("factors.") + r.model,
                      static_cast<double>(
                          core::candidate_feature_names(r.family).size()));
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nFeatures per family are fixed; coefficients differ per scheme "
      "(Sec. III-A).\nThe fusion family inherits the factors of all its "
      "data sources.\n");

  bench::report_json(report);
  return 0;
}
