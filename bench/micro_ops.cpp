// Micro-benchmarks (google-benchmark) for UniLoc's hot operations:
// error prediction, confidence, BMA weighting, fingerprint matching,
// particle-filter update, posterior mixing. These are the numbers behind
// Table V's "light-weight computation" claim -- everything UniLoc adds is
// simple linear calculation.
#include <benchmark/benchmark.h>

#include "core/confidence.h"
#include "core/deployment.h"
#include "core/epoch_scratch.h"
#include "core/map_matching.h"
#include "core/posterior_fusion.h"
#include "core/runner.h"
#include "core/trainer.h"
#include "filter/particle_filter.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "schemes/fingerprint_db.h"
#include "schemes/horus_scheme.h"
#include "sim/floorplan.h"
#include "stats/gaussian.h"
#include "stats/regression.h"

using namespace uniloc;

namespace {

const core::Deployment& office() {
  static core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  return d;
}

const core::TrainedModels& models() {
  static core::TrainedModels m = core::train_standard_models(42, 200);
  return m;
}

std::vector<sim::ApReading> sample_scan() {
  stats::Rng rng(7);
  return office().radio->wifi_scan({20.0, 8.0}, rng);
}

void BM_ErrorPrediction(benchmark::State& state) {
  const core::ErrorModel& m =
      models().for_family(schemes::SchemeFamily::kWifiFingerprint);
  const std::vector<double> x{4.5, 2.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict(x, true));
  }
}
BENCHMARK(BM_ErrorPrediction);

void BM_Confidence(benchmark::State& state) {
  const stats::Gaussian g{4.2, 2.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::confidence(g, 5.0));
  }
}
BENCHMARK(BM_Confidence);

void BM_BmaWeights(benchmark::State& state) {
  const std::vector<double> confs{0.9, 0.4, 0.2, 0.95, 0.85};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::bma_weights(confs));
  }
}
BENCHMARK(BM_BmaWeights);

void BM_FingerprintMatch(benchmark::State& state) {
  const auto scan = sample_scan();
  const schemes::FingerprintDatabase& db = *office().wifi_db;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.k_nearest(scan, 3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.size()));
}
BENCHMARK(BM_FingerprintMatch);

void BM_FingerprintMatchCached(benchmark::State& state) {
  // Same query through the precomputed likelihood cache + reused scratch
  // (the fast path's matcher). Bit-identical to BM_FingerprintMatch's
  // results; the delta is the caching.
  const auto scan = sample_scan();
  const schemes::FingerprintDatabase& db = *office().wifi_db;
  schemes::ScanScratch scratch;
  std::vector<schemes::Match> out;
  for (auto _ : state) {
    db.k_nearest_into(scan, 3, scratch, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.size()));
}
BENCHMARK(BM_FingerprintMatchCached);

void BM_ParticleFilterStep(benchmark::State& state) {
  filter::ParticleFilter pf(300, stats::Rng(3));
  pf.init({10.0, 5.0}, 0.0, 1.0, 0.1, 0.05);
  for (auto _ : state) {
    pf.predict(0.7, 0.01, 0.1, 0.03);
    pf.reweight([](const filter::Particle& p) {
      return p.pos.x > 0.0 ? 1.0 : 0.1;
    });
    pf.resample();
    benchmark::DoNotOptimize(pf.mean());
  }
}
BENCHMARK(BM_ParticleFilterStep);

void BM_OlsFit(benchmark::State& state) {
  stats::Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(0.0, 50.0), b = rng.uniform(0.0, 10.0);
    x.push_back({a, b});
    y.push_back(0.5 + 0.2 * a - 0.1 * b + rng.normal(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_ols(x, y));
  }
}
BENCHMARK(BM_OlsFit);

void BM_PosteriorMix(benchmark::State& state) {
  std::vector<schemes::Posterior> posts;
  stats::Rng rng(11);
  for (int n = 0; n < 5; ++n) {
    schemes::Posterior p;
    for (int i = 0; i < 300; ++i) {
      p.support.push_back({{rng.uniform(0.0, 50.0), rng.uniform(0.0, 20.0)},
                           rng.uniform(0.0, 1.0)});
    }
    p.normalize();
    posts.push_back(std::move(p));
  }
  const std::vector<double> w{0.3, 0.25, 0.2, 0.15, 0.1};
  for (auto _ : state) {
    geo::Vec2 fused{};
    for (std::size_t i = 0; i < posts.size(); ++i) {
      fused += posts[i].mean() * w[i];
    }
    benchmark::DoNotOptimize(fused);
  }
}
BENCHMARK(BM_PosteriorMix);

void BM_HorusMatch(benchmark::State& state) {
  const auto scan = sample_scan();
  schemes::HorusScheme horus(office().wifi_db.get(), {});
  sim::SensorFrame frame;
  frame.wifi = scan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(horus.update(frame));
  }
}
BENCHMARK(BM_HorusMatch);

void BM_MapMatcherUpdate(benchmark::State& state) {
  core::MapMatcher matcher(office().place.get());
  double x = 5.0;
  for (auto _ : state) {
    x += 0.7;
    if (x > 50.0) x = 5.0;
    benchmark::DoNotOptimize(matcher.update({x, 2.0}));
  }
}
BENCHMARK(BM_MapMatcherUpdate);

void BM_PosteriorGridFusion(benchmark::State& state) {
  const geo::Grid grid(office().place->bounds(), 3.0);
  stats::Rng rng(13);
  std::vector<schemes::SchemeOutput> outs(5);
  for (auto& o : outs) {
    o.available = true;
    o.estimate = {rng.uniform(0.0, 50.0), rng.uniform(0.0, 20.0)};
    o.posterior = schemes::Posterior::gaussian(o.estimate, 4.0);
  }
  const std::vector<double> w{0.3, 0.25, 0.2, 0.15, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fuse_posteriors(grid, outs, w));
  }
}
BENCHMARK(BM_PosteriorGridFusion);

// --- full Uniloc::update() epoch, replaying recorded frames -----------
//
// Three variants quantify the telemetry subsystem's overhead contract:
// never-attached (baseline), attach_metrics(nullptr) (the null-object
// detach path -- must stay within a couple percent of baseline), and
// attached to a live registry (clock reads + histogram inserts).

struct ReplayFixture {
  std::vector<sim::SensorFrame> frames;
  geo::Vec2 start_pos{};
  double start_heading{0.0};
};

const ReplayFixture& replay_frames() {
  static const ReplayFixture fx = [] {
    ReplayFixture r;
    sim::WalkConfig wc;
    wc.seed = 99;
    sim::Walker walker(office().place.get(), office().radio.get(), 0, wc);
    r.start_pos = walker.start_position();
    r.start_heading = walker.start_heading();
    while (!walker.done()) r.frames.push_back(walker.step(true));
    return r;
  }();
  return fx;
}

enum class Instr { kNone, kNullRegistry, kRegistry };

void run_uniloc_update(benchmark::State& state, Instr instr) {
  const ReplayFixture& fx = replay_frames();
  core::Uniloc uniloc = core::make_uniloc(office(), models());
  obs::MetricsRegistry registry;
  if (instr == Instr::kNullRegistry) uniloc.attach_metrics(nullptr);
  if (instr == Instr::kRegistry) uniloc.attach_metrics(&registry);
  uniloc.reset({fx.start_pos, fx.start_heading});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uniloc.update(fx.frames[i]));
    if (++i == fx.frames.size()) {
      i = 0;
      state.PauseTiming();
      uniloc.reset({fx.start_pos, fx.start_heading});
      state.ResumeTiming();
    }
  }
}

void BM_UnilocUpdate(benchmark::State& state) {
  run_uniloc_update(state, Instr::kNone);
}
BENCHMARK(BM_UnilocUpdate)->Unit(benchmark::kMicrosecond);

void BM_UnilocUpdateNullRegistry(benchmark::State& state) {
  run_uniloc_update(state, Instr::kNullRegistry);
}
BENCHMARK(BM_UnilocUpdateNullRegistry)->Unit(benchmark::kMicrosecond);

void BM_UnilocUpdateRegistry(benchmark::State& state) {
  run_uniloc_update(state, Instr::kRegistry);
}
BENCHMARK(BM_UnilocUpdateRegistry)->Unit(benchmark::kMicrosecond);

// --- span tracing overhead --------------------------------------------
//
// The tracing contract mirrors the metrics one: a detached tracer
// (attach_tracer(nullptr)) must cost exactly one untaken branch per
// instrumentation point -- BM_UnilocUpdateDetachedTracer must be
// indistinguishable from BM_UnilocUpdate -- and an attached tracer pays
// clock reads + id allocation + sink emission, bounded below 5% of the
// epoch (the NullSpanSink isolates tracer cost from I/O).

void BM_SpanBeginEnd(benchmark::State& state) {
  obs::NullSpanSink sink;
  obs::SpanTracer tracer(&sink);
  for (auto _ : state) {
    const obs::SpanHandle h = tracer.begin("bench.span", "core");
    tracer.end(h);
  }
}
BENCHMARK(BM_SpanBeginEnd);

void run_uniloc_update_traced(benchmark::State& state, bool attached) {
  const ReplayFixture& fx = replay_frames();
  core::Uniloc uniloc = core::make_uniloc(office(), models());
  obs::NullSpanSink sink;
  obs::SpanTracer tracer(&sink);
  uniloc.attach_tracer(attached ? &tracer : nullptr);
  uniloc.reset({fx.start_pos, fx.start_heading});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uniloc.update(fx.frames[i]));
    if (++i == fx.frames.size()) {
      i = 0;
      state.PauseTiming();
      uniloc.reset({fx.start_pos, fx.start_heading});
      state.ResumeTiming();
    }
  }
}

void BM_UnilocUpdateDetachedTracer(benchmark::State& state) {
  run_uniloc_update_traced(state, /*attached=*/false);
}
BENCHMARK(BM_UnilocUpdateDetachedTracer)->Unit(benchmark::kMicrosecond);

void BM_UnilocUpdateTracer(benchmark::State& state) {
  run_uniloc_update_traced(state, /*attached=*/true);
}
BENCHMARK(BM_UnilocUpdateTracer)->Unit(benchmark::kMicrosecond);

void run_uniloc_replay(benchmark::State& state, const core::Deployment& d,
                       const ReplayFixture& fx, bool fast) {
  core::Uniloc uniloc = core::make_uniloc(d, models());
  core::EpochScratch scratch;
  uniloc.reset({fx.start_pos, fx.start_heading});
  std::size_t i = 0;
  for (auto _ : state) {
    if (fast) {
      benchmark::DoNotOptimize(&uniloc.update_fast(fx.frames[i], scratch));
    } else {
      benchmark::DoNotOptimize(uniloc.update(fx.frames[i]));
    }
    if (++i == fx.frames.size()) {
      i = 0;
      state.PauseTiming();
      uniloc.reset({fx.start_pos, fx.start_heading});
      state.ResumeTiming();
    }
  }
}

void BM_UnilocUpdateFast(benchmark::State& state) {
  // The zero-allocation pipeline on the same recorded frames as
  // BM_UnilocUpdate. The office epoch is dominated by the two particle
  // filters, which both pipelines share, so the gap is modest here; the
  // campus pair below is the headline fast-vs-reference comparison
  // (bench/epoch_pipeline.cpp has the full report).
  run_uniloc_replay(state, office(), replay_frames(), /*fast=*/true);
}
BENCHMARK(BM_UnilocUpdateFast)->Unit(benchmark::kMicrosecond);

// --- the campus: the paper's primary venue and the fast path's regime ---
//
// Hundreds of fingerprints and eight long walkways make RSSI matching and
// the per-particle environment lookups the dominant epoch costs -- exactly
// what the likelihood cache, the shared epoch memo and the walkway-
// candidate index remove.

const core::Deployment& campus_deployment() {
  static core::Deployment d = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});
  return d;
}

const ReplayFixture& campus_frames() {
  static const ReplayFixture fx = [] {
    ReplayFixture r;
    sim::WalkConfig wc;
    wc.seed = 99;
    sim::Walker walker(campus_deployment().place.get(),
                       campus_deployment().radio.get(), 0, wc);
    r.start_pos = walker.start_position();
    r.start_heading = walker.start_heading();
    while (!walker.done()) r.frames.push_back(walker.step(true));
    return r;
  }();
  return fx;
}

void BM_UnilocUpdateCampus(benchmark::State& state) {
  run_uniloc_replay(state, campus_deployment(), campus_frames(),
                    /*fast=*/false);
}
BENCHMARK(BM_UnilocUpdateCampus)->Unit(benchmark::kMicrosecond);

void BM_UnilocUpdateFastCampus(benchmark::State& state) {
  run_uniloc_replay(state, campus_deployment(), campus_frames(),
                    /*fast=*/true);
}
BENCHMARK(BM_UnilocUpdateFastCampus)->Unit(benchmark::kMicrosecond);

void BM_WallCrossingQuery(benchmark::State& state) {
  static sim::Place campus = [] {
    sim::Place p = sim::campus(42);
    sim::deploy_walls(p, sim::hub_aware_wall_options(p));
    return p;
  }();
  stats::Rng rng(17);
  for (auto _ : state) {
    const geo::Vec2 a{rng.uniform(0.0, 100.0), rng.uniform(0.0, 60.0)};
    benchmark::DoNotOptimize(
        campus.crosses_wall(a, a + geo::Vec2{0.7, 0.1}));
  }
}
BENCHMARK(BM_WallCrossingQuery);

}  // namespace

BENCHMARK_MAIN();
