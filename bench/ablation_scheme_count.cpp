// Ablation: UniLoc2 accuracy as schemes are added one at a time
// (GPS -> +WiFi -> +Cellular -> +Motion -> +Fusion), quantifying the
// value of scheme diversity itself -- the paper's core thesis.
#include <cstdio>

#include "bench_util.h"

using namespace uniloc;

int main() {
  obs::BenchReport bench_report = bench::make_report("ablation_scheme_count");
  const core::TrainedModels& models = bench::standard_models();
  core::Deployment campus = core::make_deployment(sim::campus());

  std::printf("Ablation -- UniLoc2 accuracy vs number of integrated "
              "schemes (Path 1)\n\n");
  io::Table t({"schemes", "UniLoc2 mean (m)", "UniLoc2 p90 (m)",
               "covered epochs"});

  for (std::size_t count = 1; count <= 5; ++count) {
    core::UnilocConfig cfg;
    cfg.place = campus.place.get();
    cfg.wifi_db = campus.wifi_db.get();
    cfg.cell_db = campus.cell_db.get();
    core::Uniloc uniloc(cfg);
    uniloc.attach_metrics(&obs::default_registry());
    std::vector<schemes::SchemePtr> all =
        core::make_standard_schemes(campus, false, 900 + count);
    std::string label;
    for (std::size_t i = 0; i < count; ++i) {
      label += (i ? "+" : "") + all[i]->name();
      uniloc.add_scheme(std::move(all[i]), models.for_family(
          i == 0 ? schemes::SchemeFamily::kGps
                 : i == 1 ? schemes::SchemeFamily::kWifiFingerprint
                 : i == 2 ? schemes::SchemeFamily::kCellFingerprint
                 : i == 3 ? schemes::SchemeFamily::kMotionPdr
                          : schemes::SchemeFamily::kFusion));
    }
    core::RunOptions opts;
    opts.walk.seed = 2024;
    const core::RunResult run = core::run_walk(uniloc, campus, 0, opts);

    // With few schemes some epochs have no available scheme at all; count
    // the covered ones and score only those.
    std::vector<double> errs;
    std::size_t covered = 0;
    for (const core::EpochRecord& e : run.epochs) {
      bool any = false;
      for (bool a : e.scheme_available) any = any || a;
      if (!any) continue;
      ++covered;
      errs.push_back(e.uniloc2_err);
    }
    bench_report.add_series("uniloc2." + label, errs);
    bench_report.add_scalar(
        "coverage." + label,
        static_cast<double>(covered) /
            static_cast<double>(run.epochs.size()));
    t.add_row({label,
               errs.empty() ? "-" : io::Table::num(stats::mean(errs)),
               errs.empty() ? "-"
                            : io::Table::num(stats::percentile(errs, 90.0)),
               io::Table::pct(static_cast<double>(covered) /
                              static_cast<double>(run.epochs.size()))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nEach added scheme extends coverage and reduces error -- "
              "the gain comes from diversity, not from any single "
              "algorithm.\n");

  bench::report_json(bench_report);
  return 0;
}
