// Table II: error-model coefficients for the four regression-based scheme
// families (WiFi, cellular, motion, fusion), indoor and outdoor, plus the
// appropriateness checks the paper performs: per-coefficient p-values,
// residual moments (mu_eps ~ 0, sigma_eps small) and R^2.
//
// Also reproduces the insignificant-feature findings (Sec. III-B): the
// number of audible transmitters and the orientation-change frequency get
// p > 0.05 when added to the regression.
#include <cstdio>

#include "bench_util.h"
#include "core/deployment.h"
#include "core/trainer.h"
#include "io/table.h"
#include "stats/regression.h"

using namespace uniloc;

namespace {

void print_model(const char* scheme, const char* env,
                 const stats::LinearModel& m, io::Table& t) {
  for (const stats::Coefficient& c : m.coefficients) {
    t.add_row({scheme, env, c.name, io::Table::num(c.estimate, 3),
               io::Table::num(c.p_value, 4),
               io::Table::num(m.residual_mean, 3),
               io::Table::num(m.residual_sd, 2),
               io::Table::num(m.r_squared, 2)});
  }
}

stats::LinearModel fit_candidates(const core::FamilyData& fd,
                                  schemes::SchemeFamily family) {
  const auto names = core::candidate_feature_names(family);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const core::TrainingRow& r : fd.rows) {
    x.push_back(r.x);
    y.push_back(r.y);
  }
  return stats::fit_ols(x, y, names);
}

}  // namespace

int main() {
  obs::BenchReport report = bench::make_report("table2_error_models");
  // Collect the training data exactly as the deployment procedure does.
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  core::Deployment open = core::make_deployment(
      sim::open_space_place(42), core::DeploymentOptions{.seed = 43});
  core::CollectOptions copts;
  copts.target_samples = 300;
  copts.seed = 44;
  const core::TrainingData indoor = core::collect_training_data(office, copts);
  copts.seed = 45;
  const core::TrainingData outdoor = core::collect_training_data(open, copts);
  const core::TrainedModels models = core::fit_error_models(indoor, outdoor);

  std::printf("Table II -- error-model coefficients (300 indoor + 300 "
              "outdoor training locations)\n\n");
  io::Table t({"scheme", "env", "coefficient", "estimate", "p-value",
               "mu_eps", "sigma_eps", "R^2"});
  using SF = schemes::SchemeFamily;
  const std::pair<SF, const char*> fams[] = {{SF::kWifiFingerprint, "WiFi"},
                                             {SF::kCellFingerprint, "Cellular"},
                                             {SF::kMotionPdr, "Motion"},
                                             {SF::kFusion, "Fusion"}};
  for (const auto& [fam, name] : fams) {
    const core::ErrorModel& m = models.for_family(fam);
    print_model(name, "indoor", m.indoor_model(), t);
    print_model(name, "outdoor", m.outdoor_model(), t);
    report.add_scalar(std::string(name) + ".indoor.r2",
                      m.indoor_model().r_squared);
    report.add_scalar(std::string(name) + ".indoor.sigma_eps",
                      m.indoor_model().residual_sd);
    report.add_scalar(std::string(name) + ".outdoor.r2",
                      m.outdoor_model().r_squared);
    report.add_scalar(std::string(name) + ".outdoor.sigma_eps",
                      m.outdoor_model().residual_sd);
  }
  std::printf("%s", t.to_string().c_str());

  // GPS constant model.
  const core::ErrorModel& gps = models.for_family(SF::kGps);
  const stats::Gaussian g = gps.predict({}, /*indoor=*/false);
  std::printf("\nGPS constant model: error ~ N(%.1f m, %.1f m) "
              "(paper: N(13.5, 9.4) on their hardware)\n",
              g.mean, g.sd);

  // Insignificant candidate features (the paper's model-appropriateness
  // discussion): extend each regression with the rejected candidates and
  // report their p-values.
  std::printf("\nCandidate features the paper rejects (p-values when added "
              "to the fit):\n");
  io::Table t2({"scheme", "env", "candidate", "p-value", "significant?"});
  for (const auto& [fam, name] : fams) {
    const auto base = core::feature_names(fam).size();
    const auto cand_names = core::candidate_feature_names(fam);
    for (const auto& [data, env] :
         {std::pair{&indoor, "indoor"}, std::pair{&outdoor, "outdoor"}}) {
      const auto it = data->by_family.find(fam);
      if (it == data->by_family.end() || it->second.rows.size() < 20) continue;
      const stats::LinearModel ext = fit_candidates(it->second, fam);
      for (std::size_t j = base; j < cand_names.size(); ++j) {
        const stats::Coefficient& c = ext.coefficients[j + 1];  // +intercept
        t2.add_row({name, env, c.name, io::Table::num(c.p_value, 3),
                    c.p_value < 0.05 ? "yes" : "no"});
      }
    }
  }
  std::printf("%s", t2.to_string().c_str());

  bench::report_json(report);
  return 0;
}
