file(REMOVE_RECURSE
  "CMakeFiles/test_uniloc_integration.dir/test_uniloc_integration.cc.o"
  "CMakeFiles/test_uniloc_integration.dir/test_uniloc_integration.cc.o.d"
  "test_uniloc_integration"
  "test_uniloc_integration.pdb"
  "test_uniloc_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uniloc_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
