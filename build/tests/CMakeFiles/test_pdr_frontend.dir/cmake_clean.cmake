file(REMOVE_RECURSE
  "CMakeFiles/test_pdr_frontend.dir/test_pdr_frontend.cc.o"
  "CMakeFiles/test_pdr_frontend.dir/test_pdr_frontend.cc.o.d"
  "test_pdr_frontend"
  "test_pdr_frontend.pdb"
  "test_pdr_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdr_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
