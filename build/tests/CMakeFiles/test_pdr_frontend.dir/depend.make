# Empty dependencies file for test_pdr_frontend.
# This may be replaced when dependencies are built.
