# Empty dependencies file for test_energy_io.
# This may be replaced when dependencies are built.
