file(REMOVE_RECURSE
  "CMakeFiles/test_energy_io.dir/test_energy_io.cc.o"
  "CMakeFiles/test_energy_io.dir/test_energy_io.cc.o.d"
  "test_energy_io"
  "test_energy_io.pdb"
  "test_energy_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
