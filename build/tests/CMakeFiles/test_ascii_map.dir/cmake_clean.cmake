file(REMOVE_RECURSE
  "CMakeFiles/test_ascii_map.dir/test_ascii_map.cc.o"
  "CMakeFiles/test_ascii_map.dir/test_ascii_map.cc.o.d"
  "test_ascii_map"
  "test_ascii_map.pdb"
  "test_ascii_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
