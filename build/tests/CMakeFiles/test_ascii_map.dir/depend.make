# Empty dependencies file for test_ascii_map.
# This may be replaced when dependencies are built.
