file(REMOVE_RECURSE
  "CMakeFiles/test_noise_field.dir/test_noise_field.cc.o"
  "CMakeFiles/test_noise_field.dir/test_noise_field.cc.o.d"
  "test_noise_field"
  "test_noise_field.pdb"
  "test_noise_field[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
