# Empty compiler generated dependencies file for test_noise_field.
# This may be replaced when dependencies are built.
