file(REMOVE_RECURSE
  "CMakeFiles/test_runner_extra.dir/test_runner_extra.cc.o"
  "CMakeFiles/test_runner_extra.dir/test_runner_extra.cc.o.d"
  "test_runner_extra"
  "test_runner_extra.pdb"
  "test_runner_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runner_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
