# Empty compiler generated dependencies file for test_runner_extra.
# This may be replaced when dependencies are built.
