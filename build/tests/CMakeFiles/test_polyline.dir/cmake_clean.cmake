file(REMOVE_RECURSE
  "CMakeFiles/test_polyline.dir/test_polyline.cc.o"
  "CMakeFiles/test_polyline.dir/test_polyline.cc.o.d"
  "test_polyline"
  "test_polyline.pdb"
  "test_polyline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
