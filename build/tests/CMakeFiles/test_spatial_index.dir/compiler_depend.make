# Empty compiler generated dependencies file for test_spatial_index.
# This may be replaced when dependencies are built.
