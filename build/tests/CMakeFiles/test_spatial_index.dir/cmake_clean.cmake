file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_index.dir/test_spatial_index.cc.o"
  "CMakeFiles/test_spatial_index.dir/test_spatial_index.cc.o.d"
  "test_spatial_index"
  "test_spatial_index.pdb"
  "test_spatial_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
