# Empty compiler generated dependencies file for test_crowdsource.
# This may be replaced when dependencies are built.
