file(REMOVE_RECURSE
  "CMakeFiles/test_crowdsource.dir/test_crowdsource.cc.o"
  "CMakeFiles/test_crowdsource.dir/test_crowdsource.cc.o.d"
  "test_crowdsource"
  "test_crowdsource.pdb"
  "test_crowdsource[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crowdsource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
