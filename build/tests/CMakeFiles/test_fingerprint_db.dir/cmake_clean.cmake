file(REMOVE_RECURSE
  "CMakeFiles/test_fingerprint_db.dir/test_fingerprint_db.cc.o"
  "CMakeFiles/test_fingerprint_db.dir/test_fingerprint_db.cc.o.d"
  "test_fingerprint_db"
  "test_fingerprint_db.pdb"
  "test_fingerprint_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fingerprint_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
