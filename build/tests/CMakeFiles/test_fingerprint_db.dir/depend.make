# Empty dependencies file for test_fingerprint_db.
# This may be replaced when dependencies are built.
