# Empty dependencies file for fig7_cdf_all_paths.
# This may be replaced when dependencies are built.
