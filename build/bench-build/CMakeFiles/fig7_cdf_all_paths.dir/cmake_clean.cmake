file(REMOVE_RECURSE
  "../bench/fig7_cdf_all_paths"
  "../bench/fig7_cdf_all_paths.pdb"
  "CMakeFiles/fig7_cdf_all_paths.dir/fig7_cdf_all_paths.cpp.o"
  "CMakeFiles/fig7_cdf_all_paths.dir/fig7_cdf_all_paths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cdf_all_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
