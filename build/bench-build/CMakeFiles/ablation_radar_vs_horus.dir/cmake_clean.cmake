file(REMOVE_RECURSE
  "../bench/ablation_radar_vs_horus"
  "../bench/ablation_radar_vs_horus.pdb"
  "CMakeFiles/ablation_radar_vs_horus.dir/ablation_radar_vs_horus.cpp.o"
  "CMakeFiles/ablation_radar_vs_horus.dir/ablation_radar_vs_horus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_radar_vs_horus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
