# Empty compiler generated dependencies file for ablation_radar_vs_horus.
# This may be replaced when dependencies are built.
