file(REMOVE_RECURSE
  "../bench/fig4_paths"
  "../bench/fig4_paths.pdb"
  "CMakeFiles/fig4_paths.dir/fig4_paths.cpp.o"
  "CMakeFiles/fig4_paths.dir/fig4_paths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
