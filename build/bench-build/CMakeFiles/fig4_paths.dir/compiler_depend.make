# Empty compiler generated dependencies file for fig4_paths.
# This may be replaced when dependencies are built.
