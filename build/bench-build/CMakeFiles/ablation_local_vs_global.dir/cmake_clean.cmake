file(REMOVE_RECURSE
  "../bench/ablation_local_vs_global"
  "../bench/ablation_local_vs_global.pdb"
  "CMakeFiles/ablation_local_vs_global.dir/ablation_local_vs_global.cpp.o"
  "CMakeFiles/ablation_local_vs_global.dir/ablation_local_vs_global.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
