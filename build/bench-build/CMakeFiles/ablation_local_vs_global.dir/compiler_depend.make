# Empty compiler generated dependencies file for ablation_local_vs_global.
# This may be replaced when dependencies are built.
