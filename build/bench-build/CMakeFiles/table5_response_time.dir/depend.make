# Empty dependencies file for table5_response_time.
# This may be replaced when dependencies are built.
