file(REMOVE_RECURSE
  "../bench/table5_response_time"
  "../bench/table5_response_time.pdb"
  "CMakeFiles/table5_response_time.dir/table5_response_time.cpp.o"
  "CMakeFiles/table5_response_time.dir/table5_response_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
