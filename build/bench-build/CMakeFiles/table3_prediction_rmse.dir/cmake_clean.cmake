file(REMOVE_RECURSE
  "../bench/table3_prediction_rmse"
  "../bench/table3_prediction_rmse.pdb"
  "CMakeFiles/table3_prediction_rmse.dir/table3_prediction_rmse.cpp.o"
  "CMakeFiles/table3_prediction_rmse.dir/table3_prediction_rmse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_prediction_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
