# Empty dependencies file for table3_prediction_rmse.
# This may be replaced when dependencies are built.
