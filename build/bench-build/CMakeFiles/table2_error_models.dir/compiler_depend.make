# Empty compiler generated dependencies file for table2_error_models.
# This may be replaced when dependencies are built.
