file(REMOVE_RECURSE
  "../bench/table2_error_models"
  "../bench/table2_error_models.pdb"
  "CMakeFiles/table2_error_models.dir/table2_error_models.cpp.o"
  "CMakeFiles/table2_error_models.dir/table2_error_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_error_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
