file(REMOVE_RECURSE
  "../bench/ablation_fp_density"
  "../bench/ablation_fp_density.pdb"
  "CMakeFiles/ablation_fp_density.dir/ablation_fp_density.cpp.o"
  "CMakeFiles/ablation_fp_density.dir/ablation_fp_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fp_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
