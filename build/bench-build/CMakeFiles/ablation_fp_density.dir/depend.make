# Empty dependencies file for ablation_fp_density.
# This may be replaced when dependencies are built.
