file(REMOVE_RECURSE
  "../bench/ablation_scheme_count"
  "../bench/ablation_scheme_count.pdb"
  "CMakeFiles/ablation_scheme_count.dir/ablation_scheme_count.cpp.o"
  "CMakeFiles/ablation_scheme_count.dir/ablation_scheme_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheme_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
