# Empty compiler generated dependencies file for ablation_scheme_count.
# This may be replaced when dependencies are built.
