file(REMOVE_RECURSE
  "../bench/fig8d_hetero_devices"
  "../bench/fig8d_hetero_devices.pdb"
  "CMakeFiles/fig8d_hetero_devices.dir/fig8d_hetero_devices.cpp.o"
  "CMakeFiles/fig8d_hetero_devices.dir/fig8d_hetero_devices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8d_hetero_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
