# Empty compiler generated dependencies file for fig8d_hetero_devices.
# This may be replaced when dependencies are built.
