# Empty dependencies file for ablation_aloc.
# This may be replaced when dependencies are built.
