file(REMOVE_RECURSE
  "../bench/ablation_aloc"
  "../bench/ablation_aloc.pdb"
  "CMakeFiles/ablation_aloc.dir/ablation_aloc.cpp.o"
  "CMakeFiles/ablation_aloc.dir/ablation_aloc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
