file(REMOVE_RECURSE
  "../bench/ablation_tau"
  "../bench/ablation_tau.pdb"
  "CMakeFiles/ablation_tau.dir/ablation_tau.cpp.o"
  "CMakeFiles/ablation_tau.dir/ablation_tau.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
