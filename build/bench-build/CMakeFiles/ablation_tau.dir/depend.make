# Empty dependencies file for ablation_tau.
# This may be replaced when dependencies are built.
