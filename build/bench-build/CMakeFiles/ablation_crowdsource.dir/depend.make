# Empty dependencies file for ablation_crowdsource.
# This may be replaced when dependencies are built.
