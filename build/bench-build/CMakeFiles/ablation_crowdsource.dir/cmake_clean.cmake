file(REMOVE_RECURSE
  "../bench/ablation_crowdsource"
  "../bench/ablation_crowdsource.pdb"
  "CMakeFiles/ablation_crowdsource.dir/ablation_crowdsource.cpp.o"
  "CMakeFiles/ablation_crowdsource.dir/ablation_crowdsource.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crowdsource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
