# Empty dependencies file for fig8_environments.
# This may be replaced when dependencies are built.
