file(REMOVE_RECURSE
  "../bench/fig8_environments"
  "../bench/fig8_environments.pdb"
  "CMakeFiles/fig8_environments.dir/fig8_environments.cpp.o"
  "CMakeFiles/fig8_environments.dir/fig8_environments.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
