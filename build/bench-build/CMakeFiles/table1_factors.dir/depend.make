# Empty dependencies file for table1_factors.
# This may be replaced when dependencies are built.
