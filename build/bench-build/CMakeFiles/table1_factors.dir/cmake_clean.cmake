file(REMOVE_RECURSE
  "../bench/table1_factors"
  "../bench/table1_factors.pdb"
  "CMakeFiles/table1_factors.dir/table1_factors.cpp.o"
  "CMakeFiles/table1_factors.dir/table1_factors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
