file(REMOVE_RECURSE
  "../bench/ablation_walls"
  "../bench/ablation_walls.pdb"
  "CMakeFiles/ablation_walls.dir/ablation_walls.cpp.o"
  "CMakeFiles/ablation_walls.dir/ablation_walls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_walls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
