# Empty compiler generated dependencies file for ablation_walls.
# This may be replaced when dependencies are built.
