# Empty dependencies file for ablation_sharpness.
# This may be replaced when dependencies are built.
