file(REMOVE_RECURSE
  "../bench/ablation_sharpness"
  "../bench/ablation_sharpness.pdb"
  "CMakeFiles/ablation_sharpness.dir/ablation_sharpness.cpp.o"
  "CMakeFiles/ablation_sharpness.dir/ablation_sharpness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sharpness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
