file(REMOVE_RECURSE
  "../bench/fig5_scheme_usage"
  "../bench/fig5_scheme_usage.pdb"
  "CMakeFiles/fig5_scheme_usage.dir/fig5_scheme_usage.cpp.o"
  "CMakeFiles/fig5_scheme_usage.dir/fig5_scheme_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scheme_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
