# Empty compiler generated dependencies file for fig5_scheme_usage.
# This may be replaced when dependencies are built.
