file(REMOVE_RECURSE
  "../bench/ablation_personalization"
  "../bench/ablation_personalization.pdb"
  "CMakeFiles/ablation_personalization.dir/ablation_personalization.cpp.o"
  "CMakeFiles/ablation_personalization.dir/ablation_personalization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
