# Empty compiler generated dependencies file for ablation_personalization.
# This may be replaced when dependencies are built.
