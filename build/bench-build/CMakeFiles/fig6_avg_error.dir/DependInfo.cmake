
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_avg_error.cpp" "bench-build/CMakeFiles/fig6_avg_error.dir/fig6_avg_error.cpp.o" "gcc" "bench-build/CMakeFiles/fig6_avg_error.dir/fig6_avg_error.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uniloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/uniloc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/uniloc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/uniloc_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/uniloc_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uniloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/uniloc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/uniloc_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
