file(REMOVE_RECURSE
  "../bench/fig6_avg_error"
  "../bench/fig6_avg_error.pdb"
  "CMakeFiles/fig6_avg_error.dir/fig6_avg_error.cpp.o"
  "CMakeFiles/fig6_avg_error.dir/fig6_avg_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_avg_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
