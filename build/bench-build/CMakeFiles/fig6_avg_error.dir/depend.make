# Empty dependencies file for fig6_avg_error.
# This may be replaced when dependencies are built.
