file(REMOVE_RECURSE
  "../bench/ablation_offload"
  "../bench/ablation_offload.pdb"
  "CMakeFiles/ablation_offload.dir/ablation_offload.cpp.o"
  "CMakeFiles/ablation_offload.dir/ablation_offload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
