file(REMOVE_RECURSE
  "../bench/ablation_map_matching"
  "../bench/ablation_map_matching.pdb"
  "CMakeFiles/ablation_map_matching.dir/ablation_map_matching.cpp.o"
  "CMakeFiles/ablation_map_matching.dir/ablation_map_matching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_map_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
