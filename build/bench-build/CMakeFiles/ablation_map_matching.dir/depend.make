# Empty dependencies file for ablation_map_matching.
# This may be replaced when dependencies are built.
