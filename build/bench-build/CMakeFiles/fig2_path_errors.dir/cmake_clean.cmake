file(REMOVE_RECURSE
  "../bench/fig2_path_errors"
  "../bench/fig2_path_errors.pdb"
  "CMakeFiles/fig2_path_errors.dir/fig2_path_errors.cpp.o"
  "CMakeFiles/fig2_path_errors.dir/fig2_path_errors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_path_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
