# Empty dependencies file for fig2_path_errors.
# This may be replaced when dependencies are built.
