file(REMOVE_RECURSE
  "../bench/table4_energy"
  "../bench/table4_energy.pdb"
  "CMakeFiles/table4_energy.dir/table4_energy.cpp.o"
  "CMakeFiles/table4_energy.dir/table4_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
