# Empty dependencies file for fig3_uniloc_path.
# This may be replaced when dependencies are built.
