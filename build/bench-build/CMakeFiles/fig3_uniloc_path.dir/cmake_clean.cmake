file(REMOVE_RECURSE
  "../bench/fig3_uniloc_path"
  "../bench/fig3_uniloc_path.pdb"
  "CMakeFiles/fig3_uniloc_path.dir/fig3_uniloc_path.cpp.o"
  "CMakeFiles/fig3_uniloc_path.dir/fig3_uniloc_path.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_uniloc_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
