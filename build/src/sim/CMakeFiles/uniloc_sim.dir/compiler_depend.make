# Empty compiler generated dependencies file for uniloc_sim.
# This may be replaced when dependencies are built.
