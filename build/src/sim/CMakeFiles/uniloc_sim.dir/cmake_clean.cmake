file(REMOVE_RECURSE
  "CMakeFiles/uniloc_sim.dir/ambient_sim.cc.o"
  "CMakeFiles/uniloc_sim.dir/ambient_sim.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/builders.cc.o"
  "CMakeFiles/uniloc_sim.dir/builders.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/device.cc.o"
  "CMakeFiles/uniloc_sim.dir/device.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/floorplan.cc.o"
  "CMakeFiles/uniloc_sim.dir/floorplan.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/gps_sim.cc.o"
  "CMakeFiles/uniloc_sim.dir/gps_sim.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/imu_sim.cc.o"
  "CMakeFiles/uniloc_sim.dir/imu_sim.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/place.cc.o"
  "CMakeFiles/uniloc_sim.dir/place.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/radio.cc.o"
  "CMakeFiles/uniloc_sim.dir/radio.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/trace_io.cc.o"
  "CMakeFiles/uniloc_sim.dir/trace_io.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/types.cc.o"
  "CMakeFiles/uniloc_sim.dir/types.cc.o.d"
  "CMakeFiles/uniloc_sim.dir/walker.cc.o"
  "CMakeFiles/uniloc_sim.dir/walker.cc.o.d"
  "libuniloc_sim.a"
  "libuniloc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
