file(REMOVE_RECURSE
  "libuniloc_sim.a"
)
