
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ambient_sim.cc" "src/sim/CMakeFiles/uniloc_sim.dir/ambient_sim.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/ambient_sim.cc.o.d"
  "/root/repo/src/sim/builders.cc" "src/sim/CMakeFiles/uniloc_sim.dir/builders.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/builders.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/uniloc_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/floorplan.cc" "src/sim/CMakeFiles/uniloc_sim.dir/floorplan.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/floorplan.cc.o.d"
  "/root/repo/src/sim/gps_sim.cc" "src/sim/CMakeFiles/uniloc_sim.dir/gps_sim.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/gps_sim.cc.o.d"
  "/root/repo/src/sim/imu_sim.cc" "src/sim/CMakeFiles/uniloc_sim.dir/imu_sim.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/imu_sim.cc.o.d"
  "/root/repo/src/sim/place.cc" "src/sim/CMakeFiles/uniloc_sim.dir/place.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/place.cc.o.d"
  "/root/repo/src/sim/radio.cc" "src/sim/CMakeFiles/uniloc_sim.dir/radio.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/radio.cc.o.d"
  "/root/repo/src/sim/trace_io.cc" "src/sim/CMakeFiles/uniloc_sim.dir/trace_io.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/trace_io.cc.o.d"
  "/root/repo/src/sim/types.cc" "src/sim/CMakeFiles/uniloc_sim.dir/types.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/types.cc.o.d"
  "/root/repo/src/sim/walker.cc" "src/sim/CMakeFiles/uniloc_sim.dir/walker.cc.o" "gcc" "src/sim/CMakeFiles/uniloc_sim.dir/walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/uniloc_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/uniloc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
