# Empty dependencies file for uniloc_geo.
# This may be replaced when dependencies are built.
