file(REMOVE_RECURSE
  "CMakeFiles/uniloc_geo.dir/grid.cc.o"
  "CMakeFiles/uniloc_geo.dir/grid.cc.o.d"
  "CMakeFiles/uniloc_geo.dir/latlon.cc.o"
  "CMakeFiles/uniloc_geo.dir/latlon.cc.o.d"
  "CMakeFiles/uniloc_geo.dir/polyline.cc.o"
  "CMakeFiles/uniloc_geo.dir/polyline.cc.o.d"
  "CMakeFiles/uniloc_geo.dir/segment.cc.o"
  "CMakeFiles/uniloc_geo.dir/segment.cc.o.d"
  "CMakeFiles/uniloc_geo.dir/spatial_index.cc.o"
  "CMakeFiles/uniloc_geo.dir/spatial_index.cc.o.d"
  "CMakeFiles/uniloc_geo.dir/vec2.cc.o"
  "CMakeFiles/uniloc_geo.dir/vec2.cc.o.d"
  "libuniloc_geo.a"
  "libuniloc_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
