file(REMOVE_RECURSE
  "libuniloc_geo.a"
)
