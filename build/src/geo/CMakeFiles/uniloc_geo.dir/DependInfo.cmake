
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/grid.cc" "src/geo/CMakeFiles/uniloc_geo.dir/grid.cc.o" "gcc" "src/geo/CMakeFiles/uniloc_geo.dir/grid.cc.o.d"
  "/root/repo/src/geo/latlon.cc" "src/geo/CMakeFiles/uniloc_geo.dir/latlon.cc.o" "gcc" "src/geo/CMakeFiles/uniloc_geo.dir/latlon.cc.o.d"
  "/root/repo/src/geo/polyline.cc" "src/geo/CMakeFiles/uniloc_geo.dir/polyline.cc.o" "gcc" "src/geo/CMakeFiles/uniloc_geo.dir/polyline.cc.o.d"
  "/root/repo/src/geo/segment.cc" "src/geo/CMakeFiles/uniloc_geo.dir/segment.cc.o" "gcc" "src/geo/CMakeFiles/uniloc_geo.dir/segment.cc.o.d"
  "/root/repo/src/geo/spatial_index.cc" "src/geo/CMakeFiles/uniloc_geo.dir/spatial_index.cc.o" "gcc" "src/geo/CMakeFiles/uniloc_geo.dir/spatial_index.cc.o.d"
  "/root/repo/src/geo/vec2.cc" "src/geo/CMakeFiles/uniloc_geo.dir/vec2.cc.o" "gcc" "src/geo/CMakeFiles/uniloc_geo.dir/vec2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
