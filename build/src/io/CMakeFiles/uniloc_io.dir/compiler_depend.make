# Empty compiler generated dependencies file for uniloc_io.
# This may be replaced when dependencies are built.
