file(REMOVE_RECURSE
  "CMakeFiles/uniloc_io.dir/ascii_map.cc.o"
  "CMakeFiles/uniloc_io.dir/ascii_map.cc.o.d"
  "CMakeFiles/uniloc_io.dir/csv.cc.o"
  "CMakeFiles/uniloc_io.dir/csv.cc.o.d"
  "CMakeFiles/uniloc_io.dir/table.cc.o"
  "CMakeFiles/uniloc_io.dir/table.cc.o.d"
  "libuniloc_io.a"
  "libuniloc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
