file(REMOVE_RECURSE
  "libuniloc_io.a"
)
