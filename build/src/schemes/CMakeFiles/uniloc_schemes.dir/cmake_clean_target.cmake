file(REMOVE_RECURSE
  "libuniloc_schemes.a"
)
