
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schemes/crowdsource.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/crowdsource.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/crowdsource.cc.o.d"
  "/root/repo/src/schemes/fingerprint_db.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/fingerprint_db.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/fingerprint_db.cc.o.d"
  "/root/repo/src/schemes/fingerprint_scheme.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/fingerprint_scheme.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/fingerprint_scheme.cc.o.d"
  "/root/repo/src/schemes/fusion_scheme.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/fusion_scheme.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/fusion_scheme.cc.o.d"
  "/root/repo/src/schemes/gps_scheme.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/gps_scheme.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/gps_scheme.cc.o.d"
  "/root/repo/src/schemes/horus_scheme.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/horus_scheme.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/horus_scheme.cc.o.d"
  "/root/repo/src/schemes/offset_calibration.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/offset_calibration.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/offset_calibration.cc.o.d"
  "/root/repo/src/schemes/pdr_frontend.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/pdr_frontend.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/pdr_frontend.cc.o.d"
  "/root/repo/src/schemes/pdr_scheme.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/pdr_scheme.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/pdr_scheme.cc.o.d"
  "/root/repo/src/schemes/scheme.cc" "src/schemes/CMakeFiles/uniloc_schemes.dir/scheme.cc.o" "gcc" "src/schemes/CMakeFiles/uniloc_schemes.dir/scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/uniloc_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/uniloc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/uniloc_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uniloc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
