file(REMOVE_RECURSE
  "CMakeFiles/uniloc_schemes.dir/crowdsource.cc.o"
  "CMakeFiles/uniloc_schemes.dir/crowdsource.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/fingerprint_db.cc.o"
  "CMakeFiles/uniloc_schemes.dir/fingerprint_db.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/fingerprint_scheme.cc.o"
  "CMakeFiles/uniloc_schemes.dir/fingerprint_scheme.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/fusion_scheme.cc.o"
  "CMakeFiles/uniloc_schemes.dir/fusion_scheme.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/gps_scheme.cc.o"
  "CMakeFiles/uniloc_schemes.dir/gps_scheme.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/horus_scheme.cc.o"
  "CMakeFiles/uniloc_schemes.dir/horus_scheme.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/offset_calibration.cc.o"
  "CMakeFiles/uniloc_schemes.dir/offset_calibration.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/pdr_frontend.cc.o"
  "CMakeFiles/uniloc_schemes.dir/pdr_frontend.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/pdr_scheme.cc.o"
  "CMakeFiles/uniloc_schemes.dir/pdr_scheme.cc.o.d"
  "CMakeFiles/uniloc_schemes.dir/scheme.cc.o"
  "CMakeFiles/uniloc_schemes.dir/scheme.cc.o.d"
  "libuniloc_schemes.a"
  "libuniloc_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
