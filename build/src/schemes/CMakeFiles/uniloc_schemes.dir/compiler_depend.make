# Empty compiler generated dependencies file for uniloc_schemes.
# This may be replaced when dependencies are built.
