# Empty dependencies file for uniloc_core.
# This may be replaced when dependencies are built.
