file(REMOVE_RECURSE
  "CMakeFiles/uniloc_core.dir/aloc_baseline.cc.o"
  "CMakeFiles/uniloc_core.dir/aloc_baseline.cc.o.d"
  "CMakeFiles/uniloc_core.dir/baselines.cc.o"
  "CMakeFiles/uniloc_core.dir/baselines.cc.o.d"
  "CMakeFiles/uniloc_core.dir/cold_start.cc.o"
  "CMakeFiles/uniloc_core.dir/cold_start.cc.o.d"
  "CMakeFiles/uniloc_core.dir/confidence.cc.o"
  "CMakeFiles/uniloc_core.dir/confidence.cc.o.d"
  "CMakeFiles/uniloc_core.dir/deployment.cc.o"
  "CMakeFiles/uniloc_core.dir/deployment.cc.o.d"
  "CMakeFiles/uniloc_core.dir/error_model.cc.o"
  "CMakeFiles/uniloc_core.dir/error_model.cc.o.d"
  "CMakeFiles/uniloc_core.dir/features.cc.o"
  "CMakeFiles/uniloc_core.dir/features.cc.o.d"
  "CMakeFiles/uniloc_core.dir/iodetector.cc.o"
  "CMakeFiles/uniloc_core.dir/iodetector.cc.o.d"
  "CMakeFiles/uniloc_core.dir/map_matching.cc.o"
  "CMakeFiles/uniloc_core.dir/map_matching.cc.o.d"
  "CMakeFiles/uniloc_core.dir/posterior_fusion.cc.o"
  "CMakeFiles/uniloc_core.dir/posterior_fusion.cc.o.d"
  "CMakeFiles/uniloc_core.dir/runner.cc.o"
  "CMakeFiles/uniloc_core.dir/runner.cc.o.d"
  "CMakeFiles/uniloc_core.dir/trainer.cc.o"
  "CMakeFiles/uniloc_core.dir/trainer.cc.o.d"
  "CMakeFiles/uniloc_core.dir/uniloc.cc.o"
  "CMakeFiles/uniloc_core.dir/uniloc.cc.o.d"
  "libuniloc_core.a"
  "libuniloc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
