
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aloc_baseline.cc" "src/core/CMakeFiles/uniloc_core.dir/aloc_baseline.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/aloc_baseline.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/uniloc_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/cold_start.cc" "src/core/CMakeFiles/uniloc_core.dir/cold_start.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/cold_start.cc.o.d"
  "/root/repo/src/core/confidence.cc" "src/core/CMakeFiles/uniloc_core.dir/confidence.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/confidence.cc.o.d"
  "/root/repo/src/core/deployment.cc" "src/core/CMakeFiles/uniloc_core.dir/deployment.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/deployment.cc.o.d"
  "/root/repo/src/core/error_model.cc" "src/core/CMakeFiles/uniloc_core.dir/error_model.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/error_model.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/uniloc_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/features.cc.o.d"
  "/root/repo/src/core/iodetector.cc" "src/core/CMakeFiles/uniloc_core.dir/iodetector.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/iodetector.cc.o.d"
  "/root/repo/src/core/map_matching.cc" "src/core/CMakeFiles/uniloc_core.dir/map_matching.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/map_matching.cc.o.d"
  "/root/repo/src/core/posterior_fusion.cc" "src/core/CMakeFiles/uniloc_core.dir/posterior_fusion.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/posterior_fusion.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/uniloc_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/runner.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/uniloc_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/uniloc.cc" "src/core/CMakeFiles/uniloc_core.dir/uniloc.cc.o" "gcc" "src/core/CMakeFiles/uniloc_core.dir/uniloc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/uniloc_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/uniloc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/uniloc_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uniloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/uniloc_schemes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
