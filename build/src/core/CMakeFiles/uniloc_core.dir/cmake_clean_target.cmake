file(REMOVE_RECURSE
  "libuniloc_core.a"
)
