file(REMOVE_RECURSE
  "libuniloc_offload.a"
)
