# Empty dependencies file for uniloc_offload.
# This may be replaced when dependencies are built.
