file(REMOVE_RECURSE
  "CMakeFiles/uniloc_offload.dir/payload.cc.o"
  "CMakeFiles/uniloc_offload.dir/payload.cc.o.d"
  "CMakeFiles/uniloc_offload.dir/session.cc.o"
  "CMakeFiles/uniloc_offload.dir/session.cc.o.d"
  "libuniloc_offload.a"
  "libuniloc_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
