file(REMOVE_RECURSE
  "libuniloc_filter.a"
)
