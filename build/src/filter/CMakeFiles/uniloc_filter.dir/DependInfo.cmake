
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/hmm.cc" "src/filter/CMakeFiles/uniloc_filter.dir/hmm.cc.o" "gcc" "src/filter/CMakeFiles/uniloc_filter.dir/hmm.cc.o.d"
  "/root/repo/src/filter/kalman1d.cc" "src/filter/CMakeFiles/uniloc_filter.dir/kalman1d.cc.o" "gcc" "src/filter/CMakeFiles/uniloc_filter.dir/kalman1d.cc.o.d"
  "/root/repo/src/filter/location_predictor.cc" "src/filter/CMakeFiles/uniloc_filter.dir/location_predictor.cc.o" "gcc" "src/filter/CMakeFiles/uniloc_filter.dir/location_predictor.cc.o.d"
  "/root/repo/src/filter/particle_filter.cc" "src/filter/CMakeFiles/uniloc_filter.dir/particle_filter.cc.o" "gcc" "src/filter/CMakeFiles/uniloc_filter.dir/particle_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/uniloc_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/uniloc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
