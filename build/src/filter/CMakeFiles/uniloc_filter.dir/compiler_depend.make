# Empty compiler generated dependencies file for uniloc_filter.
# This may be replaced when dependencies are built.
