file(REMOVE_RECURSE
  "CMakeFiles/uniloc_filter.dir/hmm.cc.o"
  "CMakeFiles/uniloc_filter.dir/hmm.cc.o.d"
  "CMakeFiles/uniloc_filter.dir/kalman1d.cc.o"
  "CMakeFiles/uniloc_filter.dir/kalman1d.cc.o.d"
  "CMakeFiles/uniloc_filter.dir/location_predictor.cc.o"
  "CMakeFiles/uniloc_filter.dir/location_predictor.cc.o.d"
  "CMakeFiles/uniloc_filter.dir/particle_filter.cc.o"
  "CMakeFiles/uniloc_filter.dir/particle_filter.cc.o.d"
  "libuniloc_filter.a"
  "libuniloc_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
