# Empty compiler generated dependencies file for uniloc_stats.
# This may be replaced when dependencies are built.
