file(REMOVE_RECURSE
  "libuniloc_stats.a"
)
