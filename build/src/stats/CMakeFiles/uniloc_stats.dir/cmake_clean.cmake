file(REMOVE_RECURSE
  "CMakeFiles/uniloc_stats.dir/descriptive.cc.o"
  "CMakeFiles/uniloc_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/uniloc_stats.dir/ecdf.cc.o"
  "CMakeFiles/uniloc_stats.dir/ecdf.cc.o.d"
  "CMakeFiles/uniloc_stats.dir/gaussian.cc.o"
  "CMakeFiles/uniloc_stats.dir/gaussian.cc.o.d"
  "CMakeFiles/uniloc_stats.dir/matrix.cc.o"
  "CMakeFiles/uniloc_stats.dir/matrix.cc.o.d"
  "CMakeFiles/uniloc_stats.dir/noise_field.cc.o"
  "CMakeFiles/uniloc_stats.dir/noise_field.cc.o.d"
  "CMakeFiles/uniloc_stats.dir/regression.cc.o"
  "CMakeFiles/uniloc_stats.dir/regression.cc.o.d"
  "CMakeFiles/uniloc_stats.dir/special.cc.o"
  "CMakeFiles/uniloc_stats.dir/special.cc.o.d"
  "libuniloc_stats.a"
  "libuniloc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
