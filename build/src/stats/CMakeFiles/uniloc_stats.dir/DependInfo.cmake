
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/uniloc_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/uniloc_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/ecdf.cc" "src/stats/CMakeFiles/uniloc_stats.dir/ecdf.cc.o" "gcc" "src/stats/CMakeFiles/uniloc_stats.dir/ecdf.cc.o.d"
  "/root/repo/src/stats/gaussian.cc" "src/stats/CMakeFiles/uniloc_stats.dir/gaussian.cc.o" "gcc" "src/stats/CMakeFiles/uniloc_stats.dir/gaussian.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/stats/CMakeFiles/uniloc_stats.dir/matrix.cc.o" "gcc" "src/stats/CMakeFiles/uniloc_stats.dir/matrix.cc.o.d"
  "/root/repo/src/stats/noise_field.cc" "src/stats/CMakeFiles/uniloc_stats.dir/noise_field.cc.o" "gcc" "src/stats/CMakeFiles/uniloc_stats.dir/noise_field.cc.o.d"
  "/root/repo/src/stats/regression.cc" "src/stats/CMakeFiles/uniloc_stats.dir/regression.cc.o" "gcc" "src/stats/CMakeFiles/uniloc_stats.dir/regression.cc.o.d"
  "/root/repo/src/stats/special.cc" "src/stats/CMakeFiles/uniloc_stats.dir/special.cc.o" "gcc" "src/stats/CMakeFiles/uniloc_stats.dir/special.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/uniloc_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
