file(REMOVE_RECURSE
  "CMakeFiles/uniloc_energy.dir/energy_model.cc.o"
  "CMakeFiles/uniloc_energy.dir/energy_model.cc.o.d"
  "CMakeFiles/uniloc_energy.dir/latency_model.cc.o"
  "CMakeFiles/uniloc_energy.dir/latency_model.cc.o.d"
  "libuniloc_energy.a"
  "libuniloc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
