file(REMOVE_RECURSE
  "libuniloc_energy.a"
)
