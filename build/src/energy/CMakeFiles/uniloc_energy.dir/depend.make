# Empty dependencies file for uniloc_energy.
# This may be replaced when dependencies are built.
