# Empty dependencies file for confidence_region.
# This may be replaced when dependencies are built.
