file(REMOVE_RECURSE
  "CMakeFiles/confidence_region.dir/confidence_region.cpp.o"
  "CMakeFiles/confidence_region.dir/confidence_region.cpp.o.d"
  "confidence_region"
  "confidence_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidence_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
