file(REMOVE_RECURSE
  "CMakeFiles/show_venue.dir/show_venue.cpp.o"
  "CMakeFiles/show_venue.dir/show_venue.cpp.o.d"
  "show_venue"
  "show_venue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/show_venue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
