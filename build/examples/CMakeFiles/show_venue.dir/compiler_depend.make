# Empty compiler generated dependencies file for show_venue.
# This may be replaced when dependencies are built.
