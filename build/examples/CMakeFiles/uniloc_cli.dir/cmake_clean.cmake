file(REMOVE_RECURSE
  "CMakeFiles/uniloc_cli.dir/uniloc_cli.cpp.o"
  "CMakeFiles/uniloc_cli.dir/uniloc_cli.cpp.o.d"
  "uniloc_cli"
  "uniloc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniloc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
