# Empty compiler generated dependencies file for uniloc_cli.
# This may be replaced when dependencies are built.
