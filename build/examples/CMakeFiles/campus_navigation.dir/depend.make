# Empty dependencies file for campus_navigation.
# This may be replaced when dependencies are built.
