file(REMOVE_RECURSE
  "CMakeFiles/campus_navigation.dir/campus_navigation.cpp.o"
  "CMakeFiles/campus_navigation.dir/campus_navigation.cpp.o.d"
  "campus_navigation"
  "campus_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
