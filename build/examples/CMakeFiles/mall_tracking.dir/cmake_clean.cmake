file(REMOVE_RECURSE
  "CMakeFiles/mall_tracking.dir/mall_tracking.cpp.o"
  "CMakeFiles/mall_tracking.dir/mall_tracking.cpp.o.d"
  "mall_tracking"
  "mall_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mall_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
