# Empty dependencies file for mall_tracking.
# This may be replaced when dependencies are built.
