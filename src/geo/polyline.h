// Polyline with arc-length parametrisation.
//
// Walkable paths, corridors and trajectories are all polylines. The class
// precomputes cumulative arc lengths so that point_at / project run in
// O(log n).
#pragma once

#include <vector>

#include "geo/bbox.h"
#include "geo/vec2.h"

namespace uniloc::geo {

/// Result of projecting a point onto a polyline.
struct Projection {
  double arclen{0.0};    ///< Arc length of the closest point from the start.
  Vec2 point;            ///< The closest point on the polyline.
  double distance{0.0};  ///< Euclidean distance from the query point.
  std::size_t segment{0};  ///< Index of the segment containing the point.
};

class Polyline {
 public:
  Polyline() = default;
  /// Construct from vertices. Consecutive duplicate vertices are merged.
  explicit Polyline(std::vector<Vec2> pts);

  const std::vector<Vec2>& points() const { return pts_; }
  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }

  /// Total arc length in meters.
  double length() const { return cum_.empty() ? 0.0 : cum_.back(); }

  /// Point at arc length `s` from the start; clamped to [0, length()].
  Vec2 point_at(double s) const;

  /// Tangent direction (unit vector) at arc length `s`.
  Vec2 tangent_at(double s) const;

  /// Heading (radians, CCW from +x) at arc length `s`.
  double heading_at(double s) const;

  /// Closest point on the polyline to `p`.
  Projection project(Vec2 p) const;

  /// Cumulative arc length of vertex `i`.
  double arclen_of_vertex(std::size_t i) const { return cum_.at(i); }

  /// Bounding box of all vertices.
  const BBox& bounds() const { return bounds_; }

  /// Evenly spaced sample points every `spacing` meters (includes both ends).
  std::vector<Vec2> sample(double spacing) const;

  /// Append another polyline's vertices (joining end to start).
  void append(const Polyline& other);

 private:
  /// Index of the segment containing arc length s (binary search).
  std::size_t segment_of(double s) const;

  std::vector<Vec2> pts_;
  std::vector<double> cum_;  ///< cum_[i] = arc length from start to vertex i.
  BBox bounds_;
};

}  // namespace uniloc::geo
