// Axis-aligned bounding box in the local metric frame.
#pragma once

#include <algorithm>
#include <limits>

#include "geo/vec2.h"

namespace uniloc::geo {

struct BBox {
  Vec2 min{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Vec2 max{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  constexpr BBox() = default;
  constexpr BBox(Vec2 min_, Vec2 max_) : min(min_), max(max_) {}

  /// True if no point was ever added.
  constexpr bool empty() const { return min.x > max.x || min.y > max.y; }

  constexpr double width() const { return empty() ? 0.0 : max.x - min.x; }
  constexpr double height() const { return empty() ? 0.0 : max.y - min.y; }
  constexpr double area() const { return width() * height(); }
  constexpr Vec2 center() const {
    return {(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
  }

  /// Grow the box to contain `p`.
  constexpr void extend(Vec2 p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  /// Grow the box to contain another box.
  constexpr void extend(const BBox& o) {
    if (o.empty()) return;
    extend(o.min);
    extend(o.max);
  }

  /// Grow the box outward by `margin` meters on every side.
  constexpr BBox inflated(double margin) const {
    return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }

  /// Inclusive containment test.
  constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Closest point inside the box to `p`.
  constexpr Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }
};

}  // namespace uniloc::geo
