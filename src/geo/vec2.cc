#include "geo/vec2.h"

#include <numbers>

namespace uniloc::geo {

double wrap_angle(double a) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  a = std::fmod(a, two_pi);
  if (a > std::numbers::pi) a -= two_pi;
  if (a <= -std::numbers::pi) a += two_pi;
  return a;
}

double angle_diff(double a, double b) { return wrap_angle(a - b); }

}  // namespace uniloc::geo
