// Geographic coordinates and conversion to the local metric frame.
//
// GPS reports latitude/longitude in the geographic coordinate system; the
// fingerprinting and PDR schemes work in the local map frame. UniLoc
// converts GPS output to the map frame "by the public digital map
// information" (paper Sec. IV-B) -- here, an equirectangular local-tangent
// projection anchored at a reference point, which is accurate to well under
// a centimeter over campus-sized extents.
#pragma once

#include "geo/vec2.h"

namespace uniloc::geo {

struct LatLon {
  double lat_deg{0.0};
  double lon_deg{0.0};
  constexpr bool operator==(const LatLon&) const = default;
};

/// Local tangent-plane frame anchored at a geographic reference point.
class LocalFrame {
 public:
  LocalFrame() = default;
  explicit LocalFrame(LatLon anchor);

  LatLon anchor() const { return anchor_; }

  /// Geographic -> local metric (x east, y north, meters).
  Vec2 to_local(LatLon g) const;

  /// Local metric -> geographic.
  LatLon to_geo(Vec2 p) const;

 private:
  LatLon anchor_{};
  double meters_per_deg_lat_{110574.0};
  double meters_per_deg_lon_{111320.0};
};

/// Great-circle-free small-extent distance between two geographic points,
/// using the equirectangular approximation (meters).
double geo_distance_m(LatLon a, LatLon b);

}  // namespace uniloc::geo
