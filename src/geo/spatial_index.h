// Uniform-grid spatial indexes for points and segments.
//
// The hot loops (fusion reweighting against fingerprints, wall-crossing
// tests for 300 particles, local-density feature queries) are all
// proximity queries; a bucket grid turns their linear scans into
// constant-time neighborhood lookups.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/bbox.h"
#include "geo/grid.h"
#include "geo/segment.h"
#include "geo/vec2.h"

namespace uniloc::geo {

/// Index over a fixed set of points (identified by their insertion index).
class PointIndex {
 public:
  PointIndex() = default;
  /// `cell_size` should be on the order of the typical query radius.
  PointIndex(const std::vector<Vec2>& points, double cell_size);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Index of the nearest point to `q` (size() when empty).
  std::size_t nearest(Vec2 q) const;

  /// Indices of all points within `radius` of `q` (unordered).
  std::vector<std::size_t> within(Vec2 q, double radius) const;

  /// Indices of the k nearest points, ascending by distance.
  std::vector<std::size_t> k_nearest(Vec2 q, std::size_t k) const;

  /// within() into a caller-owned buffer (cleared first); identical
  /// candidate order, no per-query allocation once `out` has capacity.
  void within_into(Vec2 q, double radius, std::vector<std::size_t>& out) const;

  /// k_nearest() into a caller-owned buffer: the same radius-doubling
  /// search and sort, so the result sequence is identical to k_nearest().
  void k_nearest_into(Vec2 q, std::size_t k,
                      std::vector<std::size_t>& out) const;

 private:
  std::vector<Vec2> points_;
  Grid grid_;
  std::vector<std::vector<std::size_t>> buckets_;
};

/// Index over a fixed set of segments (e.g. walls).
class SegmentIndex {
 public:
  SegmentIndex() = default;
  SegmentIndex(std::vector<Segment> segments, double cell_size);

  std::size_t size() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }
  const std::vector<Segment>& segments() const { return segments_; }

  /// True if the move a -> b crosses any indexed segment.
  bool crosses(Vec2 a, Vec2 b) const;

 private:
  std::vector<Segment> segments_;
  Grid grid_;
  std::vector<std::vector<std::size_t>> buckets_;
};

}  // namespace uniloc::geo
