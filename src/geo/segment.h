// Line-segment geometry: intersection tests used by the wall-aware
// particle filter (a particle step that crosses a wall is impossible).
#pragma once

#include <optional>

#include "geo/vec2.h"

namespace uniloc::geo {

struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return distance(a, b); }
  Vec2 midpoint() const { return (a + b) * 0.5; }
};

/// True if segments [p1,p2] and [q1,q2] intersect (including touching).
bool segments_intersect(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2);

/// Intersection point of the two segments, if any. For collinear overlap
/// an arbitrary shared point is returned.
std::optional<Vec2> segment_intersection(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2);

/// Distance from point `p` to segment [a,b].
double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

}  // namespace uniloc::geo
