#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace uniloc::geo {

namespace {

BBox bounds_of(const std::vector<Vec2>& pts) {
  BBox box;
  for (const Vec2& p : pts) box.extend(p);
  if (box.empty()) box = {{0.0, 0.0}, {1.0, 1.0}};
  return box.inflated(1.0);
}

}  // namespace

PointIndex::PointIndex(const std::vector<Vec2>& points, double cell_size)
    : points_(points), grid_(bounds_of(points), std::max(0.1, cell_size)) {
  buckets_.resize(grid_.num_cells());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    buckets_[grid_.flat_of(points_[i])].push_back(i);
  }
}

std::size_t PointIndex::nearest(Vec2 q) const {
  if (points_.empty()) return 0;
  // Expand rings of cells around the query until a hit is found, then one
  // more ring to guarantee correctness (a closer point can sit in the
  // next ring at diagonal cells).
  const CellIndex c0 = grid_.cell_of(q);
  std::size_t best = points_.size();
  double best_d2 = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(grid_.nx(), grid_.ny());
  for (int ring = 0; ring <= max_ring; ++ring) {
    bool any_cell = false;
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const CellIndex c{c0.ix + dx, c0.iy + dy};
        if (!grid_.valid(c)) continue;
        any_cell = true;
        for (std::size_t i : buckets_[grid_.flat(c)]) {
          const double d2 = distance2(points_[i], q);
          if (d2 < best_d2) {
            best_d2 = d2;
            best = i;
          }
        }
      }
    }
    if (best != points_.size() &&
        static_cast<double>(ring) * grid_.cell_size() >
            std::sqrt(best_d2) + grid_.cell_size()) {
      break;  // no closer point can exist beyond this ring
    }
    if (!any_cell && ring > 0 && best != points_.size()) break;
  }
  return best;
}

std::vector<std::size_t> PointIndex::within(Vec2 q, double radius) const {
  std::vector<std::size_t> out;
  within_into(q, radius, out);
  return out;
}

void PointIndex::within_into(Vec2 q, double radius,
                             std::vector<std::size_t>& out) const {
  out.clear();
  if (points_.empty()) return;
  // A radius query can match every indexed point; reserving that bound
  // once keeps callers that reuse `out` as scratch allocation-free in
  // steady state (tests/test_perf_contracts.cc).
  if (out.capacity() < points_.size()) out.reserve(points_.size());
  const CellIndex lo = grid_.cell_of({q.x - radius, q.y - radius});
  const CellIndex hi = grid_.cell_of({q.x + radius, q.y + radius});
  const double r2 = radius * radius;
  for (int iy = lo.iy; iy <= hi.iy; ++iy) {
    for (int ix = lo.ix; ix <= hi.ix; ++ix) {
      for (std::size_t i : buckets_[grid_.flat({ix, iy})]) {
        if (distance2(points_[i], q) <= r2) out.push_back(i);
      }
    }
  }
}

std::vector<std::size_t> PointIndex::k_nearest(Vec2 q, std::size_t k) const {
  std::vector<std::size_t> out;
  k_nearest_into(q, k, out);
  return out;
}

void PointIndex::k_nearest_into(Vec2 q, std::size_t k,
                                std::vector<std::size_t>& out) const {
  out.clear();
  if (points_.empty() || k == 0) return;
  // Grow the search radius until at least k candidates are inside, then
  // sort by distance.
  double radius = grid_.cell_size();
  // A radius that provably covers every indexed point, even when the
  // query lies outside the grid bounds.
  const double cover = std::hypot(grid_.bounds().width(),
                                  grid_.bounds().height()) +
                       distance(q, grid_.bounds().center());
  while (out.size() < std::min(k, points_.size()) && radius < cover) {
    within_into(q, radius, out);
    radius *= 2.0;
  }
  if (out.size() < std::min(k, points_.size())) {
    within_into(q, cover, out);
  }
  std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
    return distance2(points_[a], q) < distance2(points_[b], q);
  });
  if (out.size() > k) out.resize(k);
}

SegmentIndex::SegmentIndex(std::vector<Segment> segments, double cell_size)
    : segments_(std::move(segments)) {
  BBox box;
  for (const Segment& s : segments_) {
    box.extend(s.a);
    box.extend(s.b);
  }
  if (box.empty()) box = {{0.0, 0.0}, {1.0, 1.0}};
  grid_ = Grid(box.inflated(1.0), std::max(0.1, cell_size));
  buckets_.resize(grid_.num_cells());
  // Register each segment in every cell its bounding box touches
  // (conservative, simple, fine for near-axis-aligned walls).
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    const CellIndex lo = grid_.cell_of({std::min(s.a.x, s.b.x),
                                        std::min(s.a.y, s.b.y)});
    const CellIndex hi = grid_.cell_of({std::max(s.a.x, s.b.x),
                                        std::max(s.a.y, s.b.y)});
    for (int iy = lo.iy; iy <= hi.iy; ++iy) {
      for (int ix = lo.ix; ix <= hi.ix; ++ix) {
        buckets_[grid_.flat({ix, iy})].push_back(i);
      }
    }
  }
}

bool SegmentIndex::crosses(Vec2 a, Vec2 b) const {
  if (segments_.empty()) return false;
  const CellIndex lo = grid_.cell_of({std::min(a.x, b.x), std::min(a.y, b.y)});
  const CellIndex hi = grid_.cell_of({std::max(a.x, b.x), std::max(a.y, b.y)});
  for (int iy = lo.iy; iy <= hi.iy; ++iy) {
    for (int ix = lo.ix; ix <= hi.ix; ++ix) {
      for (std::size_t i : buckets_[grid_.flat({ix, iy})]) {
        if (segments_intersect(a, b, segments_[i].a, segments_[i].b)) {
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace uniloc::geo
