// 2-D vector / point type used throughout UniLoc.
//
// All world coordinates are expressed in a local metric frame (meters,
// x east, y north). Conversions to/from geographic coordinates live in
// latlon.h.
#pragma once

#include <cmath>

namespace uniloc::geo {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// Z component of the 3-D cross product (signed parallelogram area).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  /// Squared Euclidean norm.
  constexpr double norm2() const { return x * x + y * y; }
  /// Euclidean norm.
  double norm() const { return std::sqrt(norm2()); }
  /// Unit vector in the same direction; returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Perpendicular vector (rotated +90 degrees counter-clockwise).
  constexpr Vec2 perp() const { return {-y, x}; }
  /// Heading of this vector in radians, measured counter-clockwise from +x.
  double angle() const { return std::atan2(y, x); }
  /// Rotate by `rad` radians counter-clockwise.
  Vec2 rotated(double rad) const {
    const double c = std::cos(rad), s = std::sin(rad);
    return {c * x - s * y, s * x + c * y};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Squared Euclidean distance between two points.
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Linear interpolation: t=0 -> a, t=1 -> b.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// Smallest signed difference between two angles, result in (-pi, pi].
double angle_diff(double a, double b);

/// Wrap an angle into (-pi, pi].
double wrap_angle(double a);

using Point = Vec2;

}  // namespace uniloc::geo
