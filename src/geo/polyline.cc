#include "geo/polyline.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uniloc::geo {

Polyline::Polyline(std::vector<Vec2> pts) {
  pts_.reserve(pts.size());
  for (const Vec2& p : pts) {
    if (!pts_.empty() && distance2(pts_.back(), p) < 1e-18) continue;
    pts_.push_back(p);
    bounds_.extend(p);
  }
  cum_.resize(pts_.size());
  double s = 0.0;
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    if (i > 0) s += distance(pts_[i - 1], pts_[i]);
    cum_[i] = s;
  }
}

std::size_t Polyline::segment_of(double s) const {
  assert(pts_.size() >= 2);
  // First vertex with cum_ > s, minus one; clamp to a valid segment index.
  auto it = std::upper_bound(cum_.begin(), cum_.end(), s);
  std::size_t idx = static_cast<std::size_t>(it - cum_.begin());
  if (idx == 0) return 0;
  if (idx >= pts_.size()) return pts_.size() - 2;
  return idx - 1;
}

Vec2 Polyline::point_at(double s) const {
  if (pts_.empty()) return {};
  if (pts_.size() == 1) return pts_[0];
  s = std::clamp(s, 0.0, length());
  const std::size_t i = segment_of(s);
  const double seg_len = cum_[i + 1] - cum_[i];
  const double t = seg_len > 0.0 ? (s - cum_[i]) / seg_len : 0.0;
  return lerp(pts_[i], pts_[i + 1], t);
}

Vec2 Polyline::tangent_at(double s) const {
  if (pts_.size() < 2) return {1.0, 0.0};
  s = std::clamp(s, 0.0, length());
  const std::size_t i = segment_of(s);
  return (pts_[i + 1] - pts_[i]).normalized();
}

double Polyline::heading_at(double s) const { return tangent_at(s).angle(); }

Projection Polyline::project(Vec2 p) const {
  Projection best;
  best.distance = std::numeric_limits<double>::infinity();
  if (pts_.empty()) return best;
  if (pts_.size() == 1) {
    return {0.0, pts_[0], distance(p, pts_[0]), 0};
  }
  for (std::size_t i = 0; i + 1 < pts_.size(); ++i) {
    const Vec2 a = pts_[i], b = pts_[i + 1];
    const Vec2 ab = b - a;
    const double len2 = ab.norm2();
    double t = len2 > 0.0 ? std::clamp((p - a).dot(ab) / len2, 0.0, 1.0) : 0.0;
    const Vec2 q = lerp(a, b, t);
    const double d = distance(p, q);
    if (d < best.distance) {
      best.distance = d;
      best.point = q;
      best.arclen = cum_[i] + t * std::sqrt(len2);
      best.segment = i;
    }
  }
  return best;
}

std::vector<Vec2> Polyline::sample(double spacing) const {
  std::vector<Vec2> out;
  if (pts_.empty()) return out;
  const double L = length();
  if (L <= 0.0 || spacing <= 0.0) return {pts_.front()};
  const auto n = static_cast<std::size_t>(std::floor(L / spacing));
  out.reserve(n + 2);
  for (std::size_t i = 0; i <= n; ++i) {
    out.push_back(point_at(static_cast<double>(i) * spacing));
  }
  if (distance(out.back(), pts_.back()) > 1e-9) out.push_back(pts_.back());
  return out;
}

void Polyline::append(const Polyline& other) {
  std::vector<Vec2> merged = pts_;
  merged.insert(merged.end(), other.pts_.begin(), other.pts_.end());
  *this = Polyline(std::move(merged));
}

}  // namespace uniloc::geo
