#include "geo/latlon.h"

#include <cmath>
#include <numbers>

namespace uniloc::geo {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
// WGS-84 derived constants for the equirectangular approximation.
constexpr double kMetersPerDegLat = 110574.0;
constexpr double kMetersPerDegLonEquator = 111320.0;
}  // namespace

LocalFrame::LocalFrame(LatLon anchor) : anchor_(anchor) {
  meters_per_deg_lat_ = kMetersPerDegLat;
  meters_per_deg_lon_ =
      kMetersPerDegLonEquator * std::cos(anchor.lat_deg * kDegToRad);
}

Vec2 LocalFrame::to_local(LatLon g) const {
  return {(g.lon_deg - anchor_.lon_deg) * meters_per_deg_lon_,
          (g.lat_deg - anchor_.lat_deg) * meters_per_deg_lat_};
}

LatLon LocalFrame::to_geo(Vec2 p) const {
  return {anchor_.lat_deg + p.y / meters_per_deg_lat_,
          anchor_.lon_deg + p.x / meters_per_deg_lon_};
}

double geo_distance_m(LatLon a, LatLon b) {
  const double mean_lat = (a.lat_deg + b.lat_deg) / 2.0 * kDegToRad;
  const double dx =
      (a.lon_deg - b.lon_deg) * kMetersPerDegLonEquator * std::cos(mean_lat);
  const double dy = (a.lat_deg - b.lat_deg) * kMetersPerDegLat;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace uniloc::geo
