// Uniform 2-D grid over a bounding box.
//
// Used to discretize a place into "locations" (the l_1..l_I of the paper's
// BMA formulation, Eq. 3-4), to histogram particles, and to accumulate
// posterior mass per cell.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/bbox.h"
#include "geo/vec2.h"

namespace uniloc::geo {

struct CellIndex {
  int ix{0};
  int iy{0};
  constexpr bool operator==(const CellIndex&) const = default;
};

class Grid {
 public:
  Grid() = default;
  /// Cover `bounds` with square cells of side `cell_size` meters.
  Grid(const BBox& bounds, double cell_size);

  double cell_size() const { return cell_size_; }
  const BBox& bounds() const { return bounds_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t num_cells() const {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  }

  /// Cell containing point `p` (clamped to the grid edge).
  CellIndex cell_of(Vec2 p) const;

  /// Flat index of a cell (row-major).
  std::size_t flat(CellIndex c) const {
    return static_cast<std::size_t>(c.iy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(c.ix);
  }

  /// Flat index of the cell containing `p`.
  std::size_t flat_of(Vec2 p) const { return flat(cell_of(p)); }

  /// Cell from a flat index.
  CellIndex unflat(std::size_t i) const {
    return {static_cast<int>(i % static_cast<std::size_t>(nx_)),
            static_cast<int>(i / static_cast<std::size_t>(nx_))};
  }

  /// Center point of a cell.
  Vec2 center(CellIndex c) const;
  Vec2 center(std::size_t flat_index) const { return center(unflat(flat_index)); }

  /// True if the index addresses a cell inside the grid.
  bool valid(CellIndex c) const {
    return c.ix >= 0 && c.ix < nx_ && c.iy >= 0 && c.iy < ny_;
  }

  /// Centers of all cells in row-major order.
  std::vector<Vec2> all_centers() const;

 private:
  BBox bounds_;
  double cell_size_{1.0};
  int nx_{0};
  int ny_{0};
};

}  // namespace uniloc::geo
