#include "geo/segment.h"

#include <algorithm>
#include <cmath>

namespace uniloc::geo {

namespace {

/// Orientation of the triplet (a, b, c): >0 CCW, <0 CW, 0 collinear.
double orient(Vec2 a, Vec2 b, Vec2 c) { return (b - a).cross(c - a); }

bool on_segment(Vec2 a, Vec2 b, Vec2 p) {
  return std::min(a.x, b.x) - 1e-12 <= p.x && p.x <= std::max(a.x, b.x) + 1e-12 &&
         std::min(a.y, b.y) - 1e-12 <= p.y && p.y <= std::max(a.y, b.y) + 1e-12;
}

}  // namespace

bool segments_intersect(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2) {
  const double o1 = orient(p1, p2, q1);
  const double o2 = orient(p1, p2, q2);
  const double o3 = orient(q1, q2, p1);
  const double o4 = orient(q1, q2, p2);
  if (((o1 > 0.0) != (o2 > 0.0)) && ((o3 > 0.0) != (o4 > 0.0)) &&
      o1 != 0.0 && o2 != 0.0 && o3 != 0.0 && o4 != 0.0) {
    return true;
  }
  // Collinear / touching cases.
  if (o1 == 0.0 && on_segment(p1, p2, q1)) return true;
  if (o2 == 0.0 && on_segment(p1, p2, q2)) return true;
  if (o3 == 0.0 && on_segment(q1, q2, p1)) return true;
  if (o4 == 0.0 && on_segment(q1, q2, p2)) return true;
  return false;
}

std::optional<Vec2> segment_intersection(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2) {
  if (!segments_intersect(p1, p2, q1, q2)) return std::nullopt;
  const Vec2 r = p2 - p1;
  const Vec2 s = q2 - q1;
  const double denom = r.cross(s);
  if (std::fabs(denom) < 1e-15) {
    // Collinear overlap: return the endpoint that lies on the other
    // segment.
    if (on_segment(p1, p2, q1)) return q1;
    if (on_segment(p1, p2, q2)) return q2;
    return p1;
  }
  const double t = (q1 - p1).cross(s) / denom;
  return p1 + r * t;
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 <= 0.0) return distance(p, a);
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return distance(p, a + ab * t);
}

}  // namespace uniloc::geo
