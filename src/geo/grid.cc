#include "geo/grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uniloc::geo {

Grid::Grid(const BBox& bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  assert(cell_size > 0.0);
  assert(!bounds.empty());
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_size)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_size)));
}

CellIndex Grid::cell_of(Vec2 p) const {
  int ix = static_cast<int>(std::floor((p.x - bounds_.min.x) / cell_size_));
  int iy = static_cast<int>(std::floor((p.y - bounds_.min.y) / cell_size_));
  ix = std::clamp(ix, 0, nx_ - 1);
  iy = std::clamp(iy, 0, ny_ - 1);
  return {ix, iy};
}

Vec2 Grid::center(CellIndex c) const {
  return {bounds_.min.x + (c.ix + 0.5) * cell_size_,
          bounds_.min.y + (c.iy + 0.5) * cell_size_};
}

std::vector<Vec2> Grid::all_centers() const {
  std::vector<Vec2> out;
  out.reserve(num_cells());
  for (int iy = 0; iy < ny_; ++iy) {
    for (int ix = 0; ix < nx_; ++ix) out.push_back(center({ix, iy}));
  }
  return out;
}

}  // namespace uniloc::geo
