// Smartphone energy accounting (paper Sec. IV-C and Table IV).
//
// Substitution note (DESIGN.md): the paper measures with a Monsoon power
// monitor; we use a parametric *marginal* power model calibrated to the
// paper's relative magnitudes. Marginal means: the cellular modem is
// always on in normal phone usage, so cellular scanning costs ~nothing
// extra; WiFi scanning adds a modest scan cost; the IMU is cheap; GPS
// dominates. The paper's headline claims are relative (UniLoc =
// motion-PDR + ~14%; duty-cycling halves GPS energy outdoors) and they
// survive this substitution.
#pragma once

#include <string>
#include <vector>

#include "core/runner.h"

namespace uniloc::energy {

struct EnergyParams {
  // Marginal subsystem powers (mW).
  double imu_mw = 32.0;
  double wifi_scan_mw = 8.0;   ///< Marginal over normal phone usage.
  double cell_scan_mw = 2.0;   ///< Modem already on for normal usage.
  double gps_mw = 385.0;
  double cpu_preprocess_mw = 22.0;  ///< Step-model inference on the phone.
  double display_upload_mw = 14.0;  ///< Radio TX of intermediate results.

  // Offloading payload sizes (bytes per epoch), reconciled with the wire
  // encodings in offload/payload.h that serialize_uplink actually emits
  // (tests/test_energy_io.cc pins the agreement):
  //   motion  = StepPayload::kBytes (4)
  //   per AP / per cell tower = 3 (2-byte id + 1-byte RSSI, ScanPayload)
  //   gps     = GpsPayload::kBytes (10)
  //   downlink= DownlinkFrame::kBytes (8)
  double motion_payload_b = 4.0;    ///< Paper: four bytes per 0.5 s.
  double per_ap_payload_b = 3.0;    ///< Per audible WiFi AP reading.
  double per_cell_payload_b = 3.0;  ///< Per audible cell tower reading.
  double gps_payload_b = 10.0;
  double downlink_payload_b = 8.0;
  double tx_uj_per_byte = 4.0;      ///< Radio energy per transmitted byte.
};

struct EnergyRow {
  std::string scheme;
  double power_mw{0.0};   ///< Average power while localizing.
  double time_s{0.0};     ///< Active time over the walk.
  double energy_j{0.0};
};

/// Per-scheme energy over a recorded walk. `epoch_s` is the step period.
/// Produces one row per individual scheme plus "UniLoc w/o GPS" and
/// "UniLoc w/ GPS" (GPS row counts only outdoor time with the receiver
/// on, matching the paper: GPS is off indoors even standalone).
std::vector<EnergyRow> account_energy(const core::RunResult& run,
                                      double epoch_s,
                                      const EnergyParams& p = {});

/// Energy the default always-on GPS scheme would burn outdoors vs what
/// UniLoc's duty-cycled GPS burned; ratio is the paper's "2.1x" claim.
struct GpsSavings {
  double always_on_j{0.0};
  double duty_cycled_j{0.0};
  double ratio{0.0};
};
GpsSavings gps_savings(const core::RunResult& run, double epoch_s,
                       const EnergyParams& p = {});

}  // namespace uniloc::energy
