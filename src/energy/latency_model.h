// Response-time decomposition (paper Sec. V-D and Table V).
//
// One location estimate = phone-side sensing/pre-processing + uplink +
// server-side scheme execution (parallel, so max over schemes) + error
// prediction + BMA + downlink. Scheme/ensemble compute times are measured
// on this machine by the caller (table5 bench times the real
// implementations); network latencies are constants representative of a
// campus WLAN, as in the paper.
#pragma once

#include <string>
#include <vector>

namespace uniloc::energy {

struct LatencyParams {
  double phone_sense_ms = 18.0;      ///< Sensor read + step-model inference.
  double uplink_ms = 52.0;           ///< WiFi/cellular upload.
  double downlink_ms = 63.0;         ///< Result push (paper: 63 ms).
};

struct SchemeCompute {
  std::string name;
  double server_ms{0.0};         ///< Measured scheme execution time.
  double error_prediction_ms{0.0};  ///< Measured feature+prediction time.
};

struct ResponseTimeReport {
  std::vector<SchemeCompute> schemes;
  double bma_ms{0.0};
  double phone_ms{0.0};
  double uplink_ms{0.0};
  double downlink_ms{0.0};

  /// Server compute = slowest scheme (parallel execution) + total error
  /// prediction + BMA.
  double server_ms() const;
  double total_ms() const;
  /// Fraction of the total spent in data transmissions.
  double transmission_fraction() const;
};

/// Assemble the report from measured compute times and the constants.
ResponseTimeReport make_report(std::vector<SchemeCompute> schemes,
                               double bma_ms, const LatencyParams& p = {});

}  // namespace uniloc::energy
