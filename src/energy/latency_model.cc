#include "energy/latency_model.h"

#include <algorithm>

namespace uniloc::energy {

double ResponseTimeReport::server_ms() const {
  double slowest = 0.0;
  double prediction = 0.0;
  for (const SchemeCompute& s : schemes) {
    slowest = std::max(slowest, s.server_ms);
    prediction += s.error_prediction_ms;
  }
  return slowest + prediction + bma_ms;
}

double ResponseTimeReport::total_ms() const {
  return phone_ms + uplink_ms + server_ms() + downlink_ms;
}

double ResponseTimeReport::transmission_fraction() const {
  const double total = total_ms();
  return total > 0.0 ? (uplink_ms + downlink_ms) / total : 0.0;
}

ResponseTimeReport make_report(std::vector<SchemeCompute> schemes,
                               double bma_ms, const LatencyParams& p) {
  ResponseTimeReport r;
  r.schemes = std::move(schemes);
  r.bma_ms = bma_ms;
  r.phone_ms = p.phone_sense_ms;
  r.uplink_ms = p.uplink_ms;
  r.downlink_ms = p.downlink_ms;
  return r;
}

}  // namespace uniloc::energy
