#include "energy/energy_model.h"

#include <cmath>

namespace uniloc::energy {

namespace {

/// Average per-epoch WiFi+cell payload from availability stats.
struct EpochStats {
  double total_s{0.0};
  double outdoor_s{0.0};
  double gps_on_outdoor_s{0.0};
  double mean_wifi_count{0.0};
  double mean_cell_count{0.0};
  std::size_t epochs{0};
};

EpochStats stats_of(const core::RunResult& run, double epoch_s) {
  EpochStats s;
  s.epochs = run.epochs.size();
  s.total_s = static_cast<double>(s.epochs) * epoch_s;
  for (const core::EpochRecord& e : run.epochs) {
    if (!e.indoor_truth) {
      s.outdoor_s += epoch_s;
      if (e.gps_was_enabled) s.gps_on_outdoor_s += epoch_s;
    }
    s.mean_wifi_count += static_cast<double>(e.wifi_count);
    s.mean_cell_count += static_cast<double>(e.cell_count);
  }
  if (s.epochs > 0) {
    s.mean_wifi_count /= static_cast<double>(s.epochs);
    s.mean_cell_count /= static_cast<double>(s.epochs);
  }
  return s;
}

EnergyRow make_row(std::string name, double energy_j, double time_s) {
  EnergyRow r;
  r.scheme = std::move(name);
  r.energy_j = energy_j;
  r.time_s = time_s;
  r.power_mw = time_s > 0.0 ? energy_j / time_s * 1000.0 : 0.0;
  return r;
}

}  // namespace

std::vector<EnergyRow> account_energy(const core::RunResult& run,
                                      double epoch_s, const EnergyParams& p) {
  const EpochStats s = stats_of(run, epoch_s);
  const double n = static_cast<double>(s.epochs);
  const double tx_j = p.tx_uj_per_byte * 1e-6;

  // Upload volume follows the actually-audible transmitter counts
  // recorded per epoch.
  const double wifi_upload_j =
      n * s.mean_wifi_count * p.per_ap_payload_b * tx_j;
  const double cell_upload_j =
      n * s.mean_cell_count * p.per_cell_payload_b * tx_j;
  const double motion_upload_j = n * p.motion_payload_b * tx_j;
  const double downlink_j = n * p.downlink_payload_b * tx_j;

  const double mw2w = 1e-3;
  std::vector<EnergyRow> rows;

  // Individual schemes, matching Table IV's rows.
  // GPS runs (and transmits) only while outdoors.
  const double gps_epochs = s.outdoor_s / epoch_s;
  rows.push_back(make_row(
      "GPS",
      (p.gps_mw * mw2w) * s.outdoor_s +
          gps_epochs * (p.gps_payload_b + p.downlink_payload_b) * tx_j,
      s.outdoor_s));
  rows.push_back(make_row(
      "WiFi",
      (p.wifi_scan_mw + p.display_upload_mw) * mw2w * s.total_s +
          wifi_upload_j + downlink_j,
      s.total_s));
  rows.push_back(make_row(
      "Cellular",
      (p.cell_scan_mw + p.display_upload_mw) * mw2w * s.total_s +
          cell_upload_j + downlink_j,
      s.total_s));
  const double motion_j =
      (p.imu_mw + p.cpu_preprocess_mw + p.display_upload_mw) * mw2w *
          s.total_s +
      motion_upload_j + downlink_j;
  rows.push_back(make_row("Motion", motion_j, s.total_s));
  const double fusion_j = motion_j + p.wifi_scan_mw * mw2w * s.total_s +
                          wifi_upload_j;
  rows.push_back(make_row("Fusion", fusion_j, s.total_s));

  // UniLoc: all five run in parallel; shared sensors are sensed once.
  const double uniloc_wo_gps_j =
      (p.imu_mw + p.cpu_preprocess_mw + p.wifi_scan_mw + p.cell_scan_mw +
       p.display_upload_mw) *
          mw2w * s.total_s +
      wifi_upload_j + cell_upload_j + motion_upload_j + downlink_j;
  rows.push_back(make_row("UniLoc w/o GPS", uniloc_wo_gps_j, s.total_s));
  const double uniloc_gps_j =
      uniloc_wo_gps_j + p.gps_mw * mw2w * s.gps_on_outdoor_s +
      (s.gps_on_outdoor_s / epoch_s) * p.gps_payload_b * tx_j;
  rows.push_back(make_row("UniLoc w/ GPS", uniloc_gps_j, s.total_s));
  return rows;
}

GpsSavings gps_savings(const core::RunResult& run, double epoch_s,
                       const EnergyParams& p) {
  const EpochStats s = stats_of(run, epoch_s);
  GpsSavings g;
  g.always_on_j = p.gps_mw * 1e-3 * s.outdoor_s;
  g.duty_cycled_j = p.gps_mw * 1e-3 * s.gps_on_outdoor_s;
  g.ratio = g.duty_cycled_j > 0.0 ? g.always_on_j / g.duty_cycled_j : 0.0;
  return g;
}

}  // namespace uniloc::energy
