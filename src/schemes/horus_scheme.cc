#include "schemes/horus_scheme.h"

#include <algorithm>
#include <cmath>

namespace uniloc::schemes {

HorusScheme::HorusScheme(const FingerprintDatabase* db, Options opts)
    : db_(db), opts_(opts) {}

void HorusScheme::reset(const StartCondition&) {}

double HorusScheme::log_likelihood(const std::vector<sim::ApReading>& scan,
                                   const Fingerprint& fp) const {
  const double inv_two_sig2 =
      1.0 / (2.0 * opts_.rssi_sigma_db * opts_.rssi_sigma_db);
  const double miss = opts_.missing_penalty * opts_.missing_penalty / 2.0;
  double ll = 0.0;
  std::size_t shared = 0;
  for (const sim::ApReading& r : scan) {
    const auto it = fp.rssi.find(r.id);
    if (it == fp.rssi.end()) {
      ll -= miss;  // AP heard online but absent offline
      continue;
    }
    ++shared;
    const double d = r.rssi_dbm - it->second;
    ll -= d * d * inv_two_sig2;
  }
  for (const auto& [id, rssi] : fp.rssi) {
    (void)rssi;
    const bool in_scan = std::any_of(
        scan.begin(), scan.end(),
        [id = id](const sim::ApReading& r) { return r.id == id; });
    if (!in_scan) ll -= miss;  // AP expected offline but silent online
  }
  if (shared == 0) return -1e18;
  return ll;
}

SchemeOutput HorusScheme::update(const sim::SensorFrame& frame) {
  SchemeOutput out;
  const std::vector<sim::ApReading>& scan =
      db_->source() == FingerprintDatabase::Source::kWifi ? frame.wifi
                                                          : frame.cell;
  if (scan.size() < opts_.min_transmitters || db_->empty()) return out;

  // Log-likelihood per fingerprint; keep the top-K as posterior support.
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(db_->size());
  for (std::size_t i = 0; i < db_->size(); ++i) {
    const double ll = log_likelihood(scan, db_->fingerprints()[i]);
    if (ll > -1e17) scored.emplace_back(ll, i);
  }
  if (scored.empty()) return out;
  const std::size_t k = std::min(opts_.top_k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(), std::greater<>());

  out.available = true;
  // MAP fingerprint is the point estimate (as in Horus).
  out.estimate = db_->fingerprints()[scored[0].second].pos;
  const double best_ll = scored[0].first;
  for (std::size_t i = 0; i < k; ++i) {
    out.posterior.support.push_back(
        {db_->fingerprints()[scored[i].second].pos,
         std::exp(scored[i].first - best_ll)});
  }
  out.posterior.normalize();
  out.observables["num_transmitters"] = static_cast<double>(scan.size());
  out.observables["map_log_likelihood"] = best_ll;
  return out;
}

}  // namespace uniloc::schemes
