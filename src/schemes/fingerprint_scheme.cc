#include "schemes/fingerprint_scheme.h"

#include <cmath>

#include "stats/descriptive.h"

namespace uniloc::schemes {

FingerprintScheme::FingerprintScheme(const FingerprintDatabase* db,
                                     Options opts)
    : db_(db), opts_(opts) {}

std::string FingerprintScheme::name() const {
  return db_->source() == FingerprintDatabase::Source::kWifi ? "WiFi"
                                                             : "Cellular";
}

SchemeFamily FingerprintScheme::family() const {
  return db_->source() == FingerprintDatabase::Source::kWifi
             ? SchemeFamily::kWifiFingerprint
             : SchemeFamily::kCellFingerprint;
}

void FingerprintScheme::reset(const StartCondition&) {
  if (opts_.calibrate_offset) calibrator_ = OffsetCalibrator();
}

SchemeOutput FingerprintScheme::update(const sim::SensorFrame& frame) {
  SchemeOutput out;
  std::vector<sim::ApReading> scan =
      db_->source() == FingerprintDatabase::Source::kWifi ? frame.wifi
                                                          : frame.cell;
  if (scan.size() < opts_.min_transmitters || db_->empty()) return out;
  if (opts_.calibrate_offset) {
    scan = calibrator_.calibrate(std::move(scan), *db_);
  }

  const std::vector<Match> matches = db_->k_nearest(scan, opts_.top_k);
  if (matches.empty()) return out;

  out.available = true;
  out.estimate = db_->fingerprints()[matches[0].index].pos;

  // Softmax posterior over the top-K candidates, relative to the best
  // distance so the temperature acts on the *gap* between candidates.
  const double best = matches[0].distance;
  for (const Match& m : matches) {
    const double w =
        std::exp(-(m.distance - best) / opts_.softmax_scale_db);
    out.posterior.support.push_back({db_->fingerprints()[m.index].pos, w});
  }
  out.posterior.normalize();

  // Public observables mirroring what a deployed RADAR exposes.
  out.observables["num_transmitters"] = static_cast<double>(scan.size());
  std::vector<double> top3;
  for (std::size_t i = 0; i < matches.size() && i < 3; ++i) {
    top3.push_back(matches[i].distance);
  }
  out.observables["top_distance"] = best;
  out.observables["top3_distance_sd"] =
      top3.size() >= 2 ? stats::stddev(top3) : 0.0;
  return out;
}

}  // namespace uniloc::schemes
