#include "schemes/fingerprint_scheme.h"

#include <cmath>

#include "schemes/epoch_context.h"
#include "stats/descriptive.h"

namespace uniloc::schemes {

FingerprintScheme::FingerprintScheme(const FingerprintDatabase* db,
                                     Options opts)
    : db_(db), opts_(opts) {}

std::string FingerprintScheme::name() const {
  return db_->source() == FingerprintDatabase::Source::kWifi ? "WiFi"
                                                             : "Cellular";
}

SchemeFamily FingerprintScheme::family() const {
  return db_->source() == FingerprintDatabase::Source::kWifi
             ? SchemeFamily::kWifiFingerprint
             : SchemeFamily::kCellFingerprint;
}

void FingerprintScheme::reset(const StartCondition&) {
  if (opts_.calibrate_offset) calibrator_ = OffsetCalibrator();
}

SchemeOutput FingerprintScheme::update(const sim::SensorFrame& frame) {
  SchemeOutput out;
  std::vector<sim::ApReading> scan =
      db_->source() == FingerprintDatabase::Source::kWifi ? frame.wifi
                                                          : frame.cell;
  if (scan.size() < opts_.min_transmitters || db_->empty()) return out;
  if (opts_.calibrate_offset) {
    scan = calibrator_.calibrate(std::move(scan), *db_);
  }

  const std::vector<Match> matches = db_->k_nearest(scan, opts_.top_k);
  if (matches.empty()) return out;

  out.available = true;
  out.estimate = db_->fingerprints()[matches[0].index].pos;

  // Softmax posterior over the top-K candidates, relative to the best
  // distance so the temperature acts on the *gap* between candidates.
  const double best = matches[0].distance;
  for (const Match& m : matches) {
    const double w =
        std::exp(-(m.distance - best) / opts_.softmax_scale_db);
    out.posterior.support.push_back({db_->fingerprints()[m.index].pos, w});
  }
  out.posterior.normalize();

  // Public observables mirroring what a deployed RADAR exposes.
  out.observables["num_transmitters"] = static_cast<double>(scan.size());
  std::vector<double> top3;
  for (std::size_t i = 0; i < matches.size() && i < 3; ++i) {
    top3.push_back(matches[i].distance);
  }
  out.observables["top_distance"] = best;
  out.observables["top3_distance_sd"] =
      top3.size() >= 2 ? stats::stddev(top3) : 0.0;
  return out;
}

void FingerprintScheme::update_into(const sim::SensorFrame& frame,
                                    SchemeOutput& out) {
  // Key lengths: "num_transmitters" (16) and "top3_distance_sd" (16)
  // exceed libstdc++'s 15-char SSO buffer, so build them once.
  static const std::string kNumTransmitters = "num_transmitters";
  static const std::string kTopDistance = "top_distance";
  static const std::string kTop3DistanceSd = "top3_distance_sd";

  out.available = false;
  const std::vector<sim::ApReading>& raw =
      db_->source() == FingerprintDatabase::Source::kWifi ? frame.wifi
                                                          : frame.cell;
  if (raw.size() < opts_.min_transmitters || db_->empty()) return;

  const std::vector<sim::ApReading>* scan = &raw;
  if (opts_.calibrate_offset) {
    // Calibration allocates internally (it copies the scan and runs an
    // exact NN query); deployments that enable it trade the zero-alloc
    // guarantee for device-offset robustness.
    scan_buf_.assign(raw.begin(), raw.end());
    scan_buf_ = calibrator_.calibrate(std::move(scan_buf_), *db_);
    scan = &scan_buf_;
  }

  // The raw scan is the one other stages (fusion, the rssi_dist_sd
  // feature) query this epoch, so its candidate evaluation is shared
  // through the epoch context; a calibrated scan is private to this
  // scheme and keeps its private scratch.
  ScanMemo* memo = (epoch_ctx_ != nullptr && scan == &raw)
                       ? epoch_ctx_->memo_for(db_)
                       : nullptr;
  if (memo != nullptr) {
    db_->k_nearest_memo(*scan, opts_.top_k, epoch_ctx_->tag, *memo, matches_);
  } else {
    db_->k_nearest_into(*scan, opts_.top_k, scan_scratch_, matches_);
  }
  if (matches_.empty()) return;

  out.available = true;
  out.estimate = db_->fingerprints()[matches_[0].index].pos;

  const double best = matches_[0].distance;
  out.posterior.support.clear();
  for (const Match& m : matches_) {
    const double w =
        std::exp(-(m.distance - best) / opts_.softmax_scale_db);
    out.posterior.support.push_back({db_->fingerprints()[m.index].pos, w});
  }
  out.posterior.normalize();

  out.observables[kNumTransmitters] = static_cast<double>(scan->size());
  top3_.clear();
  for (std::size_t i = 0; i < matches_.size() && i < 3; ++i) {
    top3_.push_back(matches_[i].distance);
  }
  out.observables[kTopDistance] = best;
  out.observables[kTop3DistanceSd] =
      top3_.size() >= 2 ? stats::stddev(top3_) : 0.0;
}

}  // namespace uniloc::schemes
