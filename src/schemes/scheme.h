// The localization-scheme abstraction.
//
// UniLoc treats every scheme as a black box that turns the current
// SensorFrame into (a) a point estimate, and (b) a posterior
// P(l = l_i | M_n, s_t) over locations -- the quantity the locally-weighted
// BMA of Eq. 3 mixes. A scheme that cannot localize this epoch reports
// available = false and is excluded from the ensemble (its confidence is
// treated as zero, paper Sec. IV-A).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "geo/bbox.h"
#include "geo/grid.h"
#include "geo/vec2.h"
#include "sim/sensor_frame.h"

namespace uniloc::obs {
class MetricsRegistry;
}  // namespace uniloc::obs

namespace uniloc::offload {
class ByteWriter;
class ByteReader;
}  // namespace uniloc::offload

namespace uniloc::schemes {

struct EpochContext;  // schemes/epoch_context.h

/// Codec selection for scheme snapshots, threaded from the checkpoint
/// format version (svc/checkpoint.h). `quantize` selects the fixed-point
/// particle codec (format v2); `venue` supplies its position grid and
/// must be identical between the snapshot and any later re-snapshot of
/// the restored state (the server passes the session's Place bounds,
/// which are immutable for a session's lifetime). The default context
/// selects the lossless f64 codec (format v1) -- the only one permitted
/// for live migration and crash/restore bit-identity.
struct SnapshotContext {
  bool quantize{false};
  geo::BBox venue;
};

/// Families group schemes by the sensor data they consume; every family
/// shares one error-model feature set (paper Table I).
enum class SchemeFamily {
  kGps,
  kWifiFingerprint,
  kCellFingerprint,
  kMotionPdr,
  kFusion,
  kOther,  ///< User-integrated schemes (see examples/custom_scheme.cpp).
};

const char* family_name(SchemeFamily f);

/// Discrete posterior over candidate locations, kept sparse: only cells
/// with non-negligible mass are stored. Weights are normalized to sum to 1.
struct WeightedPoint {
  geo::Vec2 pos;
  double weight{0.0};
};

struct Posterior {
  std::vector<WeightedPoint> support;

  bool empty() const { return support.empty(); }

  /// Normalize weights in place (no-op on empty support).
  void normalize();

  /// Posterior expectation E[l] -- what Eq. 4 evaluates per axis.
  geo::Vec2 mean() const;

  /// RMS distance of support from the mean (posterior spread).
  double spread() const;

  /// Rasterize onto a grid (cell mass = sum of contained support mass).
  std::vector<double> to_grid(const geo::Grid& grid) const;

  /// A single-point posterior.
  static Posterior point(geo::Vec2 p);

  /// Gaussian-kernel posterior around `center` with scale `sigma`,
  /// sampled on a (2r+1)^2 stencil with spacing sigma/2.
  static Posterior gaussian(geo::Vec2 center, double sigma, int r = 3);

  /// gaussian() into a caller-owned posterior: identical support sequence
  /// and weights, but the support buffer's capacity is reused (the fast
  /// epoch path rebuilds the GPS posterior every epoch).
  static void gaussian_into(geo::Vec2 center, double sigma, int r,
                            Posterior& out);
};

struct SchemeOutput {
  bool available{false};
  geo::Vec2 estimate;        ///< Point estimate in the local map frame.
  Posterior posterior;       ///< P(l | M_n, s_t); empty if unavailable.
  /// Scheme-reported auxiliary observables (e.g. GPS "hdop",
  /// "num_satellites"). These mirror what a real scheme exposes in its
  /// public output; UniLoc's feature extractors may read them but never
  /// require scheme internals.
  std::map<std::string, double> observables;
};

/// Known starting state for dead-reckoning style schemes (the paper starts
/// every trace at a known point, as do Travi-Navi and [7]).
struct StartCondition {
  geo::Vec2 pos;
  double heading{0.0};
};

class LocalizationScheme {
 public:
  virtual ~LocalizationScheme() = default;

  virtual std::string name() const = 0;
  virtual SchemeFamily family() const = 0;

  /// Prepare for a new walk starting at `start`.
  virtual void reset(const StartCondition& start) = 0;

  /// Consume one epoch of sensor data and localize.
  virtual SchemeOutput update(const sim::SensorFrame& frame) = 0;

  /// Fast-path variant: localize into a reused output object. The
  /// contract (tests/test_differential.cc) is that every field a consumer
  /// may read is bit-identical to update()'s result; consumers gate on
  /// `out.available`, so implementations may leave stale estimate /
  /// posterior / observables behind when the scheme is unavailable
  /// (DESIGN.md section 11). The default delegates to update() --
  /// correct for any scheme, zero-allocation only where overridden.
  virtual void update_into(const sim::SensorFrame& frame, SchemeOutput& out) {
    out = update(frame);
  }

  /// Install the shared fast-path epoch state (nullptr detaches). The
  /// fast pipeline calls this before each epoch's update_into round so
  /// schemes querying the same sensor scan can share one candidate
  /// evaluation (schemes/epoch_context.h). The context must outlive the
  /// scheme's use of it -- it lives in the session's EpochScratch, whose
  /// lifetime rules (DESIGN.md section 11) already require exactly that.
  /// Default: the scheme keeps no shared state. Only update_into may read
  /// the context; update() must stay context-free (it is the reference
  /// the differential suite compares against).
  virtual void set_epoch_context(EpochContext* ctx) { (void)ctx; }

  /// Attach internal-stage latency instrumentation to `registry`
  /// (nullptr detaches). Default: the scheme has no internal stages worth
  /// timing; Uniloc already times the whole update() call per scheme.
  virtual void attach_metrics(obs::MetricsRegistry* registry) {
    (void)registry;
  }

  /// Serialize the scheme's persistent mutable state (everything reset()
  /// initializes and update() evolves) for a session checkpoint. The
  /// default covers stateless schemes: nothing written, restore succeeds.
  /// Stateful schemes override both; restore_from must consume exactly
  /// the bytes snapshot_into wrote (the caller length-prefixes each
  /// scheme payload and verifies the framing), reject malformed input by
  /// returning false, and leave the scheme usable either way.
  virtual void snapshot_into(offload::ByteWriter& w) const { (void)w; }
  virtual bool restore_from(offload::ByteReader& r) {
    (void)r;
    return true;
  }

  /// Context-aware snapshot codec. Schemes that hold particle state
  /// override these to honor `ctx.quantize`; the defaults delegate to
  /// the context-free pair, so stateless schemes and schemes with no
  /// quantizable state serialize identically under every context.
  virtual void snapshot_into(offload::ByteWriter& w,
                             const SnapshotContext& ctx) const {
    (void)ctx;
    snapshot_into(w);
  }
  virtual bool restore_from(offload::ByteReader& r,
                            const SnapshotContext& ctx) {
    (void)ctx;
    return restore_from(r);
  }

  /// Likelihood-cache query outcomes accumulated by this scheme's fast
  /// path (update_into). Zero for schemes that do no RSSI matching. The
  /// counters live in per-scheme scratch, so concurrent sessions (which
  /// own disjoint scheme instances) never contend.
  virtual std::uint64_t cache_hits() const { return 0; }
  virtual std::uint64_t cache_misses() const { return 0; }
};

using SchemePtr = std::unique_ptr<LocalizationScheme>;

}  // namespace uniloc::schemes
