// PDR front-end: step and orientation inference from raw 50 Hz IMU data.
//
// This is the phone-side pre-processing of the paper's offloading design
// (Sec. IV-C): raw inertial samples are reduced to a walking model --
// step count, step length and heading -- and only those few bytes go to
// the server. It implements:
//   * peak-based step detection with the paper's compensation mechanism
//     ("the normal period of one human walking step is from 0.4 s to
//      0.7 s; if the time duration of one step is less than 0.4 s or
//      larger than 0.7 s, the system will infer a false positive or false
//      negative step, and delete or add one step"),
//   * Weinberg-style step-length estimation from the acceleration
//     envelope,
//   * a gyro+magnetometer complementary filter for heading (random
//     magnetic error averages out over many samples, Sec. III-B).
#pragma once

#include <vector>

#include "offload/bytes.h"
#include "sim/imu_sim.h"

namespace uniloc::schemes {

/// The walking-model update inferred from one epoch of IMU samples
/// (this is the "four bytes every 0.5 s" payload of the offloading path).
struct StepInference {
  int steps{0};             ///< Steps detected this epoch (>= 0).
  double step_length_m{0.0};///< Estimated length of each step.
  double heading_rad{0.0};  ///< Filtered heading at the end of the epoch.
  double dheading_rad{0.0}; ///< Heading change across the epoch.
};

struct PdrFrontendOptions {
  double peak_threshold{10.9};     ///< Accel magnitude marking a step peak.
  double min_step_period_s{0.4};
  double max_step_period_s{0.7};
  double weinberg_k{0.47};         ///< Step length = K * (amax-amin)^(1/4).
  double gyro_weight{0.98};        ///< Complementary-filter gyro share.
};

class PdrFrontend {
 public:
  PdrFrontend() : PdrFrontend(PdrFrontendOptions{}) {}
  explicit PdrFrontend(PdrFrontendOptions opts);

  /// Initialize the heading filter (known start orientation).
  void reset(double initial_heading);

  /// Process one epoch of samples.
  StepInference process(const std::vector<sim::ImuSample>& imu);

  double heading() const { return heading_; }

  /// Snapshot codec: the heading filter and step-detector state (the
  /// options are configuration and stay as constructed).
  void snapshot_into(offload::ByteWriter& w) const;
  bool restore_from(offload::ByteReader& r);

 private:
  PdrFrontendOptions opts_;
  double heading_{0.0};
  bool heading_init_{false};
  double prev_epoch_heading_{0.0};
  double last_peak_t_{-1.0};
  bool above_{false};
};

}  // namespace uniloc::schemes
