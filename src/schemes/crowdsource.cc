#include "schemes/crowdsource.h"

namespace uniloc::schemes {

FingerprintCrowdsourcer::FingerprintCrowdsourcer(FingerprintDatabase* db,
                                                 Options opts)
    : db_(db), opts_(opts), counts_(db->size(), 0) {}

bool FingerprintCrowdsourcer::contribute(
    geo::Vec2 estimated_pos, double position_error_m,
    const std::vector<sim::ApReading>& scan) {
  if (db_->empty() || scan.empty() ||
      position_error_m > opts_.max_position_error_m) {
    ++rejected_;
    return false;
  }
  const std::size_t idx = db_->nearest_spatial(estimated_pos);
  const Fingerprint& fp = db_->fingerprints()[idx];
  if (geo::distance(fp.pos, estimated_pos) > opts_.max_snap_distance_m) {
    ++rejected_;
    return false;
  }
  for (const sim::ApReading& r : scan) {
    db_->blend_reading(idx, r.id, r.rssi_dbm, opts_.blend);
  }
  ++counts_[idx];
  ++accepted_;
  return true;
}

}  // namespace uniloc::schemes
