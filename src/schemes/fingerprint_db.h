// Offline RSSI fingerprint database (RADAR-style).
//
// Fingerprints are collected along the walkways of a place on a fixed
// spacing (the paper: 1-3 m indoors, ~12 m in open spaces, one sample per
// audible AP). The database answers:
//   * nearest / k-nearest fingerprints in RSSI space (the matching core of
//     RADAR [1] and the cellular scheme [22]),
//   * local fingerprint spatial density (the beta1 error-model feature),
//   * per-fingerprint RSSI distances for particle weighting (Travi-Navi).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geo/spatial_index.h"
#include "geo/vec2.h"
#include "sim/place.h"
#include "sim/radio.h"

namespace uniloc::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace uniloc::obs

namespace uniloc::schemes {

struct Fingerprint {
  geo::Vec2 pos;
  std::map<int, double> rssi;  ///< AP/tower id -> RSSI (dBm).
  bool indoor{true};
};

/// RSSI distance between an online scan and an offline fingerprint:
/// Euclidean over the union of transmitters, with missing readings imputed
/// at `floor_dbm`. Returns a large value when nothing is shared.
double rssi_distance(const std::vector<sim::ApReading>& scan,
                     const Fingerprint& fp, double floor_dbm = -95.0);

struct Match {
  std::size_t index{0};   ///< Fingerprint index.
  double distance{0.0};   ///< RSSI distance.
};

/// Caller-owned working state for the cached matching fast path
/// (k_nearest_into / all_distances_into). One per session/thread: the
/// database itself stays read-only during queries, so concurrent sessions
/// share one immutable cache and keep their mutable state here. All
/// buffers reach steady capacity after the first query against a given
/// database (zero allocations thereafter).
struct ScanScratch {
  std::vector<int> col;             ///< Per scan reading: AP column or -1.
  std::vector<std::uint32_t> stamp; ///< Per column: epoch of last sighting.
  std::uint32_t epoch{0};           ///< Current scan epoch for `stamp`.
  std::uint64_t cache_hits{0};      ///< Queries answered from the cache.
  std::uint64_t cache_misses{0};    ///< Queries that fell back to exact.
  // SIMD batch-scoring lanes (score_batch): per-fingerprint running sum /
  // shared count, and the per-column skip mask (1.0 when the column is NOT
  // in the current scan). Sized on first cached query, reused thereafter.
  std::vector<double> lane_sum2;
  std::vector<double> lane_shared;
  std::vector<double> col_skip;
};

class FingerprintDatabase;

/// One epoch's memoized candidate evaluation against one database
/// (k_nearest_memo). Several pipeline stages query the same database with
/// the same scan and differ only in k; the memo holds the full unsorted
/// candidate array so the evaluation runs once per (epoch, database) and
/// every k is served from it. Owned by the caller like ScanScratch: one
/// per session, never shared across threads.
struct ScanMemo {
  const FingerprintDatabase* db{nullptr};  ///< Database `all` was built on.
  std::uint64_t tag{0};                    ///< Epoch tag `all` is valid for.
  const void* scan_data{nullptr};          ///< Identity of the memoized scan.
  std::size_t scan_size{0};
  std::vector<Match> all;                  ///< Candidates in fp-index order.
  ScanScratch scratch;                     ///< Workspace for the rebuild.
};

class FingerprintDatabase {
 public:
  enum class Source { kWifi, kCellular };

  FingerprintDatabase() = default;

  /// Collect fingerprints along every walkway of `place`:
  /// indoor stretches every `indoor_spacing_m`, outdoor stretches every
  /// `outdoor_spacing_m`. One scan (single sample per AP, matching the
  /// paper's collection protocol) is stored per point.
  static FingerprintDatabase build(const sim::Place& place,
                                   const sim::RadioEnvironment& radio,
                                   Source source, double indoor_spacing_m,
                                   double outdoor_spacing_m,
                                   std::uint64_t seed);

  const std::vector<Fingerprint>& fingerprints() const { return fps_; }
  bool empty() const { return fps_.empty(); }
  std::size_t size() const { return fps_.size(); }
  Source source() const { return source_; }

  /// Imputation level for transmitters missing from a scan/fingerprint:
  /// just below the radio's audibility threshold (-95 dBm WiFi, -115 dBm
  /// cellular -- cellular signals live far below WiFi levels).
  double floor_dbm() const {
    return source_ == Source::kWifi ? -95.0 : -115.0;
  }

  /// k fingerprints with the smallest RSSI distance to `scan`
  /// (ascending). Empty if the database or the scan is empty.
  std::vector<Match> k_nearest(const std::vector<sim::ApReading>& scan,
                               std::size_t k) const;

  /// RSSI distance from `scan` to every fingerprint (index-aligned).
  std::vector<double> all_distances(
      const std::vector<sim::ApReading>& scan) const;

  // ------------------------------------------------------------ fast path
  //
  // The cached variants answer the same queries as k_nearest /
  // all_distances bit-for-bit (tests/test_differential.cc): the per-scan
  // and per-fingerprint summation orders of rssi_distance are replicated
  // exactly over precomputed tables, so no floating-point addition is
  // reordered. When the cache is stale (never built, or invalidated by
  // blend_reading) they fall back to the exact reference computation and
  // count a cache miss.

  /// Precompute the flattened likelihood tables: per-fingerprint sorted
  /// (AP, RSS) slices, the AP-id -> column map, the dense per-cell
  /// expected-RSS table and the (offline - floor)^2 terms. Call once at
  /// deployment warmup (alongside Place::prebuild_wall_index); NOT
  /// thread-safe against concurrent queries.
  void prebuild_likelihood_cache();

  /// True when cached queries are served from the tables.
  bool likelihood_cache_ready() const { return cache_ready_; }

  /// Bytes held by the precomputed likelihood tables.
  std::size_t likelihood_cache_bytes() const;

  /// k_nearest into a caller-owned result buffer (cleared first); uses
  /// the likelihood cache when ready.
  void k_nearest_into(const std::vector<sim::ApReading>& scan, std::size_t k,
                      ScanScratch& scratch, std::vector<Match>& out) const;

  /// k_nearest_into, memoized per epoch: when `memo` already holds this
  /// epoch's candidate evaluation for this (database, scan), no RSSI
  /// distance is recomputed -- the query copies the memo and runs the
  /// same partial sort the unmemoized path runs. Bit-identical to
  /// k_nearest_into because std::partial_sort is deterministic for a
  /// given input sequence, comparator and bound, and the memoized input
  /// sequence is exactly the one k_nearest_into would have built.
  void k_nearest_memo(const std::vector<sim::ApReading>& scan, std::size_t k,
                      std::uint64_t epoch_tag, ScanMemo& memo,
                      std::vector<Match>& out) const;

  /// all_distances into a caller-owned buffer (resized to size()).
  void all_distances_into(const std::vector<sim::ApReading>& scan,
                          ScanScratch& scratch,
                          std::vector<double>& out) const;

  /// beta1 feature: mean distance to the `k` spatially nearest
  /// fingerprints around `pos` -- large when coverage is sparse.
  double local_density(geo::Vec2 pos, std::size_t k = 4) const;

  /// local_density with a caller-owned k-nearest buffer (fast path; same
  /// value, no per-query allocation once `knn_buf` has capacity).
  double local_density(geo::Vec2 pos, std::size_t k,
                       std::vector<std::size_t>& knn_buf) const;

  /// Index of the fingerprint spatially closest to `pos`.
  std::size_t nearest_spatial(geo::Vec2 pos) const;

  /// Blend an observed reading into fingerprint `index` with an
  /// exponential moving average (new = alpha*obs + (1-alpha)*old); creates
  /// the transmitter entry if absent. Crowdsourced maintenance uses this
  /// to keep the offline database fresh (paper Sec. III-B assumption).
  void blend_reading(std::size_t index, int transmitter_id, double rssi_dbm,
                     double alpha);

  /// Keep every `keep_every`-th fingerprint (with a seed-derived phase).
  /// The paper trains the density feature by downsampling the fine-grained
  /// database to coarser spacings (Sec. III-B).
  FingerprintDatabase downsampled(std::size_t keep_every,
                                  std::uint64_t seed = 0) const;

  /// Route RSSI-matching latencies (k_nearest / all_distances) into the
  /// `<prefix>.match_us` histogram of `registry`, and cached-query
  /// outcomes into `<prefix>.cache_hits` / `<prefix>.cache_misses`.
  /// Null detaches. Single-threaded use only (bench/CLI); concurrent
  /// sessions count hits in their own ScanScratch instead.
  void attach_metrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

 private:
  void rebuild_spatial_index();
  void invalidate_likelihood_cache() { cache_ready_ = false; }
  /// Resolve scan AP ids to columns and stamp column membership for this
  /// scan epoch (O(1) membership tests in the per-fingerprint loop).
  void prepare_scan(const std::vector<sim::ApReading>& scan,
                    ScanScratch& scratch) const;
  double cached_distance(std::size_t fp_index,
                         const std::vector<sim::ApReading>& scan,
                         const ScanScratch& scratch) const;
  /// Vector variant of the cached query: scores every fingerprint at once,
  /// one SIMD lane per fingerprint, leaving the final distances in
  /// scratch.lane_sum2. Bit-identical to looping cached_distance (see the
  /// implementation notes); requires prepare_scan to have run for this
  /// scan and the cache to be ready.
  void score_batch(const std::vector<sim::ApReading>& scan,
                   ScanScratch& scratch) const;
  /// The shared candidate loop of k_nearest_into / k_nearest_memo: every
  /// fingerprint's distance to `scan` (cache or exact), appended to `out`
  /// in fingerprint-index order, unsorted.
  void build_candidates(const std::vector<sim::ApReading>& scan,
                        ScanScratch& scratch, std::vector<Match>& out) const;

  std::vector<Fingerprint> fps_;
  Source source_{Source::kWifi};
  geo::PointIndex spatial_;  ///< Bucket index over fingerprint positions.

  // Likelihood cache (prebuild_likelihood_cache). Columns are distinct AP
  // ids in ascending order; per-fingerprint entries are flattened slices
  // in ascending-id order (== std::map iteration order, so the fp-only
  // summation of rssi_distance replays identically).
  bool cache_ready_{false};
  std::vector<int> col_ids_;               ///< Column -> AP id (sorted).
  std::vector<std::uint32_t> slice_begin_; ///< Fp -> first entry (size()+1).
  std::vector<int> entry_col_;             ///< Entry -> column.
  std::vector<double> entry_d2floor_;      ///< Entry -> (rss - floor)^2.
  std::vector<double> cell_value_;         ///< Dense fp x column RSS table.
  std::vector<std::uint8_t> cell_present_; ///< Dense fp x column presence.
  // Column-major mirrors for score_batch: per (column, fingerprint) the
  // effective offline level (fingerprint RSS, or the floor when absent --
  // the branch of cached_distance pre-substituted) and the presence flag
  // as a 0.0/1.0 double so the shared count accumulates in vector lanes.
  std::vector<double> colmajor_value_;
  std::vector<double> colmajor_present_;

  obs::Histogram* match_us_{nullptr};
  obs::Counter* cache_hits_{nullptr};
  obs::Counter* cache_misses_{nullptr};
};

}  // namespace uniloc::schemes
