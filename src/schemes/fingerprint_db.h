// Offline RSSI fingerprint database (RADAR-style).
//
// Fingerprints are collected along the walkways of a place on a fixed
// spacing (the paper: 1-3 m indoors, ~12 m in open spaces, one sample per
// audible AP). The database answers:
//   * nearest / k-nearest fingerprints in RSSI space (the matching core of
//     RADAR [1] and the cellular scheme [22]),
//   * local fingerprint spatial density (the beta1 error-model feature),
//   * per-fingerprint RSSI distances for particle weighting (Travi-Navi).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geo/spatial_index.h"
#include "geo/vec2.h"
#include "sim/place.h"
#include "sim/radio.h"

namespace uniloc::obs {
class Histogram;
class MetricsRegistry;
}  // namespace uniloc::obs

namespace uniloc::schemes {

struct Fingerprint {
  geo::Vec2 pos;
  std::map<int, double> rssi;  ///< AP/tower id -> RSSI (dBm).
  bool indoor{true};
};

/// RSSI distance between an online scan and an offline fingerprint:
/// Euclidean over the union of transmitters, with missing readings imputed
/// at `floor_dbm`. Returns a large value when nothing is shared.
double rssi_distance(const std::vector<sim::ApReading>& scan,
                     const Fingerprint& fp, double floor_dbm = -95.0);

struct Match {
  std::size_t index{0};   ///< Fingerprint index.
  double distance{0.0};   ///< RSSI distance.
};

class FingerprintDatabase {
 public:
  enum class Source { kWifi, kCellular };

  FingerprintDatabase() = default;

  /// Collect fingerprints along every walkway of `place`:
  /// indoor stretches every `indoor_spacing_m`, outdoor stretches every
  /// `outdoor_spacing_m`. One scan (single sample per AP, matching the
  /// paper's collection protocol) is stored per point.
  static FingerprintDatabase build(const sim::Place& place,
                                   const sim::RadioEnvironment& radio,
                                   Source source, double indoor_spacing_m,
                                   double outdoor_spacing_m,
                                   std::uint64_t seed);

  const std::vector<Fingerprint>& fingerprints() const { return fps_; }
  bool empty() const { return fps_.empty(); }
  std::size_t size() const { return fps_.size(); }
  Source source() const { return source_; }

  /// Imputation level for transmitters missing from a scan/fingerprint:
  /// just below the radio's audibility threshold (-95 dBm WiFi, -115 dBm
  /// cellular -- cellular signals live far below WiFi levels).
  double floor_dbm() const {
    return source_ == Source::kWifi ? -95.0 : -115.0;
  }

  /// k fingerprints with the smallest RSSI distance to `scan`
  /// (ascending). Empty if the database or the scan is empty.
  std::vector<Match> k_nearest(const std::vector<sim::ApReading>& scan,
                               std::size_t k) const;

  /// RSSI distance from `scan` to every fingerprint (index-aligned).
  std::vector<double> all_distances(
      const std::vector<sim::ApReading>& scan) const;

  /// beta1 feature: mean distance to the `k` spatially nearest
  /// fingerprints around `pos` -- large when coverage is sparse.
  double local_density(geo::Vec2 pos, std::size_t k = 4) const;

  /// Index of the fingerprint spatially closest to `pos`.
  std::size_t nearest_spatial(geo::Vec2 pos) const;

  /// Blend an observed reading into fingerprint `index` with an
  /// exponential moving average (new = alpha*obs + (1-alpha)*old); creates
  /// the transmitter entry if absent. Crowdsourced maintenance uses this
  /// to keep the offline database fresh (paper Sec. III-B assumption).
  void blend_reading(std::size_t index, int transmitter_id, double rssi_dbm,
                     double alpha);

  /// Keep every `keep_every`-th fingerprint (with a seed-derived phase).
  /// The paper trains the density feature by downsampling the fine-grained
  /// database to coarser spacings (Sec. III-B).
  FingerprintDatabase downsampled(std::size_t keep_every,
                                  std::uint64_t seed = 0) const;

  /// Route RSSI-matching latencies (k_nearest / all_distances) into the
  /// `<prefix>.match_us` histogram of `registry`. Null detaches.
  void attach_metrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

 private:
  void rebuild_spatial_index();

  std::vector<Fingerprint> fps_;
  Source source_{Source::kWifi};
  geo::PointIndex spatial_;  ///< Bucket index over fingerprint positions.
  obs::Histogram* match_us_{nullptr};
};

}  // namespace uniloc::schemes
