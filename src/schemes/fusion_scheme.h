// Sensor-fusion localization (Travi-Navi [11] style).
//
// Extends the motion-based PDR particle filter by additionally weighting
// particles with WiFi evidence: fingerprints whose RSSI vector is close to
// the online scan attract nearby particles. Crucially -- and this is the
// failure mode the paper's motivation highlights -- the fusion applies
// the *same* RSSI processing everywhere: in regions with low-quality RSSI
// the attraction pulls the cloud toward wrong fingerprints, making fusion
// worse than plain PDR at those spots (Fig. 2 around 180 m). UniLoc's
// error model captures this through the fingerprint-density feature.
#pragma once

#include "schemes/fingerprint_db.h"
#include "schemes/pdr_scheme.h"

namespace uniloc::schemes {

struct FusionOptions {
  PdrOptions pdr{};
  std::size_t rssi_top_k = 15;     ///< Candidate fingerprints per scan.
  double rssi_scale_db = 6.0;      ///< RSSI likelihood temperature.
  double spatial_sd_m = 6.0;      ///< Attraction radius around candidates.
  double floor_likelihood = 0.05;  ///< Keeps particles alive away from
                                   ///< all candidates (RSSI is a hint,
                                   ///< not a hard constraint).
};

class FusionScheme final : public PdrScheme {
 public:
  /// `db` is the WiFi fingerprint database; must outlive the scheme.
  FusionScheme(const sim::Place* place, const FingerprintDatabase* db,
               FusionOptions opts);

  std::string name() const override { return "Fusion"; }
  SchemeFamily family() const override { return SchemeFamily::kFusion; }
  void set_epoch_context(EpochContext* ctx) override { epoch_ctx_ = ctx; }

  std::uint64_t cache_hits() const override { return scan_scratch_.cache_hits; }
  std::uint64_t cache_misses() const override {
    return scan_scratch_.cache_misses;
  }

 protected:
  void extra_reweight(const sim::SensorFrame& frame) override;
  void extra_reweight_fast(const sim::SensorFrame& frame) override;

 private:
  const FingerprintDatabase* db_;
  FusionOptions opts_;
  EpochContext* epoch_ctx_{nullptr};

  // Fast-path scratch: candidate matches, their RSSI weights, the
  // likelihood-cache workspace, and the per-particle likelihood lanes of
  // the SIMD reweight kernel, reused across epochs.
  ScanScratch scan_scratch_;
  std::vector<Match> candidates_;
  std::vector<double> rssi_w_;
  std::vector<double> like_;
};

}  // namespace uniloc::schemes
