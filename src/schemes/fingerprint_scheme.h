// RSSI fingerprinting localization (RADAR [1] on WiFi; Otsason et
// al. [22] on cellular -- same algorithm, different radio).
//
// Offline: a fingerprint database collected along the walkways. Online:
// the scan's RSSI distance to every fingerprint; the estimate is the
// fingerprint with the smallest distance (RADAR's nearest neighbour in
// signal space); the posterior is a softmax over the top-K candidates.
// Optional online offset calibration absorbs device heterogeneity.
#pragma once

#include <memory>

#include "schemes/fingerprint_db.h"
#include "schemes/offset_calibration.h"
#include "schemes/scheme.h"

namespace uniloc::schemes {

class FingerprintScheme final : public LocalizationScheme {
 public:
  struct Options {
    std::size_t top_k = 20;         ///< Posterior support size.
    double softmax_scale_db = 6.0;  ///< Softmax temperature (dB).
    bool calibrate_offset = false;  ///< Online device-offset calibration.
    std::size_t min_transmitters = 1;  ///< Below this: unavailable.
  };

  /// `db` must outlive the scheme.
  FingerprintScheme(const FingerprintDatabase* db, Options opts);

  std::string name() const override;
  SchemeFamily family() const override;
  void reset(const StartCondition& start) override;
  SchemeOutput update(const sim::SensorFrame& frame) override;
  void update_into(const sim::SensorFrame& frame, SchemeOutput& out) override;
  void set_epoch_context(EpochContext* ctx) override { epoch_ctx_ = ctx; }
  void snapshot_into(offload::ByteWriter& w) const override {
    calibrator_.snapshot_into(w);
  }
  bool restore_from(offload::ByteReader& r) override {
    return calibrator_.restore_from(r);
  }

  const FingerprintDatabase& database() const { return *db_; }

  std::uint64_t cache_hits() const override { return scan_scratch_.cache_hits; }
  std::uint64_t cache_misses() const override {
    return scan_scratch_.cache_misses;
  }

 private:
  const FingerprintDatabase* db_;
  Options opts_;
  OffsetCalibrator calibrator_;
  EpochContext* epoch_ctx_{nullptr};

  // Fast-path scratch: reused across epochs by update_into.
  ScanScratch scan_scratch_;
  std::vector<Match> matches_;
  std::vector<sim::ApReading> scan_buf_;
  std::vector<double> top3_;
};

}  // namespace uniloc::schemes
