// RSSI fingerprinting localization (RADAR [1] on WiFi; Otsason et
// al. [22] on cellular -- same algorithm, different radio).
//
// Offline: a fingerprint database collected along the walkways. Online:
// the scan's RSSI distance to every fingerprint; the estimate is the
// fingerprint with the smallest distance (RADAR's nearest neighbour in
// signal space); the posterior is a softmax over the top-K candidates.
// Optional online offset calibration absorbs device heterogeneity.
#pragma once

#include <memory>

#include "schemes/fingerprint_db.h"
#include "schemes/offset_calibration.h"
#include "schemes/scheme.h"

namespace uniloc::schemes {

class FingerprintScheme final : public LocalizationScheme {
 public:
  struct Options {
    std::size_t top_k = 20;         ///< Posterior support size.
    double softmax_scale_db = 6.0;  ///< Softmax temperature (dB).
    bool calibrate_offset = false;  ///< Online device-offset calibration.
    std::size_t min_transmitters = 1;  ///< Below this: unavailable.
  };

  /// `db` must outlive the scheme.
  FingerprintScheme(const FingerprintDatabase* db, Options opts);

  std::string name() const override;
  SchemeFamily family() const override;
  void reset(const StartCondition& start) override;
  SchemeOutput update(const sim::SensorFrame& frame) override;

  const FingerprintDatabase& database() const { return *db_; }

 private:
  const FingerprintDatabase* db_;
  Options opts_;
  OffsetCalibrator calibrator_;
};

}  // namespace uniloc::schemes
