// Shared per-epoch state for the fast epoch pipeline.
//
// Several stages of one epoch query the same fingerprint database with the
// same sensor scan and differ only in how many candidates they keep: the
// WiFi scheme takes the top 15, the fusion scheme the top 15, the error
// model's rssi_dist_sd feature the top 3. The EpochContext lets them share
// one candidate evaluation per (epoch, database) -- see
// FingerprintDatabase::k_nearest_memo for the bit-exactness argument.
//
// One EpochContext lives inside each session's core::EpochScratch and is
// threaded to the schemes by Uniloc::update_fast through
// LocalizationScheme::set_epoch_context. The reference pipeline never
// installs a context, so it keeps recomputing from scratch -- the
// differential suite compares exactly that pair.
#pragma once

#include <cstddef>
#include <cstdint>

#include "schemes/fingerprint_db.h"

namespace uniloc::schemes {

struct EpochContext {
  /// Bumped once per update_fast epoch; memos from earlier epochs (or an
  /// earlier walk -- reset() does not clear the context) are invalid.
  std::uint64_t tag{0};

  /// One memo per distinct database queried during an epoch. The standard
  /// ensemble touches two (WiFi + cellular); slots beyond that cover
  /// user-integrated schemes with their own databases.
  static constexpr std::size_t kMemoSlots = 4;
  ScanMemo memos[kMemoSlots];

  /// The memo slot owned by `db`, claiming a free slot on first sight.
  /// Returns nullptr when more distinct databases than slots are in play;
  /// callers then fall back to their private unmemoized scratch.
  ScanMemo* memo_for(const FingerprintDatabase* db) {
    for (ScanMemo& m : memos) {
      if (m.db == db) return &m;
      if (m.db == nullptr) {
        m.db = db;
        return &m;
      }
    }
    return nullptr;
  }

  std::uint64_t cache_hits() const {
    std::uint64_t total = 0;
    for (const ScanMemo& m : memos) total += m.scratch.cache_hits;
    return total;
  }
  std::uint64_t cache_misses() const {
    std::uint64_t total = 0;
    for (const ScanMemo& m : memos) total += m.scratch.cache_misses;
    return total;
  }

  /// Heap capacity held by the memos (perf.scratch_bytes accounting).
  std::size_t bytes() const {
    std::size_t b = 0;
    for (const ScanMemo& m : memos) {
      b += m.all.capacity() * sizeof(Match);
      b += m.scratch.col.capacity() * sizeof(int);
      b += m.scratch.stamp.capacity() * sizeof(std::uint32_t);
      b += (m.scratch.lane_sum2.capacity() + m.scratch.lane_shared.capacity() +
            m.scratch.col_skip.capacity()) *
           sizeof(double);
    }
    return b;
  }
};

}  // namespace uniloc::schemes
