// Motion-based PDR localization ([7], with UnLoc-style landmarks [12]).
//
// The walking model inferred by the PDR front-end drives a 300-particle
// filter; the map imposes corridor constraints (particles that leave the
// walkable corridor are strongly down-weighted); recognized landmarks
// (turns, doors, signatures) re-anchor the cloud, which is what keeps the
// accumulated step error bounded -- and what makes "distance from the
// last landmark" the dominant error-model feature (Table I).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "filter/particle_filter.h"
#include "schemes/pdr_frontend.h"
#include "schemes/scheme.h"
#include "sim/place.h"

namespace uniloc::schemes {

struct PdrOptions {
  std::size_t num_particles = 300;  ///< Paper: 300 particles per step.
  double map_slack_m = 2.5;         ///< Softness of the corridor wall.
  double step_len_sd = 0.12;
  double heading_sd = 0.035;
  double landmark_sd_m = 3.5;       ///< Re-anchoring spread at a landmark.
  bool use_map = true;
  bool use_landmarks = true;
  /// Kill particle steps that cross floor-plan walls (requires
  /// sim::deploy_walls on the place). Stricter than the corridor tube;
  /// see bench/ablation_walls.
  bool use_walls = false;
  std::uint64_t seed = 99;
};

class PdrScheme : public LocalizationScheme {
 public:
  /// `place` is the digital map (public information); may be null to run
  /// unconstrained dead reckoning.
  PdrScheme(const sim::Place* place, PdrOptions opts);

  std::string name() const override { return "Motion"; }
  SchemeFamily family() const override { return SchemeFamily::kMotionPdr; }
  void reset(const StartCondition& start) override;
  SchemeOutput update(const sim::SensorFrame& frame) override;
  void update_into(const sim::SensorFrame& frame, SchemeOutput& out) override;
  void attach_metrics(obs::MetricsRegistry* registry) override;
  void snapshot_into(offload::ByteWriter& w) const override;
  bool restore_from(offload::ByteReader& r) override;
  void snapshot_into(offload::ByteWriter& w,
                     const SnapshotContext& ctx) const override;
  bool restore_from(offload::ByteReader& r,
                    const SnapshotContext& ctx) override;

  /// Meters walked since the last recognized landmark (beta1 of the
  /// motion error model).
  double distance_since_landmark() const { return dist_since_landmark_; }

 protected:
  /// Hook for subclasses (fusion) to add likelihood terms after the map
  /// constraint but before resampling.
  virtual void extra_reweight(const sim::SensorFrame& frame);

  /// Fast-path twin of extra_reweight: must compute bit-identical weights
  /// but may reuse subclass-owned scratch. Defaults to extra_reweight.
  virtual void extra_reweight_fast(const sim::SensorFrame& frame);

  filter::ParticleFilter& pf() { return pf_; }
  const sim::Place* place() const { return place_; }
  const PdrOptions& options() const { return opts_; }

 private:
  /// One epoch of filtering (predict, constraints, reweight, resample),
  /// shared verbatim by update() and update_into() so both consume the
  /// same RNG stream. `fast` only selects which extra_reweight twin runs.
  void step_epoch(const sim::SensorFrame& frame, bool fast);
  /// `fast` routes the per-particle environment lookup through the
  /// Place's precomputed candidate index (bit-identical; see
  /// Place::environment_at_fast). The reference path keeps the full scan.
  void apply_map_constraint(bool fast);
  void apply_wall_constraint(const std::vector<geo::Vec2>& before);
  void apply_landmarks(const sim::SensorFrame& frame);
  SchemeOutput make_output() const;
  void make_output_into(SchemeOutput& out) const;

  const sim::Place* place_;
  PdrOptions opts_;
  PdrFrontend frontend_;
  filter::ParticleFilter pf_;
  obs::MetricsRegistry* registry_{nullptr};
  /// Per-stage epoch latency (scheme.<name>.stage.*); null when detached,
  /// so the hot path pays only untaken branches (obs/timer.h contract).
  obs::Histogram* map_us_{nullptr};
  obs::Histogram* extra_us_{nullptr};
  obs::Histogram* output_us_{nullptr};
  /// Pre-step particle positions for the wall-crossing test; member scratch
  /// so steady-state updates reuse its capacity instead of reallocating.
  std::vector<geo::Vec2> before_;
  double dist_since_landmark_{0.0};
  bool started_{false};
};

}  // namespace uniloc::schemes
