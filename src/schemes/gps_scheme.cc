#include "schemes/gps_scheme.h"

namespace uniloc::schemes {

GpsScheme::GpsScheme(geo::LocalFrame frame) : frame_(frame) {}

void GpsScheme::reset(const StartCondition&) {}

SchemeOutput GpsScheme::update(const sim::SensorFrame& frame) {
  SchemeOutput out;
  if (!frame.gps.has_value()) return out;  // unavailable

  const geo::Vec2 local = frame_.to_local(frame.gps->pos);
  out.available = true;
  out.estimate = local;
  // The posterior spread reflects the receiver's own confidence (HDOP
  // scales the nominal accuracy). UERE ~ 5 m is a typical user-equivalent
  // range error for smartphone receivers.
  const double sigma = std::max(3.0, 5.0 * frame.gps->hdop + 8.0);
  out.posterior = Posterior::gaussian(local, sigma);
  out.observables["hdop"] = frame.gps->hdop;
  out.observables["num_satellites"] =
      static_cast<double>(frame.gps->num_satellites);
  return out;
}

void GpsScheme::update_into(const sim::SensorFrame& frame, SchemeOutput& out) {
  out.available = false;
  if (!frame.gps.has_value()) return;  // stale payload; gated by available

  static const std::string kHdop = "hdop";
  static const std::string kNumSatellites = "num_satellites";
  const geo::Vec2 local = frame_.to_local(frame.gps->pos);
  out.available = true;
  out.estimate = local;
  const double sigma = std::max(3.0, 5.0 * frame.gps->hdop + 8.0);
  Posterior::gaussian_into(local, sigma, 3, out.posterior);
  out.observables[kHdop] = frame.gps->hdop;
  out.observables[kNumSatellites] =
      static_cast<double>(frame.gps->num_satellites);
}

}  // namespace uniloc::schemes
