// Horus-style probabilistic WiFi fingerprinting ([2], paper Table I).
//
// Where RADAR ranks fingerprints by Euclidean RSSI distance, Horus treats
// each fingerprint as a per-AP Gaussian RSSI distribution and computes the
// posterior P(l | scan) by Bayes' rule. The paper notes Horus needs
// hundreds of samples per location to estimate those distributions; with
// the single-sample-per-AP databases the paper (and we) collect, the
// per-AP spread is a fixed radio parameter instead -- the honest
// single-sample approximation.
//
// Included as an alternative member of the WiFi fingerprinting family:
// it slots into UniLoc with the same error model as RADAR (same family,
// same features) and bench/ablation_radar_vs_horus compares the two.
#pragma once

#include "schemes/fingerprint_db.h"
#include "schemes/scheme.h"

namespace uniloc::schemes {

class HorusScheme final : public LocalizationScheme {
 public:
  struct Options {
    double rssi_sigma_db = 4.0;   ///< Per-AP likelihood spread.
    double missing_penalty = 3.0; ///< Sigmas charged for an AP present in
                                  ///< exactly one of scan/fingerprint.
    std::size_t top_k = 20;       ///< Posterior support size.
    std::size_t min_transmitters = 2;
  };

  HorusScheme(const FingerprintDatabase* db, Options opts);

  std::string name() const override { return "Horus"; }
  SchemeFamily family() const override {
    return db_->source() == FingerprintDatabase::Source::kWifi
               ? SchemeFamily::kWifiFingerprint
               : SchemeFamily::kCellFingerprint;
  }
  void reset(const StartCondition& start) override;
  SchemeOutput update(const sim::SensorFrame& frame) override;

  /// Log-likelihood of a scan under one fingerprint's distributions.
  double log_likelihood(const std::vector<sim::ApReading>& scan,
                        const Fingerprint& fp) const;

 private:
  const FingerprintDatabase* db_;
  Options opts_;
};

}  // namespace uniloc::schemes
