#include "schemes/pdr_frontend.h"

#include <algorithm>
#include <cmath>

#include "geo/vec2.h"

namespace uniloc::schemes {

PdrFrontend::PdrFrontend(PdrFrontendOptions opts) : opts_(opts) {}

void PdrFrontend::reset(double initial_heading) {
  heading_ = initial_heading;
  heading_init_ = true;
  prev_epoch_heading_ = initial_heading;
  last_peak_t_ = -1.0;
  above_ = false;
}

StepInference PdrFrontend::process(const std::vector<sim::ImuSample>& imu) {
  StepInference out;
  if (imu.empty()) {
    out.heading_rad = heading_;
    return out;
  }

  // --- heading: complementary filter over all samples ------------------
  double prev_t = imu.front().t;
  if (!heading_init_) {
    heading_ = imu.front().mag_heading;
    heading_init_ = true;
    prev_epoch_heading_ = heading_;
  }
  for (const sim::ImuSample& s : imu) {
    const double dt = std::max(0.0, s.t - prev_t);
    prev_t = s.t;
    heading_ = geo::wrap_angle(heading_ + s.gyro_z * dt);
    // Pull gently toward the magnetometer; its random error averages out
    // across the ~25-35 samples of a step.
    heading_ = geo::wrap_angle(
        heading_ +
        (1.0 - opts_.gyro_weight) * geo::angle_diff(s.mag_heading, heading_));
  }

  // --- step detection: rising-edge peaks with period compensation ------
  double amax = imu.front().accel_mag, amin = imu.front().accel_mag;
  int raw_steps = 0;
  int compensated = 0;
  for (const sim::ImuSample& s : imu) {
    amax = std::max(amax, s.accel_mag);
    amin = std::min(amin, s.accel_mag);
    const bool now_above = s.accel_mag > opts_.peak_threshold;
    if (now_above && !above_) {
      // Rising edge: a candidate step boundary.
      const double period = last_peak_t_ >= 0.0 ? s.t - last_peak_t_ : -1.0;
      if (period >= 0.0 && period < opts_.min_step_period_s) {
        // Too fast to be a real step: trembling-induced false positive --
        // delete it (do not count, do not advance the period anchor).
      } else {
        ++raw_steps;
        if (period > opts_.max_step_period_s &&
            period < 2.0 * opts_.max_step_period_s && last_peak_t_ >= 0.0) {
          // A missed peak in between: false negative -- add one step back.
          ++compensated;
        }
        last_peak_t_ = s.t;
      }
    }
    above_ = now_above;
  }
  out.steps = raw_steps + compensated;

  // --- step length: Weinberg estimate from the acceleration envelope ---
  const double envelope = std::max(0.0, amax - amin);
  out.step_length_m =
      out.steps > 0 ? opts_.weinberg_k * std::pow(envelope, 0.25) : 0.0;

  out.heading_rad = heading_;
  out.dheading_rad = geo::angle_diff(heading_, prev_epoch_heading_);
  prev_epoch_heading_ = heading_;
  return out;
}

void PdrFrontend::snapshot_into(offload::ByteWriter& w) const {
  w.put_f64(heading_);
  w.put_bool(heading_init_);
  w.put_f64(prev_epoch_heading_);
  w.put_f64(last_peak_t_);
  w.put_bool(above_);
}

bool PdrFrontend::restore_from(offload::ByteReader& r) {
  double heading, prev_epoch_heading, last_peak_t;
  bool heading_init, above;
  if (!r.get_f64(heading) || !r.get_bool(heading_init) ||
      !r.get_f64(prev_epoch_heading) || !r.get_f64(last_peak_t) ||
      !r.get_bool(above)) {
    return false;
  }
  heading_ = heading;
  heading_init_ = heading_init;
  prev_epoch_heading_ = prev_epoch_heading;
  last_peak_t_ = last_peak_t;
  above_ = above;
  return true;
}

}  // namespace uniloc::schemes
