#include "schemes/scheme.h"

#include <cmath>

#include "stats/gaussian.h"

namespace uniloc::schemes {

const char* family_name(SchemeFamily f) {
  switch (f) {
    case SchemeFamily::kGps: return "gps";
    case SchemeFamily::kWifiFingerprint: return "wifi_fp";
    case SchemeFamily::kCellFingerprint: return "cell_fp";
    case SchemeFamily::kMotionPdr: return "motion_pdr";
    case SchemeFamily::kFusion: return "fusion";
    case SchemeFamily::kOther: return "other";
  }
  return "unknown";
}

void Posterior::normalize() {
  double total = 0.0;
  for (const WeightedPoint& p : support) total += p.weight;
  if (total <= 0.0) {
    if (!support.empty()) {
      const double u = 1.0 / static_cast<double>(support.size());
      for (WeightedPoint& p : support) p.weight = u;
    }
    return;
  }
  for (WeightedPoint& p : support) p.weight /= total;
}

geo::Vec2 Posterior::mean() const {
  geo::Vec2 m;
  double total = 0.0;
  for (const WeightedPoint& p : support) {
    m += p.pos * p.weight;
    total += p.weight;
  }
  return total > 0.0 ? m / total : geo::Vec2{};
}

double Posterior::spread() const {
  const geo::Vec2 m = mean();
  double s = 0.0, total = 0.0;
  for (const WeightedPoint& p : support) {
    s += geo::distance2(p.pos, m) * p.weight;
    total += p.weight;
  }
  return total > 0.0 ? std::sqrt(s / total) : 0.0;
}

std::vector<double> Posterior::to_grid(const geo::Grid& grid) const {
  std::vector<double> mass(grid.num_cells(), 0.0);
  for (const WeightedPoint& p : support) {
    mass[grid.flat_of(p.pos)] += p.weight;
  }
  return mass;
}

Posterior Posterior::point(geo::Vec2 p) {
  Posterior post;
  post.support.push_back({p, 1.0});
  return post;
}

Posterior Posterior::gaussian(geo::Vec2 center, double sigma, int r) {
  Posterior post;
  gaussian_into(center, sigma, r, post);
  return post;
}

void Posterior::gaussian_into(geo::Vec2 center, double sigma, int r,
                              Posterior& out) {
  out.support.clear();
  const double spacing = sigma / 2.0;
  for (int iy = -r; iy <= r; ++iy) {
    for (int ix = -r; ix <= r; ++ix) {
      const geo::Vec2 p{center.x + ix * spacing, center.y + iy * spacing};
      const double d = geo::distance(p, center);
      out.support.push_back({p, stats::normal_pdf(d / sigma)});
    }
  }
  out.normalize();
}

}  // namespace uniloc::schemes
