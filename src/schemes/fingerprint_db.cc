#include "schemes/fingerprint_db.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "stats/rng.h"

namespace uniloc::schemes {

double rssi_distance(const std::vector<sim::ApReading>& scan,
                     const Fingerprint& fp, double floor_dbm) {
  if (scan.empty() && fp.rssi.empty()) {
    return std::numeric_limits<double>::max();
  }
  double sum2 = 0.0;
  std::size_t shared = 0;
  // Transmitters in the scan.
  for (const sim::ApReading& r : scan) {
    const auto it = fp.rssi.find(r.id);
    const double offline = it != fp.rssi.end() ? it->second : floor_dbm;
    if (it != fp.rssi.end()) ++shared;
    const double d = r.rssi_dbm - offline;
    sum2 += d * d;
  }
  // Transmitters only in the fingerprint.
  for (const auto& [id, offline] : fp.rssi) {
    const bool in_scan =
        std::any_of(scan.begin(), scan.end(),
                    [id = id](const sim::ApReading& r) { return r.id == id; });
    if (!in_scan) {
      const double d = offline - floor_dbm;
      sum2 += d * d;
    }
  }
  if (shared == 0) return std::numeric_limits<double>::max();
  return std::sqrt(sum2);
}

FingerprintDatabase FingerprintDatabase::build(
    const sim::Place& place, const sim::RadioEnvironment& radio, Source source,
    double indoor_spacing_m, double outdoor_spacing_m, std::uint64_t seed) {
  FingerprintDatabase db;
  db.source_ = source;
  stats::Rng rng(stats::hash_combine(seed, 0xF1DB));
  for (const sim::Walkway& w : place.walkways()) {
    for (const sim::PathSegment& seg : w.segments) {
      const double spacing =
          sim::is_indoor(seg.type) ? indoor_spacing_m : outdoor_spacing_m;
      for (double s = seg.start_arclen; s < seg.end_arclen; s += spacing) {
        const geo::Vec2 pos = w.line.point_at(s);
        Fingerprint fp;
        fp.pos = pos;
        fp.indoor = sim::is_indoor(seg.type);
        stats::Rng scan_rng = rng.fork(static_cast<std::uint64_t>(s * 100.0));
        const std::vector<sim::ApReading> scan =
            source == Source::kWifi ? radio.wifi_scan(pos, scan_rng)
                                    : radio.cell_scan(pos, scan_rng);
        for (const sim::ApReading& r : scan) fp.rssi[r.id] = r.rssi_dbm;
        if (!fp.rssi.empty()) db.fps_.push_back(std::move(fp));
      }
    }
  }
  db.rebuild_spatial_index();
  return db;
}

void FingerprintDatabase::rebuild_spatial_index() {
  std::vector<geo::Vec2> positions;
  positions.reserve(fps_.size());
  for (const Fingerprint& fp : fps_) positions.push_back(fp.pos);
  spatial_ = geo::PointIndex(positions, /*cell_size=*/6.0);
}

void FingerprintDatabase::attach_metrics(obs::MetricsRegistry* registry,
                                         const std::string& prefix) {
  match_us_ =
      registry != nullptr ? &registry->histogram(prefix + ".match_us")
                          : nullptr;
}

std::vector<Match> FingerprintDatabase::k_nearest(
    const std::vector<sim::ApReading>& scan, std::size_t k) const {
  obs::ScopedTimer timer(match_us_);
  std::vector<Match> matches;
  if (scan.empty() || fps_.empty() || k == 0) return matches;
  matches.reserve(fps_.size());
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    const double d = rssi_distance(scan, fps_[i], floor_dbm());
    if (d < std::numeric_limits<double>::max()) matches.push_back({i, d});
  }
  const std::size_t kk = std::min(k, matches.size());
  std::partial_sort(matches.begin(), matches.begin() + kk, matches.end(),
                    [](const Match& a, const Match& b) {
                      return a.distance < b.distance;
                    });
  matches.resize(kk);
  return matches;
}

std::vector<double> FingerprintDatabase::all_distances(
    const std::vector<sim::ApReading>& scan) const {
  obs::ScopedTimer timer(match_us_);
  std::vector<double> out(fps_.size(), std::numeric_limits<double>::max());
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    out[i] = rssi_distance(scan, fps_[i], floor_dbm());
  }
  return out;
}

double FingerprintDatabase::local_density(geo::Vec2 pos, std::size_t k) const {
  if (fps_.empty()) return std::numeric_limits<double>::max();
  const std::vector<std::size_t> nn = spatial_.k_nearest(pos, k + 1);
  // Skip the closest (it may be the query location itself); average the
  // next k inter-fingerprint gaps.
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 1; i < nn.size(); ++i) {
    sum += geo::distance(fps_[nn[i]].pos, pos);
    ++count;
  }
  if (count == 0) return geo::distance(fps_[nn[0]].pos, pos);
  return sum / static_cast<double>(count);
}

void FingerprintDatabase::blend_reading(std::size_t index, int transmitter_id,
                                        double rssi_dbm, double alpha) {
  assert(index < fps_.size());
  auto [it, inserted] = fps_[index].rssi.try_emplace(transmitter_id, rssi_dbm);
  if (!inserted) {
    it->second = alpha * rssi_dbm + (1.0 - alpha) * it->second;
  }
}

FingerprintDatabase FingerprintDatabase::downsampled(std::size_t keep_every,
                                                     std::uint64_t seed) const {
  FingerprintDatabase db;
  db.source_ = source_;
  if (keep_every <= 1) {
    db.fps_ = fps_;
    db.rebuild_spatial_index();
    return db;
  }
  const std::size_t phase = stats::splitmix64(seed) % keep_every;
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    if (i % keep_every == phase) db.fps_.push_back(fps_[i]);
  }
  db.rebuild_spatial_index();
  return db;
}

std::size_t FingerprintDatabase::nearest_spatial(geo::Vec2 pos) const {
  assert(!fps_.empty());
  return spatial_.nearest(pos);
}

}  // namespace uniloc::schemes
