#include "schemes/fingerprint_db.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "stats/rng.h"
#include "stats/simd.h"
#include "stats/vecmath.h"

namespace uniloc::schemes {

double rssi_distance(const std::vector<sim::ApReading>& scan,
                     const Fingerprint& fp, double floor_dbm) {
  if (scan.empty() && fp.rssi.empty()) {
    return std::numeric_limits<double>::max();
  }
  double sum2 = 0.0;
  std::size_t shared = 0;
  // Transmitters in the scan.
  for (const sim::ApReading& r : scan) {
    const auto it = fp.rssi.find(r.id);
    const double offline = it != fp.rssi.end() ? it->second : floor_dbm;
    if (it != fp.rssi.end()) ++shared;
    const double d = r.rssi_dbm - offline;
    sum2 += d * d;
  }
  // Transmitters only in the fingerprint.
  for (const auto& [id, offline] : fp.rssi) {
    const bool in_scan =
        std::any_of(scan.begin(), scan.end(),
                    [id = id](const sim::ApReading& r) { return r.id == id; });
    if (!in_scan) {
      const double d = offline - floor_dbm;
      sum2 += d * d;
    }
  }
  if (shared == 0) return std::numeric_limits<double>::max();
  return std::sqrt(sum2);
}

FingerprintDatabase FingerprintDatabase::build(
    const sim::Place& place, const sim::RadioEnvironment& radio, Source source,
    double indoor_spacing_m, double outdoor_spacing_m, std::uint64_t seed) {
  FingerprintDatabase db;
  db.source_ = source;
  stats::Rng rng(stats::hash_combine(seed, 0xF1DB));
  for (const sim::Walkway& w : place.walkways()) {
    for (const sim::PathSegment& seg : w.segments) {
      const double spacing =
          sim::is_indoor(seg.type) ? indoor_spacing_m : outdoor_spacing_m;
      for (double s = seg.start_arclen; s < seg.end_arclen; s += spacing) {
        const geo::Vec2 pos = w.line.point_at(s);
        Fingerprint fp;
        fp.pos = pos;
        fp.indoor = sim::is_indoor(seg.type);
        stats::Rng scan_rng = rng.fork(static_cast<std::uint64_t>(s * 100.0));
        const std::vector<sim::ApReading> scan =
            source == Source::kWifi ? radio.wifi_scan(pos, scan_rng)
                                    : radio.cell_scan(pos, scan_rng);
        for (const sim::ApReading& r : scan) fp.rssi[r.id] = r.rssi_dbm;
        if (!fp.rssi.empty()) db.fps_.push_back(std::move(fp));
      }
    }
  }
  db.rebuild_spatial_index();
  return db;
}

void FingerprintDatabase::rebuild_spatial_index() {
  std::vector<geo::Vec2> positions;
  positions.reserve(fps_.size());
  for (const Fingerprint& fp : fps_) positions.push_back(fp.pos);
  spatial_ = geo::PointIndex(positions, /*cell_size=*/6.0);
}

void FingerprintDatabase::attach_metrics(obs::MetricsRegistry* registry,
                                         const std::string& prefix) {
  if (registry == nullptr) {
    match_us_ = nullptr;
    cache_hits_ = nullptr;
    cache_misses_ = nullptr;
    return;
  }
  match_us_ = &registry->histogram(prefix + ".match_us");
  cache_hits_ = &registry->counter(prefix + ".cache_hits");
  cache_misses_ = &registry->counter(prefix + ".cache_misses");
}

std::vector<Match> FingerprintDatabase::k_nearest(
    const std::vector<sim::ApReading>& scan, std::size_t k) const {
  obs::ScopedTimer timer(match_us_);
  std::vector<Match> matches;
  if (scan.empty() || fps_.empty() || k == 0) return matches;
  matches.reserve(fps_.size());
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    const double d = rssi_distance(scan, fps_[i], floor_dbm());
    if (d < std::numeric_limits<double>::max()) matches.push_back({i, d});
  }
  const std::size_t kk = std::min(k, matches.size());
  std::partial_sort(matches.begin(), matches.begin() + kk, matches.end(),
                    [](const Match& a, const Match& b) {
                      return a.distance < b.distance;
                    });
  matches.resize(kk);
  return matches;
}

std::vector<double> FingerprintDatabase::all_distances(
    const std::vector<sim::ApReading>& scan) const {
  obs::ScopedTimer timer(match_us_);
  std::vector<double> out(fps_.size(), std::numeric_limits<double>::max());
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    out[i] = rssi_distance(scan, fps_[i], floor_dbm());
  }
  return out;
}

// --------------------------------------------------------------- fast path

void FingerprintDatabase::prebuild_likelihood_cache() {
  col_ids_.clear();
  slice_begin_.clear();
  entry_col_.clear();
  entry_d2floor_.clear();
  cell_value_.clear();
  cell_present_.clear();

  // Columns: the distinct transmitter ids across the venue, ascending.
  for (const Fingerprint& fp : fps_) {
    for (const auto& [id, rss] : fp.rssi) col_ids_.push_back(id);
  }
  std::sort(col_ids_.begin(), col_ids_.end());
  col_ids_.erase(std::unique(col_ids_.begin(), col_ids_.end()),
                 col_ids_.end());
  const std::size_t cols = col_ids_.size();

  const double floor = floor_dbm();
  slice_begin_.reserve(fps_.size() + 1);
  cell_value_.resize(fps_.size() * cols, 0.0);
  cell_present_.assign(fps_.size() * cols, 0);
  // Column-major mirrors for the SIMD batch scorer. Pre-substituting the
  // floor for absent cells folds cached_distance's presence branch into
  // plain loads. The masked fp-only pass of score_batch multiplies
  // entry_d2floor_ by a 0.0/1.0 mask, which is only bit-identical to the
  // reference's branchy skip when the terms are finite -- offline RSS
  // levels always are (asserted here; blend_reading invalidates the cache
  // before any non-finite value could enter it).
  colmajor_value_.assign(cols * fps_.size(), floor);
  colmajor_present_.assign(cols * fps_.size(), 0.0);
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    slice_begin_.push_back(static_cast<std::uint32_t>(entry_col_.size()));
    for (const auto& [id, offline] : fps_[i].rssi) {
      assert(std::isfinite(offline));
      const auto it =
          std::lower_bound(col_ids_.begin(), col_ids_.end(), id);
      const int col = static_cast<int>(it - col_ids_.begin());
      entry_col_.push_back(col);
      const double d = offline - floor;
      entry_d2floor_.push_back(d * d);
      cell_value_[i * cols + static_cast<std::size_t>(col)] = offline;
      cell_present_[i * cols + static_cast<std::size_t>(col)] = 1;
      colmajor_value_[static_cast<std::size_t>(col) * fps_.size() + i] =
          offline;
      colmajor_present_[static_cast<std::size_t>(col) * fps_.size() + i] = 1.0;
    }
  }
  slice_begin_.push_back(static_cast<std::uint32_t>(entry_col_.size()));
  cache_ready_ = true;
}

std::size_t FingerprintDatabase::likelihood_cache_bytes() const {
  return col_ids_.capacity() * sizeof(int) +
         slice_begin_.capacity() * sizeof(std::uint32_t) +
         entry_col_.capacity() * sizeof(int) +
         entry_d2floor_.capacity() * sizeof(double) +
         cell_value_.capacity() * sizeof(double) +
         cell_present_.capacity() * sizeof(std::uint8_t) +
         (colmajor_value_.capacity() + colmajor_present_.capacity()) *
             sizeof(double);
}

void FingerprintDatabase::prepare_scan(
    const std::vector<sim::ApReading>& scan, ScanScratch& scratch) const {
  const std::size_t cols = col_ids_.size();
  if (scratch.stamp.size() != cols) {
    scratch.stamp.assign(cols, 0);
    scratch.epoch = 0;
  }
  if (++scratch.epoch == 0) {
    // Epoch counter wrapped: clear the stamps and restart at 1 so stale
    // entries cannot collide with the new epoch.
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.epoch = 1;
  }
  // Scan sizes vary epoch to epoch; reserve a generous bound on first use
  // so a later, larger-than-any-before scan cannot break the steady-state
  // zero-allocation contract (tests/test_perf_contracts.cc).
  if (scratch.col.capacity() < scan.size()) {
    scratch.col.reserve(std::max<std::size_t>(scan.size() * 2, 256));
  }
  scratch.col.resize(scan.size());
  for (std::size_t j = 0; j < scan.size(); ++j) {
    const auto it =
        std::lower_bound(col_ids_.begin(), col_ids_.end(), scan[j].id);
    if (it != col_ids_.end() && *it == scan[j].id) {
      const int col = static_cast<int>(it - col_ids_.begin());
      scratch.col[j] = col;
      scratch.stamp[static_cast<std::size_t>(col)] = scratch.epoch;
    } else {
      scratch.col[j] = -1;  // Transmitter unknown to the database.
    }
  }
}

double FingerprintDatabase::cached_distance(
    std::size_t fp_index, const std::vector<sim::ApReading>& scan,
    const ScanScratch& scratch) const {
  // Replays rssi_distance term by term: the scan loop in scan order, then
  // the fingerprint-only loop in ascending-id order (the flattened slice
  // preserves std::map iteration order). No addition is reordered, so the
  // result is bit-identical to the reference (tests/test_differential.cc).
  if (scan.empty() && fps_[fp_index].rssi.empty()) {
    return std::numeric_limits<double>::max();
  }
  const std::size_t cols = col_ids_.size();
  const double* values = cell_value_.data() + fp_index * cols;
  const std::uint8_t* present = cell_present_.data() + fp_index * cols;
  const double floor = floor_dbm();
  double sum2 = 0.0;
  std::size_t shared = 0;
  for (std::size_t j = 0; j < scan.size(); ++j) {
    const int col = scratch.col[j];
    double offline = floor;
    if (col >= 0 && present[col] != 0) {
      offline = values[col];
      ++shared;
    }
    const double d = scan[j].rssi_dbm - offline;
    sum2 += d * d;
  }
  for (std::uint32_t e = slice_begin_[fp_index];
       e < slice_begin_[fp_index + 1]; ++e) {
    if (scratch.stamp[static_cast<std::size_t>(entry_col_[e])] !=
        scratch.epoch) {
      sum2 += entry_d2floor_[e];
    }
  }
  if (shared == 0) return std::numeric_limits<double>::max();
  return std::sqrt(sum2);
}

void FingerprintDatabase::score_batch(
    const std::vector<sim::ApReading>& scan, ScanScratch& scratch) const {
  // One SIMD lane per fingerprint, accumulating that fingerprint's terms
  // in exactly the order cached_distance sums them:
  //   * scan loop, scan order: the j-outer / fingerprint-inner nesting
  //     keeps lane i's additions in scan order; a reading unknown to the
  //     database contributes the same (r - floor)^2 to every lane.
  //   * fp-only loop, slice order: scan-covered entries are skipped by
  //     multiplying with a 0.0/1.0 column mask. 1.0*d2 is exact, and
  //     adding 0.0*d2 == +0.0 is the identity because the running sum is
  //     a sum of squares (never -0.0) -- so the masked adds reproduce the
  //     branchy reference bit for bit (d2 finite; see prebuild).
  // The final lane value is the finished distance: sqrt(sum2), or max()
  // when no transmitter is shared (the reference's sentinel).
  const std::size_t n = fps_.size();
  const std::size_t cols = col_ids_.size();
  if (scratch.lane_sum2.size() != n) {
    scratch.lane_sum2.resize(n);
    scratch.lane_shared.resize(n);
  }
  if (scratch.col_skip.size() != cols) scratch.col_skip.resize(cols);
  double* sum2 = scratch.lane_sum2.data();
  double* shared = scratch.lane_shared.data();
  UNILOC_PRAGMA_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    sum2[i] = 0.0;
    shared[i] = 0.0;
  }
  const double floor = floor_dbm();
  for (std::size_t j = 0; j < scan.size(); ++j) {
    const int col = scratch.col[j];
    const double r = scan[j].rssi_dbm;
    if (col < 0) {
      const double d = r - floor;
      const double dd = d * d;
      UNILOC_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i) sum2[i] += dd;
    } else {
      const double* value =
          colmajor_value_.data() + static_cast<std::size_t>(col) * n;
      const double* present =
          colmajor_present_.data() + static_cast<std::size_t>(col) * n;
      UNILOC_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i) {
        const double d = r - value[i];
        sum2[i] += d * d;
        shared[i] += present[i];
      }
    }
  }
  double* skip = scratch.col_skip.data();
  for (std::size_t c = 0; c < cols; ++c) {
    skip[c] = scratch.stamp[c] != scratch.epoch ? 1.0 : 0.0;
  }
  const std::uint32_t* sb = slice_begin_.data();
  const int* ecol = entry_col_.data();
  const double* ed2 = entry_d2floor_.data();
  for (std::size_t i = 0; i < n; ++i) {
    double s = sum2[i];
    for (std::uint32_t e = sb[i]; e < sb[i + 1]; ++e) {
      s += skip[static_cast<std::size_t>(ecol[e])] * ed2[e];
    }
    sum2[i] = s;
  }
  UNILOC_PRAGMA_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::sqrt(sum2[i]);
    sum2[i] = shared[i] > 0.0 ? d : std::numeric_limits<double>::max();
  }
}

void FingerprintDatabase::build_candidates(
    const std::vector<sim::ApReading>& scan, ScanScratch& scratch,
    std::vector<Match>& out) const {
  out.reserve(fps_.size());
  if (cache_ready_) {
    ++scratch.cache_hits;
    if (cache_hits_ != nullptr) cache_hits_->inc();
    prepare_scan(scan, scratch);
#if !defined(UNILOC_NO_SIMD)
    if (stats::simd_enabled()) {
      score_batch(scan, scratch);
      const double* dist = scratch.lane_sum2.data();
      for (std::size_t i = 0; i < fps_.size(); ++i) {
        if (dist[i] < std::numeric_limits<double>::max()) {
          out.push_back({i, dist[i]});
        }
      }
      return;
    }
#endif
    for (std::size_t i = 0; i < fps_.size(); ++i) {
      const double d = cached_distance(i, scan, scratch);
      if (d < std::numeric_limits<double>::max()) out.push_back({i, d});
    }
  } else {
    ++scratch.cache_misses;
    if (cache_misses_ != nullptr) cache_misses_->inc();
    for (std::size_t i = 0; i < fps_.size(); ++i) {
      const double d = rssi_distance(scan, fps_[i], floor_dbm());
      if (d < std::numeric_limits<double>::max()) out.push_back({i, d});
    }
  }
}

namespace {

/// The selection step shared by every k-nearest entry point. partial_sort
/// is deterministic for a fixed input sequence / comparator / bound, which
/// is what lets k_nearest_memo serve any k from one candidate array.
void keep_k_nearest(std::vector<Match>& out, std::size_t k) {
  const std::size_t kk = std::min(k, out.size());
  std::partial_sort(out.begin(), out.begin() + kk, out.end(),
                    [](const Match& a, const Match& b) {
                      return a.distance < b.distance;
                    });
  out.resize(kk);
}

}  // namespace

void FingerprintDatabase::k_nearest_into(
    const std::vector<sim::ApReading>& scan, std::size_t k,
    ScanScratch& scratch, std::vector<Match>& out) const {
  obs::ScopedTimer timer(match_us_);
  out.clear();
  if (scan.empty() || fps_.empty() || k == 0) return;
  build_candidates(scan, scratch, out);
  keep_k_nearest(out, k);
}

void FingerprintDatabase::k_nearest_memo(
    const std::vector<sim::ApReading>& scan, std::size_t k,
    std::uint64_t epoch_tag, ScanMemo& memo, std::vector<Match>& out) const {
  obs::ScopedTimer timer(match_us_);
  out.clear();
  if (scan.empty() || fps_.empty() || k == 0) return;
  // The scan identity check (data pointer + size) guards call sites that
  // pass a different scan within one epoch -- e.g. a device-calibrated
  // copy -- from being served someone else's distances.
  if (memo.db != this || memo.tag != epoch_tag ||
      memo.scan_data != static_cast<const void*>(scan.data()) ||
      memo.scan_size != scan.size()) {
    memo.db = this;
    memo.tag = epoch_tag;
    memo.scan_data = scan.data();
    memo.scan_size = scan.size();
    memo.all.clear();
    build_candidates(scan, memo.scratch, memo.all);
  }
  if (out.capacity() < fps_.size()) out.reserve(fps_.size());
  out.assign(memo.all.begin(), memo.all.end());
  keep_k_nearest(out, k);
}

void FingerprintDatabase::all_distances_into(
    const std::vector<sim::ApReading>& scan, ScanScratch& scratch,
    std::vector<double>& out) const {
  obs::ScopedTimer timer(match_us_);
  out.assign(fps_.size(), std::numeric_limits<double>::max());
  if (cache_ready_) {
    ++scratch.cache_hits;
    if (cache_hits_ != nullptr) cache_hits_->inc();
    prepare_scan(scan, scratch);
#if !defined(UNILOC_NO_SIMD)
    if (stats::simd_enabled()) {
      score_batch(scan, scratch);
      std::copy(scratch.lane_sum2.begin(), scratch.lane_sum2.end(),
                out.begin());
      return;
    }
#endif
    for (std::size_t i = 0; i < fps_.size(); ++i) {
      out[i] = cached_distance(i, scan, scratch);
    }
  } else {
    ++scratch.cache_misses;
    if (cache_misses_ != nullptr) cache_misses_->inc();
    for (std::size_t i = 0; i < fps_.size(); ++i) {
      out[i] = rssi_distance(scan, fps_[i], floor_dbm());
    }
  }
}

double FingerprintDatabase::local_density(geo::Vec2 pos, std::size_t k) const {
  std::vector<std::size_t> nn;
  return local_density(pos, k, nn);
}

double FingerprintDatabase::local_density(
    geo::Vec2 pos, std::size_t k, std::vector<std::size_t>& knn_buf) const {
  if (fps_.empty()) return std::numeric_limits<double>::max();
  spatial_.k_nearest_into(pos, k + 1, knn_buf);
  // Skip the closest (it may be the query location itself); average the
  // next k inter-fingerprint gaps.
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 1; i < knn_buf.size(); ++i) {
    sum += geo::distance(fps_[knn_buf[i]].pos, pos);
    ++count;
  }
  if (count == 0) return geo::distance(fps_[knn_buf[0]].pos, pos);
  return sum / static_cast<double>(count);
}

void FingerprintDatabase::blend_reading(std::size_t index, int transmitter_id,
                                        double rssi_dbm, double alpha) {
  assert(index < fps_.size());
  auto [it, inserted] = fps_[index].rssi.try_emplace(transmitter_id, rssi_dbm);
  if (!inserted) {
    it->second = alpha * rssi_dbm + (1.0 - alpha) * it->second;
  }
  // The precomputed tables no longer match the fingerprints; cached
  // queries fall back to the exact path until the next prebuild.
  invalidate_likelihood_cache();
}

FingerprintDatabase FingerprintDatabase::downsampled(std::size_t keep_every,
                                                     std::uint64_t seed) const {
  FingerprintDatabase db;
  db.source_ = source_;
  if (keep_every <= 1) {
    db.fps_ = fps_;
    db.rebuild_spatial_index();
    return db;
  }
  const std::size_t phase = stats::splitmix64(seed) % keep_every;
  for (std::size_t i = 0; i < fps_.size(); ++i) {
    if (i % keep_every == phase) db.fps_.push_back(fps_[i]);
  }
  db.rebuild_spatial_index();
  return db;
}

std::size_t FingerprintDatabase::nearest_spatial(geo::Vec2 pos) const {
  assert(!fps_.empty());
  return spatial_.nearest(pos);
}

}  // namespace uniloc::schemes
