// Crowdsourced fingerprint maintenance.
//
// The paper's operating assumption (Sec. III-B): "we assume that a RSSI
// fingerprint database is updated by service providers or crowdsourcing
// [9], [10]" -- otherwise environmental drift (renovations, seasonal
// humidity, AP replacement) slowly rots the offline database. This module
// implements the crowdsourcing half: walks contribute (estimated
// position, scan) pairs; contributions are binned onto the fingerprint
// grid and blended into the database with an exponential moving average,
// gated on the contributor's own position confidence so bad estimates do
// not poison the map (the Zee/LiFS recipe).
#pragma once

#include <cstddef>

#include "schemes/fingerprint_db.h"

namespace uniloc::schemes {

class FingerprintCrowdsourcer {
 public:
  struct Options {
    /// Contributions whose reported position confidence (predicted error,
    /// meters) exceeds this are discarded.
    double max_position_error_m = 4.0;
    /// Contributions farther than this from any existing fingerprint are
    /// discarded (we refresh the map, we do not grow it).
    double max_snap_distance_m = 4.0;
    /// EMA blend factor per accepted contribution (new = a*obs + (1-a)*old).
    double blend = 0.25;
    /// Minimum accepted contributions for a fingerprint before its
    /// readings are considered refreshed.
    std::size_t min_contributions = 2;
  };

  /// Maintains `db` in place; `db` must outlive the crowdsourcer.
  FingerprintCrowdsourcer(FingerprintDatabase* db, Options opts);
  explicit FingerprintCrowdsourcer(FingerprintDatabase* db)
      : FingerprintCrowdsourcer(db, Options{}) {}

  /// Offer one contribution: the contributor's position estimate, its
  /// self-assessed error (meters) and the scan taken there.
  /// Returns true if accepted.
  bool contribute(geo::Vec2 estimated_pos, double position_error_m,
                  const std::vector<sim::ApReading>& scan);

  std::size_t accepted() const { return accepted_; }
  std::size_t rejected() const { return rejected_; }

  /// Contributions accepted per fingerprint index.
  const std::vector<std::size_t>& contribution_counts() const {
    return counts_;
  }

 private:
  FingerprintDatabase* db_;
  Options opts_;
  std::vector<std::size_t> counts_;
  std::size_t accepted_{0};
  std::size_t rejected_{0};
};

}  // namespace uniloc::schemes
