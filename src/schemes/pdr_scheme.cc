#include "schemes/pdr_scheme.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/gaussian.h"
#include "obs/metrics.h"

namespace uniloc::schemes {

PdrScheme::PdrScheme(const sim::Place* place, PdrOptions opts)
    : place_(place),
      opts_(opts),
      pf_(opts.num_particles, stats::Rng(opts.seed)) {}

void PdrScheme::reset(const StartCondition& start) {
  frontend_.reset(start.heading);
  pf_ = filter::ParticleFilter(opts_.num_particles, stats::Rng(opts_.seed));
  // Reassigning the filter dropped its instrument pointers; re-attach.
  pf_.attach_metrics(registry_, "scheme." + name() + ".pf");
  pf_.init(start.pos, start.heading, /*pos_sd=*/0.8,
           /*heading_sd=*/0.08, /*scale_sd=*/0.07);
  dist_since_landmark_ = 0.0;
  started_ = true;
}

void PdrScheme::attach_metrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  // name() is virtual, so the fusion subclass lands under its own prefix.
  pf_.attach_metrics(registry, "scheme." + name() + ".pf");
}

void PdrScheme::apply_map_constraint() {
  if (!opts_.use_map || place_ == nullptr) return;
  pf_.reweight([this](const filter::Particle& p) {
    const sim::LocalEnvironment env = place_->environment_at(p.pos);
    const double beyond =
        std::max(0.0, env.distance_to_walkway - env.corridor_width_m / 2.0);
    if (beyond <= 0.0) return 1.0;
    const double z = beyond / opts_.map_slack_m;
    return std::exp(-0.5 * z * z);
  });
}

void PdrScheme::apply_landmarks(const sim::SensorFrame& frame) {
  if (!opts_.use_landmarks || frame.landmarks.empty()) return;
  for (const sim::LandmarkObservation& lm : frame.landmarks) {
    // If the whole cloud has diverged far from the recognized landmark,
    // reweighting cannot pull it back (every likelihood underflows);
    // re-anchor the filter at the landmark instead -- the UnLoc-style
    // hard calibration.
    double closest = std::numeric_limits<double>::infinity();
    for (const filter::Particle& p : pf_.particles()) {
      closest = std::min(closest, geo::distance(p.pos, lm.map_pos));
    }
    if (closest > 3.0 * opts_.landmark_sd_m) {
      const double heading = pf_.mean_heading();
      pf_.init(lm.map_pos, heading, opts_.landmark_sd_m,
               /*heading_sd=*/0.15, /*scale_sd=*/0.07);
    } else {
      pf_.reweight([&](const filter::Particle& p) {
        const double d = geo::distance(p.pos, lm.map_pos);
        return stats::normal_pdf(d / opts_.landmark_sd_m) + 1e-6;
      });
    }
  }
  dist_since_landmark_ = 0.0;
}

void PdrScheme::apply_wall_constraint(const std::vector<geo::Vec2>& before) {
  if (!opts_.use_walls || place_ == nullptr || place_->walls().empty()) {
    return;
  }
  pf_.reweight_indexed([&](std::size_t i, const filter::Particle& p) {
    return place_->crosses_wall(before[i], p.pos) ? 1e-9 : 1.0;
  });
}

void PdrScheme::extra_reweight(const sim::SensorFrame&) {}

SchemeOutput PdrScheme::make_output() const {
  SchemeOutput out;
  out.available = started_;
  if (!started_) return out;
  out.estimate = pf_.mean();
  for (const filter::Particle& p : pf_.particles()) {
    out.posterior.support.push_back({p.pos, p.weight});
  }
  out.posterior.normalize();
  out.observables["dist_since_landmark"] = dist_since_landmark_;
  out.observables["particle_spread"] = pf_.spread();
  return out;
}

SchemeOutput PdrScheme::update(const sim::SensorFrame& frame) {
  if (!started_) return {};

  const StepInference inf = frontend_.process(frame.imu);
  std::vector<geo::Vec2> before;
  if (opts_.use_walls && inf.steps > 0) {
    before.reserve(pf_.size());
    for (const filter::Particle& p : pf_.particles()) before.push_back(p.pos);
  }
  for (int s = 0; s < inf.steps; ++s) {
    pf_.predict(inf.step_length_m,
                inf.dheading_rad / static_cast<double>(inf.steps),
                opts_.step_len_sd, opts_.heading_sd);
    dist_since_landmark_ += inf.step_length_m;
  }
  if (!before.empty()) apply_wall_constraint(before);
  apply_map_constraint();
  extra_reweight(frame);
  apply_landmarks(frame);
  pf_.resample();
  return make_output();
}

}  // namespace uniloc::schemes
