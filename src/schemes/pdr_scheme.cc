#include "schemes/pdr_scheme.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/gaussian.h"
#include "stats/vecmath.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace uniloc::schemes {

PdrScheme::PdrScheme(const sim::Place* place, PdrOptions opts)
    : place_(place), opts_(opts), pf_(opts.num_particles, opts.seed) {}

void PdrScheme::reset(const StartCondition& start) {
  frontend_.reset(start.heading);
  // Reseed in place: the filter's SoA arrays, scratch buffers and attached
  // instruments all survive the reset (the old filter-reassignment hack
  // dropped them and had to re-attach).
  pf_.reseed(opts_.seed);
  pf_.init(start.pos, start.heading, /*pos_sd=*/0.8,
           /*heading_sd=*/0.08, /*scale_sd=*/0.07);
  dist_since_landmark_ = 0.0;
  started_ = true;
}

void PdrScheme::attach_metrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  // name() is virtual, so the fusion subclass lands under its own prefix.
  pf_.attach_metrics(registry, "scheme." + name() + ".pf");
  if (registry == nullptr) {
    map_us_ = nullptr;
    extra_us_ = nullptr;
    output_us_ = nullptr;
    return;
  }
  const std::string prefix = "scheme." + name() + ".stage.";
  map_us_ = &registry->histogram(prefix + "map_us");
  extra_us_ = &registry->histogram(prefix + "extra_us");
  output_us_ = &registry->histogram(prefix + "output_us");
}

void PdrScheme::apply_map_constraint(bool fast) {
  if (!opts_.use_map || place_ == nullptr) return;
  // Pin the env index once for the whole pass -- per-particle
  // corridor_safe_fast/environment_at_fast calls each pay an atomic
  // shared_ptr copy, and this lambda runs ~300x2 times per epoch.
  const sim::Place::EnvView env_view = place_->env_view();
  pf_.reweight([this, fast, &env_view](const filter::Particle& p) {
    // Corridor-safe cells: the full environment computation below is
    // guaranteed to land in the `beyond <= 0` branch and return exactly
    // 1.0 (see Place::corridor_safe_fast), so the fast path skips the
    // walkway projections -- the dominant cost of this constraint --
    // without changing any weight.
    if (fast && env_view.corridor_safe(p.pos)) return 1.0;
    const sim::LocalEnvironment env = fast
                                          ? env_view.environment(p.pos)
                                          : place_->environment_at(p.pos);
    const double beyond =
        std::max(0.0, env.distance_to_walkway - env.corridor_width_m / 2.0);
    if (beyond <= 0.0) return 1.0;
    const double z = beyond / opts_.map_slack_m;
    // det_exp keeps the whole particle-weight pipeline off libm, so the
    // traces reproduce bit for bit on any IEEE-754 platform, not just
    // against this machine's libm (DESIGN.md section 16).
    return stats::det_exp(-0.5 * z * z);
  });
}

void PdrScheme::apply_landmarks(const sim::SensorFrame& frame) {
  if (!opts_.use_landmarks || frame.landmarks.empty()) return;
  for (const sim::LandmarkObservation& lm : frame.landmarks) {
    // If the whole cloud has diverged far from the recognized landmark,
    // reweighting cannot pull it back (every likelihood underflows);
    // re-anchor the filter at the landmark instead -- the UnLoc-style
    // hard calibration.
    double closest = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < pf_.size(); ++i) {
      closest = std::min(closest, geo::distance(pf_.pos(i), lm.map_pos));
    }
    if (closest > 3.0 * opts_.landmark_sd_m) {
      const double heading = pf_.mean_heading();
      pf_.init(lm.map_pos, heading, opts_.landmark_sd_m,
               /*heading_sd=*/0.15, /*scale_sd=*/0.07);
    } else {
      pf_.reweight([&](const filter::Particle& p) {
        const double d = geo::distance(p.pos, lm.map_pos);
        return stats::normal_pdf(d / opts_.landmark_sd_m) + 1e-6;
      });
    }
  }
  dist_since_landmark_ = 0.0;
}

void PdrScheme::apply_wall_constraint(const std::vector<geo::Vec2>& before) {
  if (!opts_.use_walls || place_ == nullptr || place_->walls().empty()) {
    return;
  }
  pf_.reweight_indexed([&](std::size_t i, const filter::Particle& p) {
    return place_->crosses_wall(before[i], p.pos) ? 1e-9 : 1.0;
  });
}

void PdrScheme::extra_reweight(const sim::SensorFrame&) {}

void PdrScheme::extra_reweight_fast(const sim::SensorFrame& frame) {
  extra_reweight(frame);
}

SchemeOutput PdrScheme::make_output() const {
  SchemeOutput out;
  out.available = started_;
  if (!started_) return out;
  out.estimate = pf_.mean();
  for (std::size_t i = 0; i < pf_.size(); ++i) {
    out.posterior.support.push_back({pf_.pos(i), pf_.weight(i)});
  }
  out.posterior.normalize();
  out.observables["dist_since_landmark"] = dist_since_landmark_;
  out.observables["particle_spread"] = pf_.spread();
  return out;
}

void PdrScheme::make_output_into(SchemeOutput& out) const {
  obs::ScopedTimer timer(output_us_);
  // "dist_since_landmark" is 19 chars -- past libstdc++'s SSO buffer --
  // so keep one static key instead of a per-epoch heap temporary.
  static const std::string kDistSinceLandmark = "dist_since_landmark";
  static const std::string kParticleSpread = "particle_spread";
  out.available = started_;
  if (!started_) return;
  out.estimate = pf_.mean();
  out.posterior.support.clear();
  for (std::size_t i = 0; i < pf_.size(); ++i) {
    out.posterior.support.push_back({pf_.pos(i), pf_.weight(i)});
  }
  out.posterior.normalize();
  out.observables[kDistSinceLandmark] = dist_since_landmark_;
  out.observables[kParticleSpread] = pf_.spread();
}

void PdrScheme::step_epoch(const sim::SensorFrame& frame, bool fast) {
  const StepInference inf = frontend_.process(frame.imu);
  std::vector<geo::Vec2>& before = before_;
  before.clear();
  if (opts_.use_walls && inf.steps > 0) {
    before.reserve(pf_.size());
    for (std::size_t i = 0; i < pf_.size(); ++i) before.push_back(pf_.pos(i));
  }
  for (int s = 0; s < inf.steps; ++s) {
    pf_.predict(inf.step_length_m,
                inf.dheading_rad / static_cast<double>(inf.steps),
                opts_.step_len_sd, opts_.heading_sd);
    dist_since_landmark_ += inf.step_length_m;
  }
  if (!before.empty()) apply_wall_constraint(before);
  {
    obs::ScopedTimer t(map_us_);
    apply_map_constraint(fast);
  }
  {
    obs::ScopedTimer t(extra_us_);
    if (fast) {
      extra_reweight_fast(frame);
    } else {
      extra_reweight(frame);
    }
  }
  apply_landmarks(frame);
  pf_.resample();
}

SchemeOutput PdrScheme::update(const sim::SensorFrame& frame) {
  if (!started_) return {};
  step_epoch(frame, /*fast=*/false);
  return make_output();
}

void PdrScheme::update_into(const sim::SensorFrame& frame, SchemeOutput& out) {
  if (!started_) {
    out.available = false;
    return;
  }
  step_epoch(frame, /*fast=*/true);
  make_output_into(out);
}

void PdrScheme::snapshot_into(offload::ByteWriter& w) const {
  snapshot_into(w, SnapshotContext{});
}

bool PdrScheme::restore_from(offload::ByteReader& r) {
  return restore_from(r, SnapshotContext{});
}

void PdrScheme::snapshot_into(offload::ByteWriter& w,
                              const SnapshotContext& ctx) const {
  frontend_.snapshot_into(w);
  // The particle filter is the only quantizable state: the frontend and
  // the two scalars below are a handful of bytes, while the filter is
  // ~12 KB of f64 arrays that compress 4x on the fixed-point grid.
  if (ctx.quantize) {
    pf_.snapshot_into_quantized(w, ctx.venue);
  } else {
    pf_.snapshot_into(w);
  }
  w.put_f64(dist_since_landmark_);
  w.put_bool(started_);
}

bool PdrScheme::restore_from(offload::ByteReader& r,
                             const SnapshotContext& ctx) {
  if (!frontend_.restore_from(r)) return false;
  if (!(ctx.quantize ? pf_.restore_from_quantized(r) : pf_.restore_from(r))) {
    return false;
  }
  double dist;
  bool started;
  if (!r.get_f64(dist) || !r.get_bool(started)) return false;
  dist_since_landmark_ = dist;
  started_ = started;
  return true;
}

}  // namespace uniloc::schemes
