#include "schemes/offset_calibration.h"

#include <limits>

namespace uniloc::schemes {

OffsetCalibrator::OffsetCalibrator()
    : kalman_(/*initial_estimate=*/0.0, /*initial_sd=*/6.0,
              /*process_sd=*/0.05, /*measurement_sd=*/3.0) {}

std::vector<sim::ApReading> OffsetCalibrator::calibrate(
    std::vector<sim::ApReading> scan, const FingerprintDatabase& db) {
  if (scan.empty() || db.empty()) return scan;

  // Apply the current correction, then find the best match with the
  // corrected scan (the match is what anchors the next offset update).
  std::vector<sim::ApReading> corrected = scan;
  for (sim::ApReading& r : corrected) r.rssi_dbm += kalman_.estimate();

  const std::vector<Match> nn = db.k_nearest(corrected, 1);
  if (nn.empty()) return corrected;
  const Fingerprint& fp = db.fingerprints()[nn[0].index];

  // Mean discrepancy over shared transmitters of the *raw* scan vs the
  // matched fingerprint: an observation of -delta.
  double sum = 0.0;
  int shared = 0;
  for (const sim::ApReading& r : scan) {
    const auto it = fp.rssi.find(r.id);
    if (it == fp.rssi.end()) continue;
    sum += it->second - r.rssi_dbm;
    ++shared;
  }
  if (shared >= 2) {
    kalman_.update(sum / shared);
    // Re-apply the refreshed offset.
    corrected = scan;
    for (sim::ApReading& r : corrected) r.rssi_dbm += kalman_.estimate();
  }
  return corrected;
}

}  // namespace uniloc::schemes
