// Online device-heterogeneity RSSI offset calibration.
//
// A phone other than the fingerprinting device reports shifted RSSIs:
// RSSI_A = alpha * RSSI_B + delta with alpha ~ 1 (paper Sec. III-B,
// following [38]). The calibrator estimates delta online with a scalar
// Kalman filter over the per-scan discrepancy between the online scan and
// its best-matching fingerprint, then corrects subsequent scans. With
// alpha ~ 1 this additive correction captures most of the offset, which is
// what Fig. 8d ("w/ calibration") demonstrates.
#pragma once

#include <vector>

#include "filter/kalman1d.h"
#include "offload/bytes.h"
#include "schemes/fingerprint_db.h"

namespace uniloc::schemes {

class OffsetCalibrator {
 public:
  OffsetCalibrator();

  /// Update the offset estimate from one scan and its best fingerprint
  /// match, then return the corrected scan. A scan with no shared
  /// transmitters is returned unmodified.
  std::vector<sim::ApReading> calibrate(std::vector<sim::ApReading> scan,
                                        const FingerprintDatabase& db);

  /// Current offset estimate (dB added to incoming readings).
  double offset_db() const { return kalman_.estimate(); }

  /// Snapshot codec: the Kalman estimate + variance are the calibrator's
  /// entire mutable state.
  void snapshot_into(offload::ByteWriter& w) const {
    w.put_f64(kalman_.estimate());
    w.put_f64(kalman_.variance());
  }
  bool restore_from(offload::ByteReader& r) {
    double estimate, variance;
    if (!r.get_f64(estimate) || !r.get_f64(variance)) return false;
    kalman_.set_state(estimate, variance);
    return true;
  }

 private:
  filter::Kalman1d kalman_;
};

}  // namespace uniloc::schemes
