// Online device-heterogeneity RSSI offset calibration.
//
// A phone other than the fingerprinting device reports shifted RSSIs:
// RSSI_A = alpha * RSSI_B + delta with alpha ~ 1 (paper Sec. III-B,
// following [38]). The calibrator estimates delta online with a scalar
// Kalman filter over the per-scan discrepancy between the online scan and
// its best-matching fingerprint, then corrects subsequent scans. With
// alpha ~ 1 this additive correction captures most of the offset, which is
// what Fig. 8d ("w/ calibration") demonstrates.
#pragma once

#include <vector>

#include "filter/kalman1d.h"
#include "schemes/fingerprint_db.h"

namespace uniloc::schemes {

class OffsetCalibrator {
 public:
  OffsetCalibrator();

  /// Update the offset estimate from one scan and its best fingerprint
  /// match, then return the corrected scan. A scan with no shared
  /// transmitters is returned unmodified.
  std::vector<sim::ApReading> calibrate(std::vector<sim::ApReading> scan,
                                        const FingerprintDatabase& db);

  /// Current offset estimate (dB added to incoming readings).
  double offset_db() const { return kalman_.estimate(); }

 private:
  filter::Kalman1d kalman_;
};

}  // namespace uniloc::schemes
