// GPS localization scheme.
//
// Reports the phone GPS fix converted into the local map frame (paper
// Sec. IV-B: "we convert the result of GPS to the map coordinate by the
// public digital map information"). Unavailable whenever the receiver has
// no valid fix or the energy controller disabled the sensor.
#pragma once

#include "geo/latlon.h"
#include "schemes/scheme.h"

namespace uniloc::schemes {

class GpsScheme final : public LocalizationScheme {
 public:
  explicit GpsScheme(geo::LocalFrame frame);

  std::string name() const override { return "GPS"; }
  SchemeFamily family() const override { return SchemeFamily::kGps; }
  void reset(const StartCondition& start) override;
  SchemeOutput update(const sim::SensorFrame& frame) override;
  void update_into(const sim::SensorFrame& frame, SchemeOutput& out) override;

 private:
  geo::LocalFrame frame_;
};

}  // namespace uniloc::schemes
