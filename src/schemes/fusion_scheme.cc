#include "schemes/fusion_scheme.h"

#include <cmath>

#include "schemes/epoch_context.h"
#include "stats/gaussian.h"

namespace uniloc::schemes {

FusionScheme::FusionScheme(const sim::Place* place,
                           const FingerprintDatabase* db, FusionOptions opts)
    : PdrScheme(place, opts.pdr), db_(db), opts_(opts) {}

void FusionScheme::extra_reweight(const sim::SensorFrame& frame) {
  if (frame.wifi.empty() || db_->empty()) return;

  const std::vector<Match> candidates =
      db_->k_nearest(frame.wifi, opts_.rssi_top_k);
  if (candidates.empty()) return;

  // RSSI likelihood of each candidate, relative to the best match.
  const double best = candidates[0].distance;
  std::vector<double> rssi_w(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    rssi_w[i] =
        std::exp(-(candidates[i].distance - best) / opts_.rssi_scale_db);
  }

  pf().reweight([&](const filter::Particle& p) {
    double like = opts_.floor_likelihood;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const geo::Vec2 fp_pos = db_->fingerprints()[candidates[i].index].pos;
      const double d = geo::distance(p.pos, fp_pos);
      like += rssi_w[i] * stats::normal_pdf(d / opts_.spatial_sd_m);
    }
    return like;
  });
}

void FusionScheme::extra_reweight_fast(const sim::SensorFrame& frame) {
  if (frame.wifi.empty() || db_->empty()) return;

  // The WiFi scheme has typically evaluated this scan against the same
  // database already this epoch; the shared memo turns our query into a
  // copy + partial sort.
  ScanMemo* memo =
      epoch_ctx_ != nullptr ? epoch_ctx_->memo_for(db_) : nullptr;
  if (memo != nullptr) {
    db_->k_nearest_memo(frame.wifi, opts_.rssi_top_k, epoch_ctx_->tag, *memo,
                        candidates_);
  } else {
    db_->k_nearest_into(frame.wifi, opts_.rssi_top_k, scan_scratch_,
                        candidates_);
  }
  if (candidates_.empty()) return;

  const double best = candidates_[0].distance;
  rssi_w_.resize(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    rssi_w_[i] =
        std::exp(-(candidates_[i].distance - best) / opts_.rssi_scale_db);
  }

  const std::vector<Match>& candidates = candidates_;
  const std::vector<double>& rssi_w = rssi_w_;
  pf().reweight([&](const filter::Particle& p) {
    double like = opts_.floor_likelihood;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const geo::Vec2 fp_pos = db_->fingerprints()[candidates[i].index].pos;
      const double d = geo::distance(p.pos, fp_pos);
      like += rssi_w[i] * stats::normal_pdf(d / opts_.spatial_sd_m);
    }
    return like;
  });
}

}  // namespace uniloc::schemes
