#include "schemes/fusion_scheme.h"

#include <cmath>

#include "schemes/epoch_context.h"
#include "stats/gaussian.h"
#include "stats/simd.h"
#include "stats/vecmath.h"

namespace uniloc::schemes {

FusionScheme::FusionScheme(const sim::Place* place,
                           const FingerprintDatabase* db, FusionOptions opts)
    : PdrScheme(place, opts.pdr), db_(db), opts_(opts) {}

void FusionScheme::extra_reweight(const sim::SensorFrame& frame) {
  if (frame.wifi.empty() || db_->empty()) return;

  const std::vector<Match> candidates =
      db_->k_nearest(frame.wifi, opts_.rssi_top_k);
  if (candidates.empty()) return;

  // RSSI likelihood of each candidate, relative to the best match.
  // det_exp, not std::exp: the fast path evaluates the same weights and
  // the two pipelines must agree bit for bit.
  const double best = candidates[0].distance;
  std::vector<double> rssi_w(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    rssi_w[i] =
        stats::det_exp(-(candidates[i].distance - best) / opts_.rssi_scale_db);
  }

  // Squared-distance form: (dx^2 + dy^2) * inv_sd2 feeds normal_pdf_sq
  // directly, skipping the per-lane sqrt and division. Every fusion
  // reweight path (this reference, the SIMD kernel, its scalar
  // fallback) evaluates this exact expression so they stay
  // bit-identical to each other.
  const double inv_sd2 = 1.0 / (opts_.spatial_sd_m * opts_.spatial_sd_m);
  pf().reweight([&](const filter::Particle& p) {
    double like = opts_.floor_likelihood;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const geo::Vec2 fp_pos = db_->fingerprints()[candidates[i].index].pos;
      const double dx = p.pos.x - fp_pos.x;
      const double dy = p.pos.y - fp_pos.y;
      like += rssi_w[i] * stats::normal_pdf_sq((dx * dx + dy * dy) * inv_sd2);
    }
    return like;
  });
}

void FusionScheme::extra_reweight_fast(const sim::SensorFrame& frame) {
  if (frame.wifi.empty() || db_->empty()) return;

  // The WiFi scheme has typically evaluated this scan against the same
  // database already this epoch; the shared memo turns our query into a
  // copy + partial sort.
  ScanMemo* memo =
      epoch_ctx_ != nullptr ? epoch_ctx_->memo_for(db_) : nullptr;
  if (memo != nullptr) {
    db_->k_nearest_memo(frame.wifi, opts_.rssi_top_k, epoch_ctx_->tag, *memo,
                        candidates_);
  } else {
    db_->k_nearest_into(frame.wifi, opts_.rssi_top_k, scan_scratch_,
                        candidates_);
  }
  if (candidates_.empty()) return;

  const double best = candidates_[0].distance;
  rssi_w_.resize(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    rssi_w_[i] = stats::det_exp(-(candidates_[i].distance - best) /
                                opts_.rssi_scale_db);
  }

#if !defined(UNILOC_NO_SIMD)
  if (stats::simd_enabled()) {
    // Lane-per-particle kernel: candidate-outer / particle-inner keeps
    // each particle's accumulation in candidate order -- the exact
    // per-particle operation sequence of the scalar lambda below, so the
    // committed weights are bit-identical (normal_pdf_sq is
    // det_exp-based and inline in both paths).
    filter::ParticleFilter& f = pf();
    const std::size_t n = f.size();
    like_.resize(n);
    double* like = like_.data();
    const double floor_like = opts_.floor_likelihood;
    UNILOC_PRAGMA_SIMD
    for (std::size_t p = 0; p < n; ++p) like[p] = floor_like;
    const double* xs = f.pos_xs();
    const double* ys = f.pos_ys();
    const double inv_sd2 =
        1.0 / (opts_.spatial_sd_m * opts_.spatial_sd_m);
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const geo::Vec2 fp_pos = db_->fingerprints()[candidates_[i].index].pos;
      const double fx = fp_pos.x;
      const double fy = fp_pos.y;
      const double w = rssi_w_[i];
      UNILOC_PRAGMA_SIMD
      for (std::size_t p = 0; p < n; ++p) {
        const double dx = xs[p] - fx;
        const double dy = ys[p] - fy;
        like[p] += w * stats::normal_pdf_sq((dx * dx + dy * dy) * inv_sd2);
      }
    }
    f.reweight_array(like);
    return;
  }
#endif
  const std::vector<Match>& candidates = candidates_;
  const std::vector<double>& rssi_w = rssi_w_;
  const double inv_sd2 = 1.0 / (opts_.spatial_sd_m * opts_.spatial_sd_m);
  pf().reweight([&](const filter::Particle& p) {
    double like = opts_.floor_likelihood;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const geo::Vec2 fp_pos = db_->fingerprints()[candidates[i].index].pos;
      const double dx = p.pos.x - fp_pos.x;
      const double dy = p.pos.y - fp_pos.y;
      like += rssi_w[i] * stats::normal_pdf_sq((dx * dx + dy * dy) * inv_sd2);
    }
    return like;
  });
}

}  // namespace uniloc::schemes
