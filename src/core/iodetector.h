// IODetector: indoor/outdoor classification from low-power sensors.
//
// Re-implementation of the detector the paper adopts ([36]): light
// intensity (daylight dwarfs indoor lighting), magnetic-field fluctuation
// (steel structure indoors) and cellular signal strength (attenuated
// indoors) vote on the environment class. UniLoc uses the verdict to pick
// the indoor or outdoor error model and to keep GPS off indoors.
#pragma once

#include "sim/sensor_frame.h"

namespace uniloc::core {

struct IoDetectorParams {
  double light_threshold_lux{3000.0};
  double mag_sd_threshold_ut{2.0};
  double cell_rssi_threshold_dbm{-82.0};
  double light_vote{1.0};
  double mag_vote{1.0};
  double cell_vote{0.5};
};

class IoDetector {
 public:
  IoDetector() : IoDetector(IoDetectorParams{}) {}
  explicit IoDetector(IoDetectorParams params) : params_(params) {}

  /// True if the frame looks indoor. Stateless per-frame vote.
  bool is_indoor(const sim::SensorFrame& frame) const;

  /// Signed score (> 0 indoor); exposed for calibration tests.
  double indoor_score(const sim::SensorFrame& frame) const;

 private:
  IoDetectorParams params_;
};

}  // namespace uniloc::core
