// Offline error-model training (paper Sec. III: the 2-step workflow).
//
// Step 1 -- data collection: schemes run as black boxes while a walker
// with known ground truth covers the training venues (an office for the
// indoor models, an urban open space for the outdoor models; ~300
// measurement locations each). For every epoch and scheme we record the
// candidate feature vector and the measured localization error.
//
// Step 2 -- regression: per scheme family, fit the multiple linear
// regression of Table II on the significant features (a prefix of the
// candidate vector); GPS gets the constant model (mean, sd) of its
// outdoor errors.
//
// The models are trained once and reused in every venue -- including the
// 89% of test locations the models never saw (the paper's scalability
// claim).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/deployment.h"
#include "core/error_model.h"
#include "core/features.h"
#include "sim/walker.h"

namespace uniloc::core {

/// One (candidate features, measured error) training tuple.
struct TrainingRow {
  std::vector<double> x;  ///< Candidate features (superset of model features).
  double y{0.0};          ///< Measured localization error (m).
};

struct FamilyData {
  std::vector<TrainingRow> rows;
};

/// Raw collection result for one venue.
struct TrainingData {
  std::map<schemes::SchemeFamily, FamilyData> by_family;
  std::vector<double> gps_errors;  ///< GPS errors observed (outdoor venues).
  bool venue_indoor{true};
  std::size_t num_epochs{0};
};

struct CollectOptions {
  std::size_t target_samples = 300;  ///< Paper: 300 measurements suffice.
  /// Record every k-th step (~one measurement location every 3 m, as in
  /// the paper) so the 300 samples span several walks -- and therefore
  /// several fingerprint densities and corridor widths -- instead of one
  /// heavily autocorrelated trace.
  int record_every = 4;
  std::uint64_t seed = 5;
  sim::WalkConfig walk{};
};

/// Walk the venue's walkways (cycling through them and re-walking with
/// fresh seeds) until `target_samples` epochs are recorded.
TrainingData collect_training_data(const Deployment& venue,
                                   CollectOptions opts = {});

/// The full model set used by the framework.
struct TrainedModels {
  std::map<schemes::SchemeFamily, ErrorModel> by_family;

  const ErrorModel& for_family(schemes::SchemeFamily f) const;
};

/// Fit Table II: indoor fits from `indoor_data`, outdoor fits from
/// `outdoor_data`; GPS constant model from outdoor GPS errors.
TrainedModels fit_error_models(const TrainingData& indoor_data,
                               const TrainingData& outdoor_data);

/// Convenience: build the two training deployments (office, open space),
/// collect, and fit -- the whole "one person within one day" procedure.
TrainedModels train_standard_models(std::uint64_t seed = 42,
                                    std::size_t target_samples = 300);

}  // namespace uniloc::core
