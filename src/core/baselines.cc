#include "core/baselines.h"

#include <limits>
#include <stdexcept>

namespace uniloc::core {

int oracle_choice(const std::vector<schemes::SchemeOutput>& outputs,
                  geo::Vec2 truth) {
  int best = -1;
  double best_err = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    if (!outputs[i].available) continue;
    const double err = geo::distance(outputs[i].estimate, truth);
    if (err < best_err) {
      best_err = err;
      best = static_cast<int>(i);
    }
  }
  return best;
}

GlobalWeightBma::GlobalWeightBma(
    const std::vector<double>& mean_training_error) {
  weights_.resize(mean_training_error.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < mean_training_error.size(); ++i) {
    if (mean_training_error[i] <= 0.0) {
      throw std::invalid_argument("GlobalWeightBma: non-positive error");
    }
    weights_[i] = 1.0 / mean_training_error[i];
    total += weights_[i];
  }
  for (double& w : weights_) w /= total;
}

geo::Vec2 GlobalWeightBma::combine(
    const std::vector<schemes::SchemeOutput>& outputs) const {
  geo::Vec2 fused{};
  double mass = 0.0;
  for (std::size_t i = 0; i < outputs.size() && i < weights_.size(); ++i) {
    if (!outputs[i].available) continue;
    const geo::Vec2 m = outputs[i].posterior.empty()
                            ? outputs[i].estimate
                            : outputs[i].posterior.mean();
    fused += m * weights_[i];
    mass += weights_[i];
  }
  return mass > 0.0 ? fused / mass : geo::Vec2{};
}

}  // namespace uniloc::core
