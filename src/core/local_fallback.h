// LocalFallback: phone-side dead-reckoning when the server is gone.
//
// The offload split (Sec. IV-C) keeps the PDR front-end on the phone --
// the heading filter and step detector already run locally, and their
// quantized StepPayload (heading + displacement) is exactly what the
// uplink carries. So when the link is declared down, the phone does not
// go blind: it seeds this dead-reckoner from the last server fix and
// integrates the same quantized step stream it would have uploaded,
// producing a position estimate with no server round-trip. The estimate
// drifts like any inertial track (a few percent of distance walked),
// which is what bounds the error during a blackout; on reconnect the
// server fix takes over again (and, if the session was evicted, the
// re-hello is seeded from this estimate, reconciling both sides).
#pragma once

#include "geo/vec2.h"

namespace uniloc::core {

class LocalFallback {
 public:
  /// Start dead-reckoning at `fix` (normally the last server estimate).
  void seed(geo::Vec2 fix, double heading);

  /// Integrate one epoch's quantized walking-model update -- the same
  /// heading/distance the uplink StepPayload carries. Returns the new
  /// estimate.
  geo::Vec2 advance(double heading_rad, double distance_m);

  geo::Vec2 estimate() const { return pos_; }
  double heading() const { return heading_; }
  bool seeded() const { return seeded_; }
  /// Distance integrated since seed() -- the drift budget.
  double distance_walked() const { return walked_m_; }

 private:
  geo::Vec2 pos_;
  double heading_{0.0};
  double walked_m_{0.0};
  bool seeded_{false};
};

}  // namespace uniloc::core
