#include "core/trainer.h"

#include <cassert>
#include <stdexcept>

#include "sim/walker.h"
#include "stats/descriptive.h"

namespace uniloc::core {

TrainingData collect_training_data(const Deployment& venue,
                                   CollectOptions opts) {
  TrainingData data;
  // The venue's character: indoor if its walkways are predominantly
  // indoor (training venues are homogeneous by design).
  double indoor_len = 0.0, total_len = 0.0;
  for (const sim::Walkway& w : venue.place->walkways()) {
    indoor_len += w.length_where(sim::is_indoor);
    total_len += w.line.length();
  }
  data.venue_indoor = indoor_len > total_len / 2.0;

  // The density feature needs variation to be learnable: following the
  // paper, walks cycle through downsampled copies of the fingerprint
  // database (3 m native spacing -> ~3/6/9/15 m effective).
  static constexpr std::size_t kDensityFactors[] = {1, 2, 3, 5};

  std::uint64_t walk_seed = opts.seed;
  std::size_t walkway = 0;
  std::size_t walk_count = 0;
  while (data.num_epochs < opts.target_samples) {
    const std::size_t factor =
        kDensityFactors[walk_count % std::size(kDensityFactors)];
    const schemes::FingerprintDatabase wifi_db =
        venue.wifi_db->downsampled(factor, walk_count);
    const schemes::FingerprintDatabase cell_db =
        venue.cell_db->downsampled(factor, walk_count);
    std::vector<schemes::SchemePtr> schemes_vec = make_schemes(
        venue.place.get(), &wifi_db, &cell_db, /*calibrate_offset=*/false,
        stats::hash_combine(opts.seed, 0x7EA1 + walk_count));
    ++walk_count;

    sim::WalkConfig wc = opts.walk;
    wc.seed = stats::hash_combine(walk_seed++, 0x11);
    sim::Walker walker(venue.place.get(), venue.radio.get(),
                       walkway % venue.place->walkways().size(), wc);
    walkway++;

    const schemes::StartCondition start{walker.start_position(),
                                        walker.start_heading()};
    for (auto& s : schemes_vec) s->reset(start);

    int step_idx = 0;
    while (!walker.done() && data.num_epochs < opts.target_samples) {
      const sim::SensorFrame frame = walker.step(/*gps_enabled=*/true);
      // Schemes consume every frame (PDR needs the continuous stream);
      // only every record_every-th location enters the training database.
      const bool record = (++step_idx % std::max(1, opts.record_every)) == 0;
      if (record) ++data.num_epochs;

      // Training knows the true location: features are computed against
      // ground truth (Sec. III-B), the environment label is the venue's.
      FeatureContext ctx;
      ctx.predicted_location = frame.truth_pos;
      ctx.indoor = data.venue_indoor;
      ctx.place = venue.place.get();
      ctx.wifi_db = &wifi_db;
      ctx.cell_db = &cell_db;

      for (auto& s : schemes_vec) {
        const schemes::SchemeOutput out = s->update(frame);
        if (!record || !out.available) continue;
        const double err = geo::distance(out.estimate, frame.truth_pos);
        if (s->family() == schemes::SchemeFamily::kGps) {
          data.gps_errors.push_back(err);
          continue;
        }
        TrainingRow row;
        row.x = extract_candidate_features(s->family(), frame, out, ctx);
        row.y = err;
        data.by_family[s->family()].rows.push_back(std::move(row));
      }
    }
  }
  return data;
}

namespace {

stats::LinearModel fit_family(const FamilyData& fd,
                              schemes::SchemeFamily family) {
  const std::vector<std::string> names = feature_names(family);
  const std::size_t p = names.size();
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(fd.rows.size());
  for (const TrainingRow& row : fd.rows) {
    assert(row.x.size() >= p);
    x.emplace_back(row.x.begin(), row.x.begin() + static_cast<long>(p));
    y.push_back(row.y);
  }
  return stats::fit_ols(x, y, names);
}

}  // namespace

const ErrorModel& TrainedModels::for_family(schemes::SchemeFamily f) const {
  const auto it = by_family.find(f);
  if (it == by_family.end()) {
    throw std::out_of_range("TrainedModels: no model for family");
  }
  return it->second;
}

TrainedModels fit_error_models(const TrainingData& indoor_data,
                               const TrainingData& outdoor_data) {
  TrainedModels models;
  using SF = schemes::SchemeFamily;
  for (SF family : {SF::kWifiFingerprint, SF::kCellFingerprint, SF::kMotionPdr,
                    SF::kFusion}) {
    const auto in_it = indoor_data.by_family.find(family);
    const auto out_it = outdoor_data.by_family.find(family);
    const bool has_in =
        in_it != indoor_data.by_family.end() && in_it->second.rows.size() > 8;
    const bool has_out = out_it != outdoor_data.by_family.end() &&
                         out_it->second.rows.size() > 8;
    if (has_in && has_out) {
      models.by_family[family] = ErrorModel::fitted(
          fit_family(in_it->second, family), fit_family(out_it->second, family));
    } else if (has_in) {
      models.by_family[family] =
          ErrorModel::fitted_single(fit_family(in_it->second, family));
    } else if (has_out) {
      models.by_family[family] =
          ErrorModel::fitted_single(fit_family(out_it->second, family));
    }
  }
  // Fusion behaves like plain PDR outdoors -- the coarse outdoor RSSI
  // cannot refine the particle filter -- so it shares the motion scheme's
  // outdoor model (paper Sec. III-B).
  if (models.by_family.count(SF::kFusion) &&
      models.by_family.count(SF::kMotionPdr)) {
    models.by_family[SF::kFusion].set_outdoor_model(
        models.by_family[SF::kMotionPdr].outdoor_model());
  }
  // GPS: constant model from outdoor errors (paper: mean 13.5 m, sd 9.4 m
  // on their hardware; ours come from the simulated receiver).
  std::vector<double> gps = outdoor_data.gps_errors;
  gps.insert(gps.end(), indoor_data.gps_errors.begin(),
             indoor_data.gps_errors.end());
  if (!gps.empty()) {
    models.by_family[SF::kGps] =
        ErrorModel::constant(stats::mean(gps), stats::stddev(gps));
  } else {
    models.by_family[SF::kGps] = ErrorModel::constant(13.5, 9.4);
  }
  return models;
}

TrainedModels train_standard_models(std::uint64_t seed,
                                    std::size_t target_samples) {
  Deployment office = make_deployment(sim::office_place(seed),
                                      DeploymentOptions{.seed = seed});
  Deployment open = make_deployment(sim::open_space_place(seed),
                                    DeploymentOptions{.seed = seed + 1});
  CollectOptions copts;
  copts.target_samples = target_samples;
  copts.seed = seed + 2;
  const TrainingData indoor_data = collect_training_data(office, copts);
  copts.seed = seed + 3;
  const TrainingData outdoor_data = collect_training_data(open, copts);
  return fit_error_models(indoor_data, outdoor_data);
}

}  // namespace uniloc::core
