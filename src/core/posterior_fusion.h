// Full grid-based BMA posterior (Eq. 3-4 in their literal discrete form).
//
// UniLoc2's point estimate only needs the mixture expectation, which the
// framework computes in closed form from the schemes' posterior means.
// Some applications want the *full* fused distribution P(l = l_i | s_t)
// over the place's location grid -- e.g. to report a MAP cell, a
// confidence region, or the posterior entropy as a self-assessed quality
// signal. This utility rasterizes and mixes the scheme posteriors.
#pragma once

#include <vector>

#include "geo/grid.h"
#include "schemes/scheme.h"

namespace uniloc::core {

struct FusedPosterior {
  geo::Grid grid;
  std::vector<double> mass;  ///< Per-cell probability; sums to 1.

  /// Eq. 4: the posterior expectation, computed per axis.
  geo::Vec2 expectation() const;

  /// Center of the most probable cell.
  geo::Vec2 map_estimate() const;

  /// Shannon entropy (nats) -- high when the ensemble is undecided.
  double entropy() const;

  /// Total mass within `radius` of a point (confidence-region queries).
  double mass_within(geo::Vec2 center, double radius) const;
};

/// Mix the available schemes' posteriors with the given BMA weights onto
/// `grid`. Weights of unavailable schemes must be zero (Uniloc guarantees
/// this). If all weights are zero the result is the uniform distribution.
FusedPosterior fuse_posteriors(
    const geo::Grid& grid,
    const std::vector<schemes::SchemeOutput>& outputs,
    const std::vector<double>& weights);

/// fuse_posteriors into a caller-owned result: identical mass vector, but
/// `out.mass` keeps its capacity across epochs (the grid is fixed per
/// place, so after the first call this never allocates).
void fuse_posteriors_into(const geo::Grid& grid,
                          const std::vector<schemes::SchemeOutput>& outputs,
                          const std::vector<double>& weights,
                          FusedPosterior& out);

}  // namespace uniloc::core
