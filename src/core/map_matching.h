// Map matching: snap the fused location stream onto the walkway graph.
//
// Pedestrians are on walkable paths; a location estimate floating inside
// a wall block is wrong by construction. The paper's related work credits
// MapCraft [47] with "reliable indoor map matching for indoor
// localization and tracking"; this post-processor implements the standard
// HMM formulation over discretized walkway positions:
//   * states: (walkway, arc-length bin) cells every `bin_m` meters,
//   * emission: Gaussian in the distance between the cell and the raw
//     estimate,
//   * transition: walking continuity -- the arc-length advance between
//     epochs must be near the nominal step, switching walkways is allowed
//     only where they come close (junctions).
// Output is the filtered on-path position. bench/ablation_map_matching
// quantifies the gain on top of UniLoc2.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/vec2.h"
#include "sim/place.h"

namespace uniloc::core {

class MapMatcher {
 public:
  struct Options {
    double bin_m = 2.0;           ///< State discretization along paths.
    double emission_sd_m = 8.0;   ///< Raw-estimate noise.
    double step_m = 0.7;          ///< Nominal per-epoch advance.
    double motion_sd_m = 1.5;     ///< Spread around the nominal advance.
    double junction_radius_m = 6.0;  ///< Walkway switches allowed here.
    bool allow_backtrack = true;  ///< Permit standing/backward motion.
  };

  MapMatcher(const sim::Place* place, Options opts);
  explicit MapMatcher(const sim::Place* place)
      : MapMatcher(place, Options{}) {}

  /// Reset the belief (uniform over all states).
  void reset();

  /// Feed one raw estimate; returns the map-matched position.
  geo::Vec2 update(geo::Vec2 raw_estimate);

  /// Current MAP state's position (valid after the first update).
  geo::Vec2 current() const;

  std::size_t num_states() const { return states_.size(); }

 private:
  struct State {
    std::size_t walkway;
    double arclen;
    geo::Vec2 pos;
  };

  /// Transition weight from state i to state j.
  double transition(const State& from, const State& to) const;

  const sim::Place* place_;
  Options opts_;
  std::vector<State> states_;
  std::vector<std::vector<std::size_t>> neighbors_;  ///< Reachable states.
  std::vector<double> belief_;
  bool started_{false};
};

}  // namespace uniloc::core
