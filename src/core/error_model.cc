#include "core/error_model.h"

#include <algorithm>

namespace uniloc::core {

ErrorModel ErrorModel::constant(double mu, double sigma) {
  ErrorModel m;
  m.constant_ = stats::Gaussian{mu, std::max(0.1, sigma)};
  return m;
}

ErrorModel ErrorModel::fitted(stats::LinearModel indoor,
                              stats::LinearModel outdoor) {
  ErrorModel m;
  m.indoor_ = std::move(indoor);
  m.outdoor_ = std::move(outdoor);
  return m;
}

ErrorModel ErrorModel::fitted_single(stats::LinearModel model) {
  ErrorModel m;
  m.indoor_ = model;
  m.outdoor_ = std::move(model);
  return m;
}

stats::Gaussian ErrorModel::predict(std::span<const double> x,
                                    bool indoor) const {
  if (constant_.has_value()) return *constant_;
  const stats::LinearModel& lm = indoor ? indoor_ : outdoor_;
  const std::size_t p = lm.coefficients.size() - (lm.has_intercept ? 1 : 0);
  if (x.size() > p) x = x.subspan(0, p);
  stats::Gaussian g;
  g.mean = std::max(0.1, lm.predict(x));
  g.sd = std::max(0.1, lm.residual_sd);
  return g;
}

}  // namespace uniloc::core
