#include "core/aloc_baseline.h"

#include <limits>

namespace uniloc::core {

ALocSelector::ALocSelector(std::vector<SchemeCost> costs,
                           double accuracy_req_m)
    : costs_(std::move(costs)), accuracy_req_m_(accuracy_req_m) {}

int ALocSelector::select(const std::vector<schemes::SchemeOutput>& outputs,
                         const std::vector<stats::Gaussian>& predicted) const {
  int cheapest_ok = -1;
  double cheapest_power = std::numeric_limits<double>::infinity();
  int most_accurate = -1;
  double best_mu = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < outputs.size() && i < costs_.size(); ++i) {
    if (!outputs[i].available) continue;
    if (predicted[i].mean < best_mu) {
      best_mu = predicted[i].mean;
      most_accurate = static_cast<int>(i);
    }
    if (predicted[i].mean <= accuracy_req_m_ &&
        costs_[i].power_mw < cheapest_power) {
      cheapest_power = costs_[i].power_mw;
      cheapest_ok = static_cast<int>(i);
    }
  }
  return cheapest_ok >= 0 ? cheapest_ok : most_accurate;
}

std::vector<ALocSelector::SchemeCost> standard_scheme_costs() {
  // Mirrors energy::EnergyParams marginal powers: GPS is expensive;
  // cellular is nearly free; motion pays IMU + preprocessing; fusion pays
  // motion + WiFi scanning.
  return {{385.0}, {8.0}, {2.0}, {54.0}, {62.0}};
}

}  // namespace uniloc::core
