#include "core/uniloc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/confidence.h"
#include "core/epoch_scratch.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "offload/bytes.h"

namespace uniloc::core {

Uniloc::Uniloc(UnilocConfig cfg) : cfg_(cfg) {}

std::size_t Uniloc::add_scheme(schemes::SchemePtr scheme, ErrorModel model) {
  entries_.push_back({std::move(scheme), std::move(model)});
  entries_.back().span_name = "scheme." + entries_.back().scheme->name();
  instrument_entry(entries_.back());
  return entries_.size() - 1;
}

void Uniloc::instrument_entry(Entry& e) {
  e.localize_us =
      registry_ != nullptr
          ? &registry_->histogram("scheme." + e.scheme->name() +
                                  ".localize_us")
          : nullptr;
  e.scheme->attach_metrics(registry_);
}

void Uniloc::attach_metrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    update_us_ = nullptr;
    fuse_us_ = nullptr;
    epochs_ = nullptr;
  } else {
    update_us_ = &registry->histogram("uniloc.update_us");
    fuse_us_ = &registry->histogram("uniloc.fuse_us");
    epochs_ = &registry->counter("uniloc.epochs");
  }
  for (Entry& e : entries_) instrument_entry(e);
}

std::vector<std::string> Uniloc::scheme_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.scheme->name());
  return names;
}

void Uniloc::reset(const schemes::StartCondition& start) {
  for (Entry& e : entries_) e.scheme->reset(start);
  predictor_.reset();
  predictor_.observe(start.pos);
  gps_enable_ = true;
}

FeatureContext Uniloc::make_context(bool indoor) const {
  FeatureContext ctx;
  ctx.indoor = indoor;
  ctx.place = cfg_.place;
  ctx.wifi_db = cfg_.wifi_db;
  ctx.cell_db = cfg_.cell_db;
  const auto pred = predictor_.predict();
  ctx.predicted_location = pred.value_or(geo::Vec2{});
  return ctx;
}

EpochDecision Uniloc::update(const sim::SensorFrame& frame) {
  obs::ScopedTimer update_timer(update_us_);
  if (epochs_ != nullptr) epochs_->inc();
  EpochDecision d;
  const std::size_t n = entries_.size();
  d.outputs.resize(n);
  d.predicted_error.assign(n, stats::Gaussian{0.0, 1.0});
  d.confidence.assign(n, 0.0);
  d.weight.assign(n, 0.0);

  // 1. Run every scheme on the frame (conceptually in parallel; the paper
  //    offloads this to a server). User-integrated schemes are untrusted:
  //    an output containing non-finite values is treated as unavailable
  //    rather than poisoning the ensemble.
  for (std::size_t i = 0; i < n; ++i) {
    {
      obs::ScopedTimer localize_timer(entries_[i].localize_us);
      obs::ScopedSpan localize_span(tracer_, entries_[i].span_name.c_str(),
                                    "core");
      d.outputs[i] = entries_[i].scheme->update(frame);
    }
    schemes::SchemeOutput& out = d.outputs[i];
    if (out.available) {
      bool finite = std::isfinite(out.estimate.x) &&
                    std::isfinite(out.estimate.y);
      for (const schemes::WeightedPoint& wp : out.posterior.support) {
        finite = finite && std::isfinite(wp.pos.x) &&
                 std::isfinite(wp.pos.y) && std::isfinite(wp.weight) &&
                 wp.weight >= 0.0;
      }
      if (!finite) out = schemes::SchemeOutput{};
    }
  }

  // 2. Environment classification and feature context.
  d.indoor = io_detector_.is_indoor(frame);
  const FeatureContext ctx = make_context(d.indoor);

  // 3. Online error prediction per available scheme.
  std::vector<stats::Gaussian> available_predictions;
  for (std::size_t i = 0; i < n; ++i) {
    if (!d.outputs[i].available) continue;
    const std::vector<double> x = extract_features(
        entries_[i].scheme->family(), frame, d.outputs[i], ctx);
    d.predicted_error[i] = entries_[i].model.predict(x, d.indoor);
    available_predictions.push_back(d.predicted_error[i]);
  }

  // 4. Adaptive threshold and confidences (Eq. 2). Steps 4-6 are the
  //    fusion stage (tau, confidence, selection, BMA mixing) timed into
  //    uniloc.fuse_us.
  const auto fuse_start = fuse_us_ != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  obs::ScopedSpan fuse_span(tracer_, "core.fuse", "core");
  d.tau = cfg_.fixed_tau_m > 0.0 ? cfg_.fixed_tau_m
                                 : adaptive_tau(available_predictions);
  for (std::size_t i = 0; i < n; ++i) {
    if (!d.outputs[i].available) continue;  // confidence stays 0 (excluded)
    d.confidence[i] = confidence(d.predicted_error[i], d.tau);
  }

  // 5. UniLoc1: the highest-confidence scheme.
  d.selected = -1;
  double best_c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d.outputs[i].available && d.confidence[i] > best_c) {
      best_c = d.confidence[i];
      d.selected = static_cast<int>(i);
    }
  }

  // 6. UniLoc2: locally-weighted BMA. The fused location (Eq. 4, per
  //    axis) is the mixture expectation: sum_n w_n * E[l | M_n, s_t].
  //    Confidences are sharpened before normalization (see UnilocConfig).
  std::vector<double> sharpened(n);
  for (std::size_t i = 0; i < n; ++i) {
    sharpened[i] = std::pow(d.confidence[i], cfg_.confidence_sharpness);
  }
  d.weight = bma_weights(sharpened);
  geo::Vec2 fused{};
  double mass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d.weight[i] <= 0.0) continue;
    const geo::Vec2 m = d.outputs[i].posterior.empty()
                            ? d.outputs[i].estimate
                            : d.outputs[i].posterior.mean();
    fused += m * d.weight[i];
    mass += d.weight[i];
  }

  const geo::Vec2 fallback =
      predictor_.predict().value_or(geo::Vec2{});
  d.uniloc2 = mass > 0.0 ? fused : fallback;
  d.uniloc1 = d.selected >= 0
                  ? d.outputs[static_cast<std::size_t>(d.selected)].estimate
                  : fallback;
  if (fuse_us_ != nullptr) {
    fuse_us_->observe(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - fuse_start)
                          .count());
  }
  fuse_span.finish();

  // 7. Advance the location predictor with the fused result.
  predictor_.observe(d.uniloc2);

  // 8. GPS duty cycling for the next epoch: off indoors; outdoors only
  //    when the constant GPS model beats every other scheme's prediction.
  d.gps_enable_next = true;
  if (cfg_.gps_duty_cycle) {
    if (d.indoor) {
      d.gps_enable_next = false;
    } else {
      double gps_mu = std::numeric_limits<double>::infinity();
      double best_other = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        if (entries_[i].scheme->family() == schemes::SchemeFamily::kGps) {
          // The GPS model needs no sensor input, so its error can be
          // predicted with the radio off.
          gps_mu = entries_[i].model.predict({}, /*indoor=*/false).mean;
        } else if (d.outputs[i].available) {
          best_other = std::min(best_other, d.predicted_error[i].mean);
        }
      }
      d.gps_enable_next = gps_mu <= best_other;
    }
  }
  gps_enable_ = d.gps_enable_next;
  return d;
}

const EpochDecision& Uniloc::update_fast(const sim::SensorFrame& frame,
                                         EpochScratch& scratch) {
  obs::ScopedTimer update_timer(update_us_);
  if (epochs_ != nullptr) epochs_->inc();
  EpochDecision& d = scratch.decision;
  const std::size_t n = entries_.size();
  d.outputs.resize(n);
  d.predicted_error.assign(n, stats::Gaussian{0.0, 1.0});
  d.confidence.assign(n, 0.0);
  d.weight.assign(n, 0.0);

  // 0. Open a new shared epoch: one tag bump invalidates every memoized
  //    candidate evaluation at once, and the schemes get the context
  //    installed before they localize (a no-op for schemes that ignore
  //    it). update() never installs a context, so the reference pipeline
  //    recomputes everything -- the pair the differential suite compares.
  ++scratch.scheme_ctx.tag;
  scratch.feature_scratch.epoch_ctx = &scratch.scheme_ctx;
  for (Entry& e : entries_) e.scheme->set_epoch_context(&scratch.scheme_ctx);

  // 1. Localize into the persistent output slots. An unavailable slot may
  //    keep a stale posterior/observables payload from an earlier epoch;
  //    every consumer gates on `available` first (DESIGN.md section 11),
  //    and keeping the map nodes alive is what makes availability flaps
  //    (GPS duty cycling!) allocation-free.
  for (std::size_t i = 0; i < n; ++i) {
    {
      obs::ScopedTimer localize_timer(entries_[i].localize_us);
      obs::ScopedSpan localize_span(tracer_, entries_[i].span_name.c_str(),
                                    "core");
      entries_[i].scheme->update_into(frame, d.outputs[i]);
    }
    schemes::SchemeOutput& out = d.outputs[i];
    if (out.available) {
      bool finite = std::isfinite(out.estimate.x) &&
                    std::isfinite(out.estimate.y);
      for (const schemes::WeightedPoint& wp : out.posterior.support) {
        finite = finite && std::isfinite(wp.pos.x) &&
                 std::isfinite(wp.pos.y) && std::isfinite(wp.weight) &&
                 wp.weight >= 0.0;
      }
      if (!finite) {
        // Rare untrusted-scheme path; matches update()'s reset semantics
        // for every consumer-visible field.
        out.available = false;
        out.estimate = geo::Vec2{};
        out.posterior.support.clear();
        out.observables.clear();
      }
    }
  }

  // 2. Environment classification and feature context.
  d.indoor = io_detector_.is_indoor(frame);
  const FeatureContext ctx = make_context(d.indoor);

  // 3. Online error prediction per available scheme.
  scratch.available_predictions.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (!d.outputs[i].available) continue;
    extract_features_into(entries_[i].scheme->family(), frame, d.outputs[i],
                          ctx, scratch.feature_scratch, scratch.features);
    d.predicted_error[i] = entries_[i].model.predict(scratch.features,
                                                     d.indoor);
    scratch.available_predictions.push_back(d.predicted_error[i]);
  }

  // 4. Adaptive threshold and confidences (Eq. 2).
  const auto fuse_start = fuse_us_ != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  obs::ScopedSpan fuse_span(tracer_, "core.fuse", "core");
  d.tau = cfg_.fixed_tau_m > 0.0 ? cfg_.fixed_tau_m
                                 : adaptive_tau(scratch.available_predictions);
  for (std::size_t i = 0; i < n; ++i) {
    if (!d.outputs[i].available) continue;  // confidence stays 0 (excluded)
    d.confidence[i] = confidence(d.predicted_error[i], d.tau);
  }

  // 5. UniLoc1: the highest-confidence scheme.
  d.selected = -1;
  double best_c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d.outputs[i].available && d.confidence[i] > best_c) {
      best_c = d.confidence[i];
      d.selected = static_cast<int>(i);
    }
  }

  // 6. UniLoc2: locally-weighted BMA (identical arithmetic to update()).
  scratch.sharpened.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.sharpened[i] =
        std::pow(d.confidence[i], cfg_.confidence_sharpness);
  }
  bma_weights_into(scratch.sharpened, d.weight);
  geo::Vec2 fused{};
  double mass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d.weight[i] <= 0.0) continue;
    const geo::Vec2 m = d.outputs[i].posterior.empty()
                            ? d.outputs[i].estimate
                            : d.outputs[i].posterior.mean();
    fused += m * d.weight[i];
    mass += d.weight[i];
  }

  const geo::Vec2 fallback =
      predictor_.predict().value_or(geo::Vec2{});
  d.uniloc2 = mass > 0.0 ? fused : fallback;
  d.uniloc1 = d.selected >= 0
                  ? d.outputs[static_cast<std::size_t>(d.selected)].estimate
                  : fallback;
  if (fuse_us_ != nullptr) {
    fuse_us_->observe(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - fuse_start)
                          .count());
  }
  fuse_span.finish();

  // 7. Advance the location predictor with the fused result.
  predictor_.observe(d.uniloc2);

  // 8. GPS duty cycling for the next epoch.
  d.gps_enable_next = true;
  if (cfg_.gps_duty_cycle) {
    if (d.indoor) {
      d.gps_enable_next = false;
    } else {
      double gps_mu = std::numeric_limits<double>::infinity();
      double best_other = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        if (entries_[i].scheme->family() == schemes::SchemeFamily::kGps) {
          gps_mu = entries_[i].model.predict({}, /*indoor=*/false).mean;
        } else if (d.outputs[i].available) {
          best_other = std::min(best_other, d.predicted_error[i].mean);
        }
      }
      d.gps_enable_next = gps_mu <= best_other;
    }
  }
  gps_enable_ = d.gps_enable_next;
  return d;
}

std::uint64_t Uniloc::scheme_cache_hits() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.scheme->cache_hits();
  return total;
}

std::uint64_t Uniloc::scheme_cache_misses() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.scheme->cache_misses();
  return total;
}

void Uniloc::snapshot_into(offload::ByteWriter& w) const {
  snapshot_into(w, /*quantize=*/false);
}

bool Uniloc::restore_from(offload::ByteReader& r) {
  return restore_from(r, /*quantize=*/false);
}

void Uniloc::snapshot_into(offload::ByteWriter& w, bool quantize) const {
  const schemes::SnapshotContext ctx{
      quantize, cfg_.place != nullptr ? cfg_.place->bounds() : geo::BBox{}};
  w.put_bool(gps_enable_);
  predictor_.snapshot_into(w);
  w.put_u32(static_cast<std::uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w.put_string(e.scheme->name());
    // Length-prefix each scheme payload so a restorer can verify the
    // scheme consumed exactly what it wrote.
    const std::size_t len_pos = w.size();
    w.put_u32(0);
    const std::size_t start = w.size();
    e.scheme->snapshot_into(w, ctx);
    w.patch_u32(len_pos, static_cast<std::uint32_t>(w.size() - start));
  }
}

bool Uniloc::restore_from(offload::ByteReader& r, bool quantize) {
  schemes::SnapshotContext ctx{
      quantize, cfg_.place != nullptr ? cfg_.place->bounds() : geo::BBox{}};
  bool gps_enable;
  if (!r.get_bool(gps_enable)) return false;
  if (!predictor_.restore_from(r)) return false;
  std::uint32_t count;
  if (!r.get_u32(count) || count != entries_.size()) return false;
  for (Entry& e : entries_) {
    std::string name;
    if (!r.get_string(name, 64) || name != e.scheme->name()) return false;
    std::uint32_t len;
    if (!r.get_u32(len) || len > r.remaining()) return false;
    const std::size_t before = r.pos();
    if (!e.scheme->restore_from(r, ctx)) return false;
    if (r.pos() - before != len) return false;
  }
  gps_enable_ = gps_enable;
  return true;
}

}  // namespace uniloc::core
