#include "core/confidence.h"

namespace uniloc::core {

double confidence(const stats::Gaussian& predicted, double tau) {
  return stats::normal_cdf(tau, predicted.mean, predicted.sd);
}

double adaptive_tau(const std::vector<stats::Gaussian>& predictions) {
  if (predictions.empty()) return 0.0;
  double sum = 0.0;
  for (const stats::Gaussian& g : predictions) sum += g.mean;
  return sum / static_cast<double>(predictions.size());
}

std::vector<double> bma_weights(const std::vector<double>& confidences) {
  std::vector<double> w;
  bma_weights_into(confidences, w);
  return w;
}

void bma_weights_into(const std::vector<double>& confidences,
                      std::vector<double>& w) {
  w.assign(confidences.size(), 0.0);
  double total = 0.0;
  for (double c : confidences) total += c;
  if (total <= 0.0) return;
  for (std::size_t i = 0; i < confidences.size(); ++i) {
    w[i] = confidences[i] / total;
  }
}

}  // namespace uniloc::core
