#include "core/deployment.h"

#include "schemes/fingerprint_scheme.h"
#include "schemes/fusion_scheme.h"
#include "schemes/gps_scheme.h"
#include "schemes/pdr_scheme.h"

namespace uniloc::core {

Deployment make_deployment(sim::Place place, DeploymentOptions opts) {
  Deployment d;
  d.options = opts;
  d.place = std::make_unique<sim::Place>(std::move(place));
  d.radio = std::make_unique<sim::RadioEnvironment>(
      d.place.get(), opts.wifi, opts.cell, opts.seed);
  d.wifi_db = std::make_unique<schemes::FingerprintDatabase>(
      schemes::FingerprintDatabase::build(
          *d.place, *d.radio, schemes::FingerprintDatabase::Source::kWifi,
          opts.indoor_fp_spacing_m, opts.outdoor_fp_spacing_m, opts.seed));
  d.cell_db = std::make_unique<schemes::FingerprintDatabase>(
      schemes::FingerprintDatabase::build(
          *d.place, *d.radio, schemes::FingerprintDatabase::Source::kCellular,
          opts.cell_indoor_fp_spacing_m, opts.cell_outdoor_fp_spacing_m,
          opts.seed + 1));
  // Deployment-time warmup (like Place::prebuild_wall_index): the cached
  // matching fast path is table lookups from the first epoch on, and the
  // shared databases stay read-only once sessions start querying them.
  // Same story for the walkway-candidate index behind the fast pipeline's
  // per-particle environment lookups: built here, immutable afterwards.
  d.wifi_db->prebuild_likelihood_cache();
  d.cell_db->prebuild_likelihood_cache();
  d.place->prebuild_env_index();
  return d;
}

std::vector<schemes::SchemePtr> make_schemes(
    const sim::Place* place, const schemes::FingerprintDatabase* wifi_db,
    const schemes::FingerprintDatabase* cell_db, bool calibrate_offset,
    std::uint64_t seed) {
  std::vector<schemes::SchemePtr> out;

  out.push_back(std::make_unique<schemes::GpsScheme>(place->frame()));

  // The softmax temperature tracks each radio's typical RSSI-distance
  // spread: WiFi distances differ by several dB between candidates,
  // cellular ones by a fraction of that.
  schemes::FingerprintScheme::Options wifi_opts;
  wifi_opts.calibrate_offset = calibrate_offset;
  wifi_opts.softmax_scale_db = 3.0;
  wifi_opts.top_k = 15;
  // "When the number of audible APs is less than 3, it is unlikely for
  // the RSSI fingerprinting scheme to provide a meaningful result"
  // (Sec. III-B); below 2 we declare the scheme unavailable.
  wifi_opts.min_transmitters = 2;
  out.push_back(
      std::make_unique<schemes::FingerprintScheme>(wifi_db, wifi_opts));
  schemes::FingerprintScheme::Options cell_opts;
  cell_opts.calibrate_offset = calibrate_offset;
  cell_opts.softmax_scale_db = 1.2;
  cell_opts.top_k = 10;
  out.push_back(
      std::make_unique<schemes::FingerprintScheme>(cell_db, cell_opts));

  schemes::PdrOptions pdr_opts;
  pdr_opts.seed = seed;
  out.push_back(std::make_unique<schemes::PdrScheme>(place, pdr_opts));

  schemes::FusionOptions fusion_opts;
  fusion_opts.pdr = pdr_opts;
  fusion_opts.pdr.seed = seed + 1;
  out.push_back(
      std::make_unique<schemes::FusionScheme>(place, wifi_db, fusion_opts));
  return out;
}

std::vector<schemes::SchemePtr> make_standard_schemes(const Deployment& d,
                                                      bool calibrate_offset,
                                                      std::uint64_t seed) {
  return make_schemes(d.place.get(), d.wifi_db.get(), d.cell_db.get(),
                      calibrate_offset, seed);
}

}  // namespace uniloc::core
