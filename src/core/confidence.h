// Scheme confidence and BMA weights (paper Eq. 2 and Eq. 5).
#pragma once

#include <vector>

#include "stats/gaussian.h"

namespace uniloc::core {

/// Confidence of a scheme whose predicted error is `predicted`:
/// c_t = P(Y_t <= tau), the probability its error is below the threshold.
double confidence(const stats::Gaussian& predicted, double tau);

/// The adaptive threshold: the mean of the available schemes' predicted
/// errors ("tau is set adaptively at different locations, as the average
/// predicted error of all available schemes", Sec. IV-A).
double adaptive_tau(const std::vector<stats::Gaussian>& predictions);

/// BMA weights w_n = c_n / sum_i c_i (Eq. 5). Zero-confidence (i.e.
/// unavailable) schemes get weight zero; if every confidence is zero the
/// result is all-zero.
std::vector<double> bma_weights(const std::vector<double>& confidences);

/// bma_weights into a caller-owned vector (capacity reuse; same values).
void bma_weights_into(const std::vector<double>& confidences,
                      std::vector<double>& w);

}  // namespace uniloc::core
