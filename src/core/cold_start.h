// Cold-start localization (Zee-style [9]).
//
// The motion and fusion schemes need a StartCondition; the paper (like
// Travi-Navi and [7]) starts every trace at a known point. Zee [9] removes
// that assumption by bootstrapping the start from WiFi. This utility does
// the same: it accumulates the first few WiFi scans, clusters their
// fingerprint matches, and reports a start estimate once the cluster is
// tight enough; heading comes from the first stretch of magnetometer
// readings. Used by the CLI for replayed traces without metadata.
#pragma once

#include <optional>

#include "schemes/fingerprint_db.h"
#include "schemes/scheme.h"
#include "sim/sensor_frame.h"

namespace uniloc::core {

class ColdStartLocator {
 public:
  struct Options {
    std::size_t min_scans = 3;        ///< Scans before a verdict.
    std::size_t max_scans = 12;       ///< Give up refining after this many.
    double cluster_radius_m = 10.0;   ///< Matches must agree this tightly.
    std::size_t matches_per_scan = 3;
  };

  explicit ColdStartLocator(const schemes::FingerprintDatabase* db)
      : ColdStartLocator(db, Options{}) {}
  ColdStartLocator(const schemes::FingerprintDatabase* db, Options opts);

  /// Feed one frame; returns the start estimate once confident.
  std::optional<schemes::StartCondition> observe(const sim::SensorFrame& f);

  /// Best-effort estimate even if not yet confident (empty before any
  /// usable scan).
  std::optional<schemes::StartCondition> current_guess() const;

  std::size_t scans_consumed() const { return scans_; }

 private:
  const schemes::FingerprintDatabase* db_;
  Options opts_;
  std::vector<geo::Vec2> match_positions_;
  double heading_sum_sin_{0.0};
  double heading_sum_cos_{0.0};
  std::size_t heading_samples_{0};
  std::size_t scans_{0};
};

}  // namespace uniloc::core
