#include "core/runner.h"

#include <limits>
#include <optional>
#include <stdexcept>

#include "core/epoch_scratch.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace uniloc::core {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The per-scheme vectors of an EpochRecord are documented (and consumed
/// by the trace sink, the usage accessors, and every bench) as
/// index-aligned with RunResult::scheme_names; catch any drift at the
/// point of recording rather than as a corrupt table downstream.
void check_scheme_alignment(const EpochRecord& rec, std::size_t n) {
  if (rec.scheme_available.size() != n || rec.scheme_err.size() != n ||
      rec.predicted_mu.size() != n || rec.confidence.size() != n ||
      rec.weight.size() != n) {
    throw std::logic_error(
        "run_walk: EpochRecord scheme vectors are not index-aligned with "
        "scheme_names");
  }
}

obs::TraceEvent make_trace_event(const RunResult& result,
                                 const EpochRecord& rec,
                                 const EpochDecision& dec) {
  obs::TraceEvent ev;
  ev.epoch = result.epochs.size();
  ev.t = rec.t;
  ev.indoor = dec.indoor;
  ev.tau = dec.tau;
  ev.uniloc1_choice = rec.uniloc1_choice;
  ev.oracle_choice = rec.oracle_choice;
  ev.gps_was_enabled = rec.gps_was_enabled;
  ev.gps_enable_next = dec.gps_enable_next;
  ev.uniloc1_x = dec.uniloc1.x;
  ev.uniloc1_y = dec.uniloc1.y;
  ev.uniloc2_x = dec.uniloc2.x;
  ev.uniloc2_y = dec.uniloc2.y;
  ev.has_truth = true;
  ev.truth_x = rec.truth.x;
  ev.truth_y = rec.truth.y;
  ev.uniloc1_err = rec.uniloc1_err;
  ev.uniloc2_err = rec.uniloc2_err;
  ev.schemes.reserve(result.scheme_names.size());
  for (std::size_t i = 0; i < result.scheme_names.size(); ++i) {
    obs::SchemeTrace st;
    st.name = result.scheme_names[i];
    st.available = rec.scheme_available[i];
    if (st.available) {
      st.predicted_mu = dec.predicted_error[i].mean;
      st.predicted_sigma = dec.predicted_error[i].sd;
    }
    st.confidence = rec.confidence[i];
    st.weight = rec.weight[i];
    st.error_m = rec.scheme_err[i];
    ev.schemes.push_back(std::move(st));
  }
  return ev;
}
}  // namespace

std::vector<double> RunResult::scheme_errors(std::size_t i) const {
  std::vector<double> out;
  for (const EpochRecord& e : epochs) {
    if (i < e.scheme_err.size() && !std::isnan(e.scheme_err[i])) {
      out.push_back(e.scheme_err[i]);
    }
  }
  return out;
}

std::vector<double> RunResult::uniloc1_errors() const {
  std::vector<double> out;
  out.reserve(epochs.size());
  for (const EpochRecord& e : epochs) out.push_back(e.uniloc1_err);
  return out;
}

std::vector<double> RunResult::uniloc2_errors() const {
  std::vector<double> out;
  out.reserve(epochs.size());
  for (const EpochRecord& e : epochs) out.push_back(e.uniloc2_err);
  return out;
}

std::vector<double> RunResult::oracle_errors() const {
  std::vector<double> out;
  out.reserve(epochs.size());
  for (const EpochRecord& e : epochs) out.push_back(e.oracle_err);
  return out;
}

std::vector<double> RunResult::uniloc1_usage() const {
  std::vector<double> usage(scheme_names.size(), 0.0);
  if (epochs.empty()) return usage;
  for (const EpochRecord& e : epochs) {
    if (e.uniloc1_choice >= 0) {
      usage[static_cast<std::size_t>(e.uniloc1_choice)] += 1.0;
    }
  }
  for (double& u : usage) u /= static_cast<double>(epochs.size());
  return usage;
}

std::vector<double> RunResult::oracle_usage() const {
  std::vector<double> usage(scheme_names.size(), 0.0);
  if (epochs.empty()) return usage;
  for (const EpochRecord& e : epochs) {
    if (e.oracle_choice >= 0) {
      usage[static_cast<std::size_t>(e.oracle_choice)] += 1.0;
    }
  }
  for (double& u : usage) u /= static_cast<double>(epochs.size());
  return usage;
}

double RunResult::gps_duty_fraction() const {
  if (epochs.empty()) return 0.0;
  double on = 0.0;
  for (const EpochRecord& e : epochs) on += e.gps_was_enabled ? 1.0 : 0.0;
  return on / static_cast<double>(epochs.size());
}

void RunResult::append(const RunResult& other) {
  if (scheme_names.empty()) scheme_names = other.scheme_names;
  epochs.insert(epochs.end(), other.epochs.begin(), other.epochs.end());
}

Uniloc make_uniloc(const Deployment& d, const TrainedModels& models,
                   UnilocConfig cfg, bool calibrate_offset,
                   std::uint64_t seed) {
  cfg.place = d.place.get();
  cfg.wifi_db = d.wifi_db.get();
  cfg.cell_db = d.cell_db.get();
  Uniloc u(cfg);
  for (schemes::SchemePtr& s : make_standard_schemes(d, calibrate_offset,
                                                     seed)) {
    const schemes::SchemeFamily family = s->family();
    u.add_scheme(std::move(s), models.for_family(family));
  }
  return u;
}

RunResult run_walk(Uniloc& uniloc, const Deployment& d,
                   std::size_t walkway_index, const RunOptions& opts) {
  RunResult result;
  result.scheme_names = uniloc.scheme_names();

  sim::Walker walker(d.place.get(), d.radio.get(), walkway_index, opts.walk);
  uniloc.reset({walker.start_position(), walker.start_heading()});
  uniloc.attach_tracer(opts.tracer);

  EpochScratch scratch;
  EpochDecision ref_dec;
  int step_idx = 0;
  while (!walker.done()) {
    const bool gps_on = opts.use_gps_duty_cycle ? uniloc.gps_enabled() : true;
    const sim::SensorFrame frame = walker.step(gps_on);
    obs::ScopedSpan epoch_span(opts.tracer, "core.epoch", "core");
    std::optional<obs::TraceScope> epoch_scope;
    if (opts.tracer != nullptr) {
      epoch_scope.emplace(
          obs::TraceContext{epoch_span.trace(), epoch_span.id(), 0});
    }
    const EpochDecision* dec_ptr;
    if (opts.use_fast_path) {
      dec_ptr = &uniloc.update_fast(frame, scratch);
    } else {
      ref_dec = uniloc.update(frame);
      dec_ptr = &ref_dec;
    }
    epoch_scope.reset();
    epoch_span.finish();
    const EpochDecision& dec = *dec_ptr;
    ++step_idx;
    if (step_idx % opts.record_every != 0) continue;

    EpochRecord rec;
    rec.t = frame.t;
    rec.arclen = frame.truth_arclen;
    rec.truth = frame.truth_pos;
    rec.env = frame.truth_env;
    rec.indoor_truth = sim::is_indoor(frame.truth_env);
    rec.indoor_detected = dec.indoor;
    rec.gps_was_enabled = gps_on;
    rec.wifi_count = frame.wifi.size();
    rec.cell_count = frame.cell.size();

    const std::size_t n = dec.outputs.size();
    rec.scheme_available.resize(n);
    rec.scheme_err.assign(n, kNaN);
    rec.predicted_mu.assign(n, kNaN);
    rec.confidence = dec.confidence;
    rec.weight = dec.weight;
    for (std::size_t i = 0; i < n; ++i) {
      rec.scheme_available[i] = dec.outputs[i].available;
      if (dec.outputs[i].available) {
        rec.scheme_err[i] =
            geo::distance(dec.outputs[i].estimate, frame.truth_pos);
        rec.predicted_mu[i] = dec.predicted_error[i].mean;
      }
    }

    rec.uniloc1_err = geo::distance(dec.uniloc1, frame.truth_pos);
    rec.uniloc2_err = geo::distance(dec.uniloc2, frame.truth_pos);
    rec.uniloc1_choice = dec.selected;
    rec.oracle_choice = oracle_choice(dec.outputs, frame.truth_pos);
    rec.oracle_err =
        rec.oracle_choice >= 0
            ? rec.scheme_err[static_cast<std::size_t>(rec.oracle_choice)]
            : rec.uniloc2_err;
    if (opts.global_bma != nullptr) {
      rec.global_bma_err =
          geo::distance(opts.global_bma->combine(dec.outputs), frame.truth_pos);
    }
    check_scheme_alignment(rec, result.scheme_names.size());
    if (opts.trace != nullptr) {
      opts.trace->on_epoch(make_trace_event(result, rec, dec));
    }
    result.epochs.push_back(std::move(rec));
  }
  if (opts.trace != nullptr) opts.trace->flush();
  uniloc.attach_tracer(nullptr);  // the tracer only outlives the walk
  return result;
}

}  // namespace uniloc::core
