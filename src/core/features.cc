#include "core/features.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace uniloc::core {

namespace {

using schemes::SchemeFamily;

double observable_or(const schemes::SchemeOutput& out, const std::string& key,
                     double fallback) {
  const auto it = out.observables.find(key);
  return it != out.observables.end() ? it->second : fallback;
}

/// beta2 of the fingerprinting models: deviation of the RSSI distances of
/// the k=3 best candidates. Small deviation = ambiguous candidates = the
/// estimate is more likely wrong (negative regression coefficient).
double top3_distance_sd(const schemes::FingerprintDatabase* db,
                        const std::vector<sim::ApReading>& scan) {
  if (db == nullptr || db->empty() || scan.empty()) return 0.0;
  const std::vector<schemes::Match> top = db->k_nearest(scan, 3);
  if (top.size() < 2) return 0.0;
  std::vector<double> d;
  d.reserve(top.size());
  for (const schemes::Match& m : top) d.push_back(m.distance);
  return stats::stddev(d);
}

double density_or_large(const schemes::FingerprintDatabase* db,
                        geo::Vec2 pos) {
  if (db == nullptr || db->empty()) return 50.0;
  return std::min(50.0, db->local_density(pos));
}

// Buffer-reusing twins of the two allocating helpers above; same values.
double top3_distance_sd_into(const schemes::FingerprintDatabase* db,
                             const std::vector<sim::ApReading>& scan,
                             schemes::ScanScratch& scan_scratch,
                             FeatureScratch& scratch) {
  if (db == nullptr || db->empty() || scan.empty()) return 0.0;
  // The schemes already evaluated this scan against this database earlier
  // in the epoch; serve the top 3 from the shared memo when one is around.
  schemes::ScanMemo* memo =
      scratch.epoch_ctx != nullptr ? scratch.epoch_ctx->memo_for(db) : nullptr;
  if (memo != nullptr) {
    db->k_nearest_memo(scan, 3, scratch.epoch_ctx->tag, *memo,
                       scratch.matches);
  } else {
    db->k_nearest_into(scan, 3, scan_scratch, scratch.matches);
  }
  if (scratch.matches.size() < 2) return 0.0;
  scratch.top3.clear();
  for (const schemes::Match& m : scratch.matches) {
    scratch.top3.push_back(m.distance);
  }
  return stats::stddev(scratch.top3);
}

double density_or_large_into(const schemes::FingerprintDatabase* db,
                             geo::Vec2 pos, FeatureScratch& scratch) {
  if (db == nullptr || db->empty()) return 50.0;
  return std::min(50.0, db->local_density(pos, 4, scratch.knn));
}

double corridor_width(const FeatureContext& ctx) {
  if (ctx.place == nullptr) return 10.0;
  return ctx.place->environment_at(ctx.predicted_location).corridor_width_m;
}

}  // namespace

std::vector<std::string> feature_names(SchemeFamily family) {
  switch (family) {
    case SchemeFamily::kWifiFingerprint:
    case SchemeFamily::kCellFingerprint:
      return {"fp_density", "rssi_dist_sd"};
    case SchemeFamily::kMotionPdr:
      return {"dist_since_landmark", "corridor_width"};
    case SchemeFamily::kFusion:
      return {"dist_since_landmark", "corridor_width", "fp_density"};
    case SchemeFamily::kGps:
      return {};
    case SchemeFamily::kOther:
      return {"posterior_spread"};
  }
  return {};
}

std::vector<double> extract_features(SchemeFamily family,
                                     const sim::SensorFrame& frame,
                                     const schemes::SchemeOutput& output,
                                     const FeatureContext& ctx) {
  switch (family) {
    case SchemeFamily::kWifiFingerprint:
      return {density_or_large(ctx.wifi_db, ctx.predicted_location),
              top3_distance_sd(ctx.wifi_db, frame.wifi)};
    case SchemeFamily::kCellFingerprint:
      return {density_or_large(ctx.cell_db, ctx.predicted_location),
              top3_distance_sd(ctx.cell_db, frame.cell)};
    case SchemeFamily::kMotionPdr:
      return {observable_or(output, "dist_since_landmark", 0.0),
              corridor_width(ctx)};
    case SchemeFamily::kFusion:
      return {observable_or(output, "dist_since_landmark", 0.0),
              corridor_width(ctx),
              density_or_large(ctx.wifi_db, ctx.predicted_location)};
    case SchemeFamily::kGps:
      return {};
    case SchemeFamily::kOther:
      // Generic fallback for user-integrated schemes: any scheme that
      // reports a posterior provides its spread as a self-assessed
      // uncertainty feature.
      return {output.posterior.spread()};
  }
  return {};
}

void extract_features_into(SchemeFamily family, const sim::SensorFrame& frame,
                           const schemes::SchemeOutput& output,
                           const FeatureContext& ctx, FeatureScratch& scratch,
                           std::vector<double>& x) {
  // 19 chars > libstdc++ SSO; avoid a per-epoch heap temporary.
  static const std::string kDistSinceLandmark = "dist_since_landmark";
  x.clear();
  switch (family) {
    case SchemeFamily::kWifiFingerprint:
      x.push_back(density_or_large_into(ctx.wifi_db, ctx.predicted_location,
                                        scratch));
      x.push_back(top3_distance_sd_into(ctx.wifi_db, frame.wifi, scratch.wifi,
                                        scratch));
      return;
    case SchemeFamily::kCellFingerprint:
      x.push_back(density_or_large_into(ctx.cell_db, ctx.predicted_location,
                                        scratch));
      x.push_back(top3_distance_sd_into(ctx.cell_db, frame.cell, scratch.cell,
                                        scratch));
      return;
    case SchemeFamily::kMotionPdr:
      x.push_back(observable_or(output, kDistSinceLandmark, 0.0));
      x.push_back(corridor_width(ctx));
      return;
    case SchemeFamily::kFusion:
      x.push_back(observable_or(output, kDistSinceLandmark, 0.0));
      x.push_back(corridor_width(ctx));
      x.push_back(density_or_large_into(ctx.wifi_db, ctx.predicted_location,
                                        scratch));
      return;
    case SchemeFamily::kGps:
      return;
    case SchemeFamily::kOther:
      x.push_back(output.posterior.spread());
      return;
  }
}

std::vector<std::string> candidate_feature_names(SchemeFamily family) {
  std::vector<std::string> names = feature_names(family);
  switch (family) {
    case SchemeFamily::kWifiFingerprint:
    case SchemeFamily::kCellFingerprint:
      names.push_back("num_transmitters");  // found insignificant
      break;
    case SchemeFamily::kMotionPdr:
    case SchemeFamily::kFusion:
      names.push_back("orientation_change_freq");  // found insignificant
      break;
    default:
      break;
  }
  return names;
}

std::vector<double> extract_candidate_features(
    SchemeFamily family, const sim::SensorFrame& frame,
    const schemes::SchemeOutput& output, const FeatureContext& ctx) {
  std::vector<double> x = extract_features(family, frame, output, ctx);
  switch (family) {
    case SchemeFamily::kWifiFingerprint:
      x.push_back(static_cast<double>(frame.wifi.size()));
      break;
    case SchemeFamily::kCellFingerprint:
      x.push_back(static_cast<double>(frame.cell.size()));
      break;
    case SchemeFamily::kMotionPdr:
    case SchemeFamily::kFusion: {
      // Orientation changing frequency: RMS gyro rate over the epoch.
      double s = 0.0;
      for (const sim::ImuSample& i : frame.imu) s += i.gyro_z * i.gyro_z;
      x.push_back(frame.imu.empty()
                      ? 0.0
                      : std::sqrt(s / static_cast<double>(frame.imu.size())));
      break;
    }
    default:
      break;
  }
  return x;
}

}  // namespace uniloc::core
