#include "core/posterior_fusion.h"

#include <algorithm>
#include <cmath>

namespace uniloc::core {

geo::Vec2 FusedPosterior::expectation() const {
  geo::Vec2 e{};
  for (std::size_t i = 0; i < mass.size(); ++i) {
    if (mass[i] > 0.0) e += grid.center(i) * mass[i];
  }
  return e;
}

geo::Vec2 FusedPosterior::map_estimate() const {
  const auto it = std::max_element(mass.begin(), mass.end());
  return grid.center(static_cast<std::size_t>(it - mass.begin()));
}

double FusedPosterior::entropy() const {
  double h = 0.0;
  for (double m : mass) {
    if (m > 0.0) h -= m * std::log(m);
  }
  return h;
}

double FusedPosterior::mass_within(geo::Vec2 center, double radius) const {
  double total = 0.0;
  for (std::size_t i = 0; i < mass.size(); ++i) {
    if (mass[i] > 0.0 && geo::distance(grid.center(i), center) <= radius) {
      total += mass[i];
    }
  }
  return total;
}

FusedPosterior fuse_posteriors(
    const geo::Grid& grid,
    const std::vector<schemes::SchemeOutput>& outputs,
    const std::vector<double>& weights) {
  FusedPosterior fused;
  fuse_posteriors_into(grid, outputs, weights, fused);
  return fused;
}

void fuse_posteriors_into(const geo::Grid& grid,
                          const std::vector<schemes::SchemeOutput>& outputs,
                          const std::vector<double>& weights,
                          FusedPosterior& out) {
  out.grid = grid;
  out.mass.assign(grid.num_cells(), 0.0);
  double total = 0.0;
  for (std::size_t n = 0; n < outputs.size() && n < weights.size(); ++n) {
    if (weights[n] <= 0.0 || !outputs[n].available) continue;
    if (outputs[n].posterior.empty()) {
      out.mass[grid.flat_of(outputs[n].estimate)] += weights[n];
      total += weights[n];
      continue;
    }
    for (const schemes::WeightedPoint& wp : outputs[n].posterior.support) {
      out.mass[grid.flat_of(wp.pos)] += weights[n] * wp.weight;
    }
    total += weights[n];
  }
  if (total <= 0.0) {
    const double u = 1.0 / static_cast<double>(out.mass.size());
    std::fill(out.mass.begin(), out.mass.end(), u);
    return;
  }
  for (double& m : out.mass) m /= total;
}

}  // namespace uniloc::core
