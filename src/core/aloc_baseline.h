// A-Loc baseline ([28]) -- the closest prior system the paper contrasts
// UniLoc against (Sec. VI).
//
// A-Loc uses per-scheme error models to pick the *cheapest* scheme whose
// predicted error meets an accuracy requirement; it never combines
// outputs, and its original error records are place-specific. We give it
// the benefit of UniLoc's transferable error models (so the comparison
// isolates the selection-vs-combination question) and rank schemes by the
// marginal power of their sensors.
#pragma once

#include <vector>

#include "core/error_model.h"
#include "schemes/scheme.h"

namespace uniloc::core {

class ALocSelector {
 public:
  struct SchemeCost {
    double power_mw{0.0};
  };

  /// `costs` are index-aligned with the scheme list UniLoc runs.
  ALocSelector(std::vector<SchemeCost> costs, double accuracy_req_m);

  /// Index of the cheapest available scheme whose predicted error mean is
  /// below the accuracy requirement; if none qualifies, the available
  /// scheme with the smallest predicted error. -1 if nothing is available.
  int select(const std::vector<schemes::SchemeOutput>& outputs,
             const std::vector<stats::Gaussian>& predicted) const;

  double accuracy_requirement() const { return accuracy_req_m_; }

 private:
  std::vector<SchemeCost> costs_;
  double accuracy_req_m_;
};

/// Marginal sensor power of the standard five schemes, matching the
/// energy model's constants: GPS, WiFi, cellular, motion, fusion.
std::vector<ALocSelector::SchemeCost> standard_scheme_costs();

}  // namespace uniloc::core
