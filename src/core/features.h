// Error-model feature extraction (paper Table I).
//
// Every scheme family has a fixed feature set computed from *sensor data
// and public infrastructure metadata only* -- never from scheme internals.
// That is the property that makes one offline-trained model transfer to
// new places: the implicit influence factors (AP deployment, interference,
// corridor geometry...) act through the sensor readings, and the features
// quantify the readings.
//
//   WiFi / cellular fingerprinting:
//     beta1  fingerprint spatial density around the (predicted) location
//     beta2  RSSI-distance deviation of the top-3 candidates
//     (number of audible APs is also computed; the paper -- and our
//      regression -- finds it insignificant)
//   Motion PDR:
//     beta1  distance walked since the last recognized landmark
//     beta2  corridor width at the (predicted) location
//   Fusion: motion features + WiFi fingerprint density (beta3)
//   GPS:    none (constant error model -- which is exactly what allows
//           predicting GPS error with the radio switched off)
#pragma once

#include <string>
#include <vector>

#include "geo/vec2.h"
#include "schemes/epoch_context.h"
#include "schemes/fingerprint_db.h"
#include "schemes/scheme.h"
#include "sim/place.h"
#include "sim/sensor_frame.h"

namespace uniloc::core {

/// Shared per-epoch context for feature computation. `predicted_location`
/// is ground truth during training and the HMM prediction online.
struct FeatureContext {
  geo::Vec2 predicted_location;
  bool indoor{true};
  const sim::Place* place{nullptr};
  const schemes::FingerprintDatabase* wifi_db{nullptr};
  const schemes::FingerprintDatabase* cell_db{nullptr};
};

/// Names of the regression features for a family, in extraction order.
std::vector<std::string> feature_names(schemes::SchemeFamily family);

/// Extract the feature vector for one scheme's error model.
/// `output` provides the scheme's public observables (e.g. the PDR
/// distance-since-landmark counter, which a deployed PDR necessarily
/// exposes since it is part of its walking model).
std::vector<double> extract_features(schemes::SchemeFamily family,
                                     const sim::SensorFrame& frame,
                                     const schemes::SchemeOutput& output,
                                     const FeatureContext& ctx);

/// Reusable buffers for extract_features_into. One per session: the
/// ScanScratch members hold the likelihood-cache working state for the
/// WiFi and cellular databases respectively (DESIGN.md section 11).
struct FeatureScratch {
  schemes::ScanScratch wifi;
  schemes::ScanScratch cell;
  std::vector<schemes::Match> matches;
  std::vector<double> top3;
  std::vector<std::size_t> knn;
  /// Fast-path shared epoch state (schemes/epoch_context.h), set by
  /// Uniloc::update_fast each epoch; null (the default, and always null
  /// during offline training) recomputes every RSSI match from scratch.
  schemes::EpochContext* epoch_ctx{nullptr};
};

/// extract_features into a caller-owned vector: bit-identical values,
/// allocation-free once `scratch`/`x` reach steady capacity.
void extract_features_into(schemes::SchemeFamily family,
                           const sim::SensorFrame& frame,
                           const schemes::SchemeOutput& output,
                           const FeatureContext& ctx, FeatureScratch& scratch,
                           std::vector<double>& x);

/// Candidate features the paper examined but found insignificant
/// (Sec. III-B): used by the Table II appropriateness analysis.
std::vector<std::string> candidate_feature_names(schemes::SchemeFamily family);
std::vector<double> extract_candidate_features(
    schemes::SchemeFamily family, const sim::SensorFrame& frame,
    const schemes::SchemeOutput& output, const FeatureContext& ctx);

}  // namespace uniloc::core
