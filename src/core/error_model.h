// Per-scheme localization-error models (paper Sec. III).
//
// An ErrorModel predicts a scheme's instantaneous localization error as a
// Gaussian Y_t ~ N(mu_t, sigma_eps): mu_t from the fitted regression on
// the real-time features, sigma_eps from the regression residual. Indoor
// and outdoor environments get separate fits ("most localization schemes
// have distinct characteristics in indoor and outdoor environments",
// Sec. III-A). GPS uses a constant model -- the paper's key trick for
// predicting GPS error without powering the GPS radio.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "stats/gaussian.h"
#include "stats/regression.h"

namespace uniloc::core {

class ErrorModel {
 public:
  ErrorModel() = default;

  /// Constant model (GPS): error ~ N(mu, sigma) regardless of features.
  static ErrorModel constant(double mu, double sigma);

  /// Regression model with separate indoor / outdoor fits.
  static ErrorModel fitted(stats::LinearModel indoor,
                           stats::LinearModel outdoor);

  /// Regression model valid in only one environment; the other
  /// environment falls back to the same fit.
  static ErrorModel fitted_single(stats::LinearModel model);

  bool is_constant() const { return constant_.has_value(); }

  /// Predicted error distribution given features and environment.
  /// The mean is clamped to be non-negative (an error cannot be < 0).
  /// If `x` has more features than the selected fit uses, the extra ones
  /// are ignored: the fusion scheme shares the motion scheme's 2-feature
  /// model outdoors (paper Sec. III-B) while extracting 3 features.
  stats::Gaussian predict(std::span<const double> x, bool indoor) const;

  /// Replace one environment's fit (used to alias fusion-outdoor to
  /// motion-outdoor).
  void set_outdoor_model(stats::LinearModel m) { outdoor_ = std::move(m); }

  /// Access the underlying fits (Table II reporting).
  const stats::LinearModel& indoor_model() const { return indoor_; }
  const stats::LinearModel& outdoor_model() const { return outdoor_; }

 private:
  std::optional<stats::Gaussian> constant_;
  stats::LinearModel indoor_;
  stats::LinearModel outdoor_;
};

}  // namespace uniloc::core
