#include "core/local_fallback.h"

#include <cmath>

namespace uniloc::core {

void LocalFallback::seed(geo::Vec2 fix, double heading) {
  pos_ = fix;
  heading_ = heading;
  walked_m_ = 0.0;
  seeded_ = true;
}

geo::Vec2 LocalFallback::advance(double heading_rad, double distance_m) {
  // Same displacement convention as the particle filters' predict step.
  pos_ += geo::Vec2{std::cos(heading_rad), std::sin(heading_rad)} *
          distance_m;
  heading_ = heading_rad;
  walked_m_ += distance_m;
  return pos_;
}

}  // namespace uniloc::core
