// Experiment runner: drives a Walker through a venue with UniLoc and all
// baselines attached, recording per-epoch ground-truth errors. Every bench
// and most integration tests are built on this.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/trainer.h"
#include "core/uniloc.h"
#include "sim/walker.h"

namespace uniloc::obs {
class SpanTracer;
class TraceSink;
}  // namespace uniloc::obs

namespace uniloc::core {

struct EpochRecord {
  double t{0.0};
  double arclen{0.0};
  geo::Vec2 truth;
  sim::SegmentType env{sim::SegmentType::kOpenSpace};
  bool indoor_truth{false};
  bool indoor_detected{false};
  bool gps_was_enabled{true};
  std::size_t wifi_count{0};  ///< Audible APs this epoch (upload volume).
  std::size_t cell_count{0};  ///< Audible towers this epoch.

  std::vector<bool> scheme_available;
  std::vector<double> scheme_err;      ///< NaN where unavailable.
  std::vector<double> predicted_mu;    ///< Error-model prediction.
  std::vector<double> confidence;
  std::vector<double> weight;

  double uniloc1_err{0.0};
  double uniloc2_err{0.0};
  double oracle_err{0.0};
  std::optional<double> global_bma_err;  ///< When a GlobalWeightBma ran.
  int uniloc1_choice{-1};
  int oracle_choice{-1};
};

struct RunResult {
  std::vector<std::string> scheme_names;
  std::vector<EpochRecord> epochs;

  /// Errors of scheme `i` over epochs where it was available.
  std::vector<double> scheme_errors(std::size_t i) const;
  std::vector<double> uniloc1_errors() const;
  std::vector<double> uniloc2_errors() const;
  std::vector<double> oracle_errors() const;

  /// Fraction of epochs in which scheme i was UniLoc1's / the oracle's
  /// choice.
  std::vector<double> uniloc1_usage() const;
  std::vector<double> oracle_usage() const;

  /// Fraction of epochs with GPS enabled.
  double gps_duty_fraction() const;

  void append(const RunResult& other);
};

struct RunOptions {
  sim::WalkConfig walk{};
  bool use_gps_duty_cycle = true;
  /// Record estimates only every k-th step (the paper evaluates roughly
  /// every 3 m; 1 = every step).
  int record_every = 1;
  const GlobalWeightBma* global_bma = nullptr;
  /// Receives one structured event per recorded epoch (null: no tracing).
  obs::TraceSink* trace = nullptr;
  /// Causal span tracing (obs/span.h; null = off). Attached to the
  /// Uniloc for the duration of the walk: each epoch gets a `core.epoch`
  /// root span with the framework's scheme/fuse spans as children.
  obs::SpanTracer* tracer = nullptr;
  /// Drive epochs through Uniloc::update_fast with a per-walk scratch
  /// arena instead of the allocating reference update(). Same-seed traces
  /// are bit-identical either way (tests/test_differential.cc); false is
  /// the reference pipeline kept for differential testing and debugging.
  bool use_fast_path = true;
};

/// Build a Uniloc over the deployment with the standard five schemes and
/// the given trained models.
Uniloc make_uniloc(const Deployment& d, const TrainedModels& models,
                   UnilocConfig cfg = {}, bool calibrate_offset = false,
                   std::uint64_t seed = 7);

/// Walk `walkway_index` of the deployment end to end.
RunResult run_walk(Uniloc& uniloc, const Deployment& d,
                   std::size_t walkway_index, const RunOptions& opts);

}  // namespace uniloc::core
