// Deployment: a venue bundled with its radio environment and fingerprint
// databases, plus the standard five-scheme setup of the paper's
// evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "schemes/fingerprint_db.h"
#include "schemes/scheme.h"
#include "sim/builders.h"
#include "sim/radio.h"

namespace uniloc::core {

struct DeploymentOptions {
  double indoor_fp_spacing_m = 3.0;   ///< Paper: 3 x 3 m indoor resolution.
  double outdoor_fp_spacing_m = 12.0; ///< Paper: ~12 m in open spaces.
  /// Cellular fingerprints are collected on a coarser grid: GSM RSSI
  /// barely changes across a 3 m cell, so a denser grid only stores
  /// duplicates. The coarse grid is what makes cellular the paper's
  /// "coarse but available everywhere" scheme.
  double cell_indoor_fp_spacing_m = 9.0;
  double cell_outdoor_fp_spacing_m = 24.0;
  sim::RadioParams wifi{};
  sim::CellRadioParams cell{};
  std::uint64_t seed = 42;
};

/// Owns the world and its derived infrastructure; pointers handed to
/// schemes stay valid for the Deployment's lifetime (members are
/// heap-allocated so the Deployment itself can be moved).
struct Deployment {
  std::unique_ptr<sim::Place> place;
  std::unique_ptr<sim::RadioEnvironment> radio;
  std::unique_ptr<schemes::FingerprintDatabase> wifi_db;
  std::unique_ptr<schemes::FingerprintDatabase> cell_db;
  DeploymentOptions options;
};

Deployment make_deployment(sim::Place place, DeploymentOptions opts = {});

/// The five schemes of the paper's evaluation, in canonical order:
/// GPS, WiFi (RADAR), Cellular, Motion PDR, Fusion (Travi-Navi).
/// `calibrate_offset` switches on online device-offset calibration in the
/// fingerprinting schemes (the Fig. 8d "w/ calibration" configuration).
std::vector<schemes::SchemePtr> make_standard_schemes(
    const Deployment& d, bool calibrate_offset = false,
    std::uint64_t seed = 7);

/// Same, with explicit infrastructure handles (the trainer uses this to
/// bind schemes to downsampled fingerprint databases).
std::vector<schemes::SchemePtr> make_schemes(
    const sim::Place* place, const schemes::FingerprintDatabase* wifi_db,
    const schemes::FingerprintDatabase* cell_db, bool calibrate_offset,
    std::uint64_t seed);

}  // namespace uniloc::core
