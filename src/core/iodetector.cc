#include "core/iodetector.h"

namespace uniloc::core {

double IoDetector::indoor_score(const sim::SensorFrame& frame) const {
  double score = 0.0;
  score += frame.ambient.light_lux < params_.light_threshold_lux
               ? params_.light_vote
               : -params_.light_vote;
  score += frame.ambient.mag_field_sd_ut > params_.mag_sd_threshold_ut
               ? params_.mag_vote
               : -params_.mag_vote;
  if (!frame.cell.empty()) {
    double mean = 0.0;
    for (const sim::ApReading& r : frame.cell) mean += r.rssi_dbm;
    mean /= static_cast<double>(frame.cell.size());
    score += mean < params_.cell_rssi_threshold_dbm ? params_.cell_vote
                                                    : -params_.cell_vote;
  }
  return score;
}

bool IoDetector::is_indoor(const sim::SensorFrame& frame) const {
  return indoor_score(frame) > 0.0;
}

}  // namespace uniloc::core
