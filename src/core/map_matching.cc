#include "core/map_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/gaussian.h"

namespace uniloc::core {

MapMatcher::MapMatcher(const sim::Place* place, Options opts)
    : place_(place), opts_(opts) {
  // Discretize every walkway.
  for (std::size_t w = 0; w < place_->walkways().size(); ++w) {
    const geo::Polyline& line = place_->walkways()[w].line;
    for (double s = 0.0; s <= line.length(); s += opts_.bin_m) {
      states_.push_back({w, s, line.point_at(s)});
    }
  }
  // Precompute reachable neighbors: same-walkway bins within the motion
  // reach, plus cross-walkway bins at junctions.
  const double reach =
      std::max(opts_.step_m + 4.0 * opts_.motion_sd_m, 2.0 * opts_.bin_m);
  neighbors_.resize(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    for (std::size_t j = 0; j < states_.size(); ++j) {
      const bool same = states_[i].walkway == states_[j].walkway;
      if (same) {
        if (std::fabs(states_[j].arclen - states_[i].arclen) <= reach) {
          neighbors_[i].push_back(j);
        }
      } else if (geo::distance(states_[i].pos, states_[j].pos) <=
                 opts_.junction_radius_m) {
        neighbors_[i].push_back(j);
      }
    }
  }
  reset();
}

void MapMatcher::reset() {
  belief_.assign(states_.size(),
                 states_.empty() ? 0.0
                                 : 1.0 / static_cast<double>(states_.size()));
  started_ = false;
}

double MapMatcher::transition(const State& from, const State& to) const {
  double advance;
  if (from.walkway == to.walkway) {
    advance = to.arclen - from.arclen;
  } else {
    // A junction hop: treat the Euclidean gap as the advance.
    advance = geo::distance(from.pos, to.pos);
  }
  const double expected = opts_.step_m;
  // Forward motion is most likely; standing/backtracking allowed with a
  // wider, flatter kernel when enabled.
  const double forward =
      stats::normal_pdf((advance - expected) / opts_.motion_sd_m);
  if (!opts_.allow_backtrack) return forward;
  const double loiter =
      0.2 * stats::normal_pdf(advance / (2.0 * opts_.motion_sd_m));
  return forward + loiter;
}

geo::Vec2 MapMatcher::update(geo::Vec2 raw_estimate) {
  std::vector<double> next(states_.size(), 0.0);
  if (!started_) {
    // First observation: emission only.
    for (std::size_t j = 0; j < states_.size(); ++j) {
      next[j] = stats::normal_pdf(
          geo::distance(states_[j].pos, raw_estimate) / opts_.emission_sd_m);
    }
    started_ = true;
  } else {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      const double b = belief_[i];
      if (b <= 1e-12) continue;
      for (std::size_t j : neighbors_[i]) {
        next[j] += b * transition(states_[i], states_[j]);
      }
    }
    // A tiny uniform "teleport" mass lets the belief escape a wrong mode
    // (e.g. after an outlier pinned it to the wrong corridor).
    const double teleport = 1e-5 / static_cast<double>(states_.size());
    for (std::size_t j = 0; j < states_.size(); ++j) {
      next[j] = (next[j] + teleport) *
                stats::normal_pdf(geo::distance(states_[j].pos, raw_estimate) /
                                  opts_.emission_sd_m);
    }
  }
  double total = 0.0;
  for (double v : next) total += v;
  if (total <= 0.0) {
    // Estimate so far off every path that all emissions underflow: put
    // the belief on the spatially nearest state (no recursion -- a
    // second underflow would loop forever).
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < states_.size(); ++j) {
      const double d = geo::distance2(states_[j].pos, raw_estimate);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    std::fill(next.begin(), next.end(), 0.0);
    next[best] = 1.0;
    belief_ = std::move(next);
    started_ = true;
    return current();
  }
  for (double& v : next) v /= total;
  belief_ = std::move(next);
  return current();
}

geo::Vec2 MapMatcher::current() const {
  const auto it = std::max_element(belief_.begin(), belief_.end());
  return states_[static_cast<std::size_t>(it - belief_.begin())].pos;
}

}  // namespace uniloc::core
