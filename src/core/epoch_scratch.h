// Per-session scratch arena for the zero-allocation epoch fast path.
//
// Uniloc::update_fast threads one EpochScratch through every stage of the
// epoch pipeline (scheme outputs, error-model features, BMA weights) so
// that, after a warmup epoch has grown every buffer to its steady
// capacity, an epoch performs no heap allocation at all
// (tests/test_perf_contracts.cc). Lifetime rules are documented in
// DESIGN.md section 11; the short version:
//
//   * One EpochScratch per session / walk. It must outlive every
//     EpochDecision reference returned by update_fast (the decision is
//     stored inside the scratch and overwritten by the next epoch).
//   * Never share one scratch between concurrently-updating Uniloc
//     instances: the ScanScratch members inside feature_scratch carry
//     mutable per-query state (and the cache hit/miss counters are plain
//     integers, not atomics). In src/svc each Session owns its scratch
//     and the session strand serializes access.
//   * Reuse across walks is fine (and is what the service does); reset()
//     is not required -- every field is (re)written each epoch.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/features.h"
#include "core/uniloc.h"
#include "schemes/epoch_context.h"

namespace uniloc::core {

struct EpochScratch {
  /// The decision under construction; update_fast returns a reference to
  /// this field. Valid until the next update_fast call on this scratch.
  EpochDecision decision;

  // Stage buffers (capacities persist across epochs).
  std::vector<stats::Gaussian> available_predictions;
  std::vector<double> sharpened;
  std::vector<double> features;
  FeatureScratch feature_scratch;

  /// Shared per-epoch state: one candidate evaluation per (epoch,
  /// database), served to every scheme and feature that queries the same
  /// scan (schemes/epoch_context.h). update_fast installs it into the
  /// schemes each epoch, so the same no-sharing rule as the rest of the
  /// scratch applies.
  schemes::EpochContext scheme_ctx;

  /// Likelihood-cache outcomes of the queries this scratch carried: the
  /// feature stage's private scratches plus the shared epoch memos (the
  /// schemes' unmemoized queries are counted in the schemes; see
  /// LocalizationScheme::cache_hits).
  std::uint64_t cache_hits() const {
    return feature_scratch.wifi.cache_hits + feature_scratch.cell.cache_hits +
           scheme_ctx.cache_hits();
  }
  std::uint64_t cache_misses() const {
    return feature_scratch.wifi.cache_misses +
           feature_scratch.cell.cache_misses + scheme_ctx.cache_misses();
  }

  /// Approximate bytes of heap capacity held (and therefore reused) by
  /// the arena -- exported as the perf.scratch_bytes gauge.
  std::size_t bytes() const {
    std::size_t b = 0;
    b += decision.outputs.capacity() * sizeof(schemes::SchemeOutput);
    for (const schemes::SchemeOutput& o : decision.outputs) {
      b += o.posterior.support.capacity() * sizeof(schemes::WeightedPoint);
    }
    b += decision.predicted_error.capacity() * sizeof(stats::Gaussian);
    b += decision.confidence.capacity() * sizeof(double);
    b += decision.weight.capacity() * sizeof(double);
    b += available_predictions.capacity() * sizeof(stats::Gaussian);
    b += sharpened.capacity() * sizeof(double);
    b += features.capacity() * sizeof(double);
    b += feature_scratch.matches.capacity() * sizeof(schemes::Match);
    b += feature_scratch.top3.capacity() * sizeof(double);
    b += feature_scratch.knn.capacity() * sizeof(std::size_t);
    b += feature_scratch.wifi.col.capacity() * sizeof(int);
    b += feature_scratch.wifi.stamp.capacity() * sizeof(std::uint32_t);
    b += feature_scratch.cell.col.capacity() * sizeof(int);
    b += feature_scratch.cell.stamp.capacity() * sizeof(std::uint32_t);
    b += scheme_ctx.bytes();
    return b;
  }
};

}  // namespace uniloc::core
