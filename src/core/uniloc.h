// The UniLoc framework (paper Sec. IV).
//
// Registered schemes run in parallel on each SensorFrame. For every
// available scheme the framework extracts the family's features, predicts
// the localization error Y ~ N(mu, sigma_eps) with the offline-trained
// error model, and converts it to a confidence c = P(Y <= tau) against the
// adaptive threshold tau (the mean predicted error of available schemes).
//
//   UniLoc1  selects the highest-confidence scheme's estimate.
//   UniLoc2  locally-weighted BMA: mixes the schemes' location posteriors
//            with weights w_n = c_n / sum c_i and reports the posterior
//            expectation per axis (Eq. 3-5).
//
// Energy: the GPS duty-cycle controller keeps GPS off indoors and, when
// outdoors, only enables it when its (constant, feature-free) predicted
// error is the smallest among all schemes -- so the decision needs no GPS
// power at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/error_model.h"
#include "core/features.h"
#include "core/iodetector.h"
#include "filter/location_predictor.h"
#include "schemes/scheme.h"

namespace uniloc::obs {
class Counter;
class Histogram;
class MetricsRegistry;
class SpanTracer;
}  // namespace uniloc::obs

namespace uniloc::core {

struct EpochScratch;  // core/epoch_scratch.h

struct UnilocConfig {
  /// 0 => adaptive tau (paper default); otherwise a fixed threshold in
  /// meters (ablation bench).
  double fixed_tau_m = 0.0;
  /// Exponent applied to confidences before normalizing into BMA weights.
  /// The paper's Table II reports tiny regression residuals (sigma_eps as
  /// low as 0.26 m for the motion model), which make its Eq. 2 confidence
  /// nearly a step function of (tau - mu); our simulator's residuals are
  /// several meters, flattening the same formula. The exponent restores
  /// the paper's effective weight sharpness; 1.0 recovers the literal
  /// Eq. 5. See bench/ablation_sharpness.
  double confidence_sharpness = 4.0;
  /// Enable the GPS duty-cycle controller.
  bool gps_duty_cycle = true;
  /// Infrastructure handles for feature extraction (may be null; the
  /// corresponding features then fall back to conservative defaults).
  const sim::Place* place = nullptr;
  const schemes::FingerprintDatabase* wifi_db = nullptr;
  const schemes::FingerprintDatabase* cell_db = nullptr;
};

/// Everything UniLoc decided in one epoch. Vectors are index-aligned with
/// the registered scheme list.
struct EpochDecision {
  std::vector<schemes::SchemeOutput> outputs;
  std::vector<stats::Gaussian> predicted_error;  ///< Valid where available.
  std::vector<double> confidence;                ///< 0 where unavailable.
  std::vector<double> weight;                    ///< BMA weights (Eq. 5).
  double tau{0.0};
  bool indoor{true};
  int selected{-1};         ///< UniLoc1's scheme index (-1: nothing ran).
  geo::Vec2 uniloc1;        ///< Best-scheme estimate.
  geo::Vec2 uniloc2;        ///< Locally-weighted BMA estimate.
  bool gps_enable_next{true};  ///< Duty-cycling decision for next epoch.
};

class Uniloc {
 public:
  explicit Uniloc(UnilocConfig cfg);

  /// Register a scheme with its offline-trained error model.
  /// Integration cost of a new scheme is exactly this call (the paper's
  /// "general" design feature). Returns the scheme's index.
  std::size_t add_scheme(schemes::SchemePtr scheme, ErrorModel model);

  std::size_t num_schemes() const { return entries_.size(); }
  std::vector<std::string> scheme_names() const;
  const schemes::LocalizationScheme& scheme(std::size_t i) const {
    return *entries_[i].scheme;
  }

  /// Prepare all schemes for a walk starting at `start`.
  void reset(const schemes::StartCondition& start);

  /// Run one epoch: localize with every scheme, predict errors, combine.
  EpochDecision update(const sim::SensorFrame& frame);

  /// Fast-path epoch: same eight pipeline stages as update(), but every
  /// intermediate lives in `scratch` and schemes localize through
  /// update_into, so a steady-state epoch performs zero heap allocations
  /// (tests/test_perf_contracts.cc). Every consumer-visible field of the
  /// returned decision is bit-identical to update()'s on the same frame
  /// sequence (tests/test_differential.cc); unavailable scheme outputs may
  /// carry stale posterior/observable payloads, which consumers never read
  /// (they gate on `available`; DESIGN.md section 11). The reference is
  /// valid until the next update_fast call on the same scratch.
  const EpochDecision& update_fast(const sim::SensorFrame& frame,
                                   EpochScratch& scratch);

  /// Sum of the registered schemes' likelihood-cache counters (the
  /// feature-stage counters live in EpochScratch).
  std::uint64_t scheme_cache_hits() const;
  std::uint64_t scheme_cache_misses() const;

  /// The duty-cycling decision computed by the previous update() (true
  /// before the first epoch: the controller cannot rule GPS out yet).
  bool gps_enabled() const { return gps_enable_; }

  /// Serialize all persistent mutable state -- the duty-cycle flag, the
  /// location predictor, and every scheme's state (name-tagged and
  /// length-prefixed) -- for a session checkpoint (svc/checkpoint.h).
  void snapshot_into(offload::ByteWriter& w) const;
  /// Restore into a framework built with the same configuration, scheme
  /// list and seeds as the snapshotted one (the service rebuilds it via
  /// the session factory first). Validates the scheme names and payload
  /// framing; returns false (state unspecified but safe) on mismatch or
  /// malformed input.
  bool restore_from(offload::ByteReader& r);

  /// Codec-versioned snapshot pair: `quantize` selects the fixed-point
  /// particle codec (checkpoint format v2), with the venue grid taken
  /// from this framework's Place bounds (schemes::SnapshotContext). The
  /// flag must match between snapshot and restore -- the checkpoint
  /// header's version byte carries it across the file boundary.
  /// quantize == false is byte-identical to the pair above.
  void snapshot_into(offload::ByteWriter& w, bool quantize) const;
  bool restore_from(offload::ByteReader& r, bool quantize);

  /// Attach latency/throughput instrumentation to `registry` (nullptr
  /// detaches, the default state). Histograms resolved once here, never
  /// on the hot path: `uniloc.update_us`, `uniloc.fuse_us`, and
  /// `scheme.<name>.localize_us` per registered scheme; the epoch count
  /// lands in the `uniloc.epochs` counter. Cascades to the schemes'
  /// internal stages (particle filters). Schemes added after this call
  /// are instrumented on registration.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Attach causal span tracing (obs/span.h; nullptr detaches, the
  /// default state). Each epoch emits one `scheme.<name>` span per
  /// registered scheme around its localize and one `core.fuse` span
  /// around the fusion stage, parented to the caller's ambient
  /// TraceContext (the server's svc.locate span, or the runner's epoch
  /// root). Detached cost is a branch per instrumentation point.
  void attach_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

 private:
  struct Entry {
    schemes::SchemePtr scheme;
    ErrorModel model;
    obs::Histogram* localize_us{nullptr};
    std::string span_name;  ///< "scheme.<name>", cached for span begin().
  };

  FeatureContext make_context(bool indoor) const;
  void instrument_entry(Entry& e);

  UnilocConfig cfg_;
  std::vector<Entry> entries_;
  IoDetector io_detector_;
  filter::LocationPredictor predictor_;
  bool gps_enable_{true};
  obs::MetricsRegistry* registry_{nullptr};
  obs::SpanTracer* tracer_{nullptr};
  obs::Histogram* update_us_{nullptr};
  obs::Histogram* fuse_us_{nullptr};
  obs::Counter* epochs_{nullptr};
};

}  // namespace uniloc::core
