#include "core/cold_start.h"

#include <cmath>

#include "stats/descriptive.h"

namespace uniloc::core {

ColdStartLocator::ColdStartLocator(const schemes::FingerprintDatabase* db,
                                   Options opts)
    : db_(db), opts_(opts) {}

std::optional<schemes::StartCondition> ColdStartLocator::observe(
    const sim::SensorFrame& f) {
  // Heading evidence from the magnetometer (circular mean).
  for (const sim::ImuSample& s : f.imu) {
    heading_sum_sin_ += std::sin(s.mag_heading);
    heading_sum_cos_ += std::cos(s.mag_heading);
    ++heading_samples_;
  }

  if (!f.wifi.empty() && db_ != nullptr && !db_->empty()) {
    ++scans_;
    for (const schemes::Match& m :
         db_->k_nearest(f.wifi, opts_.matches_per_scan)) {
      match_positions_.push_back(db_->fingerprints()[m.index].pos);
    }
  }
  if (scans_ < opts_.min_scans) return std::nullopt;

  const std::optional<schemes::StartCondition> guess = current_guess();
  if (!guess.has_value()) return std::nullopt;

  // Confident when the recent matches cluster tightly around the guess.
  double spread2 = 0.0;
  for (const geo::Vec2& p : match_positions_) {
    spread2 += geo::distance2(p, guess->pos);
  }
  spread2 /= static_cast<double>(match_positions_.size());
  if (std::sqrt(spread2) <= opts_.cluster_radius_m ||
      scans_ >= opts_.max_scans) {
    return guess;
  }
  return std::nullopt;
}

std::optional<schemes::StartCondition> ColdStartLocator::current_guess()
    const {
  if (match_positions_.empty()) return std::nullopt;
  geo::Vec2 mean{};
  for (const geo::Vec2& p : match_positions_) mean += p;
  mean = mean / static_cast<double>(match_positions_.size());
  schemes::StartCondition start;
  start.pos = mean;
  start.heading = heading_samples_ > 0
                      ? std::atan2(heading_sum_sin_, heading_sum_cos_)
                      : 0.0;
  return start;
}

}  // namespace uniloc::core
