// Comparison baselines.
//
//  * Oracle ("optimal single-selection"): knows the true error of every
//    scheme and always picks the best one. Only computable by the harness
//    (it needs ground truth); the paper uses it as the upper bound of any
//    selection-based approach (Figs. 2, 3, 5).
//  * GlobalWeightBma: BMA with one fixed weight per scheme for the whole
//    place (the prior approach [29] the paper contrasts with). Weights
//    come from training-time mean errors; they never adapt to the local
//    context.
#pragma once

#include <vector>

#include "schemes/scheme.h"

namespace uniloc::core {

/// Index of the scheme with the smallest true error; -1 if none available.
int oracle_choice(const std::vector<schemes::SchemeOutput>& outputs,
                  geo::Vec2 truth);

class GlobalWeightBma {
 public:
  /// `mean_training_error[i]` is scheme i's average error on the training
  /// set; the fixed weight is its inverse, normalized.
  explicit GlobalWeightBma(const std::vector<double>& mean_training_error);

  const std::vector<double>& weights() const { return weights_; }

  /// Combine available schemes' posterior means with the fixed weights
  /// (renormalized over the available subset).
  geo::Vec2 combine(const std::vector<schemes::SchemeOutput>& outputs) const;

 private:
  std::vector<double> weights_;
};

}  // namespace uniloc::core
