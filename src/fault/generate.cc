#include "fault/generate.h"

#include <algorithm>

#include "stats/rng.h"

namespace uniloc::fault {

PlanSpec generate_plan_spec(std::uint64_t seed, const PlanLimits& limits) {
  stats::Rng rng(stats::hash_combine(seed, 0xFA17'F417ULL));
  PlanSpec spec;
  spec.seed = stats::hash_combine(seed, 1);

  // Background chaos intensities. Roughly half the runs get a quiet wire
  // for one fault class so the clean paths stay covered too.
  spec.rates.drop = rng.chance(0.8) ? rng.uniform(0.0, limits.max_drop) : 0.0;
  spec.rates.duplicate =
      rng.chance(0.5) ? rng.uniform(0.0, limits.max_duplicate) : 0.0;
  spec.rates.reorder =
      rng.chance(0.5) ? rng.uniform(0.0, limits.max_reorder) : 0.0;
  spec.rates.corrupt =
      rng.chance(0.5) ? rng.uniform(0.0, limits.max_corrupt) : 0.0;
  if (rng.chance(0.6)) {
    spec.rates.base_delay_us = static_cast<std::uint64_t>(
        rng.uniform(0.0, static_cast<double>(limits.max_base_delay_us)));
    spec.rates.jitter_delay_us = static_cast<std::uint64_t>(
        rng.uniform(0.0, static_cast<double>(limits.max_jitter_delay_us)));
  }

  // A blackout window somewhere inside the run. Send indices run ahead
  // of rounds (retries consume them), so anchoring the window on the
  // round count keeps it inside the interesting part of the run.
  if (limits.rounds > 2 && rng.chance(limits.p_blackout)) {
    const std::size_t from = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<int>(limits.rounds - 2)));
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<int>(std::max<std::size_t>(1, limits.max_blackout_len))));
    spec.blackouts.emplace_back(from, from + len);
  }

  // Crash/restore points between rounds, strictly increasing.
  if (limits.rounds > 2 && limits.max_crashes > 0 &&
      rng.chance(limits.p_crash)) {
    const int n = rng.uniform_int(1, static_cast<int>(limits.max_crashes));
    for (int i = 0; i < n; ++i) {
      spec.crash_rounds.push_back(static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<int>(limits.rounds - 2))));
    }
    std::sort(spec.crash_rounds.begin(), spec.crash_rounds.end());
    spec.crash_rounds.erase(
        std::unique(spec.crash_rounds.begin(), spec.crash_rounds.end()),
        spec.crash_rounds.end());
  }
  return spec;
}

FaultPlan build_plan(const PlanSpec& spec) {
  FaultPlan plan(spec.seed, spec.rates);
  for (const auto& [from, to] : spec.blackouts) plan.add_blackout(from, to);
  for (const std::size_t round : spec.crash_rounds) plan.script_crash(round);
  return plan;
}

}  // namespace uniloc::fault
