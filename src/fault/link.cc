#include "fault/link.h"

#include <future>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"

namespace uniloc::fault {

namespace {

std::future<svc::LinkReply> ready(svc::LinkReply reply) {
  std::promise<svc::LinkReply> promise;
  promise.set_value(std::move(reply));
  return promise.get_future();
}

}  // namespace

FaultyLink::FaultyLink(std::unique_ptr<svc::Link> inner,
                       const FaultPlan* plan, std::uint64_t stream,
                       obs::MetricsRegistry* registry,
                       obs::SpanTracer* tracer)
    : inner_(std::move(inner)),
      plan_(plan),
      stream_(stream),
      tracer_(tracer) {
  if (registry != nullptr) {
    m_drop_ = &registry->counter("fault.injected.drop");
    m_duplicate_ = &registry->counter("fault.injected.duplicate");
    m_reorder_ = &registry->counter("fault.injected.reorder");
    m_corrupt_ = &registry->counter("fault.injected.corrupt");
    m_down_ = &registry->counter("fault.injected.down");
    m_delay_us_ = &registry->counter("fault.injected.delay_us");
  }
}

std::future<svc::LinkReply> FaultyLink::send(
    std::vector<std::uint8_t> request) {
  const std::size_t index = send_index_++;
  ++counters_.sends;
  const FaultDecision d = plan_->decide(stream_, index);
  counters_.delay_us_total += d.delay_us;
  if (m_delay_us_ != nullptr && d.delay_us > 0) m_delay_us_->inc(d.delay_us);

  // One span per wire transmission, noted with the injected fault. The
  // inner send runs on this thread (only the reply wait is deferred), so
  // the server's spans chain under the caller's ambient context.
  obs::ScopedSpan span(tracer_, "link.send", "link", 0, 0, stream_);
  const char* note = "ok";

  switch (d.kind) {
    case FaultKind::kDown: {
      ++counters_.downs;
      if (m_down_ != nullptr) m_down_->inc();
      svc::LinkReply reply;
      reply.status = svc::LinkReply::Status::kDown;
      reply.delay_us = d.delay_us;
      span.finish("down");
      return ready(std::move(reply));
    }
    case FaultKind::kDrop: {
      // Lost before the server: no submit, the caller times out.
      ++counters_.drops;
      if (m_drop_ != nullptr) m_drop_->inc();
      svc::LinkReply reply;
      reply.status = svc::LinkReply::Status::kDropped;
      reply.delay_us = d.delay_us;
      span.finish("drop");
      return ready(std::move(reply));
    }
    case FaultKind::kCorrupt:
      ++counters_.corruptions;
      if (m_corrupt_ != nullptr) m_corrupt_->inc();
      // Flip a magic byte: the frame still travels, but the server's
      // hostile-input boundary rejects it (detected corruption).
      if (request.size() > 4) request[4] ^= 0xFF;
      note = "corrupt";
      break;
    case FaultKind::kDuplicate: {
      ++counters_.duplicates;
      if (m_duplicate_ != nullptr) m_duplicate_->inc();
      auto first = inner_->send(request);  // copy: original delivery
      auto second = inner_->send(std::move(request));
      span.finish("duplicate");
      return std::async(
          std::launch::deferred,
          [this, d, f1 = std::move(first),
           f2 = std::move(second)]() mutable {
            svc::LinkReply reply = f1.get();
            (void)f2.get();  // the duplicate's reply evaporates
            reply.delay_us += d.delay_us;
            if (reply.status == svc::LinkReply::Status::kOk) {
              prev_reply_ = reply.bytes;
              have_prev_ = true;
            }
            return reply;
          });
    }
    case FaultKind::kReorder: {
      ++counters_.reorders;
      if (m_reorder_ != nullptr) m_reorder_->inc();
      auto f = inner_->send(std::move(request));
      span.finish("reorder");
      return std::async(
          std::launch::deferred, [this, d, f = std::move(f)]() mutable {
            svc::LinkReply reply = f.get();
            reply.delay_us += d.delay_us;
            if (reply.status == svc::LinkReply::Status::kOk && have_prev_) {
              // Deliver the stale slot; this exchange's reply waits.
              std::swap(reply.bytes, prev_reply_);
            } else if (reply.status == svc::LinkReply::Status::kOk) {
              prev_reply_ = reply.bytes;  // nothing older to deliver yet
              have_prev_ = true;
            }
            return reply;
          });
    }
    case FaultKind::kNone:
      break;
  }

  auto f = inner_->send(std::move(request));
  span.finish(note);
  return std::async(std::launch::deferred, [this, d, f = std::move(f)]() mutable {
    svc::LinkReply reply = f.get();
    reply.delay_us += d.delay_us;
    if (reply.status == svc::LinkReply::Status::kOk) {
      prev_reply_ = reply.bytes;
      have_prev_ = true;
    }
    return reply;
  });
}

}  // namespace uniloc::fault
