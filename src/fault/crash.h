// Process-crash injection for the localization service.
//
// The injector models a server that checkpoints after every round of
// traffic and, at rounds scripted via FaultPlan::script_crash, dies and
// restarts from its latest checkpoint: all in-RAM session state is lost
// (LocalizationServer::crash) and rebuilt from the snapshot
// (LocalizationServer::restore). Because a snapshot captures the complete
// per-session state -- particle clouds, RNG engines, calibrators, the
// duty-cycle flag and the session bookkeeping -- a crashed-and-restored
// run must serve the exact epoch stream of an uninterrupted one
// (tests/test_checkpoint.cc pins this bit for bit).
//
// Wire into the load generator:
//
//   fault::CrashInjector injector(&server, &plan);
//   load_cfg.on_round = [&](std::size_t round) { injector.on_round(round); };
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "shard/router.h"
#include "svc/server.h"

namespace uniloc::fault {

class CrashInjector {
 public:
  /// Both pointers must outlive the injector.
  CrashInjector(svc::LocalizationServer* server, const FaultPlan* plan)
      : server_(server), plan_(plan) {}

  /// Attach a flight recorder (obs/flight_recorder.h) for post-mortems:
  /// every scripted crash records a kCrash event (session 0 = the server
  /// itself, epoch = round) and, when `dump_dir` is non-empty, dumps the
  /// recorder to `<dump_dir>/flight_crash_round<R>.jsonl` BEFORE the
  /// in-RAM state dies -- the black box survives the airplane. A failed
  /// restore additionally dumps flight_restore_mismatch_round<R>.jsonl.
  /// The dump is deterministic (no wall-clock fields), so same-seed
  /// reruns produce byte-identical files.
  void attach_flight(obs::FlightRecorder* flight, std::string dump_dir = "") {
    flight_ = flight;
    dump_dir_ = std::move(dump_dir);
  }

  /// Checkpoint the server; then, if `round` is scripted to crash, kill
  /// and restore it. Call from LoadGenConfig::on_round (all sessions are
  /// idle there, so the snapshot is a clean between-rounds cut).
  void on_round(std::size_t round);

  std::size_t checkpoints() const { return checkpoints_; }
  std::size_t crashes() const { return crashes_; }
  /// Restores that failed (should stay 0: our own snapshots are valid).
  std::size_t restore_failures() const { return restore_failures_; }
  /// Flight-dump files written so far, in write order.
  const std::vector<std::string>& flight_dumps() const { return dumps_; }

 private:
  svc::LocalizationServer* server_;
  const FaultPlan* plan_;
  obs::FlightRecorder* flight_{nullptr};
  std::string dump_dir_;
  std::vector<std::string> dumps_;
  std::vector<std::uint8_t> last_checkpoint_;
  std::size_t checkpoints_{0};
  std::size_t crashes_{0};
  std::size_t restore_failures_{0};
};

/// Delta-chain crash injection (svc/delta.h): the durable-checkpoint
/// analogue of CrashInjector. Every round the injector appends one wave
/// to an in-RAM chain -- a keyframe whenever the chain is empty or
/// `keyframe_interval` deltas have accumulated (a keyframe supersedes and
/// drops everything before it, mirroring prune_wave_files), a delta of
/// the dirty sessions otherwise. At scripted crash rounds the server
/// dies and is rebuilt from collapse_chain() over the retained waves.
/// Because deltas only carry sessions that advanced, this pins the whole
/// dirty-tracking + membership-pruning + overlay pipeline: the collapsed
/// restore must reproduce the uninterrupted epoch stream bit for bit
/// (proptest invariant I9). Any wave the collapse rejects is OUR OWN
/// torn write and counts as a restore failure.
class ChainCrashInjector {
 public:
  /// Both pointers must outlive the injector.
  ChainCrashInjector(svc::LocalizationServer* server, const FaultPlan* plan,
                     std::size_t keyframe_interval = 4)
      : server_(server),
        plan_(plan),
        keyframe_interval_(keyframe_interval == 0 ? 1 : keyframe_interval) {}

  /// Call from LoadGenConfig::on_round (all sessions idle between
  /// rounds, so the wave is a clean cut).
  void on_round(std::size_t round);

  std::size_t waves() const { return waves_; }
  std::size_t keyframes() const { return keyframes_; }
  std::size_t crashes() const { return crashes_; }
  /// Deltas collapse_chain applied across every restore performed.
  std::size_t deltas_applied() const { return deltas_applied_; }
  /// Restores that failed or rejected one of our own waves (must stay 0).
  std::size_t restore_failures() const { return restore_failures_; }

 private:
  svc::LocalizationServer* server_;
  const FaultPlan* plan_;
  std::size_t keyframe_interval_;
  std::vector<std::vector<std::uint8_t>> chain_;
  std::size_t since_keyframe_{0};
  std::size_t waves_{0};
  std::size_t keyframes_{0};
  std::size_t crashes_{0};
  std::size_t deltas_applied_{0};
  std::size_t restore_failures_{0};
};

/// Whole-shard chaos for a fleet (shard/router.h): every round the whole
/// fleet checkpoints; at rounds scripted via FaultPlan::script_crash one
/// shard (rotating round-robin over the fleet) is killed, its session
/// population is resurrected on the survivors from its last checkpoint,
/// and -- when `revive` -- the dead shard rejoins empty, exactly the
/// operational sequence of losing and replacing a node. The sharded
/// differential tests pin that this whole disaster leaves the served
/// epoch stream bit-identical to an undisturbed run.
class ShardCrashInjector {
 public:
  /// Both pointers must outlive the injector.
  ShardCrashInjector(shard::ShardRouter* router, const FaultPlan* plan,
                     bool revive = true)
      : router_(router), plan_(plan), revive_(revive) {}

  /// Call from LoadGenConfig::on_round (all sessions idle between
  /// rounds, so every shard's snapshot is a clean cut).
  void on_round(std::size_t round);

  std::size_t checkpoints() const { return checkpoints_; }
  std::size_t crashes() const { return crashes_; }
  std::size_t sessions_recovered() const { return sessions_recovered_; }
  /// The shard the most recent crash killed (next victim rotates).
  std::size_t last_victim() const { return last_victim_; }

 private:
  shard::ShardRouter* router_;
  const FaultPlan* plan_;
  bool revive_;
  std::size_t checkpoints_{0};
  std::size_t crashes_{0};
  std::size_t sessions_recovered_{0};
  std::size_t last_victim_{0};
};

}  // namespace uniloc::fault
