// FaultPlan: a deterministic schedule of wire faults.
//
// Chaos testing is only useful when a failure reproduces: a fault plan is
// therefore a *pure function* decide(stream, send_index) -> FaultDecision.
// Nothing is drawn from a shared generator -- every decision hashes
// (seed, stream, send_index) into its own RNG -- so the schedule a phone
// experiences does not depend on how many other phones exist, how the
// server's worker threads interleave, or how many times decide() is
// called. Same (seed, schedule) in, same fault sequence out, bit for bit.
//
// Three layers, first match wins:
//   1. scripted per-stream faults   (exact tests: "drop sends 5..7")
//   2. scripted all-stream faults + blackout windows (outage drills)
//   3. random faults from FaultRates (background chaos for benches)
//
// `stream` is the fault-isolation key -- svc uses the session id -- and
// `send_index` counts that stream's link transmissions from 0 (retries
// consume indices too, which is what lets a retry succeed where the
// original send was dropped).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace uniloc::fault {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDrop,       ///< Request lost before the server; the client times out.
  kDuplicate,  ///< Server receives (and processes) the frame twice.
  kReorder,    ///< Delivery slips one slot: the previous exchange's reply
               ///< arrives instead of this one's (stop-and-wait reorder).
  kCorrupt,    ///< A wire byte is flipped; the server rejects the frame.
  kDown,       ///< Server unreachable (blackout); fails fast.
  kProcessCrash,  ///< Server process dies between rounds and restarts from
                  ///< its last checkpoint (scripted via script_crash; never
                  ///< emitted by decide()'s per-send layers).
};

const char* fault_kind_name(FaultKind k);

struct FaultDecision {
  FaultKind kind{FaultKind::kNone};
  /// Simulated link latency added to the reply (metadata, never slept).
  std::uint64_t delay_us{0};
};

/// Background fault probabilities for the random layer. Probabilities are
/// per send and mutually exclusive (evaluated in the field order below).
struct FaultRates {
  double drop{0.0};
  double duplicate{0.0};
  double reorder{0.0};
  double corrupt{0.0};
  std::uint64_t base_delay_us{0};
  /// Uniform extra latency in [0, jitter_delay_us) on top of the base.
  std::uint64_t jitter_delay_us{0};

  bool operator==(const FaultRates&) const = default;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultRates rates = {});

  /// Script an exact fault for one stream's n-th send. Overrides
  /// everything else.
  void script(std::uint64_t stream, std::size_t send_index,
              FaultDecision decision);

  /// Script a fault for every stream's n-th send.
  void script_all_streams(std::size_t send_index, FaultDecision decision);

  /// Server blackout over send indices [from, to) of every stream: each
  /// send in the window fails fast with kDown.
  void add_blackout(std::size_t from_send_index, std::size_t to_send_index);

  /// Script a kProcessCrash after load-generation round `round` (0-based).
  /// Crashes live outside decide()'s per-send layers: they are consumed
  /// by a fault::CrashInjector wired into LoadGenConfig::on_round.
  void script_crash(std::size_t round);

  /// True when a crash is scripted for `round`.
  bool crash_at(std::size_t round) const;

  /// The fault (if any) injected into `stream`'s `send_index`-th link
  /// transmission. Pure: depends only on (seed, schedule, arguments).
  FaultDecision decide(std::uint64_t stream, std::size_t send_index) const;

  const FaultRates& rates() const { return rates_; }
  std::uint64_t seed() const { return seed_; }

 private:
  FaultDecision random_decision(std::uint64_t stream,
                                std::size_t send_index) const;

  std::uint64_t seed_;
  FaultRates rates_;
  std::map<std::pair<std::uint64_t, std::size_t>, FaultDecision> scripted_;
  std::map<std::size_t, FaultDecision> scripted_all_;
  std::vector<std::pair<std::size_t, std::size_t>> blackouts_;
  std::vector<std::size_t> crash_rounds_;
};

}  // namespace uniloc::fault
