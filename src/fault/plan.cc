#include "fault/plan.h"

#include "stats/rng.h"

namespace uniloc::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDown:
      return "down";
    case FaultKind::kProcessCrash:
      return "process-crash";
  }
  return "?";
}

FaultPlan::FaultPlan(std::uint64_t seed, FaultRates rates)
    : seed_(seed), rates_(rates) {}

void FaultPlan::script(std::uint64_t stream, std::size_t send_index,
                       FaultDecision decision) {
  scripted_[{stream, send_index}] = decision;
}

void FaultPlan::script_all_streams(std::size_t send_index,
                                   FaultDecision decision) {
  scripted_all_[send_index] = decision;
}

void FaultPlan::add_blackout(std::size_t from_send_index,
                             std::size_t to_send_index) {
  blackouts_.emplace_back(from_send_index, to_send_index);
}

void FaultPlan::script_crash(std::size_t round) {
  crash_rounds_.push_back(round);
}

bool FaultPlan::crash_at(std::size_t round) const {
  for (const std::size_t r : crash_rounds_) {
    if (r == round) return true;
  }
  return false;
}

FaultDecision FaultPlan::decide(std::uint64_t stream,
                                std::size_t send_index) const {
  const auto per_stream = scripted_.find({stream, send_index});
  if (per_stream != scripted_.end()) return per_stream->second;
  const auto all = scripted_all_.find(send_index);
  if (all != scripted_all_.end()) return all->second;
  for (const auto& [from, to] : blackouts_) {
    if (send_index >= from && send_index < to) {
      return {FaultKind::kDown, 0};
    }
  }
  return random_decision(stream, send_index);
}

FaultDecision FaultPlan::random_decision(std::uint64_t stream,
                                         std::size_t send_index) const {
  // One throwaway RNG per (stream, send) pair: the decision for any send
  // never depends on how many draws other sends consumed.
  stats::Rng rng(stats::hash_combine(stats::hash_combine(seed_, stream),
                                     static_cast<std::uint64_t>(send_index)));
  FaultDecision d;
  d.delay_us = rates_.base_delay_us;
  if (rates_.jitter_delay_us > 0) {
    d.delay_us += static_cast<std::uint64_t>(
        rng.uniform(0.0, static_cast<double>(rates_.jitter_delay_us)));
  }
  const double u = rng.uniform();
  double acc = rates_.drop;
  if (u < acc) {
    d.kind = FaultKind::kDrop;
    return d;
  }
  acc += rates_.duplicate;
  if (u < acc) {
    d.kind = FaultKind::kDuplicate;
    return d;
  }
  acc += rates_.reorder;
  if (u < acc) {
    d.kind = FaultKind::kReorder;
    return d;
  }
  acc += rates_.corrupt;
  if (u < acc) {
    d.kind = FaultKind::kCorrupt;
    return d;
  }
  return d;
}

}  // namespace uniloc::fault
