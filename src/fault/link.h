// FaultyLink: a svc::Link that injects a FaultPlan into the wire.
//
// Wraps any inner Link (normally a DirectLink over the server) and, for
// every send, consults plan->decide(stream, send_index):
//
//   kDrop       the frame never reaches the server; kDropped comes back
//               and the client pays its full timeout.
//   kDown       fail-fast kDown (blackout / connection refused).
//   kCorrupt    one magic byte is flipped before delivery, so the server
//               answers kMalformed -- corruption is *detected*, like a
//               checksum failure, and the client retransmits.
//   kDuplicate  the frame is delivered twice back to back; the session
//               strand processes both (the filter double-updates), the
//               client sees the first reply.
//   kReorder    delivery slips one slot: the client receives the cached
//               reply of its previous exchange and this exchange's reply
//               is cached for the next (stale-fix delivery under
//               stop-and-wait).
//   delay_us    added to the reply's simulated latency; a delay above the
//               client's timeout turns a healthy reply into a loss.
//
// send_index increments on every send() -- retries included -- so the
// fault sequence is a pure function of (plan, stream) regardless of
// worker count or sibling sessions. Injections are counted into
// FaultCounters and, with a registry, `fault.injected.*` counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/plan.h"
#include "svc/link.h"

namespace uniloc::obs {
class Counter;
class MetricsRegistry;
class SpanTracer;
}  // namespace uniloc::obs

namespace uniloc::fault {

struct FaultCounters {
  std::size_t sends{0};
  std::size_t drops{0};
  std::size_t duplicates{0};
  std::size_t reorders{0};
  std::size_t corruptions{0};
  std::size_t downs{0};
  std::uint64_t delay_us_total{0};

  std::size_t injected() const {
    return drops + duplicates + reorders + corruptions + downs;
  }
};

class FaultyLink : public svc::Link {
 public:
  /// `stream` keys the plan (svc uses the session id). The plan must
  /// outlive the link. With a tracer, every send emits a `link.send`
  /// span (category "link", adopting the caller's ambient TraceContext)
  /// noted with the injected fault kind -- so a trace shows exactly
  /// where the wire ate, bent, or delayed each frame.
  FaultyLink(std::unique_ptr<svc::Link> inner, const FaultPlan* plan,
             std::uint64_t stream, obs::MetricsRegistry* registry = nullptr,
             obs::SpanTracer* tracer = nullptr);

  std::future<svc::LinkReply> send(
      std::vector<std::uint8_t> request) override;

  const FaultCounters& counters() const { return counters_; }
  std::size_t send_index() const { return send_index_; }

 private:
  std::unique_ptr<svc::Link> inner_;
  const FaultPlan* plan_;
  std::uint64_t stream_;
  obs::SpanTracer* tracer_{nullptr};
  std::size_t send_index_{0};
  /// Reply bytes of the last completed exchange (reorder's stale slot).
  std::vector<std::uint8_t> prev_reply_;
  bool have_prev_{false};
  FaultCounters counters_;

  obs::Counter* m_drop_{nullptr};
  obs::Counter* m_duplicate_{nullptr};
  obs::Counter* m_reorder_{nullptr};
  obs::Counter* m_corrupt_{nullptr};
  obs::Counter* m_down_{nullptr};
  obs::Counter* m_delay_us_{nullptr};
};

}  // namespace uniloc::fault
