// Seeded fault-schedule generation: the property-test engine's seam into
// src/fault.
//
// A FaultPlan is deliberately opaque once built (decisions are hashed
// per send), so the generator works on an explicit PlanSpec first: the
// spec is what a reproducer serializes, what a shrinker minimizes field
// by field, and what build_plan() turns back into a live plan. The
// split keeps the contract of plan.h intact -- a generated plan is
// still a pure function of its spec, bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "fault/plan.h"

namespace uniloc::fault {

/// Everything a generated schedule may contain. One line of JSON in a
/// reproducer; every field independently shrinkable.
struct PlanSpec {
  /// Seed of the plan's random per-send layer (FaultPlan's own seed).
  std::uint64_t seed{0};
  FaultRates rates;
  /// Blackout windows over send indices [from, to).
  std::vector<std::pair<std::size_t, std::size_t>> blackouts;
  /// Rounds after which the server process dies and restores from its
  /// latest checkpoint (consumed by fault::CrashInjector).
  std::vector<std::size_t> crash_rounds;

  bool operator==(const PlanSpec&) const = default;
};

/// Bounds for generate_plan_spec. Probabilities are per feature, rates
/// are upper bounds for the uniform draws.
struct PlanLimits {
  double max_drop{0.20};
  double max_duplicate{0.06};
  double max_reorder{0.06};
  double max_corrupt{0.08};
  std::uint64_t max_base_delay_us{30'000};
  std::uint64_t max_jitter_delay_us{20'000};
  /// Length of the run in load-generator rounds; blackouts and crash
  /// rounds are placed inside it.
  std::size_t rounds{16};
  double p_blackout{0.35};
  std::size_t max_blackout_len{5};
  double p_crash{0.35};
  std::size_t max_crashes{2};
};

/// Expand `seed` into a schedule spec within `limits`. Pure: the same
/// (seed, limits) yield the same spec, independent of call order.
PlanSpec generate_plan_spec(std::uint64_t seed, const PlanLimits& limits);

/// Materialize a spec into a runnable plan.
FaultPlan build_plan(const PlanSpec& spec);

}  // namespace uniloc::fault
