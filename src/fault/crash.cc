#include "fault/crash.h"

#include <utility>

namespace uniloc::fault {

void CrashInjector::on_round(std::size_t round) {
  last_checkpoint_ = server_->snapshot();
  ++checkpoints_;
  if (!plan_->crash_at(round)) return;
  ++crashes_;
  server_->crash();
  if (!server_->restore(last_checkpoint_)) ++restore_failures_;
}

}  // namespace uniloc::fault
