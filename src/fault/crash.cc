#include "fault/crash.h"

#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "svc/delta.h"

namespace uniloc::fault {

void CrashInjector::on_round(std::size_t round) {
  last_checkpoint_ = server_->snapshot();
  ++checkpoints_;
  if (!plan_->crash_at(round)) return;
  ++crashes_;
  if (flight_ != nullptr) {
    obs::FlightEvent ev;
    ev.session_id = 0;  // the server itself, not any one session
    ev.epoch = round;
    ev.kind = obs::FlightKind::kCrash;
    ev.a = static_cast<std::int64_t>(crashes_);
    flight_->record(ev);
    if (!dump_dir_.empty()) {
      // Dump before crash(): the black box must survive the wreck.
      const std::string path = dump_dir_ + "/flight_crash_round" +
                               std::to_string(round) + ".jsonl";
      if (flight_->dump_to_file(path)) dumps_.push_back(path);
    }
  }
  server_->crash();
  if (!server_->restore(last_checkpoint_)) {
    ++restore_failures_;
    if (flight_ != nullptr && !dump_dir_.empty()) {
      const std::string path = dump_dir_ + "/flight_restore_mismatch_round" +
                               std::to_string(round) + ".jsonl";
      if (flight_->dump_to_file(path)) dumps_.push_back(path);
    }
  }
}

void ChainCrashInjector::on_round(std::size_t round) {
  const bool keyframe =
      chain_.empty() || since_keyframe_ >= keyframe_interval_;
  if (keyframe) {
    // A keyframe re-anchors the chain: everything older is superseded
    // (the on-disk analogue prunes the files).
    chain_.clear();
    since_keyframe_ = 0;
    ++keyframes_;
  }
  chain_.push_back(server_->snapshot_wave(keyframe));
  ++since_keyframe_;
  ++waves_;
  if (!plan_->crash_at(round)) return;
  ++crashes_;
  server_->crash();
  const svc::ChainCollapse collapsed = svc::collapse_chain(chain_);
  // Our own chain must collapse cleanly: a rejected wave here is a torn
  // write WE produced, which the differential pass must surface.
  if (!collapsed.ok || collapsed.waves_rejected != 0 ||
      !server_->restore(collapsed.snapshot)) {
    ++restore_failures_;
    return;
  }
  deltas_applied_ += collapsed.deltas_applied;
}

void ShardCrashInjector::on_round(std::size_t round) {
  router_->checkpoint_all();
  ++checkpoints_;
  if (!plan_->crash_at(round)) return;
  const std::size_t victim = crashes_ % router_->shard_count();
  ++crashes_;
  last_victim_ = victim;
  router_->crash_shard(victim);
  sessions_recovered_ += router_->recover_shard(victim);
  if (revive_) router_->revive_shard(victim);
}

}  // namespace uniloc::fault
