// Phone/server offloading session.
//
// Wires the pieces together the way the deployed system would run them:
// the phone side reduces the sensor frame to an UplinkFrame (running the
// PDR front-end locally, exactly the split of Sec. IV-C); the server side
// hands the payloads to UniLoc and replies with the fused coordinate.
// Byte counters on both directions feed the energy and response-time
// models with measured traffic instead of constants.
#pragma once

#include <cstddef>

#include "core/uniloc.h"
#include "offload/payload.h"
#include "sim/walker.h"

namespace uniloc::obs {
class Histogram;
class MetricsRegistry;
}  // namespace uniloc::obs

namespace uniloc::offload {

struct TrafficStats {
  /// Every byte that crossed the uplink, retransmissions included --
  /// this is what the radio (and the energy model) pays for.
  std::size_t uplink_bytes{0};
  std::size_t downlink_bytes{0};
  std::size_t epochs{0};
  /// Subset of uplink_bytes that was a resend of an already-transmitted
  /// frame (client retries after a timeout or a rejected request).
  std::size_t retransmitted_bytes{0};
  std::size_t retransmits{0};  ///< Resent frames.

  double uplink_bytes_per_epoch() const {
    return epochs > 0 ? static_cast<double>(uplink_bytes) /
                            static_cast<double>(epochs)
                      : 0.0;
  }

  double downlink_bytes_per_epoch() const {
    return epochs > 0 ? static_cast<double>(downlink_bytes) /
                            static_cast<double>(epochs)
                      : 0.0;
  }
};

/// Phone side: reduces raw frames to wire payloads. Owns the PDR
/// front-end (raw 50 Hz IMU never leaves the device).
class PhoneAgent {
 public:
  PhoneAgent() = default;

  void reset(double initial_heading);

  /// Reduce one sensor frame to its uplink payload.
  UplinkFrame reduce(const sim::SensorFrame& frame);

  /// Time reduce() into `offload.encode_us` (null detaches).
  void attach_metrics(obs::MetricsRegistry* registry);

 private:
  schemes::PdrFrontend frontend_;
  obs::Histogram* encode_us_{nullptr};
};

/// Server side: feeds the frame to UniLoc and encodes the reply.
/// (UniLoc's schemes consume the full SensorFrame here; the payloads are
/// the accounting boundary -- see DESIGN.md on this simplification.)
class ServerAgent {
 public:
  explicit ServerAgent(core::Uniloc* uniloc) : uniloc_(uniloc) {}

  DownlinkFrame handle(const sim::SensorFrame& frame,
                       core::EpochDecision* decision_out = nullptr);

  /// Time handle() (UniLoc update + reply encode) into
  /// `offload.serve_us` (null detaches).
  void attach_metrics(obs::MetricsRegistry* registry);

 private:
  core::Uniloc* uniloc_;
  obs::Histogram* serve_us_{nullptr};
};

/// Run a full offloaded walk and account the traffic. With a registry,
/// both agents are instrumented and the wire volume lands in the
/// `offload.uplink_bytes` / `offload.downlink_bytes` counters.
TrafficStats run_offloaded_walk(core::Uniloc& uniloc, sim::Walker& walker,
                                obs::MetricsRegistry* registry = nullptr);

}  // namespace uniloc::offload
