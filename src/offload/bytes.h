// Bounds-checked little-endian byte cursors.
//
// Every wire codec in the tree (offload payload encodings, svc frame
// protocol) goes through these two cursors. ByteReader never reads past
// the buffer: every get_* reports failure instead, so a truncated or
// hostile buffer can only produce a clean parse error, never UB. Checked
// by the malformed-input tests in tests/test_offload.cc and
// tests/test_svc.cc.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace uniloc::offload {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void put_f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes (snapshot codec name tags).
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  void put_bytes(const std::uint8_t* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Overwrite `width` bytes at `pos` (little-endian) -- for length
  /// fields written after the payload they describe.
  void patch_u32(std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  bool get_u8(std::uint8_t& v) { return get_le(v); }
  bool get_u16(std::uint16_t& v) { return get_le(v); }
  bool get_u32(std::uint32_t& v) { return get_le(v); }
  bool get_u64(std::uint64_t& v) { return get_le(v); }
  bool get_i32(std::int32_t& v) {
    std::uint32_t u;
    if (!get_le(u)) return false;
    v = static_cast<std::int32_t>(u);
    return true;
  }
  bool get_f64(double& v) {
    std::uint64_t u;
    if (!get_le(u)) return false;
    v = std::bit_cast<double>(u);
    return true;
  }
  /// Rejects any encoding other than 0/1 -- a corrupt flag byte must be a
  /// parse error, not a silently-true bool.
  bool get_bool(bool& v) {
    std::uint8_t u;
    if (!get_u8(u) || u > 1) return false;
    v = u != 0;
    return true;
  }
  /// Counterpart of put_string. `max_len` caps the declared length so a
  /// hostile prefix cannot force a giant allocation.
  bool get_string(std::string& v, std::size_t max_len) {
    std::uint32_t len;
    if (!get_u32(len) || len > max_len || len > remaining()) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }
  bool skip(std::size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

 private:
  template <typename T>
  bool get_le(T& v) {
    if (remaining() < sizeof(T)) return false;
    T out = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    v = out;
    pos_ += sizeof(T);
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace uniloc::offload
