#include "offload/session.h"

namespace uniloc::offload {

void PhoneAgent::reset(double initial_heading) {
  frontend_.reset(initial_heading);
}

UplinkFrame PhoneAgent::reduce(const sim::SensorFrame& frame) {
  UplinkFrame up;
  // IMU -> 4-byte walking model (the phone-side computation).
  const schemes::StepInference inf = frontend_.process(frame.imu);
  if (inf.steps > 0) {
    up.step = StepPayload::encode(
        inf.heading_rad, inf.step_length_m * static_cast<double>(inf.steps));
  }
  if (!frame.wifi.empty()) up.wifi = ScanPayload::encode(frame.wifi);
  if (!frame.cell.empty()) up.cell = ScanPayload::encode(frame.cell);
  if (frame.gps.has_value()) up.gps = GpsPayload::encode(*frame.gps);
  return up;
}

DownlinkFrame ServerAgent::handle(const sim::SensorFrame& frame,
                                  core::EpochDecision* decision_out) {
  const core::EpochDecision d = uniloc_->update(frame);
  if (decision_out != nullptr) *decision_out = d;
  return DownlinkFrame::encode(d.uniloc2);
}

TrafficStats run_offloaded_walk(core::Uniloc& uniloc, sim::Walker& walker) {
  PhoneAgent phone;
  ServerAgent server(&uniloc);
  phone.reset(walker.start_heading());
  uniloc.reset({walker.start_position(), walker.start_heading()});

  TrafficStats stats;
  while (!walker.done()) {
    const sim::SensorFrame frame = walker.step(uniloc.gps_enabled());
    const UplinkFrame up = phone.reduce(frame);
    stats.uplink_bytes += up.bytes();
    server.handle(frame);
    stats.downlink_bytes += DownlinkFrame::kBytes;
    ++stats.epochs;
  }
  return stats;
}

}  // namespace uniloc::offload
