#include "offload/session.h"

#include "obs/metrics.h"
#include "obs/timer.h"

namespace uniloc::offload {

void PhoneAgent::reset(double initial_heading) {
  frontend_.reset(initial_heading);
}

void PhoneAgent::attach_metrics(obs::MetricsRegistry* registry) {
  encode_us_ = registry != nullptr
                   ? &registry->histogram("offload.encode_us")
                   : nullptr;
}

UplinkFrame PhoneAgent::reduce(const sim::SensorFrame& frame) {
  obs::ScopedTimer timer(encode_us_);
  UplinkFrame up;
  // IMU -> 4-byte walking model (the phone-side computation).
  const schemes::StepInference inf = frontend_.process(frame.imu);
  if (inf.steps > 0) {
    up.step = StepPayload::encode(
        inf.heading_rad, inf.step_length_m * static_cast<double>(inf.steps));
  }
  if (!frame.wifi.empty()) up.wifi = ScanPayload::encode(frame.wifi);
  if (!frame.cell.empty()) up.cell = ScanPayload::encode(frame.cell);
  if (frame.gps.has_value()) up.gps = GpsPayload::encode(*frame.gps);
  return up;
}

void ServerAgent::attach_metrics(obs::MetricsRegistry* registry) {
  serve_us_ = registry != nullptr
                  ? &registry->histogram("offload.serve_us")
                  : nullptr;
}

DownlinkFrame ServerAgent::handle(const sim::SensorFrame& frame,
                                  core::EpochDecision* decision_out) {
  obs::ScopedTimer timer(serve_us_);
  const core::EpochDecision d = uniloc_->update(frame);
  if (decision_out != nullptr) *decision_out = d;
  return DownlinkFrame::encode(d.uniloc2);
}

TrafficStats run_offloaded_walk(core::Uniloc& uniloc, sim::Walker& walker,
                                obs::MetricsRegistry* registry) {
  PhoneAgent phone;
  ServerAgent server(&uniloc);
  phone.attach_metrics(registry);
  server.attach_metrics(registry);
  obs::Counter* up_bytes =
      registry != nullptr ? &registry->counter("offload.uplink_bytes")
                          : nullptr;
  obs::Counter* down_bytes =
      registry != nullptr ? &registry->counter("offload.downlink_bytes")
                          : nullptr;
  phone.reset(walker.start_heading());
  uniloc.reset({walker.start_position(), walker.start_heading()});

  TrafficStats stats;
  while (!walker.done()) {
    const sim::SensorFrame frame = walker.step(uniloc.gps_enabled());
    const UplinkFrame up = phone.reduce(frame);
    stats.uplink_bytes += up.bytes();
    server.handle(frame);
    stats.downlink_bytes += DownlinkFrame::kBytes;
    ++stats.epochs;
    if (up_bytes != nullptr) up_bytes->inc(up.bytes());
    if (down_bytes != nullptr) down_bytes->inc(DownlinkFrame::kBytes);
  }
  return stats;
}

}  // namespace uniloc::offload
