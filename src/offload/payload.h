// Offloading payloads (paper Sec. IV-C).
//
// The particle filters are too heavy for the phone ("the updating cannot
// be accomplished within 0.5 s on Google Nexus 5"), so raw sensing is
// reduced on the phone and only compact payloads travel to the server:
//
//   * the walking-model update -- moving direction + distance since the
//     last update -- "represented by four bytes and transmitted to the
//     server every 0.5 s";
//   * the WiFi / cellular scans (id + RSSI per audible transmitter);
//   * the GPS coordinate, only when the fix passes the validity gate.
//
// This module implements the actual wire encoding with explicit
// quantization, so the energy/latency models can count real bytes and the
// tests can bound the quantization error.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "offload/bytes.h"
#include "schemes/pdr_frontend.h"
#include "sim/gps_sim.h"
#include "sim/radio.h"

namespace uniloc::offload {

/// The four-byte walking-model update: heading quantized to 16 bits over
/// (-pi, pi], displacement quantized to 16 bits over [0, 4) m (sub-mm
/// resolution -- far below sensing error).
struct StepPayload {
  static constexpr double kMaxDistance = 4.0;

  std::uint16_t heading_q{0};
  std::uint16_t distance_q{0};

  static StepPayload encode(double heading_rad, double distance_m);
  double heading() const;
  double distance() const;

  static constexpr std::size_t kBytes = 4;
};

/// One scan entry on the wire: 2-byte transmitter id + 1-byte RSSI
/// (0.5 dB steps from -127.5 dBm), 3 bytes per audible transmitter plus a
/// 2-byte count header.
struct ScanPayload {
  std::vector<sim::ApReading> readings;

  static ScanPayload encode(const std::vector<sim::ApReading>& scan);
  std::size_t bytes() const { return 2 + 3 * readings.size(); }
};

/// GPS coordinate: two 4-byte fixed-point degrees (1e-7 deg ~ 1 cm) plus
/// HDOP and satellite count bytes.
struct GpsPayload {
  geo::LatLon pos;
  double hdop{0.0};
  int num_satellites{0};

  static GpsPayload encode(const sim::GpsFix& fix);
  static constexpr std::size_t kBytes = 10;
};

/// Everything one epoch uploads; mirrors what the energy model charges.
struct UplinkFrame {
  std::optional<StepPayload> step;
  std::optional<ScanPayload> wifi;
  std::optional<ScanPayload> cell;
  std::optional<GpsPayload> gps;

  std::size_t bytes() const;
};

/// The server's reply: the fused coordinate (two 4-byte fixed-point map
/// meters, cm resolution).
struct DownlinkFrame {
  geo::Vec2 position;

  static constexpr std::size_t kBytes = 8;
  static DownlinkFrame encode(geo::Vec2 p);
  geo::Vec2 decoded() const;
};

// ----------------------------------------------------------------- codecs
//
// Actual byte-level wire encodings of the frames above, used by the svc
// wire protocol. Every parse_* is hardened: a truncated or corrupt buffer
// yields std::nullopt (the reader never runs past the end), so the server
// survives hostile input. serialize(UplinkFrame) emits exactly
// kUplinkOverheadBytes + UplinkFrame::bytes() bytes (a one-byte section
// bitmap in front of the documented payload sizes).

/// RSSI quantized to the wire's 0.5 dB steps from -127.5 dBm (one byte).
std::uint8_t quantize_rssi(double rssi_dbm);
double dequantize_rssi(std::uint8_t q);

/// Section bitmap prefix of a serialized UplinkFrame.
inline constexpr std::size_t kUplinkOverheadBytes = 1;

void write_uplink(const UplinkFrame& frame, ByteWriter& w);
std::vector<std::uint8_t> serialize(const UplinkFrame& frame);
/// Consumes one uplink record from `r`; nullopt on truncation/corruption
/// (reader position is then unspecified).
std::optional<UplinkFrame> parse_uplink(ByteReader& r);
std::optional<UplinkFrame> parse_uplink(const std::vector<std::uint8_t>& buf);

void write_downlink(const DownlinkFrame& frame, ByteWriter& w);
std::vector<std::uint8_t> serialize(const DownlinkFrame& frame);
std::optional<DownlinkFrame> parse_downlink(ByteReader& r);
std::optional<DownlinkFrame> parse_downlink(
    const std::vector<std::uint8_t>& buf);

}  // namespace uniloc::offload
