// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Guards the checkpoint wave files: a wave's trailing CRC covers every
// preceding byte, so a torn write, a bit flip, or a truncated tail is
// detected before any record is parsed. Table-driven, one byte per step;
// the checksum is a few percent of the serialization cost and runs off
// the worker strands (on the committer thread or a restore path).
#pragma once

#include <array>
#include <cstdint>

namespace uniloc::offload {

namespace detail {
inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// CRC-32 of `n` bytes. `seed` chains partial updates:
/// crc32(b, n) == crc32(b + k, n - k, crc32(b, k)).
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                           std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::kCrc32Table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace uniloc::offload
