#include "offload/payload.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace uniloc::offload {

StepPayload StepPayload::encode(double heading_rad, double distance_m) {
  StepPayload p;
  const double wrapped = geo::wrap_angle(heading_rad);
  // (-pi, pi] -> [0, 65535].
  p.heading_q = static_cast<std::uint16_t>(std::lround(
      (wrapped + std::numbers::pi) / (2.0 * std::numbers::pi) * 65535.0));
  const double clamped = std::clamp(distance_m, 0.0, kMaxDistance);
  p.distance_q = static_cast<std::uint16_t>(
      std::lround(clamped / kMaxDistance * 65535.0));
  return p;
}

double StepPayload::heading() const {
  return geo::wrap_angle(static_cast<double>(heading_q) / 65535.0 *
                             (2.0 * std::numbers::pi) -
                         std::numbers::pi);
}

double StepPayload::distance() const {
  return static_cast<double>(distance_q) / 65535.0 * kMaxDistance;
}

ScanPayload ScanPayload::encode(const std::vector<sim::ApReading>& scan) {
  ScanPayload p;
  p.readings.reserve(scan.size());
  for (const sim::ApReading& r : scan) {
    sim::ApReading q = r;
    // 0.5 dB steps from -127.5 dBm, one byte.
    const double steps =
        std::clamp(std::round((r.rssi_dbm + 127.5) * 2.0), 0.0, 255.0);
    q.rssi_dbm = steps / 2.0 - 127.5;
    p.readings.push_back(q);
  }
  return p;
}

GpsPayload GpsPayload::encode(const sim::GpsFix& fix) {
  GpsPayload p;
  // 1e-7 degree fixed point.
  p.pos.lat_deg = std::round(fix.pos.lat_deg * 1e7) / 1e7;
  p.pos.lon_deg = std::round(fix.pos.lon_deg * 1e7) / 1e7;
  p.hdop = std::round(fix.hdop * 10.0) / 10.0;  // one decimal
  p.num_satellites = fix.num_satellites;
  return p;
}

std::size_t UplinkFrame::bytes() const {
  std::size_t total = 0;
  if (step.has_value()) total += StepPayload::kBytes;
  if (wifi.has_value()) total += wifi->bytes();
  if (cell.has_value()) total += cell->bytes();
  if (gps.has_value()) total += GpsPayload::kBytes;
  return total;
}

DownlinkFrame DownlinkFrame::encode(geo::Vec2 p) {
  DownlinkFrame f;
  f.position = {std::round(p.x * 100.0) / 100.0,
                std::round(p.y * 100.0) / 100.0};
  return f;
}

geo::Vec2 DownlinkFrame::decoded() const { return position; }

}  // namespace uniloc::offload
