#include "offload/payload.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace uniloc::offload {

StepPayload StepPayload::encode(double heading_rad, double distance_m) {
  StepPayload p;
  const double wrapped = geo::wrap_angle(heading_rad);
  // (-pi, pi] -> [0, 65535].
  p.heading_q = static_cast<std::uint16_t>(std::lround(
      (wrapped + std::numbers::pi) / (2.0 * std::numbers::pi) * 65535.0));
  const double clamped = std::clamp(distance_m, 0.0, kMaxDistance);
  p.distance_q = static_cast<std::uint16_t>(
      std::lround(clamped / kMaxDistance * 65535.0));
  return p;
}

double StepPayload::heading() const {
  return geo::wrap_angle(static_cast<double>(heading_q) / 65535.0 *
                             (2.0 * std::numbers::pi) -
                         std::numbers::pi);
}

double StepPayload::distance() const {
  return static_cast<double>(distance_q) / 65535.0 * kMaxDistance;
}

ScanPayload ScanPayload::encode(const std::vector<sim::ApReading>& scan) {
  ScanPayload p;
  p.readings.reserve(scan.size());
  for (const sim::ApReading& r : scan) {
    sim::ApReading q = r;
    // 0.5 dB steps from -127.5 dBm, one byte.
    const double steps =
        std::clamp(std::round((r.rssi_dbm + 127.5) * 2.0), 0.0, 255.0);
    q.rssi_dbm = steps / 2.0 - 127.5;
    p.readings.push_back(q);
  }
  return p;
}

GpsPayload GpsPayload::encode(const sim::GpsFix& fix) {
  GpsPayload p;
  // 1e-7 degree fixed point.
  p.pos.lat_deg = std::round(fix.pos.lat_deg * 1e7) / 1e7;
  p.pos.lon_deg = std::round(fix.pos.lon_deg * 1e7) / 1e7;
  p.hdop = std::round(fix.hdop * 10.0) / 10.0;  // one decimal
  p.num_satellites = fix.num_satellites;
  return p;
}

std::size_t UplinkFrame::bytes() const {
  std::size_t total = 0;
  if (step.has_value()) total += StepPayload::kBytes;
  if (wifi.has_value()) total += wifi->bytes();
  if (cell.has_value()) total += cell->bytes();
  if (gps.has_value()) total += GpsPayload::kBytes;
  return total;
}

DownlinkFrame DownlinkFrame::encode(geo::Vec2 p) {
  DownlinkFrame f;
  f.position = {std::round(p.x * 100.0) / 100.0,
                std::round(p.y * 100.0) / 100.0};
  return f;
}

geo::Vec2 DownlinkFrame::decoded() const { return position; }

// ----------------------------------------------------------------- codecs

namespace {

// Section bitmap of a serialized UplinkFrame.
constexpr std::uint8_t kHasStep = 1 << 0;
constexpr std::uint8_t kHasWifi = 1 << 1;
constexpr std::uint8_t kHasCell = 1 << 2;
constexpr std::uint8_t kHasGps = 1 << 3;
constexpr std::uint8_t kKnownSections = kHasStep | kHasWifi | kHasCell |
                                        kHasGps;

void write_scan(const ScanPayload& scan, ByteWriter& w) {
  w.put_u16(static_cast<std::uint16_t>(scan.readings.size()));
  for (const sim::ApReading& r : scan.readings) {
    w.put_u16(static_cast<std::uint16_t>(r.id));
    w.put_u8(quantize_rssi(r.rssi_dbm));
  }
}

std::optional<ScanPayload> parse_scan(ByteReader& r) {
  std::uint16_t count;
  if (!r.get_u16(count)) return std::nullopt;
  // 3 bytes per reading must still be in the buffer -- reject a count that
  // promises more than the frame carries before allocating anything.
  if (r.remaining() < static_cast<std::size_t>(count) * 3) return std::nullopt;
  ScanPayload scan;
  scan.readings.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    std::uint16_t id;
    std::uint8_t q;
    if (!r.get_u16(id) || !r.get_u8(q)) return std::nullopt;
    scan.readings.push_back({static_cast<int>(id), dequantize_rssi(q)});
  }
  return scan;
}

}  // namespace

std::uint8_t quantize_rssi(double rssi_dbm) {
  return static_cast<std::uint8_t>(
      std::clamp(std::round((rssi_dbm + 127.5) * 2.0), 0.0, 255.0));
}

double dequantize_rssi(std::uint8_t q) {
  return static_cast<double>(q) / 2.0 - 127.5;
}

void write_uplink(const UplinkFrame& frame, ByteWriter& w) {
  std::uint8_t sections = 0;
  if (frame.step.has_value()) sections |= kHasStep;
  if (frame.wifi.has_value()) sections |= kHasWifi;
  if (frame.cell.has_value()) sections |= kHasCell;
  if (frame.gps.has_value()) sections |= kHasGps;
  w.put_u8(sections);
  if (frame.step.has_value()) {
    w.put_u16(frame.step->heading_q);
    w.put_u16(frame.step->distance_q);
  }
  if (frame.wifi.has_value()) write_scan(*frame.wifi, w);
  if (frame.cell.has_value()) write_scan(*frame.cell, w);
  if (frame.gps.has_value()) {
    w.put_i32(static_cast<std::int32_t>(
        std::lround(frame.gps->pos.lat_deg * 1e7)));
    w.put_i32(static_cast<std::int32_t>(
        std::lround(frame.gps->pos.lon_deg * 1e7)));
    w.put_u8(static_cast<std::uint8_t>(
        std::clamp(std::round(frame.gps->hdop * 10.0), 0.0, 255.0)));
    w.put_u8(static_cast<std::uint8_t>(
        std::clamp(frame.gps->num_satellites, 0, 255)));
  }
}

std::vector<std::uint8_t> serialize(const UplinkFrame& frame) {
  ByteWriter w;
  write_uplink(frame, w);
  return w.take();
}

std::optional<UplinkFrame> parse_uplink(ByteReader& r) {
  std::uint8_t sections;
  if (!r.get_u8(sections)) return std::nullopt;
  if ((sections & ~kKnownSections) != 0) return std::nullopt;
  UplinkFrame frame;
  if (sections & kHasStep) {
    StepPayload step;
    if (!r.get_u16(step.heading_q) || !r.get_u16(step.distance_q)) {
      return std::nullopt;
    }
    frame.step = step;
  }
  if (sections & kHasWifi) {
    frame.wifi = parse_scan(r);
    if (!frame.wifi.has_value()) return std::nullopt;
  }
  if (sections & kHasCell) {
    frame.cell = parse_scan(r);
    if (!frame.cell.has_value()) return std::nullopt;
  }
  if (sections & kHasGps) {
    std::int32_t lat, lon;
    std::uint8_t hdop_q, sats;
    if (!r.get_i32(lat) || !r.get_i32(lon) || !r.get_u8(hdop_q) ||
        !r.get_u8(sats)) {
      return std::nullopt;
    }
    GpsPayload gps;
    gps.pos.lat_deg = static_cast<double>(lat) / 1e7;
    gps.pos.lon_deg = static_cast<double>(lon) / 1e7;
    gps.hdop = static_cast<double>(hdop_q) / 10.0;
    gps.num_satellites = sats;
    frame.gps = gps;
  }
  return frame;
}

std::optional<UplinkFrame> parse_uplink(const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  std::optional<UplinkFrame> frame = parse_uplink(r);
  if (frame.has_value() && r.remaining() != 0) return std::nullopt;
  return frame;
}

void write_downlink(const DownlinkFrame& frame, ByteWriter& w) {
  w.put_i32(static_cast<std::int32_t>(std::lround(frame.position.x * 100.0)));
  w.put_i32(static_cast<std::int32_t>(std::lround(frame.position.y * 100.0)));
}

std::vector<std::uint8_t> serialize(const DownlinkFrame& frame) {
  ByteWriter w;
  write_downlink(frame, w);
  return w.take();
}

std::optional<DownlinkFrame> parse_downlink(ByteReader& r) {
  std::int32_t x_cm, y_cm;
  if (!r.get_i32(x_cm) || !r.get_i32(y_cm)) return std::nullopt;
  DownlinkFrame frame;
  frame.position = {static_cast<double>(x_cm) / 100.0,
                    static_cast<double>(y_cm) / 100.0};
  return frame;
}

std::optional<DownlinkFrame> parse_downlink(
    const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  std::optional<DownlinkFrame> frame = parse_downlink(r);
  if (frame.has_value() && r.remaining() != 0) return std::nullopt;
  return frame;
}

}  // namespace uniloc::offload
