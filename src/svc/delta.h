// Delta checkpoint waves and chain collapse.
//
// A 1M-session server cannot serialize its whole population every
// checkpoint interval: at ~29 KB of lossless state per session a full
// snapshot is tens of gigabytes per wave. The persistence engine instead
// writes a *chain* of waves:
//
//   keyframe (every session)  +  delta* (only sessions that advanced)
//
// Each wave is one self-validating file:
//
//   u32  magic   'UCKW'
//   u8   format version (1)
//   u8   kind    (0 keyframe, 1 delta)
//   u8   payload version (svc/checkpoint.h: 1 = lossless f64,
//                         2 = quantized fixed-point)
//   u64  seq          (monotonic wave number, strictly increasing)
//   u64  parent seq   (the previous wave in the chain; 0 for a keyframe)
//   u64  accepted_since_scan (eviction-cadence counter at wave time)
//   u32  member count, then that many u64 session ids, ascending --
//        the FULL live population at wave time. Departures need no
//        tombstone records: an id absent from the membership of a later
//        wave is simply dropped during collapse.
//   u32  record count, then per dirty session (ascending id):
//        SessionRecordHeader + core::Uniloc payload
//   u32  CRC-32 of every preceding byte
//
// The CRC makes torn writes self-evident: a wave that fails any check is
// rejected as a unit. Collapse then applies the longest valid prefix of
// deltas whose parent links are contiguous -- a corrupt, truncated or
// missing middle delta cuts the chain there (loudly: the reject count is
// reported), never silently interleaving stale and fresh state. See
// DESIGN.md section 17.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "offload/bytes.h"
#include "svc/checkpoint.h"
#include "svc/fsio.h"

namespace uniloc::svc {

/// 'UCKW' little-endian ("Uniloc ChecKpoint Wave").
inline constexpr std::uint32_t kWaveMagic = 0x574B4355u;
inline constexpr std::uint8_t kWaveFormatVersion = 1;
inline constexpr std::uint8_t kWaveKeyframe = 0;
inline constexpr std::uint8_t kWaveDelta = 1;

/// The fixed fields of one wave (everything but membership + records).
struct WaveHeader {
  std::uint8_t kind{kWaveKeyframe};
  std::uint8_t payload_version{kSnapshotVersion};
  std::uint64_t seq{0};
  std::uint64_t parent_seq{0};
  std::uint64_t accepted_since_scan{0};
};

/// Streaming wave encoder. Records are written in place (no per-session
/// staging buffer): begin_session returns the writer positioned after
/// the record header, end_session patches the payload length.
class WaveBuilder {
 public:
  WaveBuilder(const WaveHeader& header,
              const std::vector<std::uint64_t>& members);

  /// Start one session record; append the Uniloc payload to the returned
  /// writer, then call end_session. Sessions must be added in ascending
  /// id order (decode enforces it).
  offload::ByteWriter& begin_session(std::uint64_t id,
                                     std::uint64_t last_active_us,
                                     std::uint64_t epochs_served);
  void end_session();

  /// Patch the record count, append the CRC, and take the bytes. The
  /// builder is spent afterwards.
  std::vector<std::uint8_t> finish();

 private:
  offload::ByteWriter w_;
  std::size_t count_pos_{0};
  std::size_t len_pos_{0};
  std::size_t payload_start_{0};
  std::uint32_t record_count_{0};
  bool in_session_{false};
};

/// Decoded view of one wave. Record payloads point into the decoded
/// buffer -- the buffer must outlive the view.
struct WaveView {
  WaveHeader header;
  std::vector<std::uint64_t> members;
  struct Record {
    SessionRecordHeader h;
    const std::uint8_t* payload{nullptr};
  };
  std::vector<Record> records;
};

/// Validate and decode one wave: magic, format version, payload version,
/// CRC over the whole body, ascending membership and record ids, record
/// framing, and the session-count caps from checkpoint.h. False leaves
/// `out` unspecified; hostile input can only fail cleanly.
bool decode_wave(const std::vector<std::uint8_t>& bytes, WaveView& out);

/// Result of collapsing a chain of raw wave buffers into one snapshot.
struct ChainCollapse {
  /// False when no wave in the input decoded as a valid keyframe.
  bool ok{false};
  /// Deltas applied on top of the chosen keyframe (longest valid,
  /// contiguous, version-consistent prefix).
  std::size_t deltas_applied{0};
  /// Waves present but not applied: corrupt, truncated, out of
  /// sequence, or cut off by an earlier broken link. Non-zero means the
  /// chain was damaged -- the caller should log it and force a keyframe.
  std::size_t waves_rejected{0};
  /// seq of the last applied wave.
  std::uint64_t seq{0};
  /// The collapsed state as a standard UCKP snapshot (svc/checkpoint.h)
  /// carrying the chain's payload version; feed it straight to
  /// LocalizationServer::restore.
  std::vector<std::uint8_t> snapshot;
};

/// Collapse `waves` (ascending seq order, e.g. from load_wave_files) by
/// starting at the NEWEST valid keyframe and overlaying each delta whose
/// parent link matches the previous wave. Membership lists prune
/// departed sessions; later records replace earlier ones.
ChainCollapse collapse_chain(
    const std::vector<std::vector<std::uint8_t>>& waves);

/// Wave file naming: zero-padded seq so lexicographic order is seq
/// order ("wave-00000000000000000042.bin").
std::string wave_file_name(std::uint64_t seq);

/// Publish one wave file into `dir` (atomic_publish discipline).
bool write_wave_file(const std::string& dir, std::uint64_t seq,
                     const std::vector<std::uint8_t>& bytes,
                     const FsOps& ops = {});

/// Read every wave-*.bin in `dir`, ascending seq. Unreadable or
/// oversized files are skipped (collapse_chain rejects damage that
/// parses). Returns empty when the directory is missing.
std::vector<std::vector<std::uint8_t>> load_wave_files(
    const std::string& dir);

/// Delete wave files with seq strictly below `keep_from` -- called after
/// a keyframe at `keep_from` is durable, so the chain prefix it replaced
/// can be reclaimed. Returns the number removed.
std::size_t prune_wave_files(const std::string& dir, std::uint64_t keep_from,
                             const FsOps& ops = {});

}  // namespace uniloc::svc
