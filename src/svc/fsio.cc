#include "svc/fsio.h"

#include <cstdio>

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace uniloc::svc {

namespace {

bool real_write_bytes(const std::string& path, const std::uint8_t* data,
                      std::size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = n == 0 || std::fwrite(data, 1, n, f) == n;
  ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
  // The data must be on disk before the caller renames the file into
  // place, otherwise a crash could publish a renamed-but-empty file.
  ok = ::fsync(::fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool real_rename(const std::string& from, const std::string& to) {
  return std::rename(from.c_str(), to.c_str()) == 0;
}

bool real_fsync_dir(const std::string& dir) {
#ifdef _WIN32
  (void)dir;
  return true;  // no directory fds; rename durability is best-effort
#else
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#endif
}

bool real_remove(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

}  // namespace

FsOps FsOps::real() {
  FsOps ops;
  ops.write_bytes = real_write_bytes;
  ops.rename_file = real_rename;
  ops.fsync_dir = real_fsync_dir;
  ops.remove_file = real_remove;
  return ops;
}

FsOps FsOps::resolve(const FsOps& ops) {
  FsOps out = ops;
  if (!out.write_bytes) out.write_bytes = real_write_bytes;
  if (!out.rename_file) out.rename_file = real_rename;
  if (!out.fsync_dir) out.fsync_dir = real_fsync_dir;
  if (!out.remove_file) out.remove_file = real_remove;
  return out;
}

bool publish_no_dirsync(const FsOps& ops, const std::string& dir,
                        const std::string& name,
                        const std::vector<std::uint8_t>& bytes) {
  const FsOps fs = FsOps::resolve(ops);
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string target = dir + "/" + name;
  if (!fs.write_bytes(tmp, bytes.data(), bytes.size())) {
    fs.remove_file(tmp);
    return false;
  }
  if (!fs.rename_file(tmp, target)) {
    fs.remove_file(tmp);
    return false;
  }
  return true;
}

bool atomic_publish(const FsOps& ops, const std::string& dir,
                    const std::string& name,
                    const std::vector<std::uint8_t>& bytes) {
  const FsOps fs = FsOps::resolve(ops);
  if (!publish_no_dirsync(fs, dir, name, bytes)) return false;
  // Durability of the *publish*: the rename is only crash-safe once the
  // directory entry itself is synced (satellite bugfix; the torn-write
  // tests crash the sequence right here and assert the loss is detected).
  return fs.fsync_dir(dir);
}

}  // namespace uniloc::svc
