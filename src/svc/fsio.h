// Injectable filesystem operations for the durable checkpoint path.
//
// Every byte the persistence engine publishes goes through exactly four
// primitive operations, in this order:
//
//   1. write_bytes(tmp, data)   temp file in the target directory:
//                               open, write, flush, fsync, close
//   2. rename_file(tmp, final)  atomic publish (same filesystem)
//   3. fsync_dir(dir)           make the rename itself durable -- without
//                               this a crash after rename can lose the
//                               directory entry and the "published"
//                               checkpoint silently vanishes (the PR-5
//                               write path had exactly this bug)
//
// plus remove_file for temp-file cleanup and chain pruning. FsOps makes
// each primitive injectable so the torn-write tests can crash the
// sequence between any two steps (and model metadata loss by undoing an
// un-fsynced rename) without a real power cut. Production code uses
// FsOps::real(); the default-constructed struct has null hooks and is
// invalid -- helpers taking an FsOps treat null hooks as "use the real
// implementation" via resolve().
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace uniloc::svc {

struct FsOps {
  /// Create/truncate `path`, write `n` bytes, flush and fsync the file
  /// descriptor, close. False on any failure (partial file may remain).
  std::function<bool(const std::string& path, const std::uint8_t* data,
                     std::size_t n)>
      write_bytes;
  /// Atomic rename within one filesystem. False on failure.
  std::function<bool(const std::string& from, const std::string& to)>
      rename_file;
  /// fsync the directory fd so preceding renames in it are durable.
  /// False on failure (no-op true on platforms without directory fds).
  std::function<bool(const std::string& dir)> fsync_dir;
  /// Best-effort unlink (cleanup; failure is not an error for callers).
  std::function<bool(const std::string& path)> remove_file;

  /// The real POSIX/stdio implementation of all four primitives.
  static FsOps real();

  /// `ops` with every null hook replaced by the real implementation, so
  /// tests can inject only the primitive they want to sabotage.
  static FsOps resolve(const FsOps& ops);
};

/// Atomically publish `bytes` as `dir`/`name`: write_bytes to
/// `dir`/`name`.tmp, rename over the target, fsync the directory. On any
/// failure the temp file is removed and false returned; the previous
/// `dir`/`name` (if any) is never damaged.
bool atomic_publish(const FsOps& ops, const std::string& dir,
                    const std::string& name,
                    const std::vector<std::uint8_t>& bytes);

/// Steps 1+2 of atomic_publish without the directory fsync: the group
/// committer (svc/committer.h) batches several publishes into one
/// fsync_dir per directory, which is where the wave-commit throughput
/// comes from. A caller using this directly MUST follow up with
/// ops.fsync_dir(dir) before reporting the publish durable.
bool publish_no_dirsync(const FsOps& ops, const std::string& dir,
                        const std::string& name,
                        const std::vector<std::uint8_t>& bytes);

}  // namespace uniloc::svc
