// svc wire protocol: length-prefixed binary frames.
//
// Every request and reply of the localization service is one frame:
//
//   u32  length      bytes that follow this field (= 14 + payload size)
//   u32  magic       0x434F4C55 ("ULOC", little-endian)
//   u8   version     kVersion
//   u8   type        FrameType
//   u64  session_id
//   ...  payload     type-specific (offload payload codecs inside)
//
// decode_frame() is the hostile-input boundary of the server: bad magic,
// unknown version/type, an inconsistent or oversized length field, and
// truncation each map to a distinct WireError, and the parser never reads
// past the supplied buffer (all access goes through offload::ByteReader).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/vec2.h"
#include "offload/bytes.h"

namespace uniloc::svc {

inline constexpr std::uint32_t kMagic = 0x434F4C55;  // "ULOC"
inline constexpr std::uint8_t kVersion = 1;
/// u32 length + u32 magic + u8 version + u8 type + u64 session id.
inline constexpr std::size_t kHeaderBytes = 4 + 4 + 1 + 1 + 8;
/// Sanity cap on the length field: no legitimate frame comes close.
inline constexpr std::size_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,  ///< Open a session; payload = HelloPayload.
  kEpoch = 2,  ///< One localization epoch; payload = epoch request.
  kBye = 3,    ///< Close a session; empty payload.
  kStatus = 4,  ///< Admin: dump server health; payload = one
                ///< StatusFormat byte. Reply payload = UTF-8 text.
  kMigrate = 5,  ///< Shard-to-shard session transfer; payload = one
                 ///< versioned session record (svc/checkpoint.h): the
                 ///< snapshot header followed by the session's serialized
                 ///< state. Reply = empty kReply ack, or kError
                 ///< (kMalformed / kSessionExists) -- the sender keeps
                 ///< ownership of the session until the ack arrives.
  kReply = 0x81,  ///< Server reply; payload = DownlinkFrame bytes (kEpoch)
                  ///< or empty (kHello / kBye acks).
  kError = 0xFF,  ///< Server rejection; payload = one ErrorCode byte.
};

/// Requested encoding of a kStatus dump.
enum class StatusFormat : std::uint8_t {
  kJson = 0,        ///< One JSON document (statusz schema, DESIGN.md §13).
  kPrometheus = 1,  ///< Prometheus text exposition format 0.0.4.
};

enum class WireError : std::uint8_t {
  kNone = 0,
  kTruncated,   ///< Buffer shorter than the header or the declared length.
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadLength,   ///< Length field below minimum or above kMaxPayloadBytes.
};

const char* wire_error_name(WireError e);

/// Application-level rejection codes carried by kError replies.
enum class ErrorCode : std::uint8_t {
  kMalformed = 1,       ///< Frame or payload failed to parse.
  kUnknownSession = 2,  ///< kEpoch/kBye for a session id never opened
                        ///< (or already evicted).
  kBackpressure = 3,    ///< The session's inbox is full; retry later.
  kShuttingDown = 4,
  kSessionExists = 5,   ///< kHello for an id that is already live.
};

struct Frame {
  FrameType type{FrameType::kError};
  std::uint64_t session_id{0};
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> encode_frame(const Frame& frame);

struct DecodeResult {
  std::optional<Frame> frame;       ///< Set iff error == kNone.
  WireError error{WireError::kNone};
  std::size_t consumed{0};          ///< Whole-frame size on success.
};

/// Parse one frame from the front of [data, data+size).
DecodeResult decode_frame(const std::uint8_t* data, std::size_t size);
DecodeResult decode_frame(const std::vector<std::uint8_t>& buf);

/// kHello payload: the walk's start condition, quantized like the
/// downlink (cm position, microradian heading) -- 12 bytes.
struct HelloPayload {
  geo::Vec2 start;
  double heading{0.0};

  static constexpr std::size_t kBytes = 12;
};

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello);
std::optional<HelloPayload> parse_hello(const std::vector<std::uint8_t>& buf);

/// kStatus payload codecs (session_id is ignored on status frames).
std::vector<std::uint8_t> encode_status_request(StatusFormat format);
std::optional<StatusFormat> parse_status_request(
    const std::vector<std::uint8_t>& buf);

/// Convenience builders for server replies.
Frame make_error_frame(std::uint64_t session_id, ErrorCode code);
/// The code carried by a kError frame; nullopt for other types or an
/// empty payload.
std::optional<ErrorCode> error_code(const Frame& frame);

}  // namespace uniloc::svc
