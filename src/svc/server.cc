#include "svc/server.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timer.h"
#include "offload/bytes.h"
#include "offload/payload.h"
#include "svc/checkpoint.h"
#include "svc/delta.h"
#include "svc/epoch_codec.h"

namespace uniloc::svc {

LocalizationServer::LocalizationServer(ServerConfig cfg,
                                       UnilocFactory factory,
                                       obs::MetricsRegistry* registry)
    : cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      registry_(registry),
      sessions_(cfg_.stripes),
      pool_(ThreadPool::Config{cfg_.workers, cfg_.pool_queue_capacity}),
      batcher_(pool_, cfg_.epoch_batch,
               static_cast<std::size_t>(std::max(1, cfg_.workers))) {
  if (registry != nullptr) {
    // Instruments are resolved once here, before any worker can observe;
    // the registry map itself is never touched from a worker thread.
    ins_.live_sessions = &registry->gauge("svc.live_sessions");
    ins_.queue_depth = &registry->gauge("svc.queue_depth");
    ins_.accepted = &registry->counter("svc.accepted");
    ins_.rejected = &registry->counter("svc.rejected");
    ins_.evicted = &registry->counter("svc.evicted");
    ins_.malformed = &registry->counter("svc.malformed");
    ins_.status_requests = &registry->counter("svc.status_requests");
    ins_.request_us = &registry->histogram("svc.request_us");
    ins_.parse_us = &registry->histogram("svc.parse_us");
    ins_.locate_us = &registry->histogram("svc.locate_us");
    ins_.net_us = &registry->histogram("svc.net_us");
    ins_.perf_cache_hits = &registry->counter("perf.cache_hits");
    ins_.perf_cache_misses = &registry->counter("perf.cache_misses");
    ins_.perf_scratch_bytes = &registry->gauge("perf.scratch_bytes");
  }
}

LocalizationServer::~LocalizationServer() { shutdown(); }

std::uint64_t LocalizationServer::now_us() const {
  if (cfg_.now_us) return cfg_.now_us();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Counters and gauges are internally atomic (obs/metrics.h), so the
// count_* paths are lock-free; ins_.mu protects only the histograms.
void LocalizationServer::count_malformed() {
  if (ins_.malformed != nullptr) ins_.malformed->inc();
}

void LocalizationServer::count_accepted() {
  if (ins_.accepted != nullptr) ins_.accepted->inc();
  if (ins_.queue_depth != nullptr) {
    ins_.queue_depth->set(static_cast<double>(pool_.queue_depth()));
  }
}

void LocalizationServer::note_live_sessions() {
  if (ins_.live_sessions != nullptr) {
    ins_.live_sessions->set(static_cast<double>(sessions_.size()));
  }
}

std::future<std::vector<std::uint8_t>> LocalizationServer::reply_now(
    const Frame& reply) {
  std::promise<std::vector<std::uint8_t>> promise;
  promise.set_value(encode_frame(reply));
  return promise.get_future();
}

std::future<std::vector<std::uint8_t>> LocalizationServer::submit(
    std::vector<std::uint8_t> request) {
  bool scan_now = false;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (stopping_) {
      return reply_now(make_error_frame(0, ErrorCode::kShuttingDown));
    }
    if (++accepted_since_scan_ >= cfg_.evict_scan_period) {
      accepted_since_scan_ = 0;
      scan_now = true;
    }
  }
  if (scan_now) evict_idle();
  if (cfg_.checkpoint_period_us > 0) maybe_checkpoint();

  DecodeResult decoded = decode_frame(request);
  if (!decoded.frame.has_value()) {
    count_malformed();
    return reply_now(make_error_frame(0, ErrorCode::kMalformed));
  }

  Frame frame = std::move(*decoded.frame);
  const Promise promise =
      std::make_shared<std::promise<std::vector<std::uint8_t>>>();
  std::future<std::vector<std::uint8_t>> future = promise->get_future();

  switch (frame.type) {
    case FrameType::kHello:
      handle_hello(frame, promise);
      break;
    case FrameType::kEpoch:
      handle_epoch(std::move(frame), promise);
      break;
    case FrameType::kBye:
      handle_bye(frame, promise);
      break;
    case FrameType::kStatus:
      handle_status(frame, promise);
      break;
    case FrameType::kMigrate:
      handle_migrate(frame, promise);
      break;
    case FrameType::kReply:
    case FrameType::kError:
      // Server-to-client types arriving at the server are client bugs.
      count_malformed();
      promise->set_value(
          encode_frame(make_error_frame(frame.session_id,
                                        ErrorCode::kMalformed)));
      break;
  }
  return future;
}

void LocalizationServer::handle_hello(const Frame& frame,
                                      const Promise& promise) {
  const std::optional<HelloPayload> hello = parse_hello(frame.payload);
  if (!hello.has_value()) {
    count_malformed();
    promise->set_value(encode_frame(
        make_error_frame(frame.session_id, ErrorCode::kMalformed)));
    return;
  }
  std::unique_ptr<core::Uniloc> uniloc = factory_(frame.session_id);
  uniloc->reset({hello->start, hello->heading});
  const SessionPtr session =
      sessions_.create(frame.session_id, std::move(uniloc), now_us());
  if (session == nullptr) {
    if (ins_.rejected != nullptr) ins_.rejected->inc();
    promise->set_value(encode_frame(
        make_error_frame(frame.session_id, ErrorCode::kSessionExists)));
    return;
  }
  // Session-held ensembles emit core-layer spans (per-scheme localize,
  // fusion) into the server's tracer.
  session->uniloc().attach_tracer(cfg_.tracer);
  if (cfg_.flight != nullptr) {
    obs::FlightEvent ev;
    ev.session_id = frame.session_id;
    ev.kind = obs::FlightKind::kHello;
    cfg_.flight->record(ev);
  }
  count_accepted();
  note_live_sessions();
  Frame reply;
  reply.type = FrameType::kReply;
  reply.session_id = frame.session_id;
  promise->set_value(encode_frame(reply));
}

void LocalizationServer::handle_epoch(Frame frame, const Promise& promise) {
  const SessionPtr session = sessions_.find(frame.session_id);
  if (session == nullptr) {
    if (ins_.rejected != nullptr) ins_.rejected->inc();
    promise->set_value(encode_frame(
        make_error_frame(frame.session_id, ErrorCode::kUnknownSession)));
    return;
  }

  const obs::Stopwatch accepted_at;
  const std::uint64_t session_id = frame.session_id;

  // Open the epoch's span tree on the submitting thread: the root
  // adopts the caller's ambient context (the client/link span when one
  // is set), the queue-wait child runs until the strand picks the task
  // up in run_epoch. Handles are values, so they cross to the worker
  // inside the lambda.
  obs::SpanHandle root, queue_wait;
  if (cfg_.tracer != nullptr) {
    root = cfg_.tracer->begin("svc.epoch", "svc", 0, 0, session_id);
    queue_wait = cfg_.tracer->begin("svc.queue_wait", "svc", root.trace_id,
                                    root.span_id, session_id);
  }

  auto payload =
      std::make_shared<std::vector<std::uint8_t>>(std::move(frame.payload));
  Session* raw = session.get();
  const Session::Enqueue verdict = session->enqueue(
      [this, raw, payload, session_id, promise, accepted_at, root,
       queue_wait] {
        run_epoch(*raw, *payload, session_id, promise, accepted_at, root,
                  queue_wait);
      },
      cfg_.inbox_capacity, now_us());

  if (verdict == Session::Enqueue::kBackpressure) {
    if (cfg_.tracer != nullptr) {
      cfg_.tracer->end(queue_wait, "backpressure");
      cfg_.tracer->end(root, "backpressure");
    }
    if (ins_.rejected != nullptr) ins_.rejected->inc();
    if (cfg_.flight != nullptr) {
      obs::FlightEvent ev;
      ev.session_id = session_id;
      ev.epoch = raw->epochs_served();
      ev.kind = obs::FlightKind::kBackpressure;
      cfg_.flight->record(ev);
    }
    promise->set_value(encode_frame(
        make_error_frame(session_id, ErrorCode::kBackpressure)));
    return;
  }
  count_accepted();
  if (verdict == Session::Enqueue::kStartDrain) {
    if (cfg_.epoch_batch > 1) {
      // Batched dispatch: coalesce this wakeup with other drainable
      // sessions so one runner task serves the burst (svc/batcher.h).
      batcher_.submit(session);
    } else if (!pool_.post([session] { session->drain(); })) {
      // Pool is stopping: drain inline so no promise is left dangling.
      session->drain();
    }
  }
}

void LocalizationServer::handle_bye(const Frame& frame,
                                    const Promise& promise) {
  if (!sessions_.erase(frame.session_id)) {
    if (ins_.rejected != nullptr) ins_.rejected->inc();
    promise->set_value(encode_frame(
        make_error_frame(frame.session_id, ErrorCode::kUnknownSession)));
    return;
  }
  count_accepted();
  note_live_sessions();
  Frame reply;
  reply.type = FrameType::kReply;
  reply.session_id = frame.session_id;
  promise->set_value(encode_frame(reply));
}

void LocalizationServer::run_epoch(Session& session,
                                   const std::vector<std::uint8_t>& payload,
                                   std::uint64_t session_id,
                                   const Promise& promise,
                                   obs::Stopwatch accepted_at,
                                   obs::SpanHandle root,
                                   obs::SpanHandle queue_wait) {
  obs::SpanTracer* tracer = cfg_.tracer;
  if (tracer != nullptr) tracer->end(queue_wait);

  obs::Stopwatch stage;
  obs::SpanHandle decode_span;
  if (tracer != nullptr) {
    decode_span = tracer->begin("svc.decode", "svc", root.trace_id,
                                root.span_id, session_id);
  }
  const std::optional<EpochRequest> req = parse_epoch(payload);
  const double parse_us = stage.elapsed_us();
  if (!req.has_value()) {
    if (tracer != nullptr) {
      tracer->end(decode_span, "malformed");
      tracer->end(root, "malformed");
    }
    count_malformed();
    if (cfg_.slo != nullptr) {
      cfg_.slo->observe(accepted_at.elapsed_us(), true);
    }
    if (cfg_.flight != nullptr) {
      obs::FlightEvent ev;
      ev.session_id = session_id;
      ev.epoch = session.epochs_served();
      ev.kind = obs::FlightKind::kError;
      cfg_.flight->record(ev);
    }
    promise->set_value(encode_frame(
        make_error_frame(session_id, ErrorCode::kMalformed)));
    return;
  }
  if (tracer != nullptr) tracer->end(decode_span);

  stage.restart();
  // We are on the session strand here, so the scratch arena and the perf
  // cursor are single-writer even with workers > 0.
  core::EpochDecision ref_decision;
  const core::EpochDecision* decision_ptr;
  {
    obs::SpanHandle locate_span;
    std::optional<obs::TraceScope> scope;
    if (tracer != nullptr) {
      locate_span = tracer->begin("svc.locate", "svc", root.trace_id,
                                  root.span_id, session_id);
      // Core-layer spans (per-scheme localize, fusion) adopt this
      // ambient context inside update()/update_fast().
      scope.emplace(obs::TraceContext{root.trace_id, locate_span.span_id,
                                      session_id});
    }
    if (cfg_.use_fast_path) {
      decision_ptr = &session.uniloc().update_fast(req->frame,
                                                   session.scratch());
    } else {
      ref_decision = session.uniloc().update(req->frame);
      decision_ptr = &ref_decision;
    }
    if (tracer != nullptr) tracer->end(locate_span);
  }
  const core::EpochDecision& decision = *decision_ptr;
  const double locate_us = stage.elapsed_us();

  std::uint64_t hits_delta = 0, misses_delta = 0, scratch_bytes = 0;
  if (cfg_.use_fast_path) {
    const std::uint64_t hits =
        session.uniloc().scheme_cache_hits() + session.scratch().cache_hits();
    const std::uint64_t misses = session.uniloc().scheme_cache_misses() +
                                 session.scratch().cache_misses();
    Session::PerfCursor& cursor = session.perf_cursor();
    hits_delta = hits - cursor.cache_hits;
    misses_delta = misses - cursor.cache_misses;
    cursor.cache_hits = hits;
    cursor.cache_misses = misses;
    scratch_bytes = session.scratch().bytes();
  }

  stage.restart();
  {
    obs::SpanHandle net_span;
    if (tracer != nullptr) {
      net_span = tracer->begin("svc.net", "svc", root.trace_id,
                               root.span_id, session_id);
    }
    if (cfg_.simulated_network.count() > 0) {
      std::this_thread::sleep_for(cfg_.simulated_network);
    }
    if (tracer != nullptr) tracer->end(net_span);
  }
  const double net_us = stage.elapsed_us();

  obs::SpanHandle encode_span;
  if (tracer != nullptr) {
    encode_span = tracer->begin("svc.encode", "svc", root.trace_id,
                                root.span_id, session_id);
  }
  Frame reply;
  reply.type = FrameType::kReply;
  reply.session_id = session_id;
  EpochReply epoch_reply;
  epoch_reply.downlink = offload::DownlinkFrame::encode(decision.uniloc2);
  epoch_reply.gps_enable_next = decision.gps_enable_next;
  reply.payload = encode_epoch_reply(epoch_reply);
  promise->set_value(encode_frame(reply));
  if (tracer != nullptr) {
    tracer->end(encode_span);
    tracer->end(root);
  }

  const double request_us = accepted_at.elapsed_us();
  if (cfg_.slo != nullptr) cfg_.slo->observe(request_us, false);
  if (cfg_.flight != nullptr) {
    obs::FlightEvent ev;
    ev.session_id = session_id;
    ev.epoch = session.epochs_served();
    ev.kind = obs::FlightKind::kServerEpoch;
    ev.a = decision.selected;
    ev.b = decision.indoor ? 1 : 0;
    ev.x = decision.tau;
    cfg_.flight->record(ev);
  }

  if (cfg_.on_epoch) cfg_.on_epoch(session_id, decision);

  if (cfg_.use_fast_path) {
    if (ins_.perf_cache_hits != nullptr && hits_delta > 0) {
      ins_.perf_cache_hits->inc(hits_delta);
    }
    if (ins_.perf_cache_misses != nullptr && misses_delta > 0) {
      ins_.perf_cache_misses->inc(misses_delta);
    }
    if (ins_.perf_scratch_bytes != nullptr) {
      ins_.perf_scratch_bytes->set(static_cast<double>(scratch_bytes));
    }
  }

  std::lock_guard<std::mutex> lock(ins_.mu);
  if (ins_.parse_us != nullptr) ins_.parse_us->observe(parse_us);
  if (ins_.locate_us != nullptr) ins_.locate_us->observe(locate_us);
  if (ins_.net_us != nullptr) ins_.net_us->observe(net_us);
  if (ins_.request_us != nullptr) ins_.request_us->observe(request_us);
}

void LocalizationServer::handle_status(const Frame& frame,
                                       const Promise& promise) {
  const std::optional<StatusFormat> format =
      parse_status_request(frame.payload);
  if (!format.has_value()) {
    count_malformed();
    promise->set_value(encode_frame(
        make_error_frame(frame.session_id, ErrorCode::kMalformed)));
    return;
  }
  if (ins_.status_requests != nullptr) ins_.status_requests->inc();
  const ServerStatus st = status();
  const std::string text = *format == StatusFormat::kJson
                               ? status_json(st, registry_, cfg_.slo)
                               : status_prometheus(st, registry_, cfg_.slo);
  Frame reply;
  reply.type = FrameType::kReply;
  reply.session_id = frame.session_id;
  reply.payload.assign(text.begin(), text.end());
  promise->set_value(encode_frame(reply));
}

ServerStatus LocalizationServer::status() {
  ServerStatus st;
  st.now_us = now_us();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    st.stopping = stopping_;
  }
  st.workers = pool_.workers();
  st.pool_queue_depth = pool_.queue_depth();
  st.pool_active_workers = pool_.active_workers();
  st.pool_tasks_run = pool_.tasks_run();
  st.pool_task_exceptions = pool_.task_exceptions();
  for (const SessionPtr& s : sessions_.all()) {
    SessionStatus ss;
    ss.id = s->id();
    const std::uint64_t last = s->last_active_us();
    ss.age_us = st.now_us > last ? st.now_us - last : 0;
    ss.epochs_served = s->epochs_served();
    ss.queue_depth = s->queue_depth();
    st.sessions.push_back(ss);
  }
  st.live_sessions = st.sessions.size();
  return st;
}

void LocalizationServer::maybe_checkpoint() {
  const std::uint64_t now = now_us();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (now < last_checkpoint_us_ + cfg_.checkpoint_period_us) return;
    last_checkpoint_us_ = now;
  }
  if (!cfg_.checkpoint_dir.empty()) {
    checkpoint_wave_now();
    return;
  }
  const std::vector<std::uint8_t> bytes = snapshot();
  if (cfg_.on_checkpoint) cfg_.on_checkpoint(bytes);
}

void LocalizationServer::checkpoint_wave_now() {
  bool keyframe;
  {
    std::lock_guard<std::mutex> lock(chain_mu_);
    keyframe = force_keyframe_ ||
               waves_since_keyframe_ + 1 >= std::max<std::size_t>(
                                                1, cfg_.keyframe_interval);
  }
  std::vector<std::uint8_t> bytes = snapshot_wave(keyframe);
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(chain_mu_);
    seq = wave_seq_;
  }
  const std::string dir = cfg_.checkpoint_dir;
  // On success a keyframe makes every older wave reclaimable; on failure
  // the chain must re-anchor (the next delta would otherwise link onto a
  // wave that may not be durable).
  auto settle = [this, dir, seq, keyframe](bool ok) {
    std::size_t pruned = 0;
    if (ok && keyframe) pruned = prune_wave_files(dir, seq);
    (void)pruned;
    if (!ok) {
      std::lock_guard<std::mutex> lock(chain_mu_);
      force_keyframe_ = true;
      ++ckpt_stats_.publish_failures;
    }
  };
  if (cfg_.committer != nullptr) {
    GroupCommitter::Request req;
    req.dir = dir;
    req.name = wave_file_name(seq);
    req.bytes = std::move(bytes);
    req.done = settle;
    if (cfg_.committer->enqueue(std::move(req))) return;
    // Committer backpressure: a checkpoint is never silently dropped --
    // fall back to the synchronous path (req is untouched on rejection)
    // and record the stall.
    {
      std::lock_guard<std::mutex> lock(chain_mu_);
      ++ckpt_stats_.sync_fallbacks;
    }
    settle(write_wave_file(dir, seq, req.bytes));
    return;
  }
  settle(write_wave_file(dir, seq, bytes));
}

std::vector<std::uint8_t> LocalizationServer::snapshot_wave(bool keyframe) {
  WaveHeader h;
  h.kind = keyframe ? kWaveKeyframe : kWaveDelta;
  h.payload_version =
      cfg_.snapshot_quantize ? kSnapshotVersionQuantized : kSnapshotVersion;
  {
    std::lock_guard<std::mutex> lock(chain_mu_);
    h.seq = ++wave_seq_;
    h.parent_seq = keyframe ? 0 : h.seq - 1;
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    h.accepted_since_scan = static_cast<std::uint64_t>(accepted_since_scan_);
  }
  const std::vector<SessionPtr> sessions = sessions_.all();  // id-sorted
  std::vector<std::uint64_t> members;
  members.reserve(sessions.size());
  for (const SessionPtr& s : sessions) members.push_back(s->id());
  WaveBuilder builder(h, members);
  std::uint64_t records = 0;
  for (const SessionPtr& s : sessions) {
    // The dirty check races benignly with live traffic: a session that
    // turns dirty after the check stays dirty and is caught by the next
    // wave; one that looks dirty but didn't change just costs bytes.
    if (!keyframe && !s->dirty()) continue;
    s->run_exclusive([&] {
      offload::ByteWriter& w = builder.begin_session(
          s->id(), s->last_active_us(),
          static_cast<std::uint64_t>(s->epochs_served()));
      s->uniloc().snapshot_into(w, cfg_.snapshot_quantize);
      builder.end_session();
      // Inside the exclusive section: the clean mark covers exactly the
      // state this wave serialized.
      s->mark_clean();
    });
    ++records;
  }
  std::vector<std::uint8_t> bytes = builder.finish();
  {
    std::lock_guard<std::mutex> lock(chain_mu_);
    ++ckpt_stats_.waves;
    if (keyframe) {
      ++ckpt_stats_.keyframes;
      ckpt_stats_.keyframe_records += records;
      ckpt_stats_.keyframe_bytes += bytes.size();
      waves_since_keyframe_ = 0;
      force_keyframe_ = false;
    } else {
      ckpt_stats_.delta_records += records;
      ckpt_stats_.delta_bytes += bytes.size();
      ++waves_since_keyframe_;
    }
  }
  return bytes;
}

LocalizationServer::ChainRestoreResult LocalizationServer::restore_chain() {
  ChainRestoreResult out;
  if (cfg_.checkpoint_dir.empty()) return out;
  const ChainCollapse collapsed =
      collapse_chain(load_wave_files(cfg_.checkpoint_dir));
  out.deltas_applied = collapsed.deltas_applied;
  out.waves_rejected = collapsed.waves_rejected;
  if (!collapsed.ok) return out;
  out.ok = restore(collapsed.snapshot);
  out.seq = collapsed.seq;
  if (out.ok) {
    std::lock_guard<std::mutex> lock(chain_mu_);
    // Continue the sequence past every file on disk (including rejected
    // tail waves, whose seqs must not be reused) and re-anchor: restored
    // sessions all start dirty, and the next wave keyframes them.
    wave_seq_ = std::max(wave_seq_, collapsed.seq + collapsed.waves_rejected);
    force_keyframe_ = true;
  }
  return out;
}

LocalizationServer::CheckpointStats LocalizationServer::checkpoint_stats()
    const {
  std::lock_guard<std::mutex> lock(chain_mu_);
  return ckpt_stats_;
}

std::vector<std::uint8_t> LocalizationServer::snapshot() {
  offload::ByteWriter w;
  write_snapshot_header(w);
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    w.put_u64(static_cast<std::uint64_t>(accepted_since_scan_));
  }
  const std::vector<SessionPtr> sessions = sessions_.all();
  w.put_u32(static_cast<std::uint32_t>(sessions.size()));
  for (const SessionPtr& s : sessions) {
    // Serialize while *holding* the strand, not after a transient idle()
    // check: with live traffic a worker could start the next epoch
    // between the check and the read. run_exclusive claims the strand
    // like a drain would, so the session's state is frozen at an epoch
    // boundary for exactly the duration of its record.
    s->run_exclusive([&] {
      w.put_u64(s->id());
      w.put_u64(s->last_active_us());
      w.put_u64(static_cast<std::uint64_t>(s->epochs_served()));
      const std::size_t len_pos = w.size();
      w.put_u32(0);
      const std::size_t start = w.size();
      s->uniloc().snapshot_into(w);
      w.patch_u32(len_pos, static_cast<std::uint32_t>(w.size() - start));
    });
  }
  return w.take();
}

bool LocalizationServer::restore(const std::vector<std::uint8_t>& snapshot) {
  offload::ByteReader r(snapshot.data(), snapshot.size());
  std::uint8_t version;
  if (!check_snapshot_header(r, version)) return false;
  const bool quantized = version == kSnapshotVersionQuantized;
  std::uint64_t accepted_since_scan;
  std::uint32_t count;
  if (!r.get_u64(accepted_since_scan) || !r.get_u32(count) ||
      count > kMaxSnapshotSessions) {
    return false;
  }

  // The restore replaces the whole population; a failure partway leaves
  // an empty server (the caller's recovery story is "retry or re-hello"),
  // never a half-restored mix of old and new sessions.
  sessions_.clear();
  bool ok = true;
  for (std::uint32_t i = 0; i < count && ok; ++i) {
    SessionRecordHeader rec;
    if (!read_session_record_header(r, rec)) {
      ok = false;
      break;
    }
    // Rebuild through the factory (same per-session seeds as the hello
    // path); restore_from then overwrites every field reset() would have
    // initialized, so no reset() call is needed -- or wanted, since it
    // would consume RNG draws the original session never made.
    std::unique_ptr<core::Uniloc> uniloc = factory_(rec.id);
    uniloc->attach_tracer(cfg_.tracer);
    const std::size_t before = r.pos();
    if (!uniloc->restore_from(r, quantized) ||
        r.pos() - before != rec.payload_len) {
      ok = false;
      break;
    }
    const SessionPtr session = sessions_.create(rec.id, std::move(uniloc), 0);
    if (session == nullptr) {  // duplicate id in a corrupt snapshot
      ok = false;
      break;
    }
    session->restore_bookkeeping(
        rec.last_active_us, static_cast<std::size_t>(rec.epochs_served));
  }
  if (ok && r.remaining() != 0) ok = false;
  if (!ok) {
    sessions_.clear();
    note_live_sessions();
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    accepted_since_scan_ = static_cast<std::size_t>(accepted_since_scan);
  }
  if (cfg_.flight != nullptr) {
    for (const SessionPtr& s : sessions_.all()) {
      obs::FlightEvent ev;
      ev.session_id = s->id();
      ev.epoch = s->epochs_served();
      ev.kind = obs::FlightKind::kRestore;
      cfg_.flight->record(ev);
    }
  }
  note_live_sessions();
  return true;
}

std::optional<std::vector<std::uint8_t>> LocalizationServer::extract_session(
    std::uint64_t id) {
  const SessionPtr session = sessions_.find(id);
  if (session == nullptr) return std::nullopt;
  // Pin first, then quiesce: between the drain finishing and the erase
  // below, a TTL scan must not evict the session out from under the
  // serialization (the eviction-vs-migration race the shard tests pin).
  session->set_pinned(true);
  while (!session->idle()) std::this_thread::yield();

  offload::ByteWriter w;
  write_snapshot_header(w);
  w.put_u64(session->id());
  w.put_u64(session->last_active_us());
  w.put_u64(static_cast<std::uint64_t>(session->epochs_served()));
  const std::size_t len_pos = w.size();
  w.put_u32(0);
  const std::size_t start = w.size();
  session->uniloc().snapshot_into(w);
  w.patch_u32(len_pos, static_cast<std::uint32_t>(w.size() - start));

  sessions_.erase(id);
  note_live_sessions();
  std::vector<std::uint8_t> payload = w.take();
  if (cfg_.flight != nullptr) {
    obs::FlightEvent ev;
    ev.session_id = id;
    ev.epoch = session->epochs_served();
    ev.kind = obs::FlightKind::kMigrateOut;
    ev.a = static_cast<std::int64_t>(payload.size());
    cfg_.flight->record(ev);
  }
  return payload;
}

std::optional<ErrorCode> LocalizationServer::adopt_session(
    const std::vector<std::uint8_t>& payload, std::uint64_t expected_id) {
  offload::ByteReader r(payload.data(), payload.size());
  // Live migration always ships the lossless v1 codec, but recovery from
  // a quantized delta chain splits a v2 snapshot into kMigrate payloads,
  // so adoption accepts either version.
  std::uint8_t version;
  if (!check_snapshot_header(r, version)) return ErrorCode::kMalformed;
  const bool quantized = version == kSnapshotVersionQuantized;
  SessionRecordHeader rec;
  if (!read_session_record_header(r, rec)) return ErrorCode::kMalformed;
  // The record's embedded id must match the frame's routing id: a payload
  // smuggling a different session under a routed id is hostile input.
  if (rec.id != expected_id) return ErrorCode::kMalformed;

  // Same rebuild discipline as restore(): factory + restore_from, no
  // reset() (it would consume RNG draws the original session never made).
  std::unique_ptr<core::Uniloc> uniloc = factory_(rec.id);
  uniloc->attach_tracer(cfg_.tracer);
  const std::size_t before = r.pos();
  if (!uniloc->restore_from(r, quantized) ||
      r.pos() - before != rec.payload_len || r.remaining() != 0) {
    return ErrorCode::kMalformed;
  }
  const SessionPtr session = sessions_.create(rec.id, std::move(uniloc), 0);
  if (session == nullptr) return ErrorCode::kSessionExists;
  session->restore_bookkeeping(rec.last_active_us,
                               static_cast<std::size_t>(rec.epochs_served));
  note_live_sessions();
  if (cfg_.flight != nullptr) {
    obs::FlightEvent ev;
    ev.session_id = rec.id;
    ev.epoch = rec.epochs_served;
    ev.kind = obs::FlightKind::kMigrateIn;
    ev.a = static_cast<std::int64_t>(payload.size());
    cfg_.flight->record(ev);
  }
  return std::nullopt;
}

void LocalizationServer::handle_migrate(const Frame& frame,
                                        const Promise& promise) {
  const std::optional<ErrorCode> err =
      adopt_session(frame.payload, frame.session_id);
  if (err.has_value()) {
    if (*err == ErrorCode::kMalformed) {
      count_malformed();
    } else if (ins_.rejected != nullptr) {
      ins_.rejected->inc();
    }
    promise->set_value(
        encode_frame(make_error_frame(frame.session_id, *err)));
    return;
  }
  count_accepted();
  Frame reply;
  reply.type = FrameType::kReply;
  reply.session_id = frame.session_id;
  promise->set_value(encode_frame(reply));
}

void LocalizationServer::crash() {
  sessions_.clear();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    accepted_since_scan_ = 0;
    last_checkpoint_us_ = 0;
  }
  note_live_sessions();
}

std::size_t LocalizationServer::evict_idle() {
  std::vector<std::uint64_t> evicted_ids;
  const std::size_t evicted = sessions_.evict_idle(
      now_us(), static_cast<std::uint64_t>(cfg_.idle_ttl_s * 1e6),
      cfg_.on_evict ? &evicted_ids : nullptr);
  if (evicted > 0) {
    {
      std::lock_guard<std::mutex> lock(ins_.mu);
      if (ins_.evicted != nullptr) ins_.evicted->inc(evicted);
    }
    note_live_sessions();
    // Propagate departures to placement layers (e.g. the shard router's
    // affinity overrides) after the stripe locks are released.
    for (const std::uint64_t id : evicted_ids) cfg_.on_evict(id);
  }
  return evicted;
}

void LocalizationServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  pool_.shutdown();
}

}  // namespace uniloc::svc
