#include "svc/thread_pool.h"

#include <algorithm>

namespace uniloc::svc {

ThreadPool::ThreadPool(Config cfg) : cfg_(cfg) {
  threads_.reserve(static_cast<std::size_t>(std::max(cfg_.workers, 0)));
  for (int i = 0; i < cfg_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::run_task(const std::function<void()>& task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_;
  }
  bool threw = false;
  try {
    task();
  } catch (...) {
    threw = true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  --active_;
  ++tasks_run_;
  if (threw) ++task_exceptions_;
}

bool ThreadPool::post(std::function<void()> task) {
  if (cfg_.workers <= 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return false;
    }
    run_task(task);
    return true;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [this] {
      return stopping_ || queue_.size() < cfg_.queue_capacity;
    });
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_ready_.notify_one();
  return true;
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_ready_.notify_all();
  cv_space_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    cv_space_.notify_one();
    run_task(task);
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::active_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::uint64_t ThreadPool::tasks_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_run_;
}

std::uint64_t ThreadPool::task_exceptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return task_exceptions_;
}

}  // namespace uniloc::svc
