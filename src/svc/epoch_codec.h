// kEpoch payload codec.
//
// An epoch request has two sections:
//
//   u16  uplink_len
//   ...  uplink      offload::serialize(UplinkFrame) -- the bytes a real
//                    phone would transmit (quantized step/scans/GPS)
//   ...  sidecar     simulation sidecar: raw IMU, ambient, landmarks,
//                    ground truth, epoch time, GPS duty state
//
// The uplink section is the deployment-accurate wire payload and is what
// the traffic counters charge (plus frame overhead); see wire_bytes().
// The sidecar exists because the server-side UniLoc core consumes the
// full SensorFrame (the same accounting-boundary simplification
// offload::ServerAgent documents) and because the load generator needs
// ground truth echoed back for error measurement. A real deployment would
// send only the uplink section. Scans and GPS in the reconstructed frame
// come from the *uplink* section -- the server localizes from the
// quantized values that actually crossed the wire, not from the pristine
// simulator output.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "offload/payload.h"
#include "sim/sensor_frame.h"

namespace uniloc::svc {

struct EpochRequest {
  offload::UplinkFrame uplink;
  sim::SensorFrame frame;  ///< Reconstructed server-side view.
};

/// Bytes of the uplink length prefix (charged as framing overhead).
inline constexpr std::size_t kEpochUplinkPrefixBytes = 2;

std::vector<std::uint8_t> encode_epoch(const offload::UplinkFrame& uplink,
                                       const sim::SensorFrame& frame);

/// nullopt on truncation/corruption of either section.
std::optional<EpochRequest> parse_epoch(const std::vector<std::uint8_t>& buf);

/// Deployment-real wire bytes of an epoch request carrying `uplink`:
/// frame header + uplink length prefix + serialized uplink (the sidecar
/// is harness-only and not charged).
std::size_t epoch_wire_bytes(const offload::UplinkFrame& uplink);

/// kReply payload to an epoch: the fused coordinate plus the GPS
/// duty-cycle decision for the phone's next epoch (the controller runs
/// server-side; the phone must be told whether to power the receiver).
struct EpochReply {
  offload::DownlinkFrame downlink;
  bool gps_enable_next{true};

  static constexpr std::size_t kBytes = offload::DownlinkFrame::kBytes + 1;
};

std::vector<std::uint8_t> encode_epoch_reply(const EpochReply& reply);
std::optional<EpochReply> parse_epoch_reply(
    const std::vector<std::uint8_t>& buf);

/// Deployment-real wire bytes of the server's kReply to an epoch.
std::size_t reply_wire_bytes();

}  // namespace uniloc::svc
