#include "svc/batcher.h"

#include <algorithm>
#include <utility>

namespace uniloc::svc {

EpochBatcher::EpochBatcher(ThreadPool& pool, std::size_t max_batch,
                           std::size_t max_runners)
    : pool_(pool),
      max_batch_(max_batch),
      max_runners_(std::max<std::size_t>(1, max_runners)) {}

void EpochBatcher::submit(SessionPtr session) {
  bool spawn = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fifo_.push_back(std::move(session));
    if (runners_ < max_runners_) {
      ++runners_;
      spawn = true;
    }
  }
  if (spawn) {
    // Inline mode (or a stopping pool) runs the batch loop synchronously
    // right here -- same code path, deterministic order.
    if (!pool_.post([this] { run_batches(); })) run_batches();
  }
}

std::size_t EpochBatcher::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fifo_.size() - head_;
}

void EpochBatcher::run_batches() {
  for (;;) {
    std::size_t drained = 0;
    for (;;) {
      SessionPtr session;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (head_ == fifo_.size()) {
          // Compact (keeps capacity: no steady-state allocation) and
          // retire. The emptiness check and the runner decrement happen
          // under one lock hold, so a concurrent submit either saw our
          // slot still occupied (and its session is in the FIFO we just
          // observed) or spawns a fresh runner for itself.
          fifo_.clear();
          head_ = 0;
          --runners_;
          return;
        }
        if (max_batch_ > 0 && drained >= max_batch_) break;
        session = std::move(fifo_[head_]);
        ++head_;
      }
      session->drain();
      ++drained;
    }
    // Batch quota spent with work left: yield the worker so other pool
    // tasks interleave, keeping our runner slot (it transfers to the
    // reposted task). A stopping pool refuses the task; loop around with
    // a fresh quota so every accepted epoch still runs.
    if (pool_.post([this] { run_batches(); })) return;
  }
}

}  // namespace uniloc::svc
