#include "svc/delta.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <system_error>

#include "offload/crc32.h"

namespace uniloc::svc {

WaveBuilder::WaveBuilder(const WaveHeader& header,
                         const std::vector<std::uint64_t>& members) {
  w_.put_u32(kWaveMagic);
  w_.put_u8(kWaveFormatVersion);
  w_.put_u8(header.kind);
  w_.put_u8(header.payload_version);
  w_.put_u64(header.seq);
  w_.put_u64(header.parent_seq);
  w_.put_u64(header.accepted_since_scan);
  w_.put_u32(static_cast<std::uint32_t>(members.size()));
  for (const std::uint64_t id : members) w_.put_u64(id);
  count_pos_ = w_.size();
  w_.put_u32(0);  // record count, patched by finish()
}

offload::ByteWriter& WaveBuilder::begin_session(std::uint64_t id,
                                                std::uint64_t last_active_us,
                                                std::uint64_t epochs_served) {
  assert(!in_session_);
  w_.put_u64(id);
  w_.put_u64(last_active_us);
  w_.put_u64(epochs_served);
  len_pos_ = w_.size();
  w_.put_u32(0);  // payload length, patched by end_session()
  payload_start_ = w_.size();
  in_session_ = true;
  return w_;
}

void WaveBuilder::end_session() {
  assert(in_session_);
  w_.patch_u32(len_pos_,
               static_cast<std::uint32_t>(w_.size() - payload_start_));
  ++record_count_;
  in_session_ = false;
}

std::vector<std::uint8_t> WaveBuilder::finish() {
  assert(!in_session_);
  w_.patch_u32(count_pos_, record_count_);
  const std::vector<std::uint8_t>& body = w_.bytes();
  w_.put_u32(offload::crc32(body.data(), body.size()));
  return w_.take();
}

bool decode_wave(const std::vector<std::uint8_t>& bytes, WaveView& out) {
  // Fixed prefix (25 bytes) + two u32 counts + trailing CRC is the
  // smallest possible wave.
  if (bytes.size() < 25 + 4 + 4 + 4) return false;
  const std::size_t body_len = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(bytes[body_len + i]) << (8 * i);
  }
  // CRC first: everything after this line may assume the bytes are the
  // bytes the builder wrote (modulo a hostile-but-consistent file, which
  // the structural checks below still reject).
  if (offload::crc32(bytes.data(), body_len) != stored_crc) return false;

  offload::ByteReader r(bytes.data(), body_len);
  std::uint32_t magic;
  std::uint8_t format_version;
  if (!r.get_u32(magic) || magic != kWaveMagic) return false;
  if (!r.get_u8(format_version) || format_version != kWaveFormatVersion) {
    return false;
  }
  WaveHeader h;
  if (!r.get_u8(h.kind) || (h.kind != kWaveKeyframe && h.kind != kWaveDelta)) {
    return false;
  }
  if (!r.get_u8(h.payload_version) ||
      (h.payload_version != kSnapshotVersion &&
       h.payload_version != kSnapshotVersionQuantized)) {
    return false;
  }
  if (!r.get_u64(h.seq) || !r.get_u64(h.parent_seq) ||
      !r.get_u64(h.accepted_since_scan)) {
    return false;
  }
  if (h.seq == 0) return false;
  if (h.kind == kWaveKeyframe ? h.parent_seq != 0 : h.parent_seq >= h.seq) {
    return false;
  }

  std::uint32_t member_count;
  if (!r.get_u32(member_count) || member_count > kMaxSnapshotSessions ||
      static_cast<std::uint64_t>(member_count) * 8 > r.remaining()) {
    return false;
  }
  std::vector<std::uint64_t> members(member_count);
  for (std::uint32_t i = 0; i < member_count; ++i) {
    if (!r.get_u64(members[i])) return false;
    if (i > 0 && members[i] <= members[i - 1]) return false;  // ascending
  }

  std::uint32_t record_count;
  if (!r.get_u32(record_count) || record_count > member_count) return false;
  // A keyframe carries every live session; a delta only the dirty subset.
  if (h.kind == kWaveKeyframe && record_count != member_count) return false;

  std::vector<WaveView::Record> records(record_count);
  std::uint64_t prev_id = 0;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    WaveView::Record& rec = records[i];
    if (!read_session_record_header(r, rec.h)) return false;
    if (i > 0 && rec.h.id <= prev_id) return false;
    prev_id = rec.h.id;
    // Every record must describe a live session: a record for an id
    // outside the membership would be resurrected by collapse.
    if (!std::binary_search(members.begin(), members.end(), rec.h.id)) {
      return false;
    }
    rec.payload = bytes.data() + r.pos();
    if (!r.skip(rec.h.payload_len)) return false;
  }
  if (r.remaining() != 0) return false;

  out.header = h;
  out.members = std::move(members);
  out.records = std::move(records);
  return true;
}

ChainCollapse collapse_chain(
    const std::vector<std::vector<std::uint8_t>>& waves) {
  ChainCollapse out;
  std::vector<std::optional<WaveView>> views(waves.size());
  for (std::size_t i = 0; i < waves.size(); ++i) {
    WaveView v;
    if (decode_wave(waves[i], v)) {
      views[i] = std::move(v);
    } else {
      ++out.waves_rejected;
    }
  }
  // Start from the NEWEST valid keyframe: everything before it is
  // superseded (normally already pruned), everything after must link up.
  std::size_t kf = views.size();
  for (std::size_t i = views.size(); i-- > 0;) {
    if (views[i].has_value() && views[i]->header.kind == kWaveKeyframe) {
      kf = i;
      break;
    }
  }
  if (kf == views.size()) return out;  // ok stays false: no keyframe

  struct Slot {
    SessionRecordHeader h;
    const std::uint8_t* payload;
  };
  std::map<std::uint64_t, Slot> state;
  const WaveView& kv = *views[kf];
  for (const WaveView::Record& rec : kv.records) {
    state[rec.h.id] = {rec.h, rec.payload};
  }
  std::uint64_t prev_seq = kv.header.seq;
  const std::uint8_t payload_version = kv.header.payload_version;
  std::uint64_t accepted = kv.header.accepted_since_scan;
  bool broken = false;
  for (std::size_t i = kf + 1; i < views.size(); ++i) {
    if (!views[i].has_value()) continue;  // already counted as rejected
    if (broken) {
      // A broken link cuts the chain: later deltas would overlay fresh
      // records onto state that is missing the intermediate updates.
      ++out.waves_rejected;
      continue;
    }
    const WaveView& dv = *views[i];
    if (dv.header.kind != kWaveDelta || dv.header.parent_seq != prev_seq ||
        dv.header.payload_version != payload_version) {
      broken = true;
      ++out.waves_rejected;
      continue;
    }
    // Membership is authoritative: departures are ids that vanished.
    std::erase_if(state, [&dv](const auto& kvp) {
      return !std::binary_search(dv.members.begin(), dv.members.end(),
                                 kvp.first);
    });
    for (const WaveView::Record& rec : dv.records) {
      state[rec.h.id] = {rec.h, rec.payload};
    }
    if (state.size() > kMaxSnapshotSessions) {
      broken = true;
      ++out.waves_rejected;
      continue;
    }
    prev_seq = dv.header.seq;
    accepted = dv.header.accepted_since_scan;
    ++out.deltas_applied;
  }

  // Emit the collapsed population as one standard UCKP snapshot in the
  // chain's payload version; the server restore path handles the rest.
  offload::ByteWriter w;
  write_snapshot_header(w, payload_version);
  w.put_u64(accepted);
  w.put_u32(static_cast<std::uint32_t>(state.size()));
  for (const auto& [id, slot] : state) {
    w.put_u64(slot.h.id);
    w.put_u64(slot.h.last_active_us);
    w.put_u64(slot.h.epochs_served);
    w.put_u32(slot.h.payload_len);
    w.put_bytes(slot.payload, slot.h.payload_len);
  }
  out.ok = true;
  out.seq = prev_seq;
  out.snapshot = w.take();
  return out;
}

namespace {

constexpr const char* kWavePrefix = "wave-";
constexpr const char* kWaveSuffix = ".bin";

/// "wave-<20 digits>.bin" -> seq; nullopt for anything else (including
/// leftover .tmp files from a crashed publish).
std::optional<std::uint64_t> parse_wave_seq(const std::string& name) {
  const std::size_t prefix_len = 5, suffix_len = 4, digits = 20;
  if (name.size() != prefix_len + digits + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kWavePrefix) != 0 ||
      name.compare(prefix_len + digits, suffix_len, kWaveSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = prefix_len; i < prefix_len + digits; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(name[i] - '0');
    if (seq > (UINT64_MAX - digit) / 10) return std::nullopt;
    seq = seq * 10 + digit;
  }
  return seq;
}

std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  long size = -1;
  if (std::fseek(f, 0, SEEK_END) == 0) size = std::ftell(f);
  if (size < 0 || static_cast<std::uint64_t>(size) > kMaxCheckpointFileBytes ||
      std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const bool ok =
      bytes.empty() ||
      std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) return std::nullopt;
  return bytes;
}

std::vector<std::pair<std::uint64_t, std::string>> list_wave_paths(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto seq = parse_wave_seq(name)) {
      out.emplace_back(*seq, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string wave_file_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wave-%020llu.bin",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool write_wave_file(const std::string& dir, std::uint64_t seq,
                     const std::vector<std::uint8_t>& bytes,
                     const FsOps& ops) {
  return atomic_publish(ops, dir, wave_file_name(seq), bytes);
}

std::vector<std::vector<std::uint8_t>> load_wave_files(
    const std::string& dir) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& [seq, path] : list_wave_paths(dir)) {
    if (auto bytes = read_file_bytes(path)) out.push_back(std::move(*bytes));
  }
  return out;
}

std::size_t prune_wave_files(const std::string& dir, std::uint64_t keep_from,
                             const FsOps& ops) {
  const FsOps fs = FsOps::resolve(ops);
  std::size_t removed = 0;
  for (const auto& [seq, path] : list_wave_paths(dir)) {
    if (seq < keep_from && fs.remove_file(path)) ++removed;
  }
  return removed;
}

}  // namespace uniloc::svc
