// Versioned session-snapshot format and atomic checkpoint files.
//
// A snapshot is the full serialized state of a LocalizationServer's
// session population, framed so that a restorer can validate it before
// touching any session state (DESIGN.md section 12):
//
//   u32  magic   'UCKP'
//   u8   version (currently 1; other versions are rejected)
//   u64  accepted_since_scan   (eviction-scan cadence counter)
//   u32  session count
//   per session, in ascending id order:
//     u64  session id
//     u64  last_active_us
//     u64  epochs_served
//     u32  payload length
//     ...  core::Uniloc payload (core/uniloc.cc), exactly `length` bytes
//
// The codec is deliberately hostile-input safe: every length is checked
// against the remaining buffer, scheme payloads are name-tagged and
// framing-verified, and the mt19937 read position is range-checked before
// it ever indexes the engine (stats/rng_codec.h). A corrupted or
// truncated snapshot yields `false` from restore, never UB.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "offload/bytes.h"
#include "svc/fsio.h"

namespace uniloc::svc {

/// 'UCKP' little-endian ("Uniloc ChecKPoint").
inline constexpr std::uint32_t kSnapshotMagic = 0x504B4355u;
/// Version 1: per-session payloads carry full f64 particle state.
inline constexpr std::uint8_t kSnapshotVersion = 1;
/// Version 2: per-session payloads use the quantized particle codec
/// (fixed-point u16 positions/headings within the venue bbox; see
/// filter/particle_filter.h). Restore-then-resnapshot is byte-stable,
/// but the dequantized state differs from the original by up to half a
/// grid step -- v2 is for the durable checkpoint chain, never for live
/// migration (which must be bit-lossless).
inline constexpr std::uint8_t kSnapshotVersionQuantized = 2;

/// Hard cap on the decoded session count: a 4-byte count field must not
/// let a hostile snapshot drive a multi-gigabyte allocation loop.
inline constexpr std::uint32_t kMaxSnapshotSessions = 1u << 20;

/// Hard cap on a checkpoint file's size (4 GiB): read_checkpoint_file
/// rejects anything larger before allocating a byte of it, so a hostile
/// or corrupt path cannot drive an unbounded read loop.
inline constexpr std::uint64_t kMaxCheckpointFileBytes = 1ull << 32;

/// Write the snapshot header (magic + version). `version` must be
/// kSnapshotVersion or kSnapshotVersionQuantized.
void write_snapshot_header(offload::ByteWriter& w,
                           std::uint8_t version = kSnapshotVersion);

/// Consume and validate the header; false on bad magic or an unknown
/// version. On success `version` holds the snapshot's payload codec
/// version (callers thread it into Uniloc::restore_from).
bool check_snapshot_header(offload::ByteReader& r, std::uint8_t& version);

/// Back-compat shim: accepts only version-1 snapshots.
bool check_snapshot_header(offload::ByteReader& r);

/// The fixed-size prefix of one per-session record. Shared by the full
/// server snapshot, the kMigrate wire payload (exactly one record after
/// the snapshot header), and the shard-recovery splitter that re-homes a
/// dead shard's checkpoint session by session.
struct SessionRecordHeader {
  std::uint64_t id{0};
  std::uint64_t last_active_us{0};
  std::uint64_t epochs_served{0};
  std::uint32_t payload_len{0};
};

/// Consume one record header and validate `payload_len` against the
/// remaining buffer; on success the reader is positioned at the first
/// byte of the core::Uniloc payload. False on truncation or an
/// impossible length -- the reader position is then unspecified.
bool read_session_record_header(offload::ByteReader& r,
                                SessionRecordHeader& out);

/// Atomically replace `dir`/checkpoint.bin with `bytes`: written to a
/// temp file in the same directory, fsync'd, renamed over the target,
/// then the directory fd is fsync'd so the rename itself survives a
/// crash (without the dir fsync a crash after rename can lose the newly
/// published checkpoint -- the regression the FsOps hook pins). Returns
/// false on any I/O failure. `ops` injects the filesystem primitives
/// for the torn-write tests; default uses the real implementation.
bool write_checkpoint_file(const std::string& dir,
                           const std::vector<std::uint8_t>& bytes,
                           const FsOps& ops = {});

/// Read back `dir`/checkpoint.bin; nullopt when absent or unreadable.
std::optional<std::vector<std::uint8_t>> read_checkpoint_file(
    const std::string& dir);

/// The checkpoint file path used by the helpers above.
std::string checkpoint_path(const std::string& dir);

}  // namespace uniloc::svc
