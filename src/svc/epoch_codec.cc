#include "svc/epoch_codec.h"

#include "svc/wire.h"

namespace uniloc::svc {

using offload::ByteReader;
using offload::ByteWriter;

namespace {

void write_sidecar(const sim::SensorFrame& f, ByteWriter& w) {
  w.put_f64(f.t);
  w.put_u8(f.gps_enabled ? 1 : 0);
  w.put_u16(static_cast<std::uint16_t>(f.imu.size()));
  for (const sim::ImuSample& s : f.imu) {
    w.put_f64(s.t);
    w.put_f64(s.accel_mag);
    w.put_f64(s.gyro_z);
    w.put_f64(s.mag_heading);
  }
  w.put_f64(f.ambient.light_lux);
  w.put_f64(f.ambient.mag_field_sd_ut);
  w.put_u16(static_cast<std::uint16_t>(f.landmarks.size()));
  for (const sim::LandmarkObservation& lm : f.landmarks) {
    w.put_f64(lm.map_pos.x);
    w.put_f64(lm.map_pos.y);
    w.put_u8(static_cast<std::uint8_t>(lm.env));
    w.put_u8(static_cast<std::uint8_t>(lm.kind));
  }
  w.put_f64(f.truth_pos.x);
  w.put_f64(f.truth_pos.y);
  w.put_f64(f.truth_heading);
  w.put_u8(static_cast<std::uint8_t>(f.truth_env));
  w.put_f64(f.truth_arclen);
}

bool read_sidecar(ByteReader& r, sim::SensorFrame& f) {
  std::uint8_t gps_enabled, truth_env;
  std::uint16_t imu_count, lm_count;
  if (!r.get_f64(f.t) || !r.get_u8(gps_enabled) || !r.get_u16(imu_count)) {
    return false;
  }
  f.gps_enabled = gps_enabled != 0;
  if (r.remaining() < static_cast<std::size_t>(imu_count) * 32) return false;
  f.imu.resize(imu_count);
  for (sim::ImuSample& s : f.imu) {
    if (!r.get_f64(s.t) || !r.get_f64(s.accel_mag) || !r.get_f64(s.gyro_z) ||
        !r.get_f64(s.mag_heading)) {
      return false;
    }
  }
  if (!r.get_f64(f.ambient.light_lux) ||
      !r.get_f64(f.ambient.mag_field_sd_ut) || !r.get_u16(lm_count)) {
    return false;
  }
  if (r.remaining() < static_cast<std::size_t>(lm_count) * 18) return false;
  f.landmarks.resize(lm_count);
  for (sim::LandmarkObservation& lm : f.landmarks) {
    std::uint8_t env, kind;
    if (!r.get_f64(lm.map_pos.x) || !r.get_f64(lm.map_pos.y) ||
        !r.get_u8(env) || !r.get_u8(kind)) {
      return false;
    }
    lm.env = static_cast<sim::SegmentType>(env);
    lm.kind = kind;
  }
  if (!r.get_f64(f.truth_pos.x) || !r.get_f64(f.truth_pos.y) ||
      !r.get_f64(f.truth_heading) || !r.get_u8(truth_env) ||
      !r.get_f64(f.truth_arclen)) {
    return false;
  }
  f.truth_env = static_cast<sim::SegmentType>(truth_env);
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_epoch(const offload::UplinkFrame& uplink,
                                       const sim::SensorFrame& frame) {
  ByteWriter w;
  const std::vector<std::uint8_t> up = offload::serialize(uplink);
  w.put_u16(static_cast<std::uint16_t>(up.size()));
  w.put_bytes(up.data(), up.size());
  write_sidecar(frame, w);
  return w.take();
}

std::optional<EpochRequest> parse_epoch(
    const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  std::uint16_t uplink_len;
  if (!r.get_u16(uplink_len)) return std::nullopt;
  if (r.remaining() < uplink_len) return std::nullopt;
  ByteReader up_reader(buf.data() + r.pos(), uplink_len);
  std::optional<offload::UplinkFrame> uplink =
      offload::parse_uplink(up_reader);
  if (!uplink.has_value() || up_reader.remaining() != 0) return std::nullopt;
  r.skip(uplink_len);

  EpochRequest req;
  req.uplink = std::move(*uplink);
  if (!read_sidecar(r, req.frame) || r.remaining() != 0) return std::nullopt;

  // The server-side view of the scans and the GPS fix is whatever crossed
  // the wire, quantization included.
  if (req.uplink.wifi.has_value()) req.frame.wifi = req.uplink.wifi->readings;
  if (req.uplink.cell.has_value()) req.frame.cell = req.uplink.cell->readings;
  if (req.uplink.gps.has_value()) {
    sim::GpsFix fix;
    fix.pos = req.uplink.gps->pos;
    fix.hdop = req.uplink.gps->hdop;
    fix.num_satellites = req.uplink.gps->num_satellites;
    req.frame.gps = fix;
  }
  return req;
}

std::size_t epoch_wire_bytes(const offload::UplinkFrame& uplink) {
  return kHeaderBytes + kEpochUplinkPrefixBytes +
         offload::kUplinkOverheadBytes + uplink.bytes();
}

std::vector<std::uint8_t> encode_epoch_reply(const EpochReply& reply) {
  ByteWriter w;
  offload::write_downlink(reply.downlink, w);
  w.put_u8(reply.gps_enable_next ? 1 : 0);
  return w.take();
}

std::optional<EpochReply> parse_epoch_reply(
    const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  EpochReply reply;
  std::optional<offload::DownlinkFrame> downlink =
      offload::parse_downlink(r);
  std::uint8_t duty;
  if (!downlink.has_value() || !r.get_u8(duty) || r.remaining() != 0) {
    return std::nullopt;
  }
  reply.downlink = *downlink;
  reply.gps_enable_next = duty != 0;
  return reply;
}

std::size_t reply_wire_bytes() {
  return kHeaderBytes + EpochReply::kBytes;
}

}  // namespace uniloc::svc
