// Link: the transport abstraction between a phone and the server.
//
// svc::run_load used to call LocalizationServer::submit() directly, which
// hard-codes a perfect network: every frame arrives, every reply returns,
// nothing is delayed or corrupted. Link is the seam that makes the wire
// itself a component: DirectLink preserves the perfect transport, and
// fault::FaultyLink wraps any Link with a deterministic fault schedule
// (drop / duplicate / reorder / corrupt / delay / blackout).
//
// Delivery outcomes are explicit, and *delay is metadata, never a sleep*:
// a LinkReply carries the simulated round-trip in delay_us and the client
// compares it against its timeout -- so a chaos run with 50 ms links and
// 30 s blackouts still executes at full speed and stays bit-reproducible
// (see sim::VirtualClock).
#pragma once

#include <cstdint>
#include <future>
#include <vector>

#include "svc/endpoint.h"

namespace uniloc::svc {

struct LinkReply {
  enum class Status : std::uint8_t {
    kOk,       ///< `bytes` holds one encoded reply frame.
    kDropped,  ///< Request or reply lost in transit; the caller times out.
    kDown,     ///< Server unreachable (blackout); fails fast.
  };

  Status status{Status::kOk};
  std::vector<std::uint8_t> bytes;
  /// Simulated round-trip latency. A reply with delay_us > the client's
  /// timeout is treated by the client as lost (it has already retried).
  std::uint64_t delay_us{0};
};

class Link {
 public:
  virtual ~Link() = default;

  /// Transmit one encoded frame. The future resolves to the delivery
  /// outcome; with a threaded server, epochs from distinct sessions
  /// overlap exactly as through submit().
  virtual std::future<LinkReply> send(std::vector<std::uint8_t> request) = 0;
};

/// The perfect transport: every frame reaches the endpoint (a single
/// server or a shard router), every reply returns with zero simulated
/// delay.
class DirectLink : public Link {
 public:
  explicit DirectLink(Endpoint* server) : server_(server) {}

  std::future<LinkReply> send(std::vector<std::uint8_t> request) override;

 private:
  Endpoint* server_;
};

/// Client-side degradation policy: per-request timeout, bounded retry
/// with exponential backoff + deterministic jitter. All durations are
/// virtual (compared against LinkReply::delay_us, charged to a
/// VirtualClock) -- nothing sleeps.
struct RetryPolicy {
  std::uint64_t timeout_us{200'000};
  /// Extra attempts after the first (attempts = 1 + max_retries).
  std::size_t max_retries{2};
  std::uint64_t backoff_base_us{50'000};
  double backoff_multiplier{2.0};
  /// Backoff is scaled by (1 + jitter_frac * u), u uniform in [0, 1) from
  /// the client's own RNG stream -- deterministic per (seed, session).
  double jitter_frac{0.1};
  /// Virtual cost of discovering the server unreachable (connection
  /// refused is fast; a lost datagram costs the full timeout).
  std::uint64_t unreachable_latency_us{1'000};

  /// Backoff before retry `retry_index` (0-based), jittered by u.
  std::uint64_t backoff_us(std::size_t retry_index, double u) const;
};

}  // namespace uniloc::svc
