// Live server introspection: one health dump, two encodings.
//
// ServerStatus is a point-in-time snapshot of everything an operator (or
// the future shard rebalancer) needs to judge a LocalizationServer: the
// session population with per-session age/queue depth/progress, thread
// pool occupancy, and whether intake is stopping. status_json() renders
// it with the full metrics registry + SLO state as one JSON document
// (the statusz schema, DESIGN.md §13); status_prometheus() renders the
// same facts as Prometheus text exposition -- registry instruments via
// obs::prometheus_text plus uniloc_server_* / uniloc_session_* gauges.
// Both are served by the kStatus admin frame and by
// `uniloc_cli serve-sim --statusz`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uniloc::obs {
class MetricsRegistry;
class SloMonitor;
}  // namespace uniloc::obs

namespace uniloc::svc {

struct SessionStatus {
  std::uint64_t id{0};
  std::uint64_t age_us{0};  ///< now - last_active (0 when clockless).
  std::uint64_t epochs_served{0};
  std::uint64_t queue_depth{0};  ///< Strand backlog incl. running task.
};

struct ServerStatus {
  std::uint64_t now_us{0};
  bool stopping{false};
  std::uint64_t live_sessions{0};
  int workers{0};
  std::uint64_t pool_queue_depth{0};
  std::uint64_t pool_active_workers{0};
  std::uint64_t pool_tasks_run{0};
  std::uint64_t pool_task_exceptions{0};
  std::vector<SessionStatus> sessions;  ///< Ascending id.
};

/// {"server":{...},"sessions":[...],"slo":{...}|null,"metrics":{...}}.
/// `registry` and `slo` may be null (rendered as {} / null).
std::string status_json(const ServerStatus& st,
                        const obs::MetricsRegistry* registry,
                        const obs::SloMonitor* slo);

/// Prometheus text: registry instruments (uniloc_ prefix) followed by
/// server/session gauges (uniloc_server_*, uniloc_session_*{session=..}).
std::string status_prometheus(const ServerStatus& st,
                              const obs::MetricsRegistry* registry,
                              const obs::SloMonitor* slo);

}  // namespace uniloc::svc
