// Load generator: N simulated walkers against a LocalizationServer.
//
// Each walker is a full phone: it walks one of the deployment's paths
// (round-robin, distinct seeds), runs the offload::PhoneAgent reduction
// locally, speaks the svc wire protocol (kHello / kEpoch* / kBye), honors
// the GPS duty-cycle decision the server echoes in every reply, and
// measures end-to-end request latency client-side. Submission is
// pipelined in rounds: every active walker submits `burst` epochs, then
// all replies are collected -- so with W workers up to
// min(walkers, W) sessions are genuinely in flight at once.
//
// Traffic accounting charges only deployment-real bytes (frame headers +
// offload payload encodings; the simulation sidecar is free) into the
// returned TrafficStats and, when a registry is supplied, into the
// standard `offload.{uplink,downlink}_bytes` counters -- svc framing
// overhead included, as DESIGN.md section 9 specifies.
#pragma once

#include <cstdint>
#include <vector>

#include "core/deployment.h"
#include "offload/session.h"
#include "svc/server.h"

namespace uniloc::svc {

struct LoadGenConfig {
  std::size_t walkers{8};
  /// 0 = walk every path to its end.
  std::size_t max_epochs_per_walker{0};
  /// Epochs each walker submits per round before replies are collected
  /// (>1 exercises the per-session inbox).
  std::size_t burst{1};
  std::uint64_t seed{2024};
  std::uint64_t first_session_id{1};
};

struct WalkerOutcome {
  std::uint64_t session_id{0};
  std::size_t walkway{0};
  std::size_t epochs_accepted{0};
  std::size_t backpressure{0};  ///< kBackpressure rejections observed.
  std::size_t errors{0};        ///< Any other kError replies.
  double mean_error_m{0.0};     ///< Fused estimate vs ground truth.
  geo::Vec2 final_estimate;     ///< Last accepted fused coordinate.
};

struct LoadReport {
  std::vector<WalkerOutcome> walkers;
  offload::TrafficStats traffic;     ///< Wire-real bytes, accepted epochs.
  std::vector<double> latencies_us;  ///< Client-side, accepted epochs.
  double wall_s{0.0};                ///< Epoch phase only.
  std::size_t total_epochs{0};
  std::size_t backpressure_total{0};
  std::size_t error_total{0};

  double throughput_eps() const {
    return wall_s > 0.0 ? static_cast<double>(total_epochs) / wall_s : 0.0;
  }
};

/// Drive `server` with cfg.walkers simulated phones over `d`'s walkways.
/// When `registry` is non-null the wire volume lands in the standard
/// offload byte counters. Single-threaded on the caller's side.
LoadReport run_load(LocalizationServer& server, const core::Deployment& d,
                    const LoadGenConfig& cfg,
                    obs::MetricsRegistry* registry = nullptr);

}  // namespace uniloc::svc
