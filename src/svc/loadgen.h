// Load generator: N simulated walkers against a LocalizationServer.
//
// Each walker is a full phone: it walks one of the deployment's paths
// (round-robin, distinct seeds), runs the offload::PhoneAgent reduction
// locally, speaks the svc wire protocol (kHello / kEpoch* / kBye), honors
// the GPS duty-cycle decision the server echoes in every reply, and
// measures end-to-end request latency client-side. Submission is
// pipelined in rounds: every active walker submits `burst` epochs, then
// all replies are collected -- so with W workers up to
// min(walkers, W) sessions are genuinely in flight at once.
//
// The phone no longer assumes a perfect link. Every epoch travels through
// a svc::Link (DirectLink by default; inject fault::FaultyLink via
// make_link to run chaos), and the client runs a degradation state
// machine per session:
//
//     HEALTHY --(timeout x (1 + max_retries))--> DEGRADED
//        ^                                           |
//        |   probe every probe_period epochs;        |
//        +-- on success adopt the server fix;  <-----+
//            kUnknownSession => re-hello seeded at the
//            local estimate, then resend the epoch
//
// While DEGRADED the epoch is served by core::LocalFallback: PDR
// dead-reckoning from the last server fix using the same quantized
// StepPayload the uplink carries. Timeouts, backoff (exponential +
// deterministic jitter), and link delays are all virtual -- compared
// against LinkReply::delay_us, never slept -- so a chaos run is a pure
// function of (seed, schedule) and bit-identical at any worker count.
//
// Traffic accounting charges only deployment-real bytes (frame headers +
// offload payload encodings; the simulation sidecar is free) into the
// returned TrafficStats and, when a registry is supplied, into the
// standard `offload.{uplink,downlink}_bytes` counters -- svc framing
// overhead included, retransmissions counted on top (DESIGN.md sec. 10).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/deployment.h"
#include "offload/session.h"
#include "sim/virtual_clock.h"
#include "sim/walker.h"
#include "svc/link.h"
#include "svc/server.h"

namespace uniloc::svc {

/// Builds the transport for one phone. Default: perfect DirectLink.
/// Chaos runs return a fault::FaultyLink here (typically wrapping a
/// DirectLink built over `server` -- a single LocalizationServer or a
/// shard::ShardRouter, both svc::Endpoint).
using LinkFactory = std::function<std::unique_ptr<Link>(
    Endpoint& server, std::uint64_t session_id)>;

/// Client-side degradation policy knobs (see the state machine above).
struct ResilienceConfig {
  RetryPolicy retry{};
  /// Serve epochs locally (PDR dead-reckoning) while the link is down.
  /// When false, failed epochs are counted as errors and skipped.
  bool local_fallback{true};
  /// While degraded, re-probe the server every this many epochs.
  std::size_t probe_period{4};
  /// Record a per-epoch EpochEvent timeline in each WalkerOutcome
  /// (chaos tests assert fallback entry/exit epoch-by-epoch).
  bool record_timeline{false};
};

/// One epoch of one phone's timeline (record_timeline mode).
struct EpochEvent {
  enum class Source : std::uint8_t {
    kServer,   ///< Estimate came from an accepted server reply.
    kLocal,    ///< Served by the local PDR fallback.
    kSkipped,  ///< No estimate (backpressure, or fallback disabled).
  };

  std::size_t epoch{0};
  Source source{Source::kServer};
  std::size_t attempts{0};  ///< Link sends consumed (0 for local epochs).
  bool degraded_after{false};
  bool entered_fallback{false};
  bool exited_fallback{false};
  bool rehello{false};  ///< Session re-opened (reconcile) this epoch.
  geo::Vec2 estimate;
  double error_m{0.0};  ///< Estimate vs ground truth.
};

struct LoadGenConfig {
  std::size_t walkers{8};
  /// 0 = walk every path to its end.
  std::size_t max_epochs_per_walker{0};
  /// Epochs each walker submits per round before replies are collected
  /// (>1 exercises the per-session inbox).
  std::size_t burst{1};
  std::uint64_t seed{2024};
  std::uint64_t first_session_id{1};
  /// Template for every walker's WalkConfig (gait, device, sensor
  /// noise); each walker's seed is still derived from `seed`. The
  /// property-test generator's seam into the simulated fleet.
  sim::WalkConfig walk{};
  /// Transport per phone; null = DirectLink (perfect wire).
  LinkFactory make_link;
  ResilienceConfig resilience{};
  /// Shared virtual clock: advanced by epoch_period_s once per round and
  /// readable by the server (ServerConfig::now_us = clock->now_fn()) so
  /// TTL eviction during a blackout is deterministic. Null = no clock.
  sim::VirtualClock* clock{nullptr};
  double epoch_period_s{0.5};
  /// Called after each round's replies have been collected (every session
  /// is idle at that point), with the 0-based round index. The hook for
  /// crash/checkpoint orchestration (fault/crash.h): the server may be
  /// snapshotted, crashed and restored here between rounds.
  std::function<void(std::size_t round)> on_round;
  /// Client-side span tracing (obs/span.h). Null = off (a branch per
  /// instrumentation point). Each server-bound epoch opens a
  /// `client.epoch` root span plus one `client.attempt` span per link
  /// send; the ambient TraceContext is set around every send so the
  /// link's and server's spans chain under the attempt.
  obs::SpanTracer* tracer{nullptr};
  /// Client-side flight events (obs/flight_recorder.h): submits,
  /// accepts, retries, timeouts, fallback transitions, re-hellos. Share
  /// the recorder with ServerConfig::flight to interleave both sides of
  /// each session's story. Null = off.
  obs::FlightRecorder* flight{nullptr};
};

struct WalkerOutcome {
  std::uint64_t session_id{0};
  std::size_t walkway{0};
  std::size_t epochs_accepted{0};
  std::size_t backpressure{0};  ///< kBackpressure rejections observed.
  std::size_t errors{0};        ///< Any other kError replies.
  double mean_error_m{0.0};     ///< Fused estimate vs ground truth.
  geo::Vec2 final_estimate;     ///< Last accepted fused coordinate.

  // --- degradation stats (all zero on a perfect link) ----------------
  std::size_t retries{0};         ///< Extra link attempts beyond the first.
  std::size_t timeouts{0};        ///< Attempts lost or later than timeout.
  std::size_t local_epochs{0};    ///< Epochs served by the local fallback.
  std::size_t fallback_entries{0};
  std::size_t fallback_exits{0};
  std::size_t rehellos{0};        ///< Sessions re-opened on reconnect.
  std::vector<EpochEvent> timeline;  ///< Filled when record_timeline.
};

struct LoadReport {
  std::vector<WalkerOutcome> walkers;
  offload::TrafficStats traffic;     ///< Wire-real bytes, accepted epochs.
  std::vector<double> latencies_us;  ///< Client-side, accepted epochs.
  double wall_s{0.0};                ///< Epoch phase only.
  std::size_t total_epochs{0};
  std::size_t backpressure_total{0};
  std::size_t error_total{0};
  std::size_t retries_total{0};
  std::size_t timeouts_total{0};
  std::size_t local_epochs_total{0};

  double throughput_eps() const {
    return wall_s > 0.0 ? static_cast<double>(total_epochs) / wall_s : 0.0;
  }
  /// Server-accepted epochs per second -- under faults the headline
  /// metric: retransmits burn capacity without adding goodput.
  double goodput_eps() const { return throughput_eps(); }
};

/// Drive `server` with cfg.walkers simulated phones over `d`'s walkways.
/// When `registry` is non-null the wire volume lands in the standard
/// offload byte counters and the degradation transitions in the
/// `fault.{retries,timeouts}` / `svc.degraded.*` instruments.
/// Single-threaded on the caller's side.
LoadReport run_load(Endpoint& server, const core::Deployment& d,
                    const LoadGenConfig& cfg,
                    obs::MetricsRegistry* registry = nullptr);

}  // namespace uniloc::svc
