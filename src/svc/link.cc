#include "svc/link.h"

#include <cmath>
#include <utility>

namespace uniloc::svc {

std::future<LinkReply> DirectLink::send(std::vector<std::uint8_t> request) {
  // Deferred transform: the server future is already in flight on the
  // pool; the wrapper only repackages it when the client collects.
  return std::async(
      std::launch::deferred,
      [f = server_->submit(std::move(request))]() mutable {
        LinkReply reply;
        reply.status = LinkReply::Status::kOk;
        reply.bytes = f.get();
        return reply;
      });
}

std::uint64_t RetryPolicy::backoff_us(std::size_t retry_index,
                                      double u) const {
  const double scale =
      std::pow(backoff_multiplier, static_cast<double>(retry_index));
  const double jitter = 1.0 + jitter_frac * u;
  return static_cast<std::uint64_t>(
      static_cast<double>(backoff_base_us) * scale * jitter);
}

}  // namespace uniloc::svc
