// Endpoint: anything that accepts one encoded ULOC frame and promises one
// encoded reply frame.
//
// LocalizationServer has always had this shape (submit(bytes) ->
// future<bytes>); the shard layer introduces a second implementation,
// ShardRouter, which fans the same byte-level contract out across N
// servers. Everything client-side -- DirectLink, run_load, the CLI, the
// benches -- talks to an Endpoint, so a fleet is a drop-in replacement
// for a single server and the differential harness can compare the two
// bit for bit.
#pragma once

#include <cstdint>
#include <future>
#include <vector>

namespace uniloc::svc {

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Accept one encoded request frame; the future resolves to exactly one
  /// encoded reply frame (kReply or kError -- never nothing).
  virtual std::future<std::vector<std::uint8_t>> submit(
      std::vector<std::uint8_t> request) = 0;
};

}  // namespace uniloc::svc
