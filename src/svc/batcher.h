// EpochBatcher: cross-session drain batching for the localization server.
//
// Without batching, every session whose inbox transitions empty -> busy
// (Enqueue::kStartDrain) posts its own drain task to the thread pool: one
// queue round-trip per session per burst. Concurrently-arriving uplinks
// are common -- a deployment's devices report on the same cadence, so
// dozens of sessions become drainable within the same few hundred
// microseconds -- and each round-trip costs pool lock/condvar traffic
// plus a cold start against the deployment's shared read-only tables
// (fingerprint likelihood cache, env index).
//
// The batcher coalesces those wakeups: drainable sessions are appended to
// one FIFO, and a small number of runner tasks (at most one per worker)
// pull sessions off the FIFO and drain them back to back. One pool post
// now covers a whole burst, and sessions of the same deployment run
// consecutively on one worker with the shared tables hot in cache.
//
// Guarantees:
//   * Per-session epoch order is untouched: the batcher only schedules
//     drain() calls, and the session strand already serializes a
//     session's tasks in arrival order. A session enters the FIFO at most
//     once per idle->busy transition (the kStartDrain handshake), so two
//     runners never race on one session's drain.
//   * Cross-session dispatch is FIFO in submit order.
//   * workers == 0 stays deterministic: the pool runs the runner inline,
//     so submit() drains synchronously on the caller's thread -- the
//     batched path (FIFO, runner loop and all) is exercised bit-for-bit
//     reproducibly. The differential and proptest tiers drive it this way
//     (invariant I8).
//   * No steady-state allocations: the FIFO is a head-indexed vector that
//     is compacted (capacity retained) whenever a runner empties it, and
//     runners hand sessions around by shared_ptr.
//   * Liveness: a runner returns only after observing an empty FIFO under
//     the same lock that decrements the runner count, so a submit that
//     declined to spawn (count already at max) is always picked up.
//   * A runner yields its worker after `max_batch` drains (re-posting
//     itself) so one long burst cannot starve unrelated pool work; if the
//     pool is stopping and refuses the task, the runner continues inline
//     so no accepted epoch is ever stranded.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "svc/session_manager.h"
#include "svc/thread_pool.h"

namespace uniloc::svc {

class EpochBatcher {
 public:
  /// `max_batch`: sessions drained per runner task before it yields the
  /// worker (0 = unlimited). `max_runners` should match the pool's worker
  /// count (>= 1; inline mode uses 1).
  EpochBatcher(ThreadPool& pool, std::size_t max_batch,
               std::size_t max_runners);

  /// Hand a drainable session (its enqueue returned kStartDrain) to the
  /// batcher. Spawns a runner unless enough are already active.
  void submit(SessionPtr session);

  /// Sessions currently waiting for a runner (diagnostics/tests).
  std::size_t pending() const;

 private:
  void run_batches();

  ThreadPool& pool_;
  const std::size_t max_batch_;
  const std::size_t max_runners_;

  mutable std::mutex mu_;
  std::vector<SessionPtr> fifo_;  ///< Pending sessions, [head_, end).
  std::size_t head_{0};
  std::size_t runners_{0};
};

}  // namespace uniloc::svc
