// Async group-commit thread for checkpoint publishes.
//
// Serializing a wave happens on the caller (it must quiesce session
// strands), but the expensive part of durability -- write, fsync,
// rename, directory fsync -- has no business blocking the serving path.
// The GroupCommitter owns one background thread and a bounded queue of
// publish requests. The thread drains whatever has accumulated as ONE
// batch: each file is written and renamed individually, then a single
// fsync_dir per distinct directory makes the whole batch durable at
// once. Under a burst of waves the directory fsync (the dominant
// latency on real disks) is paid once per batch instead of once per
// file -- classic group commit.
//
// Backpressure is explicit: enqueue() returns false when the queue is
// full (and counts it) instead of blocking or buffering unboundedly;
// the caller decides whether to drop the wave (the next one supersedes
// it) or fall back to a synchronous publish. flush() barriers: it
// returns once everything enqueued before it is durable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/fsio.h"

namespace uniloc::svc {

class GroupCommitter {
 public:
  struct Options {
    /// Max requests pending before enqueue() reports backpressure.
    std::size_t queue_capacity{64};
    /// Injectable filesystem primitives (tests); null hooks = real.
    FsOps ops{};
  };

  struct Request {
    std::string dir;
    std::string name;
    std::vector<std::uint8_t> bytes;
    /// Optional; invoked on the committer thread after this request's
    /// batch is durable (or with false on failure).
    std::function<void(bool ok)> done;
  };

  struct Stats {
    std::uint64_t committed{0};      ///< Requests durably published.
    std::uint64_t failed{0};         ///< Requests that hit an I/O error.
    std::uint64_t batches{0};        ///< Drain rounds executed.
    std::uint64_t rejected{0};       ///< enqueue() backpressure refusals.
    std::uint64_t max_batch{0};      ///< Largest single drain.
    std::size_t queue_depth{0};      ///< Requests pending right now.
  };

  GroupCommitter() : GroupCommitter(Options()) {}
  explicit GroupCommitter(Options opts);
  /// Drains the queue, then joins the thread: everything accepted by
  /// enqueue() is durable (or reported failed) before destruction ends.
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// False = queue full; the request was NOT accepted (backpressure)
  /// and is left intact in `req`, so the caller can publish it through
  /// a synchronous fallback without re-serializing.
  bool enqueue(Request&& req);

  /// Block until every request enqueued before this call has been
  /// committed or failed.
  void flush();

  Stats stats() const;

 private:
  void run();
  /// Publish one batch: per-file write+rename, then one fsync_dir per
  /// distinct directory. Files whose write or rename failed do not
  /// block the rest of the batch.
  void commit_batch(std::vector<Request>& batch);

  const std::size_t capacity_;
  const FsOps ops_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the committer thread
  std::condition_variable drained_;   // wakes flush() waiters
  std::deque<Request> queue_;
  bool stopping_{false};
  bool busy_{false};  // the thread is mid-batch (queue may look empty)
  Stats stats_{};
  std::thread thread_;
};

}  // namespace uniloc::svc
