// LocalizationServer: the multi-tenant localization service.
//
// submit(bytes) -> future<bytes> is the entire surface: one encoded
// svc::Frame in, one encoded reply frame out. kHello opens a session
// (the factory builds its core::Uniloc), kEpoch runs one localization
// epoch on the session's strand, kBye closes it. Malformed input of any
// kind -- bad magic, wrong version, truncated frame, corrupt payload --
// produces a kError reply (and a metrics increment), never a crash.
//
// Threading model:
//   * submit() may be called from any one client thread at a time (the
//     simulated deployments have a single ingress); frame decoding and
//     session routing happen on that thread, epoch execution happens on
//     the pool.
//   * Per-session execution is serialized by the session strand; distinct
//     sessions run concurrently across workers.
//   * workers == 0 is the deterministic inline mode: every submit()
//     completes synchronously on the caller's thread, and a run with a
//     fixed seed is bit-reproducible (unit tests, replays).
//
// Instrumentation (all via src/obs, guarded by one stats mutex so worker
// threads can record concurrently):
//   gauges    svc.live_sessions, svc.queue_depth
//   counters  svc.accepted, svc.rejected, svc.evicted, svc.malformed
//   histograms svc.request_us (accept -> reply, queue wait included),
//              svc.parse_us, svc.locate_us, svc.net_us (per stage).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/uniloc.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "svc/batcher.h"
#include "svc/committer.h"
#include "svc/endpoint.h"
#include "svc/session_manager.h"
#include "svc/statusz.h"
#include "svc/thread_pool.h"
#include "svc/wire.h"

namespace uniloc::obs {
class Counter;
class FlightRecorder;
class Gauge;
class Histogram;
class MetricsRegistry;
class SloMonitor;
}  // namespace uniloc::obs

namespace uniloc::svc {

/// Builds the per-session ensemble. Called on the submitting thread when
/// a kHello arrives; use `session_id` to derive per-session seeds.
using UnilocFactory =
    std::function<std::unique_ptr<core::Uniloc>(std::uint64_t session_id)>;

struct ServerConfig {
  /// 0 = inline deterministic mode (no threads).
  int workers{0};
  std::size_t stripes{8};
  /// Pending epochs per session beyond the running one; the bound that
  /// turns overload into explicit kBackpressure replies.
  std::size_t inbox_capacity{8};
  std::size_t pool_queue_capacity{4096};
  /// Cross-session epoch batching (svc/batcher.h): sessions that become
  /// drainable are coalesced into runner tasks that drain up to this many
  /// back to back, instead of one pool post per session. <= 1 keeps the
  /// classic one-post-per-session dispatch. Works in every mode; with
  /// workers == 0 the batch path runs inline and stays deterministic.
  std::size_t epoch_batch{1};
  double idle_ttl_s{300.0};
  /// Sessions are TTL-scanned every this many accepted frames (plus on
  /// every explicit evict_idle() call).
  std::size_t evict_scan_period{256};
  /// Blocking per-epoch network time simulated on the worker: the
  /// synchronous reply push of the phone/server split (Table V measures
  /// 52 + 63 ms of transmissions per fix on campus WLAN). Workers overlap
  /// these waits across sessions exactly like a real synchronous server;
  /// 0 (the default) disables the wait for unit tests and replays.
  std::chrono::microseconds simulated_network{0};
  /// Run epochs through core::Uniloc::update_fast against the session's
  /// scratch arena (zero steady-state allocations per epoch; decisions
  /// bit-identical to the reference update()). false keeps the reference
  /// pipeline -- the differential chaos tests drive both.
  bool use_fast_path{true};
  /// Injectable clock (microseconds, monotonic) for deterministic TTL
  /// tests; defaults to steady_clock. sim::VirtualClock::now_fn() plugs
  /// in here.
  std::function<std::uint64_t()> now_us;
  /// Observation hook: called with every successfully served epoch's full
  /// decision, after the reply is sent. With workers > 0 it runs on the
  /// worker threads and must be thread-safe; intended for invariant
  /// checks and tracing in the deterministic workers == 0 mode.
  std::function<void(std::uint64_t session_id,
                     const core::EpochDecision& decision)>
      on_epoch;
  /// Periodic checkpointing: when > 0, submit() takes a snapshot whenever
  /// at least this many microseconds (by `now_us`) have passed since the
  /// last one and hands it to `on_checkpoint`. Snapshots quiesce each
  /// session before serializing it and mutate nothing, so enabling
  /// checkpoints leaves the served epoch stream bit-identical.
  std::uint64_t checkpoint_period_us{0};
  std::function<void(const std::vector<std::uint8_t>& snapshot)>
      on_checkpoint;
  /// Durable delta-chain checkpointing (svc/delta.h). When non-empty,
  /// periodic checkpoints write wave files into this directory (keyframe
  /// + dirty-session deltas) instead of full snapshots through
  /// `on_checkpoint`. Pair with restore_chain() at startup.
  std::string checkpoint_dir;
  /// Every Nth wave is a full keyframe (bounds both recovery length and
  /// how long a departed session's bytes linger in the chain). Waves in
  /// between serialize only sessions whose strand ran since the last
  /// wave.
  std::size_t keyframe_interval{16};
  /// Encode chain waves with the quantized particle codec (checkpoint
  /// format v2, ~4x smaller; filter/particle_filter.h documents the
  /// error budget). Never applies to snapshot()/extract_session, which
  /// stay lossless -- migration and crash/restore bit-identity depend
  /// on it.
  bool snapshot_quantize{false};
  /// Async group commit (svc/committer.h). Non-null offloads wave file
  /// I/O (write, fsync, rename, dir fsync) to the committer's thread;
  /// on committer backpressure the wave falls back to a synchronous
  /// publish rather than being dropped. Null publishes synchronously.
  /// Not owned; must outlive the server.
  GroupCommitter* committer{nullptr};
  /// Called (on the evicting thread) with each session id dropped by a
  /// TTL scan, so placement layers can forget the session -- the shard
  /// router's affinity override map otherwise grows without bound.
  std::function<void(std::uint64_t session_id)> on_evict;
  /// Causal span tracing (obs/span.h). Null = disabled; the detached
  /// cost on the epoch path is a branch per instrumentation point. One
  /// span tree per served epoch: svc.epoch > {svc.queue_wait,
  /// svc.decode, svc.locate > core spans, svc.net, svc.encode}.
  obs::SpanTracer* tracer{nullptr};
  /// Per-session flight recorder; every served epoch records its scheme
  /// decision, every malformed epoch an error event. Null = off.
  obs::FlightRecorder* flight{nullptr};
  /// SLO monitor observing every epoch outcome (request latency, error
  /// flag). Null = off. Also rendered by kStatus / statusz dumps.
  obs::SloMonitor* slo{nullptr};
};

class LocalizationServer : public Endpoint {
 public:
  LocalizationServer(ServerConfig cfg, UnilocFactory factory,
                     obs::MetricsRegistry* registry = nullptr);
  ~LocalizationServer() override;

  LocalizationServer(const LocalizationServer&) = delete;
  LocalizationServer& operator=(const LocalizationServer&) = delete;

  /// Process one encoded frame. The future always yields an encoded reply
  /// frame (kReply or kError) -- errors travel in-band, like on a socket.
  std::future<std::vector<std::uint8_t>> submit(
      std::vector<std::uint8_t> request) override;

  /// TTL-scan now. Returns sessions evicted.
  std::size_t evict_idle();

  /// Serialize every live session into a versioned snapshot
  /// (svc/checkpoint.h). Each session is quiesced (waited idle) before it
  /// is serialized, so its payload is a consistent post-epoch state; no
  /// session state is mutated, so a run with snapshots interleaved is
  /// bit-identical to one without.
  std::vector<std::uint8_t> snapshot();

  /// Replace the entire session population with the snapshot's. Sessions
  /// are rebuilt through the factory (same per-session seeds as the hello
  /// path) and their serialized state restored on top. Returns false --
  /// with ALL sessions dropped -- on a malformed, truncated, corrupted or
  /// version-mismatched snapshot; never crashes on hostile input.
  /// Accepts both payload versions (the v2 quantized codec is what
  /// collapse_chain emits for quantized chains).
  bool restore(const std::vector<std::uint8_t>& snapshot);

  /// Serialize one checkpoint wave (svc/delta.h) and advance the wave
  /// sequence. A keyframe wave carries every live session; a delta wave
  /// only those whose strand ran since they were last serialized (their
  /// dirty mark), plus the full membership list so departures collapse
  /// away. Sessions are quiesced one at a time exactly like snapshot();
  /// each serialized session is marked clean inside its exclusive
  /// section. Payload codec follows cfg.snapshot_quantize.
  std::vector<std::uint8_t> snapshot_wave(bool keyframe);

  /// Outcome of a delta-chain recovery.
  struct ChainRestoreResult {
    bool ok{false};               ///< A valid keyframe restored.
    std::size_t deltas_applied{0};
    std::size_t waves_rejected{0};  ///< Damaged/unlinked waves skipped.
    std::uint64_t seq{0};           ///< Last applied wave.
  };

  /// Recover the session population from the wave chain in
  /// cfg.checkpoint_dir: newest valid keyframe + the longest contiguous
  /// valid run of deltas after it (torn or corrupt waves are rejected as
  /// units and reported). On success the next periodic wave is forced to
  /// be a keyframe, re-anchoring the chain.
  ChainRestoreResult restore_chain();

  /// Cumulative delta-chain persistence counters (soak bench, statusz).
  struct CheckpointStats {
    std::uint64_t waves{0};
    std::uint64_t keyframes{0};
    std::uint64_t keyframe_records{0};
    std::uint64_t delta_records{0};
    std::uint64_t keyframe_bytes{0};
    std::uint64_t delta_bytes{0};
    std::uint64_t publish_failures{0};
    /// Waves published synchronously because the committer queue was
    /// full (explicit backpressure, never a silent drop).
    std::uint64_t sync_fallbacks{0};
  };
  CheckpointStats checkpoint_stats() const;

  /// Serialize + publish one wave into cfg.checkpoint_dir right now
  /// (async via the committer when configured, else synchronously),
  /// regardless of the checkpoint period. Clean-shutdown flush: the
  /// periodic path only fires on the next submit, so a server that goes
  /// quiet would otherwise leave its last epochs off the chain.
  void checkpoint_wave_now();

  /// Remove one session for migration: pin it against TTL eviction, wait
  /// for its strand to drain (quiesce), serialize it as a standalone
  /// kMigrate payload (snapshot header + one session record), then erase
  /// it from this server. Subsequent frames for the id get
  /// kUnknownSession. nullopt when the id is not live here.
  std::optional<std::vector<std::uint8_t>> extract_session(std::uint64_t id);

  /// Install a session from a kMigrate payload produced by
  /// extract_session (or by the shard-recovery checkpoint splitter). The
  /// record's session id must equal `expected_id` (the frame's routing
  /// id). Returns nullopt on success, else the error to reply with:
  /// kMalformed for any framing/codec violation, kSessionExists when the
  /// id is already live here. On failure no session state changes.
  std::optional<ErrorCode> adopt_session(
      const std::vector<std::uint8_t>& payload, std::uint64_t expected_id);

  /// Simulate a process crash: all in-RAM session state is lost (the
  /// object survives so callers holding references keep working, as a
  /// restarted process would reuse the same address). Pair with
  /// restore() to model crash recovery from the last checkpoint.
  void crash();

  /// Stop intake, drain in-flight epochs, join workers. Idempotent.
  void shutdown();

  std::size_t live_sessions() const { return sessions_.size(); }
  const ServerConfig& config() const { return cfg_; }

  /// Point-in-time health snapshot (sessions sorted by id). The same
  /// data the kStatus frame serves; exposed for the CLI's --statusz.
  ServerStatus status();

 private:
  /// mu guards only the histograms (multi-field observe is not atomic);
  /// counters and gauges are internally atomic and recorded lock-free.
  struct Instruments {
    std::mutex mu;
    obs::Gauge* live_sessions{nullptr};
    obs::Gauge* queue_depth{nullptr};
    obs::Counter* accepted{nullptr};
    obs::Counter* rejected{nullptr};
    obs::Counter* evicted{nullptr};
    obs::Counter* malformed{nullptr};
    obs::Counter* status_requests{nullptr};
    obs::Histogram* request_us{nullptr};
    obs::Histogram* parse_us{nullptr};
    obs::Histogram* locate_us{nullptr};
    obs::Histogram* net_us{nullptr};
    // Fast-path pipeline health (populated only when use_fast_path):
    // likelihood-cache outcomes aggregated across sessions, and the
    // arena footprint of the most recently served session.
    obs::Counter* perf_cache_hits{nullptr};
    obs::Counter* perf_cache_misses{nullptr};
    obs::Gauge* perf_scratch_bytes{nullptr};
  };

  using Promise = std::shared_ptr<std::promise<std::vector<std::uint8_t>>>;

  std::uint64_t now_us() const;
  void count_malformed();
  void count_accepted();
  void note_live_sessions();
  std::future<std::vector<std::uint8_t>> reply_now(const Frame& reply);

  void handle_hello(const Frame& frame, const Promise& promise);
  void handle_epoch(Frame frame, const Promise& promise);
  void handle_bye(const Frame& frame, const Promise& promise);
  void handle_status(const Frame& frame, const Promise& promise);
  void handle_migrate(const Frame& frame, const Promise& promise);
  /// Runs on a worker (or inline): parse payload, run the epoch, reply.
  /// `accepted_at` was started when submit() accepted the frame, so
  /// svc.request_us includes the queue wait. `root`/`queue_wait` are the
  /// epoch's open spans (zero handles when tracing is detached): the
  /// queue-wait span closes on entry, children hang off `root`.
  void run_epoch(Session& session, const std::vector<std::uint8_t>& payload,
                 std::uint64_t session_id, const Promise& promise,
                 obs::Stopwatch accepted_at, obs::SpanHandle root,
                 obs::SpanHandle queue_wait);
  /// Take a periodic snapshot when the checkpoint period elapsed.
  void maybe_checkpoint();

  ServerConfig cfg_;
  UnilocFactory factory_;
  obs::MetricsRegistry* registry_{nullptr};  ///< For statusz dumps.
  SessionManager sessions_;
  ThreadPool pool_;
  EpochBatcher batcher_;
  Instruments ins_;
  std::mutex lifecycle_mu_;  ///< Guards stopping_ + accepted_count_.
  bool stopping_{false};
  std::size_t accepted_since_scan_{0};
  std::uint64_t last_checkpoint_us_{0};
  /// Delta-chain state (guarded by chain_mu_; serialization itself runs
  /// outside the lock -- waves are produced by one thread at a time, the
  /// submit path's maybe_checkpoint or an explicit snapshot_wave call).
  mutable std::mutex chain_mu_;
  std::uint64_t wave_seq_{0};
  std::size_t waves_since_keyframe_{0};
  /// Start keyframed; also re-set after a chain restore or a publish
  /// failure so the chain re-anchors instead of chaining onto a wave
  /// that may not be durable.
  bool force_keyframe_{true};
  CheckpointStats ckpt_stats_{};
};

}  // namespace uniloc::svc
