// Multi-tenant session store: mutex-striped map + per-session strand.
//
// Each session owns one core::Uniloc (its trained ensemble, filters, and
// duty-cycle state) and a bounded inbox of pending epoch tasks. The inbox
// is a *strand*: a session's tasks run strictly in arrival order and
// never concurrently with each other, while distinct sessions run in
// parallel on whatever workers pick up their drains. The enqueue/drain
// split is deliberately pool-agnostic so tests can drive it by hand:
//
//   switch (session->enqueue(task, capacity)) {
//     case kStartDrain:  pool.post([s]{ s->drain(); });  // first task
//     case kQueued:      break;          // a drain is already running
//     case kBackpressure: reject;        // inbox full -- explicit signal
//   }
//
// The SessionManager shards sessions over `stripes` independently-locked
// maps so create/lookup/evict on different stripes never contend. Idle
// sessions (no activity for idle_ttl) are evicted by evict_idle(); a
// session with queued or running work is never evicted.
#pragma once

#include <cstdint>

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/epoch_scratch.h"
#include "core/uniloc.h"

namespace uniloc::svc {

class Session {
 public:
  using Task = std::function<void()>;

  enum class Enqueue : std::uint8_t {
    kStartDrain,    ///< Accepted; caller must schedule drain().
    kQueued,        ///< Accepted; an active drain will pick it up.
    kBackpressure,  ///< Inbox full; task was NOT accepted.
  };

  Session(std::uint64_t id, std::unique_ptr<core::Uniloc> uniloc)
      : id_(id), uniloc_(std::move(uniloc)) {}

  std::uint64_t id() const { return id_; }
  core::Uniloc& uniloc() { return *uniloc_; }

  /// The session's epoch scratch arena. Only ever touched from the
  /// session strand (drain() runs on one worker at a time), which is the
  /// single-writer guarantee the arena needs (DESIGN.md section 11).
  core::EpochScratch& scratch() { return scratch_; }

  /// Last cache-counter totals already reported to the server's perf
  /// counters; strand-only, like the scratch arena.
  struct PerfCursor {
    std::uint64_t cache_hits{0};
    std::uint64_t cache_misses{0};
  };
  PerfCursor& perf_cursor() { return perf_cursor_; }

  /// Accept `task` unless `capacity` tasks are already pending.
  /// Also stamps last-active to `now_us`.
  Enqueue enqueue(Task task, std::size_t capacity, std::uint64_t now_us);

  /// Run every pending task in order, then go idle. Called by exactly one
  /// worker at a time (guaranteed by the kStartDrain handshake).
  void drain();

  /// Claim the strand for a non-task critical section (the checkpoint
  /// serializer). Blocks until the running drain (if any) goes idle, then
  /// holds the strand so no worker can start another one: `fn` gets the
  /// same single-writer view of the Uniloc state an epoch task has, even
  /// with live traffic on other threads. Frames that arrive meanwhile
  /// queue behind the critical section and are drained -- in arrival
  /// order, on this thread -- before run_exclusive returns.
  void run_exclusive(const Task& fn);

  /// True when no task is queued or running (eviction safety check).
  bool idle() const;

  /// Pin the session against TTL eviction. Set while a migration drains
  /// the strand and serializes the state: the session must not vanish
  /// between "chosen to move" and "erased from the source shard", even
  /// if a TTL scan fires in that window. Cleared implicitly when the
  /// migration erases the session (pin state travels with the object).
  void set_pinned(bool pinned);
  bool pinned() const;

  /// Refresh the last-active stamp without enqueuing work.
  void touch(std::uint64_t now_us);

  /// Reinstate checkpointed bookkeeping after a restore; the normal paths
  /// (enqueue stamps last-active, drain counts epochs) must not run for
  /// snapshot traffic or the restored run would diverge from the original.
  void restore_bookkeeping(std::uint64_t last_active_us,
                           std::size_t epochs_served);

  std::uint64_t last_active_us() const;
  std::size_t epochs_served() const;
  /// Pending strand work: queued tasks plus the running one, if any.
  std::size_t queue_depth() const;

  /// Dirty tracking for delta checkpoints. drain() bumps a change mark
  /// after every task; the checkpoint wave reads dirty() and calls
  /// mark_clean() *inside its run_exclusive section*, so the clean mark
  /// records exactly the state the wave serialized -- any task that runs
  /// afterwards re-dirties the session for the next wave. Fresh sessions
  /// start dirty (mark 1 vs clean mark 0): a session that never served
  /// an epoch still must reach the first keyframe.
  bool dirty() const;
  void mark_clean();

 private:
  const std::uint64_t id_;
  std::unique_ptr<core::Uniloc> uniloc_;
  core::EpochScratch scratch_;
  PerfCursor perf_cursor_;

  mutable std::mutex mu_;
  /// Pending-task ring: index math over a never-shrinking vector rather
  /// than std::deque, whose block cursor allocates a fresh node every
  /// ~16 tasks even in steady push/pop cycles. The batched drain path's
  /// contract is zero steady-state allocations
  /// (tests/test_perf_contracts.cc), so the ring grows geometrically on
  /// demand and then recycles its slots forever.
  std::vector<Task> inbox_;
  std::size_t inbox_head_{0};
  std::size_t inbox_count_{0};
  bool draining_{false};
  bool pinned_{false};
  std::uint64_t last_active_us_{0};
  std::size_t epochs_served_{0};
  /// Monotonic state-change counter vs. the mark the last checkpoint
  /// wave consumed. Starts at 1 vs 0: new sessions are dirty.
  std::uint64_t dirty_mark_{1};
  std::uint64_t clean_mark_{0};
};

using SessionPtr = std::shared_ptr<Session>;

class SessionManager {
 public:
  explicit SessionManager(std::size_t stripes = 8);

  /// Insert a fresh session. Returns nullptr when `id` is already live.
  SessionPtr create(std::uint64_t id, std::unique_ptr<core::Uniloc> uniloc,
                    std::uint64_t now_us);

  /// nullptr when unknown.
  SessionPtr find(std::uint64_t id) const;

  bool erase(std::uint64_t id);

  /// Evict every idle session older than `idle_ttl_us`. Returns the
  /// number evicted. Busy sessions (queued/running work) are skipped.
  /// `evicted_ids` (optional) collects the ids that were dropped, so the
  /// caller can propagate the departure -- e.g. the shard router must
  /// erase its affinity override or it pins a dead session's placement
  /// forever (the unbounded-overrides bug this parameter fixes).
  std::size_t evict_idle(std::uint64_t now_us, std::uint64_t idle_ttl_us,
                         std::vector<std::uint64_t>* evicted_ids = nullptr);

  std::size_t size() const;
  std::size_t stripes() const { return stripes_.size(); }

  /// All live sessions, sorted by id (deterministic checkpoint order).
  std::vector<SessionPtr> all() const;

  /// Drop every session (crash simulation / failed-restore cleanup).
  void clear();

  /// Stripe index of a session id (exposed for the distribution test).
  std::size_t stripe_of(std::uint64_t id) const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<SessionPtr> sessions;  ///< Small per-stripe population.
  };

  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace uniloc::svc
