#include "svc/session_manager.h"

#include <algorithm>
#include <thread>

namespace uniloc::svc {

Session::Enqueue Session::enqueue(Task task, std::size_t capacity,
                                  std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inbox_count_ >= capacity) return Enqueue::kBackpressure;
  if (inbox_count_ == inbox_.size()) {
    // Ring full: rotate the live span to the front of a larger vector.
    // Amortized -- the ring never shrinks, so a warmed-up session stops
    // allocating entirely.
    std::vector<Task> grown;
    grown.reserve(std::max<std::size_t>(8, inbox_.size() * 2));
    for (std::size_t i = 0; i < inbox_count_; ++i) {
      grown.push_back(std::move(inbox_[(inbox_head_ + i) % inbox_.size()]));
    }
    grown.resize(grown.capacity());
    inbox_ = std::move(grown);
    inbox_head_ = 0;
  }
  inbox_[(inbox_head_ + inbox_count_) % inbox_.size()] = std::move(task);
  ++inbox_count_;
  last_active_us_ = now_us;
  if (draining_) return Enqueue::kQueued;
  draining_ = true;
  return Enqueue::kStartDrain;
}

void Session::drain() {
  for (;;) {
    Task task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (inbox_count_ == 0) {
        draining_ = false;
        return;
      }
      task = std::move(inbox_[inbox_head_]);
      inbox_head_ = (inbox_head_ + 1) % inbox_.size();
      --inbox_count_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++epochs_served_;
      // Every strand task may have advanced the Uniloc state; the delta
      // checkpoint wave keys off this mark (see dirty()).
      ++dirty_mark_;
    }
  }
}

void Session::run_exclusive(const Task& fn) {
  // Claim the strand exactly as the kStartDrain handshake would: once
  // draining_ flips to true here, enqueue() returns kQueued and no
  // worker schedules a drain until we hand the strand back below.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!draining_) {
        draining_ = true;
        break;
      }
    }
    std::this_thread::yield();
  }
  fn();
  // Hand the strand back through the normal drain loop: tasks that
  // queued behind the critical section run now, in arrival order, as if
  // a worker had picked up the drain.
  drain();
}

bool Session::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inbox_count_ == 0 && !draining_;
}

void Session::set_pinned(bool pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_ = pinned;
}

bool Session::pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_;
}

void Session::touch(std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  last_active_us_ = now_us;
}

void Session::restore_bookkeeping(std::uint64_t last_active_us,
                                  std::size_t epochs_served) {
  std::lock_guard<std::mutex> lock(mu_);
  last_active_us_ = last_active_us;
  epochs_served_ = epochs_served;
}

std::uint64_t Session::last_active_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_active_us_;
}

std::size_t Session::epochs_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_served_;
}

std::size_t Session::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inbox_count_ + (draining_ ? 1 : 0);
}

bool Session::dirty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_mark_ != clean_mark_;
}

void Session::mark_clean() {
  std::lock_guard<std::mutex> lock(mu_);
  clean_mark_ = dirty_mark_;
}

SessionManager::SessionManager(std::size_t stripes) {
  stripes_.reserve(std::max<std::size_t>(stripes, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(stripes, 1); ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

std::size_t SessionManager::stripe_of(std::uint64_t id) const {
  // Fibonacci hashing spreads sequential ids (the common allocation
  // pattern) uniformly over stripes.
  const std::uint64_t h = id * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(h >> 32) % stripes_.size();
}

SessionPtr SessionManager::create(std::uint64_t id,
                                  std::unique_ptr<core::Uniloc> uniloc,
                                  std::uint64_t now_us) {
  Stripe& stripe = *stripes_[stripe_of(id)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  for (const SessionPtr& s : stripe.sessions) {
    if (s->id() == id) return nullptr;
  }
  SessionPtr session = std::make_shared<Session>(id, std::move(uniloc));
  session->touch(now_us);  // fresh sessions are "active now" for the TTL
  stripe.sessions.push_back(session);
  return session;
}

SessionPtr SessionManager::find(std::uint64_t id) const {
  const Stripe& stripe = *stripes_[stripe_of(id)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  for (const SessionPtr& s : stripe.sessions) {
    if (s->id() == id) return s;
  }
  return nullptr;
}

bool SessionManager::erase(std::uint64_t id) {
  Stripe& stripe = *stripes_[stripe_of(id)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  for (auto it = stripe.sessions.begin(); it != stripe.sessions.end(); ++it) {
    if ((*it)->id() == id) {
      stripe.sessions.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t SessionManager::evict_idle(std::uint64_t now_us,
                                       std::uint64_t idle_ttl_us,
                                       std::vector<std::uint64_t>* evicted_ids) {
  std::size_t evicted = 0;
  for (std::unique_ptr<Stripe>& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    std::erase_if(stripe->sessions, [&](const SessionPtr& s) {
      const bool evict = s->idle() && !s->pinned() &&
                         now_us >= s->last_active_us() &&
                         now_us - s->last_active_us() >= idle_ttl_us;
      if (evict) {
        ++evicted;
        if (evicted_ids != nullptr) evicted_ids->push_back(s->id());
      }
      return evict;
    });
  }
  return evicted;
}

std::size_t SessionManager::size() const {
  std::size_t n = 0;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    n += stripe->sessions.size();
  }
  return n;
}

std::vector<SessionPtr> SessionManager::all() const {
  std::vector<SessionPtr> out;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    out.insert(out.end(), stripe->sessions.begin(), stripe->sessions.end());
  }
  std::sort(out.begin(), out.end(), [](const SessionPtr& a, const SessionPtr& b) {
    return a->id() < b->id();
  });
  return out;
}

void SessionManager::clear() {
  for (std::unique_ptr<Stripe>& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->sessions.clear();
  }
}

}  // namespace uniloc::svc
