// Fixed worker pool over a bounded MPMC task queue.
//
// Semantics chosen for the localization server:
//   * Bounded queue: post() blocks while the queue is at capacity -- the
//     pool itself never drops work (rejection with Backpressure is the
//     per-session inbox's job, one level up).
//   * Graceful shutdown: shutdown() stops intake, lets the workers drain
//     every task already queued, then joins. Idempotent; the destructor
//     calls it.
//   * Exception safety: a task that throws is contained -- the exception
//     is swallowed, counted in task_exceptions(), and the worker keeps
//     serving. A worker thread never dies early.
//   * workers == 0 is the deterministic inline mode: post() runs the task
//     synchronously on the caller's thread, no threads are ever spawned,
//     and execution order is exactly submission order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uniloc::svc {

class ThreadPool {
 public:
  struct Config {
    int workers{0};
    std::size_t queue_capacity{4096};
  };

  explicit ThreadPool(Config cfg);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue (blocking while full) or, with workers == 0, run inline.
  /// Returns false (dropping the task) once shutdown has begun.
  bool post(std::function<void()> task);

  /// Stop intake, drain the queue, join all workers. Idempotent.
  void shutdown();

  int workers() const { return cfg_.workers; }
  std::size_t queue_depth() const;
  /// Workers currently inside a task (occupancy; 0..workers, or 0/1 in
  /// inline mode while the caller runs a task).
  std::size_t active_workers() const;
  std::uint64_t tasks_run() const;
  std::uint64_t task_exceptions() const;

 private:
  void worker_loop();
  void run_task(const std::function<void()>& task);

  Config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_ready_;  ///< Queue non-empty or stopping.
  std::condition_variable cv_space_;  ///< Queue below capacity.
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_{false};
  std::size_t active_{0};
  std::uint64_t tasks_run_{0};
  std::uint64_t task_exceptions_{0};
};

}  // namespace uniloc::svc
