#include "svc/checkpoint.h"

#include <cstdio>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace uniloc::svc {

void write_snapshot_header(offload::ByteWriter& w) {
  w.put_u32(kSnapshotMagic);
  w.put_u8(kSnapshotVersion);
}

bool check_snapshot_header(offload::ByteReader& r) {
  std::uint32_t magic;
  std::uint8_t version;
  if (!r.get_u32(magic) || magic != kSnapshotMagic) return false;
  if (!r.get_u8(version) || version != kSnapshotVersion) return false;
  return true;
}

bool read_session_record_header(offload::ByteReader& r,
                                SessionRecordHeader& out) {
  if (!r.get_u64(out.id) || !r.get_u64(out.last_active_us) ||
      !r.get_u64(out.epochs_served) || !r.get_u32(out.payload_len)) {
    return false;
  }
  return out.payload_len <= r.remaining();
}

std::string checkpoint_path(const std::string& dir) {
  return dir + "/checkpoint.bin";
}

bool write_checkpoint_file(const std::string& dir,
                           const std::vector<std::uint8_t>& bytes) {
  // Temp file in the same directory so the rename is atomic (same fs).
  const std::string tmp = dir + "/checkpoint.bin.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
  // Durability: the data must hit disk before the rename publishes it,
  // otherwise a crash could leave a renamed-but-empty checkpoint.
  ok = ::fsync(::fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  const std::string target = checkpoint_path(dir);
  if (std::rename(tmp.c_str(), target.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> read_checkpoint_file(
    const std::string& dir) {
  std::FILE* f = std::fopen(checkpoint_path(dir).c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return bytes;
}

}  // namespace uniloc::svc
