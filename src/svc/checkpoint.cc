#include "svc/checkpoint.h"

#include <cstdio>

namespace uniloc::svc {

void write_snapshot_header(offload::ByteWriter& w, std::uint8_t version) {
  w.put_u32(kSnapshotMagic);
  w.put_u8(version);
}

bool check_snapshot_header(offload::ByteReader& r, std::uint8_t& version) {
  std::uint32_t magic;
  if (!r.get_u32(magic) || magic != kSnapshotMagic) return false;
  if (!r.get_u8(version)) return false;
  return version == kSnapshotVersion || version == kSnapshotVersionQuantized;
}

bool check_snapshot_header(offload::ByteReader& r) {
  std::uint8_t version;
  return check_snapshot_header(r, version) && version == kSnapshotVersion;
}

bool read_session_record_header(offload::ByteReader& r,
                                SessionRecordHeader& out) {
  if (!r.get_u64(out.id) || !r.get_u64(out.last_active_us) ||
      !r.get_u64(out.epochs_served) || !r.get_u32(out.payload_len)) {
    return false;
  }
  return out.payload_len <= r.remaining();
}

std::string checkpoint_path(const std::string& dir) {
  return dir + "/checkpoint.bin";
}

bool write_checkpoint_file(const std::string& dir,
                           const std::vector<std::uint8_t>& bytes,
                           const FsOps& ops) {
  // write(+fsync) temp -> rename -> fsync dir, all through atomic_publish
  // so the checkpoint file and the delta-chain wave files share one
  // durability discipline (DESIGN.md section 17).
  return atomic_publish(ops, dir, "checkpoint.bin", bytes);
}

std::optional<std::vector<std::uint8_t>> read_checkpoint_file(
    const std::string& dir) {
  std::FILE* f = std::fopen(checkpoint_path(dir).c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  // Stat first: size the buffer once and enforce the hostile-input cap
  // before allocating, instead of growing a vector 4 KB at a time with
  // no bound (the PR-5 read path's bug).
  long size = -1;
  if (std::fseek(f, 0, SEEK_END) == 0) size = std::ftell(f);
  if (size < 0 || static_cast<std::uint64_t>(size) > kMaxCheckpointFileBytes ||
      std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const bool ok =
      bytes.empty() ||
      std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) return std::nullopt;
  return bytes;
}

}  // namespace uniloc::svc
