#include "svc/wire.h"

#include <cmath>

namespace uniloc::svc {

using offload::ByteReader;
using offload::ByteWriter;

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kBadType: return "bad_type";
    case WireError::kBadLength: return "bad_length";
  }
  return "unknown";
}

namespace {

bool known_type(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kEpoch:
    case FrameType::kBye:
    case FrameType::kStatus:
    case FrameType::kMigrate:
    case FrameType::kReply:
    case FrameType::kError:
      return true;
  }
  return false;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(kHeaderBytes - 4 +
                                       frame.payload.size()));
  w.put_u32(kMagic);
  w.put_u8(kVersion);
  w.put_u8(static_cast<std::uint8_t>(frame.type));
  w.put_u64(frame.session_id);
  if (!frame.payload.empty()) {
    w.put_bytes(frame.payload.data(), frame.payload.size());
  }
  return w.take();
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t size) {
  DecodeResult res;
  ByteReader r(data, size);
  std::uint32_t length;
  if (!r.get_u32(length)) {
    res.error = WireError::kTruncated;
    return res;
  }
  if (length < kHeaderBytes - 4 ||
      length > kHeaderBytes - 4 + kMaxPayloadBytes) {
    res.error = WireError::kBadLength;
    return res;
  }
  if (r.remaining() < length) {
    res.error = WireError::kTruncated;
    return res;
  }
  std::uint32_t magic;
  std::uint8_t version, type;
  Frame frame;
  r.get_u32(magic);
  r.get_u8(version);
  r.get_u8(type);
  r.get_u64(frame.session_id);
  if (magic != kMagic) {
    res.error = WireError::kBadMagic;
    return res;
  }
  if (version != kVersion) {
    res.error = WireError::kBadVersion;
    return res;
  }
  if (!known_type(type)) {
    res.error = WireError::kBadType;
    return res;
  }
  frame.type = static_cast<FrameType>(type);
  const std::size_t payload_size = length - (kHeaderBytes - 4);
  frame.payload.assign(data + kHeaderBytes,
                       data + kHeaderBytes + payload_size);
  res.frame = std::move(frame);
  res.consumed = kHeaderBytes + payload_size;
  return res;
}

DecodeResult decode_frame(const std::vector<std::uint8_t>& buf) {
  return decode_frame(buf.data(), buf.size());
}

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello) {
  ByteWriter w;
  w.put_i32(static_cast<std::int32_t>(std::lround(hello.start.x * 100.0)));
  w.put_i32(static_cast<std::int32_t>(std::lround(hello.start.y * 100.0)));
  w.put_i32(static_cast<std::int32_t>(std::lround(hello.heading * 1e6)));
  return w.take();
}

std::optional<HelloPayload> parse_hello(
    const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  std::int32_t x_cm, y_cm, heading_urad;
  if (!r.get_i32(x_cm) || !r.get_i32(y_cm) || !r.get_i32(heading_urad) ||
      r.remaining() != 0) {
    return std::nullopt;
  }
  HelloPayload hello;
  hello.start = {static_cast<double>(x_cm) / 100.0,
                 static_cast<double>(y_cm) / 100.0};
  hello.heading = static_cast<double>(heading_urad) / 1e6;
  return hello;
}

std::vector<std::uint8_t> encode_status_request(StatusFormat format) {
  return {static_cast<std::uint8_t>(format)};
}

std::optional<StatusFormat> parse_status_request(
    const std::vector<std::uint8_t>& buf) {
  if (buf.size() != 1) return std::nullopt;
  switch (static_cast<StatusFormat>(buf[0])) {
    case StatusFormat::kJson:
    case StatusFormat::kPrometheus:
      return static_cast<StatusFormat>(buf[0]);
  }
  return std::nullopt;
}

Frame make_error_frame(std::uint64_t session_id, ErrorCode code) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.session_id = session_id;
  frame.payload = {static_cast<std::uint8_t>(code)};
  return frame;
}

std::optional<ErrorCode> error_code(const Frame& frame) {
  if (frame.type != FrameType::kError || frame.payload.empty()) {
    return std::nullopt;
  }
  return static_cast<ErrorCode>(frame.payload[0]);
}

}  // namespace uniloc::svc
