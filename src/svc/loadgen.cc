#include "svc/loadgen.h"

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "svc/epoch_codec.h"

namespace uniloc::svc {

namespace {

/// One phone-side walker and its protocol state.
struct Client {
  std::uint64_t session_id{0};
  std::size_t walkway{0};
  std::unique_ptr<sim::Walker> walker;
  offload::PhoneAgent phone;
  bool gps_enabled{true};  ///< Last duty decision echoed by the server.
  bool active{true};
  std::size_t submitted{0};
  double error_sum{0.0};
  WalkerOutcome outcome;
};

struct Pending {
  Client* client{nullptr};
  std::future<std::vector<std::uint8_t>> reply;
  geo::Vec2 truth;
  obs::Stopwatch started;
};

}  // namespace

LoadReport run_load(LocalizationServer& server, const core::Deployment& d,
                    const LoadGenConfig& cfg,
                    obs::MetricsRegistry* registry) {
  // The schemes running on worker threads query the shared Place; build
  // its lazy wall index now, while we are still single-threaded.
  d.place->prebuild_wall_index();

  obs::Counter* up_bytes =
      registry != nullptr ? &registry->counter("offload.uplink_bytes")
                          : nullptr;
  obs::Counter* down_bytes =
      registry != nullptr ? &registry->counter("offload.downlink_bytes")
                          : nullptr;

  const std::size_t n_paths = d.place->walkways().size();
  std::vector<Client> clients(cfg.walkers);
  for (std::size_t i = 0; i < cfg.walkers; ++i) {
    Client& c = clients[i];
    c.session_id = cfg.first_session_id + i;
    c.walkway = i % n_paths;
    sim::WalkConfig wc;
    wc.seed = cfg.seed + 17 * i;
    c.walker = std::make_unique<sim::Walker>(d.place.get(), d.radio.get(),
                                             c.walkway, wc);
    c.phone.reset(c.walker->start_heading());
    c.outcome.session_id = c.session_id;
    c.outcome.walkway = c.walkway;

    Frame hello;
    hello.type = FrameType::kHello;
    hello.session_id = c.session_id;
    hello.payload = encode_hello(
        {c.walker->start_position(), c.walker->start_heading()});
    server.submit(encode_frame(hello)).get();
  }

  LoadReport report;
  std::vector<Pending> pending;
  pending.reserve(cfg.walkers * std::max<std::size_t>(cfg.burst, 1));

  const obs::Stopwatch wall;
  for (;;) {
    pending.clear();
    for (Client& c : clients) {
      if (!c.active) continue;
      for (std::size_t b = 0; b < std::max<std::size_t>(cfg.burst, 1); ++b) {
        const bool capped = cfg.max_epochs_per_walker > 0 &&
                            c.submitted >= cfg.max_epochs_per_walker;
        if (c.walker->done() || capped) {
          c.active = false;
          break;
        }
        const sim::SensorFrame frame = c.walker->step(c.gps_enabled);
        const offload::UplinkFrame uplink = c.phone.reduce(frame);

        Frame request;
        request.type = FrameType::kEpoch;
        request.session_id = c.session_id;
        request.payload = encode_epoch(uplink, frame);
        const std::size_t wire_up = epoch_wire_bytes(uplink);

        Pending p;
        p.client = &c;
        p.truth = frame.truth_pos;
        p.reply = server.submit(encode_frame(request));
        pending.push_back(std::move(p));
        ++c.submitted;
        report.traffic.uplink_bytes += wire_up;
        if (up_bytes != nullptr) up_bytes->inc(wire_up);
      }
    }
    if (pending.empty()) break;  // every walker finished

    for (Pending& p : pending) {
      const std::vector<std::uint8_t> reply_bytes = p.reply.get();
      const double latency_us = p.started.elapsed_us();
      Client& c = *p.client;
      const DecodeResult decoded = decode_frame(reply_bytes);
      if (!decoded.frame.has_value()) {
        ++c.outcome.errors;
        continue;
      }
      const Frame& reply = *decoded.frame;
      if (reply.type == FrameType::kError) {
        if (error_code(reply) == ErrorCode::kBackpressure) {
          ++c.outcome.backpressure;
        } else {
          ++c.outcome.errors;
        }
        continue;
      }
      const std::optional<EpochReply> epoch_reply =
          parse_epoch_reply(reply.payload);
      if (!epoch_reply.has_value()) {
        ++c.outcome.errors;
        continue;
      }
      c.gps_enabled = epoch_reply->gps_enable_next;
      const geo::Vec2 estimate = epoch_reply->downlink.decoded();
      c.outcome.final_estimate = estimate;
      c.error_sum += geo::distance(estimate, p.truth);
      ++c.outcome.epochs_accepted;
      report.latencies_us.push_back(latency_us);
      report.traffic.downlink_bytes += reply_wire_bytes();
      ++report.traffic.epochs;
      if (down_bytes != nullptr) down_bytes->inc(reply_wire_bytes());
    }
  }
  report.wall_s = wall.elapsed_us() / 1e6;

  for (Client& c : clients) {
    Frame bye;
    bye.type = FrameType::kBye;
    bye.session_id = c.session_id;
    server.submit(encode_frame(bye)).get();

    if (c.outcome.epochs_accepted > 0) {
      c.outcome.mean_error_m =
          c.error_sum / static_cast<double>(c.outcome.epochs_accepted);
    }
    report.total_epochs += c.outcome.epochs_accepted;
    report.backpressure_total += c.outcome.backpressure;
    report.error_total += c.outcome.errors;
    report.walkers.push_back(c.outcome);
  }
  return report;
}

}  // namespace uniloc::svc
