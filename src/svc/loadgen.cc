#include "svc/loadgen.h"

#include <algorithm>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "core/local_fallback.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "stats/rng.h"
#include "svc/epoch_codec.h"

namespace uniloc::svc {

namespace {

/// One phone-side walker and its protocol + degradation state.
struct Client {
  std::uint64_t session_id{0};
  std::size_t walkway{0};
  std::unique_ptr<sim::Walker> walker;
  offload::PhoneAgent phone;
  std::unique_ptr<Link> link;
  /// Backoff-jitter stream, seeded from (seed, session_id) -- consumed
  /// only on retries, so a clean run never touches it.
  stats::Rng jitter;
  bool gps_enabled{true};  ///< Last duty decision echoed by the server.
  bool active{true};
  std::size_t submitted{0};
  double error_sum{0.0};

  // --- degradation state machine ------------------------------------
  bool degraded{false};
  /// Degraded epochs left before the next server probe (>= 1 invariant).
  std::size_t until_probe{0};
  core::LocalFallback fallback;
  geo::Vec2 last_fix;          ///< Last accepted server estimate.
  bool have_fix{false};
  double last_heading{0.0};    ///< Last quantized step heading seen.

  WalkerOutcome outcome;

  Client() : jitter(0) {}
};

struct Pending {
  Client* client{nullptr};
  std::future<LinkReply> reply;
  geo::Vec2 truth;
  double step_heading{0.0};
  double step_distance{0.0};
  /// Kept verbatim for retransmission after a timeout.
  std::vector<std::uint8_t> request;
  std::size_t wire_up{0};
  bool is_probe{false};  ///< Degraded-mode probe: single attempt, no retry.
  obs::Stopwatch started;
  EpochEvent ev;
  /// Open client.epoch span (zero handle when tracing is detached);
  /// every attempt span hangs off it, and collect() closes it.
  obs::SpanHandle root;
};

struct Instruments {
  obs::Counter* up_bytes{nullptr};
  obs::Counter* down_bytes{nullptr};
  obs::Counter* retries{nullptr};
  obs::Counter* timeouts{nullptr};
  obs::Counter* degraded_enter{nullptr};
  obs::Counter* degraded_exit{nullptr};
  obs::Counter* degraded_epochs{nullptr};
  obs::Counter* rehello{nullptr};
};

struct Ctx {
  const LoadGenConfig& cfg;
  LoadReport& report;
  Instruments ins;
};

void charge_uplink(Ctx& ctx, std::size_t bytes, bool retransmit) {
  ctx.report.traffic.uplink_bytes += bytes;
  if (ctx.ins.up_bytes != nullptr) ctx.ins.up_bytes->inc(bytes);
  if (retransmit) {
    ctx.report.traffic.retransmitted_bytes += bytes;
    ++ctx.report.traffic.retransmits;
  }
}

void record_event(Ctx& ctx, Client& c, const EpochEvent& ev) {
  if (ctx.cfg.resilience.record_timeline) c.outcome.timeline.push_back(ev);
}

void flight_note(Ctx& ctx, std::uint64_t session_id, std::uint64_t epoch,
                 obs::FlightKind kind, std::int64_t a = 0,
                 std::int64_t b = 0, double x = 0.0) {
  if (ctx.cfg.flight == nullptr) return;
  obs::FlightEvent ev;
  ev.session_id = session_id;
  ev.epoch = epoch;
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  ev.x = x;
  ctx.cfg.flight->record(ev);
}

void count_timeout(Ctx& ctx, Client& c) {
  ++c.outcome.timeouts;
  if (ctx.ins.timeouts != nullptr) ctx.ins.timeouts->inc();
}

void enter_degraded(Ctx& ctx, Client& c, EpochEvent& ev) {
  c.degraded = true;
  c.until_probe = std::max<std::size_t>(ctx.cfg.resilience.probe_period, 1);
  ++c.outcome.fallback_entries;
  ev.entered_fallback = true;
  if (ctx.ins.degraded_enter != nullptr) ctx.ins.degraded_enter->inc();
  flight_note(ctx, c.session_id, ev.epoch, obs::FlightKind::kFallbackEnter);
  if (ctx.cfg.resilience.local_fallback) {
    // Dead-reckon from the best position knowledge the phone has: the
    // last server fix, or the walk's start if none ever arrived.
    if (c.have_fix) {
      c.fallback.seed(c.last_fix, c.last_heading);
    } else {
      c.fallback.seed(c.walker->start_position(),
                      c.walker->start_heading());
    }
  }
}

void exit_degraded(Ctx& ctx, Client& c, EpochEvent& ev) {
  c.degraded = false;
  ++c.outcome.fallback_exits;
  ev.exited_fallback = true;
  if (ctx.ins.degraded_exit != nullptr) ctx.ins.degraded_exit->inc();
  flight_note(ctx, c.session_id, ev.epoch, obs::FlightKind::kFallbackExit);
}

/// Serve one epoch without the server: PDR dead-reckoning when the
/// fallback is enabled, otherwise the epoch is counted as an error.
void serve_local(Ctx& ctx, Client& c, geo::Vec2 truth, double heading,
                 double distance, EpochEvent& ev) {
  if (ctx.cfg.resilience.local_fallback && c.fallback.seeded()) {
    const geo::Vec2 estimate = c.fallback.advance(heading, distance);
    ++c.outcome.local_epochs;
    ++ctx.report.local_epochs_total;
    if (ctx.ins.degraded_epochs != nullptr) ctx.ins.degraded_epochs->inc();
    c.error_sum += geo::distance(estimate, truth);
    ev.source = EpochEvent::Source::kLocal;
    ev.estimate = estimate;
    ev.error_m = geo::distance(estimate, truth);
    flight_note(ctx, c.session_id, ev.epoch, obs::FlightKind::kLocalEpoch,
                0, 0, ev.error_m);
  } else {
    ++c.outcome.errors;
    ev.source = EpochEvent::Source::kSkipped;
  }
  ev.degraded_after = c.degraded;
  record_event(ctx, c, ev);
}

/// How much virtual time one failed/late attempt cost the client.
std::uint64_t attempt_cost_us(const LinkReply& r, const RetryPolicy& p) {
  switch (r.status) {
    case LinkReply::Status::kDown:
      return p.unreachable_latency_us;
    case LinkReply::Status::kDropped:
      return p.timeout_us;
    case LinkReply::Status::kOk:
      return std::min<std::uint64_t>(r.delay_us, p.timeout_us);
  }
  return p.timeout_us;
}

enum class Verdict : std::uint8_t {
  kAccepted,
  kRetryable,     ///< Timeout / loss / corruption: resend the same frame.
  kSessionLost,   ///< kUnknownSession: the server evicted us; re-hello.
  kBackpressure,  ///< Explicit overload signal; the epoch is shed, not
                  ///< retried (retrying would amplify the overload).
  kFatal,         ///< kShuttingDown and friends: give up on the epoch.
};

struct Classified {
  Verdict verdict{Verdict::kFatal};
  std::optional<EpochReply> epoch_reply;
};

Classified classify(Ctx& ctx, Client& c, const LinkReply& r,
                    const RetryPolicy& policy) {
  if (r.status != LinkReply::Status::kOk) {
    count_timeout(ctx, c);
    return {Verdict::kRetryable, std::nullopt};
  }
  if (r.delay_us > policy.timeout_us) {
    // The reply exists but arrived after the client stopped waiting.
    count_timeout(ctx, c);
    return {Verdict::kRetryable, std::nullopt};
  }
  const DecodeResult decoded = decode_frame(r.bytes);
  if (!decoded.frame.has_value()) {
    ++c.outcome.errors;  // reply corrupted in transit
    return {Verdict::kRetryable, std::nullopt};
  }
  const Frame& reply = *decoded.frame;
  if (reply.type == FrameType::kError) {
    switch (error_code(reply).value_or(ErrorCode::kMalformed)) {
      case ErrorCode::kBackpressure:
        ++c.outcome.backpressure;
        return {Verdict::kBackpressure, std::nullopt};
      case ErrorCode::kUnknownSession:
        return {Verdict::kSessionLost, std::nullopt};
      case ErrorCode::kMalformed:
        ++c.outcome.errors;  // request corrupted in transit
        return {Verdict::kRetryable, std::nullopt};
      default:
        ++c.outcome.errors;
        return {Verdict::kFatal, std::nullopt};
    }
  }
  const std::optional<EpochReply> epoch_reply =
      parse_epoch_reply(reply.payload);
  if (!epoch_reply.has_value()) {
    ++c.outcome.errors;
    return {Verdict::kRetryable, std::nullopt};
  }
  return {Verdict::kAccepted, epoch_reply};
}

void accept_reply(Ctx& ctx, Client& c, Pending& p, const EpochReply& reply,
                  std::size_t attempts) {
  c.gps_enabled = reply.gps_enable_next;
  const geo::Vec2 estimate = reply.downlink.decoded();
  c.outcome.final_estimate = estimate;
  c.last_fix = estimate;
  c.have_fix = true;
  c.error_sum += geo::distance(estimate, p.truth);
  ++c.outcome.epochs_accepted;
  ctx.report.latencies_us.push_back(p.started.elapsed_us());
  ctx.report.traffic.downlink_bytes += reply_wire_bytes();
  ++ctx.report.traffic.epochs;
  if (ctx.ins.down_bytes != nullptr) {
    ctx.ins.down_bytes->inc(reply_wire_bytes());
  }
  p.ev.source = EpochEvent::Source::kServer;
  p.ev.attempts = attempts;
  p.ev.estimate = estimate;
  p.ev.error_m = geo::distance(estimate, p.truth);
  flight_note(ctx, c.session_id, p.ev.epoch,
              obs::FlightKind::kEpochAccepted,
              static_cast<std::int64_t>(attempts), 0, p.ev.error_m);
  if (c.degraded) exit_degraded(ctx, c, p.ev);
  p.ev.degraded_after = c.degraded;
  record_event(ctx, c, p.ev);
}

/// Resend the pending epoch frame (a retransmission: the radio pays
/// again, and the retry counters advance). `attempt` is the 1-based
/// attempt number this send represents.
LinkReply resend(Ctx& ctx, Client& c, Pending& p, std::size_t attempt) {
  ++c.outcome.retries;
  if (ctx.ins.retries != nullptr) ctx.ins.retries->inc();
  flight_note(ctx, c.session_id, p.ev.epoch, obs::FlightKind::kRetry,
              static_cast<std::int64_t>(attempt));
  charge_uplink(ctx, p.wire_up, /*retransmit=*/true);
  if (ctx.cfg.tracer != nullptr) {
    const obs::SpanHandle span =
        ctx.cfg.tracer->begin("client.attempt", "client", p.root.trace_id,
                              p.root.span_id, c.session_id);
    obs::TraceScope scope({p.root.trace_id, span.span_id, c.session_id});
    LinkReply r = c.link->send(p.request).get();
    ctx.cfg.tracer->end(span, "retry");
    return r;
  }
  return c.link->send(p.request).get();
}

/// Re-open the session, seeded at the phone's best local estimate, so
/// server and phone reconcile after an eviction. Returns true when the
/// server acknowledged (or reported the session still live).
bool try_rehello(Ctx& ctx, Client& c, Pending& p) {
  HelloPayload hello;
  if (ctx.cfg.resilience.local_fallback && c.fallback.seeded()) {
    hello.start = c.fallback.estimate();
    hello.heading = c.fallback.heading();
  } else if (c.have_fix) {
    hello.start = c.last_fix;
    hello.heading = c.last_heading;
  } else {
    hello.start = c.walker->start_position();
    hello.heading = c.walker->start_heading();
  }
  Frame frame;
  frame.type = FrameType::kHello;
  frame.session_id = c.session_id;
  frame.payload = encode_hello(hello);
  charge_uplink(ctx, kHeaderBytes + HelloPayload::kBytes,
                /*retransmit=*/false);
  LinkReply r;
  {
    obs::ScopedSpan span(ctx.cfg.tracer, "client.rehello", "client",
                         p.root.trace_id, p.root.span_id, c.session_id);
    obs::TraceScope scope({p.root.trace_id, span.id(), c.session_id});
    r = c.link->send(encode_frame(frame)).get();
  }
  if (r.status != LinkReply::Status::kOk ||
      r.delay_us > ctx.cfg.resilience.retry.timeout_us) {
    count_timeout(ctx, c);
    return false;
  }
  const DecodeResult decoded = decode_frame(r.bytes);
  if (!decoded.frame.has_value()) {
    ++c.outcome.errors;
    return false;
  }
  const Frame& reply = *decoded.frame;
  const bool ok =
      reply.type == FrameType::kReply ||
      (reply.type == FrameType::kError &&
       error_code(reply) == ErrorCode::kSessionExists);
  if (!ok) {
    ++c.outcome.errors;
    return false;
  }
  ++c.outcome.rehellos;
  if (ctx.ins.rehello != nullptr) ctx.ins.rehello->inc();
  flight_note(ctx, c.session_id, p.ev.epoch, obs::FlightKind::kRehello);
  p.ev.rehello = true;
  return true;
}

/// Drive one pending epoch to completion: classify the reply, retry with
/// backoff within budget, re-hello on session loss, and fall back to the
/// local dead-reckoner when the budget is exhausted. Returns the note
/// for the epoch's root span.
const char* collect_reply(Ctx& ctx, Pending& p) {
  Client& c = *p.client;
  const RetryPolicy& policy = ctx.cfg.resilience.retry;
  const std::size_t budget = p.is_probe ? 1 : 1 + policy.max_retries;
  std::size_t attempts = 1;
  bool rehello_burned = false;

  LinkReply r = p.reply.get();
  for (;;) {
    Classified cls = classify(ctx, c, r, policy);
    switch (cls.verdict) {
      case Verdict::kAccepted:
        accept_reply(ctx, c, p, *cls.epoch_reply, attempts);
        return "accepted";
      case Verdict::kBackpressure:
      case Verdict::kFatal:
        p.ev.source = EpochEvent::Source::kSkipped;
        p.ev.attempts = attempts;
        p.ev.degraded_after = c.degraded;
        record_event(ctx, c, p.ev);
        return "shed";
      case Verdict::kSessionLost:
        if (!rehello_burned) {
          rehello_burned = true;
          if (try_rehello(ctx, c, p)) {
            ++attempts;
            r = resend(ctx, c, p, attempts);
            continue;
          }
        }
        break;  // fall through to the retry/give-up path
      case Verdict::kRetryable:
        break;
    }

    if (ctx.cfg.clock != nullptr) {
      ctx.cfg.clock->advance_us(attempt_cost_us(r, policy));
    }
    if (attempts >= budget) {
      // Budget exhausted: the link is declared down for this phone.
      p.ev.attempts = attempts;
      flight_note(ctx, c.session_id, p.ev.epoch, obs::FlightKind::kTimeout,
                  static_cast<std::int64_t>(attempts));
      if (!c.degraded) {
        enter_degraded(ctx, c, p.ev);
      } else {
        // Failed probe: back off for another probe_period epochs.
        c.until_probe =
            std::max<std::size_t>(ctx.cfg.resilience.probe_period, 1);
      }
      serve_local(ctx, c, p.truth, p.step_heading, p.step_distance, p.ev);
      return "degraded";
    }
    const std::uint64_t backoff =
        policy.backoff_us(attempts - 1, c.jitter.uniform());
    if (ctx.cfg.clock != nullptr) ctx.cfg.clock->advance_us(backoff);
    ++attempts;
    r = resend(ctx, c, p, attempts);
  }
}

void collect(Ctx& ctx, Pending& p) {
  const char* note = collect_reply(ctx, p);
  if (ctx.cfg.tracer != nullptr) ctx.cfg.tracer->end(p.root, note);
}

}  // namespace

LoadReport run_load(Endpoint& server, const core::Deployment& d,
                    const LoadGenConfig& cfg,
                    obs::MetricsRegistry* registry) {
  // The schemes running on worker threads query the shared Place; build
  // its lazy wall index now, while we are still single-threaded.
  d.place->prebuild_wall_index();

  LoadReport report;
  Ctx ctx{cfg, report, {}};
  if (registry != nullptr) {
    ctx.ins.up_bytes = &registry->counter("offload.uplink_bytes");
    ctx.ins.down_bytes = &registry->counter("offload.downlink_bytes");
    ctx.ins.retries = &registry->counter("fault.retries");
    ctx.ins.timeouts = &registry->counter("fault.timeouts");
    ctx.ins.degraded_enter = &registry->counter("svc.degraded.enter");
    ctx.ins.degraded_exit = &registry->counter("svc.degraded.exit");
    ctx.ins.degraded_epochs = &registry->counter("svc.degraded.epochs");
    ctx.ins.rehello = &registry->counter("svc.degraded.rehello");
  }

  const std::size_t n_paths = d.place->walkways().size();
  std::vector<Client> clients(cfg.walkers);
  for (std::size_t i = 0; i < cfg.walkers; ++i) {
    Client& c = clients[i];
    c.session_id = cfg.first_session_id + i;
    c.walkway = i % n_paths;
    sim::WalkConfig wc = cfg.walk;
    wc.seed = cfg.seed + 17 * i;
    c.walker = std::make_unique<sim::Walker>(d.place.get(), d.radio.get(),
                                             c.walkway, wc);
    c.phone.reset(c.walker->start_heading());
    c.last_heading = c.walker->start_heading();
    c.jitter = stats::Rng(stats::hash_combine(cfg.seed, c.session_id));
    c.outcome.session_id = c.session_id;
    c.outcome.walkway = c.walkway;

    // The initial hello runs over the perfect wire: a deployment pairs
    // the phone with the service before it walks into trouble, and the
    // fault schedule's send indices then line up with epoch submissions.
    Frame hello;
    hello.type = FrameType::kHello;
    hello.session_id = c.session_id;
    hello.payload = encode_hello(
        {c.walker->start_position(), c.walker->start_heading()});
    server.submit(encode_frame(hello)).get();

    c.link = cfg.make_link ? cfg.make_link(server, c.session_id)
                           : std::make_unique<DirectLink>(&server);
  }

  std::vector<Pending> pending;
  pending.reserve(cfg.walkers * std::max<std::size_t>(cfg.burst, 1));

  const obs::Stopwatch wall;
  std::size_t round_index = 0;
  for (;;) {
    pending.clear();
    if (cfg.clock != nullptr) cfg.clock->advance_s(cfg.epoch_period_s);
    for (Client& c : clients) {
      if (!c.active) continue;
      for (std::size_t b = 0; b < std::max<std::size_t>(cfg.burst, 1); ++b) {
        const bool capped = cfg.max_epochs_per_walker > 0 &&
                            c.submitted >= cfg.max_epochs_per_walker;
        if (c.walker->done() || capped) {
          c.active = false;
          break;
        }
        const sim::SensorFrame frame = c.walker->step(c.gps_enabled);
        const offload::UplinkFrame uplink = c.phone.reduce(frame);
        const double step_heading =
            uplink.step.has_value() ? uplink.step->heading() : c.last_heading;
        const double step_distance =
            uplink.step.has_value() ? uplink.step->distance() : 0.0;
        c.last_heading = step_heading;

        EpochEvent ev;
        ev.epoch = c.submitted;
        ++c.submitted;

        bool probe = false;
        if (c.degraded) {
          --c.until_probe;
          if (c.until_probe == 0) {
            probe = true;  // this epoch goes to the server as a probe
          } else {
            serve_local(ctx, c, frame.truth_pos, step_heading,
                        step_distance, ev);
            continue;
          }
        }

        Frame request;
        request.type = FrameType::kEpoch;
        request.session_id = c.session_id;
        request.payload = encode_epoch(uplink, frame);

        Pending p;
        p.client = &c;
        p.truth = frame.truth_pos;
        p.step_heading = step_heading;
        p.step_distance = step_distance;
        p.request = encode_frame(request);
        p.wire_up = epoch_wire_bytes(uplink);
        p.is_probe = probe;
        p.ev = ev;
        charge_uplink(ctx, p.wire_up, /*retransmit=*/false);
        flight_note(ctx, c.session_id, ev.epoch,
                    obs::FlightKind::kEpochSubmit, 0, probe ? 1 : 0);
        if (cfg.tracer != nullptr) {
          p.root = cfg.tracer->begin("client.epoch", "client",
                                     cfg.tracer->next_trace_id(), 0,
                                     c.session_id);
          const obs::SpanHandle attempt =
              cfg.tracer->begin("client.attempt", "client", p.root.trace_id,
                                p.root.span_id, c.session_id);
          obs::TraceScope scope(
              {p.root.trace_id, attempt.span_id, c.session_id});
          p.reply = c.link->send(p.request);
          cfg.tracer->end(attempt);
        } else {
          p.reply = c.link->send(p.request);
        }
        pending.push_back(std::move(p));
        // Degraded sessions are strictly stop-and-wait: nothing is
        // pipelined behind an outstanding probe.
        if (probe) break;
      }
    }
    bool all_done = true;
    for (const Client& c : clients) {
      if (c.active) {
        all_done = false;
        break;
      }
    }
    for (Pending& p : pending) collect(ctx, p);
    if (cfg.on_round) cfg.on_round(round_index);
    ++round_index;
    if (all_done && pending.empty()) break;  // every walker finished
  }
  report.wall_s = wall.elapsed_us() / 1e6;

  for (Client& c : clients) {
    Frame bye;
    bye.type = FrameType::kBye;
    bye.session_id = c.session_id;
    server.submit(encode_frame(bye)).get();

    const std::size_t estimated =
        c.outcome.epochs_accepted + c.outcome.local_epochs;
    if (estimated > 0) {
      c.outcome.mean_error_m = c.error_sum / static_cast<double>(estimated);
    }
    report.total_epochs += c.outcome.epochs_accepted;
    report.backpressure_total += c.outcome.backpressure;
    report.error_total += c.outcome.errors;
    report.retries_total += c.outcome.retries;
    report.timeouts_total += c.outcome.timeouts;
    report.walkers.push_back(c.outcome);
  }
  return report;
}

}  // namespace uniloc::svc
