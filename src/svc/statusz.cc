#include "svc/statusz.h"

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/slo.h"

namespace uniloc::svc {

namespace {

void write_server_object(obs::JsonWriter& w, const ServerStatus& st) {
  w.key("server").begin_object();
  w.kv("now_us", st.now_us);
  w.kv("stopping", st.stopping);
  w.kv("live_sessions", st.live_sessions);
  w.key("pool").begin_object();
  w.kv("workers", st.workers);
  w.kv("queue_depth", st.pool_queue_depth);
  w.kv("active_workers", st.pool_active_workers);
  w.kv("tasks_run", st.pool_tasks_run);
  w.kv("task_exceptions", st.pool_task_exceptions);
  w.end_object();
  w.end_object();
}

void write_sessions_array(obs::JsonWriter& w, const ServerStatus& st) {
  w.key("sessions").begin_array();
  for (const SessionStatus& s : st.sessions) {
    w.begin_object();
    w.kv("id", s.id);
    w.kv("age_us", s.age_us);
    w.kv("epochs_served", s.epochs_served);
    w.kv("queue_depth", s.queue_depth);
    w.end_object();
  }
  w.end_array();
}

void write_slo_object(obs::JsonWriter& w, const obs::SloMonitor* slo) {
  w.key("slo");
  if (slo == nullptr) {
    w.null_value();
    return;
  }
  w.begin_object();
  w.kv("latency_burn_rate", slo->latency_burn_rate());
  w.kv("error_burn_rate", slo->error_burn_rate());
  w.kv("p99_latency_us", slo->p99_latency_us());
  w.kv("breached", slo->breached());
  w.kv("breaches", slo->breaches());
  w.kv("samples", slo->samples());
  w.end_object();
}

}  // namespace

std::string status_json(const ServerStatus& st,
                        const obs::MetricsRegistry* registry,
                        const obs::SloMonitor* slo) {
  obs::JsonWriter w;
  w.begin_object();
  write_server_object(w, st);
  write_sessions_array(w, st);
  write_slo_object(w, slo);
  w.end_object();
  // Registry dump is pre-serialized JSON; splice it in verbatim (same
  // pattern as BenchReport::to_json).
  std::string out = w.str();
  out.pop_back();
  out += ",\"metrics\":";
  out += registry != nullptr ? registry->to_json() : std::string("{}");
  out += '}';
  return out;
}

std::string status_prometheus(const ServerStatus& st,
                              const obs::MetricsRegistry* registry,
                              const obs::SloMonitor* slo) {
  std::string out;
  if (registry != nullptr) out += obs::prometheus_text(*registry);

  const auto gauge = [&out](const std::string& name, std::uint64_t v) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(v) + "\n";
  };
  gauge("uniloc_server_live_sessions", st.live_sessions);
  gauge("uniloc_server_stopping", st.stopping ? 1 : 0);
  gauge("uniloc_server_pool_workers",
        static_cast<std::uint64_t>(st.workers < 0 ? 0 : st.workers));
  gauge("uniloc_server_pool_queue_depth", st.pool_queue_depth);
  gauge("uniloc_server_pool_active_workers", st.pool_active_workers);
  gauge("uniloc_server_pool_tasks_run", st.pool_tasks_run);
  gauge("uniloc_server_pool_task_exceptions", st.pool_task_exceptions);

  // One labeled series per session; emit each TYPE header once.
  if (!st.sessions.empty()) {
    out += "# TYPE uniloc_session_age_us gauge\n";
    out += "# TYPE uniloc_session_epochs_served gauge\n";
    out += "# TYPE uniloc_session_queue_depth gauge\n";
    for (const SessionStatus& s : st.sessions) {
      const std::string label =
          "{session=\"" + std::to_string(s.id) + "\"} ";
      out += "uniloc_session_age_us" + label + std::to_string(s.age_us) +
             "\n";
      out += "uniloc_session_epochs_served" + label +
             std::to_string(s.epochs_served) + "\n";
      out += "uniloc_session_queue_depth" + label +
             std::to_string(s.queue_depth) + "\n";
    }
  }

  if (slo != nullptr && registry == nullptr) {
    // Without a registry the slo.* gauges were never exported; surface
    // the monitor directly so the dump is self-contained either way.
    out += "# TYPE uniloc_slo_latency_burn_rate gauge\n";
    out += "uniloc_slo_latency_burn_rate " +
           std::to_string(slo->latency_burn_rate()) + "\n";
    out += "# TYPE uniloc_slo_error_burn_rate gauge\n";
    out += "uniloc_slo_error_burn_rate " +
           std::to_string(slo->error_burn_rate()) + "\n";
  }
  return out;
}

}  // namespace uniloc::svc
