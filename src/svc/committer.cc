#include "svc/committer.h"

#include <algorithm>

namespace uniloc::svc {

GroupCommitter::GroupCommitter(Options opts)
    : capacity_(std::max<std::size_t>(1, opts.queue_capacity)),
      ops_(FsOps::resolve(opts.ops)),
      thread_([this] { run(); }) {}

GroupCommitter::~GroupCommitter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

bool GroupCommitter::enqueue(Request&& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= capacity_) {
      ++stats_.rejected;
      return false;  // req deliberately untouched: caller may fall back
    }
    queue_.push_back(std::move(req));
    stats_.queue_depth = queue_.size();
  }
  cv_.notify_one();
  return true;
}

void GroupCommitter::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

GroupCommitter::Stats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void GroupCommitter::run() {
  std::vector<Request> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      busy_ = false;
      if (queue_.empty()) {
        drained_.notify_all();
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      }
      if (queue_.empty() && stopping_) return;
      // Take EVERYTHING pending: the whole point is that requests which
      // piled up while the previous batch was fsyncing share one
      // directory sync.
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      stats_.queue_depth = 0;
      busy_ = true;
    }
    commit_batch(batch);
    batch.clear();
  }
}

void GroupCommitter::commit_batch(std::vector<Request>& batch) {
  std::vector<bool> published(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    published[i] =
        publish_no_dirsync(ops_, batch[i].dir, batch[i].name, batch[i].bytes);
  }
  // One directory fsync per distinct directory in the batch; a failed
  // sync demotes every published file in that directory to failed (its
  // rename may not survive a crash).
  std::vector<std::string> dirs;
  for (const Request& r : batch) dirs.push_back(r.dir);
  std::sort(dirs.begin(), dirs.end());
  dirs.erase(std::unique(dirs.begin(), dirs.end()), dirs.end());
  for (const std::string& dir : dirs) {
    if (ops_.fsync_dir(dir)) continue;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].dir == dir) published[i] = false;
    }
  }

  std::uint64_t ok_count = 0, fail_count = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    published[i] ? ++ok_count : ++fail_count;
    if (batch[i].done) batch[i].done(published[i]);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.committed += ok_count;
    stats_.failed += fail_count;
    ++stats_.batches;
    stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, batch.size());
  }
}

}  // namespace uniloc::svc
