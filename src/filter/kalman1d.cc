#include "filter/kalman1d.h"

#include <cmath>

namespace uniloc::filter {

Kalman1d::Kalman1d(double initial_estimate, double initial_sd,
                   double process_sd, double measurement_sd)
    : x_(initial_estimate),
      p_(initial_sd * initial_sd),
      q_(process_sd * process_sd),
      r_(measurement_sd * measurement_sd) {}

double Kalman1d::update(double measurement) {
  // Predict: random walk.
  p_ += q_;
  // Update.
  const double k = p_ / (p_ + r_);
  x_ += k * (measurement - x_);
  p_ *= (1.0 - k);
  return x_;
}

double Kalman1d::sd() const { return std::sqrt(p_); }

}  // namespace uniloc::filter
