#include "filter/hmm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace uniloc::filter {

namespace {
void normalize(std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  if (total <= 0.0) {
    const double u = 1.0 / static_cast<double>(v.size());
    std::fill(v.begin(), v.end(), u);
    return;
  }
  for (double& x : v) x /= total;
}
}  // namespace

Hmm::Hmm(std::size_t num_states,
         std::function<double(std::size_t, std::size_t)> transition)
    : n_(num_states), transition_(std::move(transition)) {
  if (n_ == 0) throw std::invalid_argument("Hmm: zero states");
  reset_uniform();
}

void Hmm::set_belief(std::vector<double> belief) {
  if (belief.size() != n_) throw std::invalid_argument("Hmm: belief size");
  belief_ = std::move(belief);
  normalize(belief_);
}

void Hmm::reset_uniform() {
  belief_.assign(n_, 1.0 / static_cast<double>(n_));
}

void Hmm::step(const std::function<double(std::size_t)>& emission) {
  std::vector<double> next(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const double b = belief_[i];
    if (b <= 0.0) continue;
    for (std::size_t j = 0; j < n_; ++j) {
      next[j] += b * transition_(i, j);
    }
  }
  for (std::size_t j = 0; j < n_; ++j) next[j] *= emission(j);
  normalize(next);
  belief_ = std::move(next);
}

std::size_t Hmm::map_state() const {
  return static_cast<std::size_t>(
      std::max_element(belief_.begin(), belief_.end()) - belief_.begin());
}

std::vector<std::size_t> Hmm::viterbi(
    const std::vector<std::function<double(std::size_t)>>& emissions,
    const std::vector<double>& initial) const {
  if (emissions.empty()) return {};
  if (initial.size() != n_) throw std::invalid_argument("viterbi: initial");
  const double neg_inf = -std::numeric_limits<double>::infinity();
  auto safe_log = [&](double p) { return p > 0.0 ? std::log(p) : neg_inf; };

  std::vector<double> score(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    score[j] = safe_log(initial[j]) + safe_log(emissions[0](j));
  }
  std::vector<std::vector<std::size_t>> back(emissions.size(),
                                             std::vector<std::size_t>(n_, 0));
  for (std::size_t t = 1; t < emissions.size(); ++t) {
    std::vector<double> next(n_, neg_inf);
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t i = 0; i < n_; ++i) {
        const double s = score[i] + safe_log(transition_(i, j));
        if (s > next[j]) {
          next[j] = s;
          back[t][j] = i;
        }
      }
      next[j] += safe_log(emissions[t](j));
    }
    score = std::move(next);
  }
  std::vector<std::size_t> path(emissions.size());
  path.back() = static_cast<std::size_t>(
      std::max_element(score.begin(), score.end()) - score.begin());
  for (std::size_t t = emissions.size() - 1; t > 0; --t) {
    path[t - 1] = back[t][path[t]];
  }
  return path;
}

SecondOrderHmm::SecondOrderHmm(
    std::size_t num_states,
    std::function<double(std::size_t, std::size_t, std::size_t)> transition2)
    : n_(num_states), transition2_(std::move(transition2)) {
  if (n_ == 0) throw std::invalid_argument("SecondOrderHmm: zero states");
  reset_uniform();
}

void SecondOrderHmm::reset_uniform() {
  belief_.assign(n_ * n_, 1.0 / static_cast<double>(n_ * n_));
}

void SecondOrderHmm::step(const std::function<double(std::size_t)>& emission) {
  std::vector<double> next(n_ * n_, 0.0);
  for (std::size_t p = 0; p < n_; ++p) {
    for (std::size_t c = 0; c < n_; ++c) {
      const double b = belief_[p * n_ + c];
      if (b <= 0.0) continue;
      for (std::size_t x = 0; x < n_; ++x) {
        next[c * n_ + x] += b * transition2_(p, c, x);
      }
    }
  }
  for (std::size_t c = 0; c < n_; ++c) {
    const double e = emission(c);
    for (std::size_t p = 0; p < n_; ++p) next[p * n_ + c] *= e;
  }
  normalize(next);
  belief_ = std::move(next);
}

std::vector<double> SecondOrderHmm::marginal() const {
  std::vector<double> m(n_, 0.0);
  for (std::size_t p = 0; p < n_; ++p) {
    for (std::size_t c = 0; c < n_; ++c) m[c] += belief_[p * n_ + c];
  }
  return m;
}

std::size_t SecondOrderHmm::map_state() const {
  const std::vector<double> m = marginal();
  return static_cast<std::size_t>(std::max_element(m.begin(), m.end()) -
                                  m.begin());
}

}  // namespace uniloc::filter
