// Generic 2-D particle filter.
//
// Both the motion-based PDR scheme [7] and the Travi-Navi-style fusion
// scheme [11] maintain ~300 particles that are propagated by the step
// model, weighted (by map constraints and/or RSSI likelihood) and
// systematically resampled. The filter is generic over the motion and
// weighting callbacks so the two schemes share one implementation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "geo/vec2.h"
#include "stats/rng.h"

namespace uniloc::obs {
class Histogram;
class MetricsRegistry;
}  // namespace uniloc::obs

namespace uniloc::filter {

struct Particle {
  geo::Vec2 pos;
  double heading{0.0};      ///< Per-particle heading (rad, CCW from +x).
  double step_scale{1.0};   ///< Per-particle step-length multiplier
                            ///< (gait personalization, paper Sec. III-B).
  double weight{1.0};
};

class ParticleFilter {
 public:
  ParticleFilter(std::size_t num_particles, stats::Rng rng);

  /// Initialize all particles at `pos` with heading jitter `heading_sd`,
  /// position jitter `pos_sd` and step-scale jitter `scale_sd`.
  void init(geo::Vec2 pos, double heading, double pos_sd, double heading_sd,
            double scale_sd);

  /// Propagate every particle by one step of nominal length `step_len`
  /// turned by `dheading` since the last update, with process noise.
  void predict(double step_len, double dheading, double step_len_sd,
               double heading_sd);

  /// Multiply each particle's weight by `likelihood(particle)`.
  /// Weights are renormalized; if all likelihoods are zero the particle
  /// cloud is left unweighted (uniform) to avoid collapse.
  void reweight(const std::function<double(const Particle&)>& likelihood);

  /// Like reweight, but the callback also receives the particle's index
  /// (used to correlate with externally-kept per-particle state such as
  /// pre-step positions for wall-crossing tests).
  void reweight_indexed(
      const std::function<double(std::size_t, const Particle&)>& likelihood);

  /// Systematic resampling. Runs only when the effective sample size
  /// drops below `ess_threshold_fraction * N` (pass 1.0 to always resample).
  void resample(double ess_threshold_fraction = 0.5);

  /// Weighted mean position of the cloud.
  geo::Vec2 mean() const;

  /// Weighted circular-mean heading of the cloud.
  double mean_heading() const;

  /// Weighted positional spread (RMS distance from the mean).
  double spread() const;

  /// Effective sample size 1 / sum(w^2) for normalized weights.
  double effective_sample_size() const;

  const std::vector<Particle>& particles() const { return particles_; }
  std::vector<Particle>& mutable_particles() { return particles_; }
  std::size_t size() const { return particles_.size(); }

  /// Route predict()/resample() latencies into `registry` histograms
  /// `<prefix>.predict_us` / `<prefix>.resample_us`. Null detaches (the
  /// default): detached filters perform no clock reads.
  void attach_metrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

 private:
  void normalize_weights();

  std::vector<Particle> particles_;
  stats::Rng rng_;
  obs::Histogram* predict_us_{nullptr};
  obs::Histogram* resample_us_{nullptr};
};

}  // namespace uniloc::filter
