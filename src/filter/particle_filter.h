// Generic 2-D particle filter, structure-of-arrays fast path.
//
// Both the motion-based PDR scheme [7] and the Travi-Navi-style fusion
// scheme [11] maintain ~300 particles that are propagated by the step
// model, weighted (by map constraints and/or RSSI likelihood) and
// systematically resampled. The filter is generic over the motion and
// weighting callbacks so the two schemes share one implementation.
//
// Storage is structure-of-arrays: positions, headings, step scales and
// weights live in five contiguous double arrays, so the per-epoch sweeps
// (predict, reweight, moments, resample) stream through cache lines
// instead of striding over 40-byte Particle structs. Systematic
// resampling is O(N) and gathers through a single reusable scratch
// buffer -- the filter performs no steady-state allocations after
// construction.
//
// The RNG engine is owned by the filter (seeded at construction or via
// reseed()); call sites never construct their own engines, so the random
// stream is a pure function of (seed, call sequence) and storage-layout
// refactors cannot silently change it. The draw order is part of the
// filter's contract: init() draws (x, y, heading, scale) per particle,
// predict() draws (heading, step) per particle, resample() draws one
// uniform -- in particle-index order. tests/test_differential.cc pins
// this stream bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geo/bbox.h"
#include "geo/vec2.h"
#include "offload/bytes.h"
#include "stats/rng.h"

namespace uniloc::obs {
class Histogram;
class MetricsRegistry;
}  // namespace uniloc::obs

namespace uniloc::filter {

/// Value view of one particle (assembled from the SoA arrays on access;
/// the weighting callbacks receive it by reference to a stack temporary).
struct Particle {
  geo::Vec2 pos;
  double heading{0.0};      ///< Per-particle heading (rad, CCW from +x).
  double step_scale{1.0};   ///< Per-particle step-length multiplier
                            ///< (gait personalization, paper Sec. III-B).
  double weight{1.0};
};

class ParticleFilter {
 public:
  /// Preferred: the filter owns its engine, seeded here.
  ParticleFilter(std::size_t num_particles, std::uint64_t seed);
  /// Transitional: adopt a caller-built engine (same stream as seeding
  /// the filter with whatever seeded `rng`).
  ParticleFilter(std::size_t num_particles, stats::Rng rng);

  /// Restart the random stream as if freshly constructed with `seed`.
  /// Resetting a scheme reseeds instead of rebuilding the filter, so
  /// scratch capacity and attached instruments survive the reset.
  void reseed(std::uint64_t seed);

  /// Initialize all particles at `pos` with heading jitter `heading_sd`,
  /// position jitter `pos_sd` and step-scale jitter `scale_sd`.
  void init(geo::Vec2 pos, double heading, double pos_sd, double heading_sd,
            double scale_sd);

  /// Propagate every particle by one step of nominal length `step_len`
  /// turned by `dheading` since the last update, with process noise.
  void predict(double step_len, double dheading, double step_len_sd,
               double heading_sd);

  /// Multiply each particle's weight by `likelihood(particle)`.
  /// Weights are renormalized; if all likelihoods are zero the particle
  /// cloud is left unweighted (uniform) to avoid collapse.
  /// Templated so call-site lambdas are inlined -- no std::function
  /// wrapper, no heap capture on the hot path.
  template <typename F>
  void reweight(F&& likelihood) {
    reweight_indexed([&likelihood](std::size_t, const Particle& p) {
      return likelihood(p);
    });
  }

  /// Like reweight, but the callback also receives the particle's index
  /// (used to correlate with externally-kept per-particle state such as
  /// pre-step positions for wall-crossing tests).
  template <typename F>
  void reweight_indexed(F&& likelihood) {
    double total = 0.0;
    const std::size_t n = px_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Particle p{{px_[i], py_[i]}, heading_[i], scale_[i], weight_[i]};
      weight_[i] *= likelihood(i, p);
      total += weight_[i];
    }
    if (total <= 0.0) {
      // Every particle was killed (e.g. all crossed a wall): reset to
      // uniform rather than dividing by zero; the caller's map
      // constraints will re-shape the cloud on subsequent updates.
      reset_uniform_weights();
      return;
    }
    for (double& w : weight_) w /= total;
  }

  /// Multiply each particle's weight by `likelihood[i]` for a caller-filled
  /// array of size() entries. This is the commit step of the SIMD reweight
  /// kernels: a vector loop fills one lane per particle, then the weights
  /// are updated here in exactly the accumulation order of
  /// reweight_indexed, so the two entry points are bit-identical.
  void reweight_array(const double* likelihood);

  /// Systematic resampling. Runs only when the effective sample size
  /// drops below `ess_threshold_fraction * N` (pass 1.0 to always resample).
  void resample(double ess_threshold_fraction = 0.5);

  /// Weighted mean position of the cloud.
  geo::Vec2 mean() const;

  /// Weighted circular-mean heading of the cloud.
  double mean_heading() const;

  /// Weighted positional spread (RMS distance from the mean).
  double spread() const;

  /// Effective sample size 1 / sum(w^2) for normalized weights.
  double effective_sample_size() const;

  std::size_t size() const { return px_.size(); }

  // SoA accessors (hot path: no Particle assembly, no copies).
  // The raw-array views feed the lane-per-particle SIMD kernels in the
  // schemes (read-only; writes go through reweight_array / set_weight).
  const double* pos_xs() const { return px_.data(); }
  const double* pos_ys() const { return py_.data(); }
  geo::Vec2 pos(std::size_t i) const { return {px_[i], py_[i]}; }
  double heading(std::size_t i) const { return heading_[i]; }
  double step_scale(std::size_t i) const { return scale_[i]; }
  double weight(std::size_t i) const { return weight_[i]; }
  void set_weight(std::size_t i, double w) { weight_[i] = w; }

  /// Assembled value view of particle `i` (tests, diagnostics).
  Particle particle(std::size_t i) const {
    return {{px_[i], py_[i]}, heading_[i], scale_[i], weight_[i]};
  }

  /// Bytes of reusable SoA + scratch storage (perf.scratch accounting).
  std::size_t storage_bytes() const;

  /// Snapshot codec: particle count, the five SoA arrays, and the RNG
  /// engine state. Because every draw order is pinned (see the contract
  /// above) and the engine is the filter's only hidden state, a restored
  /// filter continues the random stream bit for bit.
  void snapshot_into(offload::ByteWriter& w) const;
  /// Rejects (returns false, filter unchanged) on truncation, a particle
  /// count that does not match this filter's, or a corrupt engine state.
  bool restore_from(offload::ByteReader& r);

  /// Quantized snapshot codec (checkpoint format v2): positions as u16
  /// fixed-point per axis over `venue` (inflated by a fixed margin so
  /// strayed particles stay on the grid), headings as u16 over (-pi, pi],
  /// step scales as u16 over [0.25, 4], weights as u16 relative to the
  /// cloud's max weight (the max restores exactly, so the cloud can never
  /// dequantize to all-zero weights). The RNG engine is bit-exact -- only
  /// the five SoA arrays are lossy, each value off by at most half a grid
  /// step (DESIGN.md section 17 budgets the error). The codec is
  /// *requantization-exact*: restore_from_quantized followed by
  /// snapshot_into_quantized reproduces the identical bytes, so a delta
  /// chain over quantized keyframes is byte-stable.
  void snapshot_into_quantized(offload::ByteWriter& w,
                               const geo::BBox& venue) const;
  /// Hostile-input safe like restore_from: rejects truncation, particle
  /// count mismatch, non-finite grid parameters, and corrupt engine
  /// state, leaving the filter unchanged.
  bool restore_from_quantized(offload::ByteReader& r);

  /// Route predict()/resample() latencies into `registry` histograms
  /// `<prefix>.predict_us` / `<prefix>.resample_us`. Null detaches (the
  /// default): detached filters perform no clock reads.
  void attach_metrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

 private:
  void normalize_weights();
  void reset_uniform_weights();

  // Structure-of-arrays particle storage, index-aligned.
  std::vector<double> px_, py_, heading_, scale_, weight_;
  std::vector<std::uint32_t> pick_;    ///< Resampling ancestor indices.
  std::vector<double> gather_;         ///< Resampling gather scratch.
  // predict() SIMD staging: noise draws are pulled out of the loop (same
  // engine order) so the trig + position update vectorizes.
  std::vector<double> noise_h_, noise_s_, trig_sin_, trig_cos_;
  /// Raw engine words staged by predict()'s vector path; the Box-Muller
  /// transform consumes them elementwise (stats::det_normal_pair).
  std::vector<std::uint64_t> raw_a_, raw_b_;
  stats::Rng rng_;
  obs::Histogram* predict_us_{nullptr};
  obs::Histogram* resample_us_{nullptr};
};

}  // namespace uniloc::filter
