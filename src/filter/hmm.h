// Discrete hidden Markov model: forward filtering and Viterbi decoding.
//
// UniLoc uses an HMM as the online location predictor whose output feeds
// the fingerprint-density feature (paper Sec. III-B: "we use a second
// order HMM, which can provide an acceptable estimation accuracy"). The
// generic machinery lives here; the second-order location predictor built
// on top of it is in location_predictor.h.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace uniloc::filter {

class Hmm {
 public:
  /// `transition(i, j)` = P(next = j | cur = i); rows need not be
  /// pre-normalized, the filter normalizes the posterior.
  /// `num_states` must be > 0.
  Hmm(std::size_t num_states,
      std::function<double(std::size_t, std::size_t)> transition);

  std::size_t num_states() const { return n_; }

  /// Reset the belief to a distribution (normalized internally).
  void set_belief(std::vector<double> belief);

  /// Reset to the uniform distribution.
  void reset_uniform();

  /// One forward step: belief <- normalize(emission .* (T' * belief)).
  /// `emission(j)` = P(observation | state j).
  void step(const std::function<double(std::size_t)>& emission);

  /// Current filtered belief (sums to 1).
  const std::vector<double>& belief() const { return belief_; }

  /// Index of the most probable current state.
  std::size_t map_state() const;

  /// Viterbi decoding of an observation sequence given an initial
  /// distribution; returns the most likely state path.
  std::vector<std::size_t> viterbi(
      const std::vector<std::function<double(std::size_t)>>& emissions,
      const std::vector<double>& initial) const;

 private:
  std::size_t n_;
  std::function<double(std::size_t, std::size_t)> transition_;
  std::vector<double> belief_;
};

/// Lift a first-order chain over `n` states into the equivalent
/// second-order chain over n^2 composite states (prev, cur). The composite
/// transition allows (p,c) -> (c,n) only and scores it with
/// `transition2(p, c, n)`.
class SecondOrderHmm {
 public:
  SecondOrderHmm(
      std::size_t num_states,
      std::function<double(std::size_t, std::size_t, std::size_t)> transition2);

  std::size_t num_states() const { return n_; }

  /// Belief over composite states is maintained internally; observations
  /// address the *current* primitive state.
  void reset_uniform();
  void step(const std::function<double(std::size_t)>& emission);

  /// Marginal belief over the current primitive state.
  std::vector<double> marginal() const;

  /// Most probable current primitive state.
  std::size_t map_state() const;

 private:
  std::size_t n_;
  std::function<double(std::size_t, std::size_t, std::size_t)> transition2_;
  std::vector<double> belief_;  ///< size n^2, index = prev * n + cur.
};

}  // namespace uniloc::filter
