// Scalar Kalman filter (random-walk state model).
//
// Used for the online device-heterogeneity RSSI offset calibration
// (RSSI_A = alpha * RSSI_B + delta, paper Sec. III-B) and for smoothing
// heading estimates in the IMU front-end.
#pragma once

namespace uniloc::filter {

class Kalman1d {
 public:
  /// `process_sd`: per-step random-walk drift of the hidden state;
  /// `measurement_sd`: observation noise.
  Kalman1d(double initial_estimate, double initial_sd, double process_sd,
           double measurement_sd);

  /// Incorporate one measurement; returns the updated estimate.
  double update(double measurement);

  double estimate() const { return x_; }
  double sd() const;
  double variance() const { return p_; }

  /// Overwrite the mutable state (estimate + variance) -- snapshot
  /// restore. The process/measurement noise parameters are configuration
  /// and stay as constructed.
  void set_state(double estimate, double variance) {
    x_ = estimate;
    p_ = variance;
  }

 private:
  double x_;
  double p_;  ///< Estimate variance.
  double q_;  ///< Process variance.
  double r_;  ///< Measurement variance.
};

}  // namespace uniloc::filter
