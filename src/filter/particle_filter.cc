#include "filter/particle_filter.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "stats/rng_codec.h"
#include "stats/simd.h"
#include "stats/vecmath.h"

namespace uniloc::filter {

ParticleFilter::ParticleFilter(std::size_t num_particles, std::uint64_t seed)
    : ParticleFilter(num_particles, stats::Rng(seed)) {}

ParticleFilter::ParticleFilter(std::size_t num_particles, stats::Rng rng)
    : px_(num_particles),
      py_(num_particles),
      heading_(num_particles),
      scale_(num_particles, 1.0),
      weight_(num_particles, 1.0),
      rng_(rng) {
  assert(num_particles > 0);
  pick_.reserve(num_particles);
  gather_.reserve(num_particles);
}

void ParticleFilter::reseed(std::uint64_t seed) { rng_ = stats::Rng(seed); }

void ParticleFilter::init(geo::Vec2 pos, double heading, double pos_sd,
                          double heading_sd, double scale_sd) {
  // One loop with interleaved draws: the (x, y, heading, scale) order per
  // particle is the pinned RNG contract -- field-major loops would consume
  // the stream in a different order and change every downstream trace.
  const std::size_t n = px_.size();
  const double w = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    px_[i] = pos.x + rng_.normal(0.0, pos_sd);
    py_[i] = pos.y + rng_.normal(0.0, pos_sd);
    heading_[i] = geo::wrap_angle(heading + rng_.normal(0.0, heading_sd));
    scale_[i] = std::max(0.5, 1.0 + rng_.normal(0.0, scale_sd));
    weight_[i] = w;
  }
}

void ParticleFilter::attach_metrics(obs::MetricsRegistry* registry,
                                    const std::string& prefix) {
  if (registry == nullptr) {
    predict_us_ = nullptr;
    resample_us_ = nullptr;
    return;
  }
  predict_us_ = &registry->histogram(prefix + ".predict_us");
  resample_us_ = &registry->histogram(prefix + ".resample_us");
}

void ParticleFilter::predict(double step_len, double dheading,
                             double step_len_sd, double heading_sd) {
  obs::ScopedTimer timer(predict_us_);
  const std::size_t n = px_.size();
#if !defined(UNILOC_NO_SIMD)
  if (stats::simd_enabled()) {
    // Stage two raw engine words per particle (serial: the engine stream
    // order is the pinned RNG contract), then synthesize both noise draws
    // with the deterministic Box-Muller transform in one vector pass.
    // std::normal_distribution is useless here twice over: a fresh
    // distribution per draw runs the polar rejection loop from scratch
    // (~2 engine words + log + sqrt per draw, the dominant predict cost),
    // and its algorithm is implementation-defined, so the stream would
    // not reproduce across standard libraries. det_normal_pair is a pure
    // elementwise function of the staged words -- the scalar fallback
    // below computes the identical expressions in the identical order.
    noise_h_.resize(n);
    noise_s_.resize(n);
    trig_sin_.resize(n);
    trig_cos_.resize(n);
    raw_a_.resize(n);
    raw_b_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      raw_a_[i] = rng_.engine()();
      raw_b_[i] = rng_.engine()();
    }
    {
      const std::uint64_t* ra = raw_a_.data();
      const std::uint64_t* rb = raw_b_.data();
      double* nh = noise_h_.data();
      double* ns = noise_s_.data();
      UNILOC_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i) {
        double z0, z1;
        stats::det_normal_pair(ra[i], rb[i], z0, z1);
        nh[i] = heading_sd * z0;
        ns[i] = step_len_sd * z1;
      }
    }
    // wrap_angle is fmod-based (branchy); keep it scalar.
    for (std::size_t i = 0; i < n; ++i) {
      heading_[i] = geo::wrap_angle(heading_[i] + dheading + noise_h_[i]);
    }
    double* h = heading_.data();
    double* ts = trig_sin_.data();
    double* tc = trig_cos_.data();
    UNILOC_PRAGMA_SIMD
    for (std::size_t i = 0; i < n; ++i) {
      stats::det_sincos(h[i], ts[i], tc[i]);
    }
    double* x = px_.data();
    double* y = py_.data();
    const double* sc = scale_.data();
    const double* ns = noise_s_.data();
    UNILOC_PRAGMA_SIMD
    for (std::size_t i = 0; i < n; ++i) {
      const double len = std::max(0.0, step_len * sc[i] + ns[i]);
      x[i] += tc[i] * len;
      y[i] += ts[i] * len;
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    // Same two engine words and the same det_normal_pair expressions as
    // the staged vector path above -- the one scalar/vector contract the
    // differential tier pins down to the bit.
    const std::uint64_t a = rng_.engine()();
    const std::uint64_t b = rng_.engine()();
    double z0, z1;
    stats::det_normal_pair(a, b, z0, z1);
    heading_[i] =
        geo::wrap_angle(heading_[i] + dheading + heading_sd * z0);
    const double len =
        std::max(0.0, step_len * scale_[i] + step_len_sd * z1);
    double s, c;
    stats::det_sincos(heading_[i], s, c);
    px_[i] += c * len;
    py_[i] += s * len;
  }
}

void ParticleFilter::reweight_array(const double* likelihood) {
  double total = 0.0;
  const std::size_t n = px_.size();
  for (std::size_t i = 0; i < n; ++i) {
    weight_[i] *= likelihood[i];
    total += weight_[i];
  }
  if (total <= 0.0) {
    reset_uniform_weights();
    return;
  }
  for (double& w : weight_) w /= total;
}

void ParticleFilter::normalize_weights() {
  double total = 0.0;
  for (const double w : weight_) total += w;
  if (total <= 0.0) {
    reset_uniform_weights();
    return;
  }
  for (double& w : weight_) w /= total;
}

void ParticleFilter::reset_uniform_weights() {
  const double w = 1.0 / static_cast<double>(px_.size());
  for (double& x : weight_) x = w;
}

double ParticleFilter::effective_sample_size() const {
  double sum2 = 0.0;
  for (const double w : weight_) sum2 += w * w;
  return sum2 > 0.0 ? 1.0 / sum2 : 0.0;
}

void ParticleFilter::resample(double ess_threshold_fraction) {
  obs::ScopedTimer timer(resample_us_);
  normalize_weights();
  const std::size_t count = px_.size();
  const double n = static_cast<double>(count);
  if (effective_sample_size() >= ess_threshold_fraction * n) return;

  // Systematic resampling: one uniform draw, then N evenly spaced probes
  // through the cumulative weights. Selection indices are computed first
  // (pick_), then each SoA array is gathered through one reusable scratch
  // buffer -- no per-resample vector<Particle> churn.
  pick_.resize(count);
  const double step = 1.0 / n;
  double u = rng_.uniform(0.0, step);
  double cum = weight_[0];
  std::size_t i = 0;
  for (std::size_t k = 0; k < count; ++k) {
    while (u > cum && i + 1 < count) {
      ++i;
      cum += weight_[i];
    }
    pick_[k] = static_cast<std::uint32_t>(i);
    u += step;
  }

  gather_.resize(count);
  const auto gather = [this, count](std::vector<double>& arr) {
    for (std::size_t k = 0; k < count; ++k) gather_[k] = arr[pick_[k]];
    arr.swap(gather_);
  };
  gather(px_);
  gather(py_);
  gather(heading_);
  gather(scale_);
  for (double& w : weight_) w = step;
}

geo::Vec2 ParticleFilter::mean() const {
  geo::Vec2 m;
  double total = 0.0;
  const std::size_t n = px_.size();
  for (std::size_t i = 0; i < n; ++i) {
    m += geo::Vec2{px_[i], py_[i]} * weight_[i];
    total += weight_[i];
  }
  return total > 0.0 ? m / total : geo::Vec2{};
}

double ParticleFilter::mean_heading() const {
  double sx = 0.0, sy = 0.0;
  const std::size_t n = px_.size();
  for (std::size_t i = 0; i < n; ++i) {
    sx += std::cos(heading_[i]) * weight_[i];
    sy += std::sin(heading_[i]) * weight_[i];
  }
  return std::atan2(sy, sx);
}

double ParticleFilter::spread() const {
  const geo::Vec2 m = mean();
  double s = 0.0, total = 0.0;
  const std::size_t n = px_.size();
  for (std::size_t i = 0; i < n; ++i) {
    s += geo::distance2(geo::Vec2{px_[i], py_[i]}, m) * weight_[i];
    total += weight_[i];
  }
  return total > 0.0 ? std::sqrt(s / total) : 0.0;
}

void ParticleFilter::snapshot_into(offload::ByteWriter& w) const {
  const std::size_t n = px_.size();
  w.put_u32(static_cast<std::uint32_t>(n));
  const auto put_array = [&w, n](const std::vector<double>& arr) {
    for (std::size_t i = 0; i < n; ++i) w.put_f64(arr[i]);
  };
  put_array(px_);
  put_array(py_);
  put_array(heading_);
  put_array(scale_);
  put_array(weight_);
  stats::snapshot_engine(rng_.engine(), w);
}

bool ParticleFilter::restore_from(offload::ByteReader& r) {
  const std::size_t n = px_.size();
  std::uint32_t count;
  if (!r.get_u32(count) || count != n) return false;
  // Decode into scratch first: a truncated buffer must not leave the
  // filter half-overwritten.
  std::vector<std::vector<double>> arrays(5, std::vector<double>(n));
  for (std::vector<double>& arr : arrays) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!r.get_f64(arr[i])) return false;
    }
  }
  std::mt19937_64 engine;
  if (!stats::restore_engine(engine, r)) return false;
  px_ = std::move(arrays[0]);
  py_ = std::move(arrays[1]);
  heading_ = std::move(arrays[2]);
  scale_ = std::move(arrays[3]);
  weight_ = std::move(arrays[4]);
  rng_.engine() = engine;
  return true;
}

namespace {

// --- Quantized codec (checkpoint format v2) ---------------------------
//
// Fixed-point u16 grids. The dequantizer places every value exactly on a
// grid point and the quantizer rounds to nearest, so a dequantized value
// re-quantizes to the same code (requantization exactness; the byte-
// stability the delta chain relies on). Divisions by 65536 are exact
// (power-of-two divisor); the residual float error of lo + frac * range
// is ~ulp(lo), many orders of magnitude below the half-step rounding
// boundary for any metric venue, so round-to-nearest can never flip.

constexpr double kQuantScaleLo = 0.25;
constexpr double kQuantScaleRange = 3.75;   // step scales live in ~[0.5, 2]
constexpr double kQuantGridMargin = 64.0;   // m beyond the venue bbox
constexpr double kQuantMinRange = 1.0;      // degenerate-bbox floor, m

std::uint16_t quantize_u16(double v, double lo, double range) {
  if (!std::isfinite(v)) return 0;  // poisoned state: park at the origin
  const double t = (v - lo) / range * 65536.0;
  if (!(t > 0.0)) return 0;  // also catches NaN from inf - inf
  if (t >= 65535.0) return 65535;
  return static_cast<std::uint16_t>(std::lround(t));
}

double dequantize_u16(std::uint16_t q, double lo, double range) {
  return lo + (static_cast<double>(q) / 65536.0) * range;
}

}  // namespace

void ParticleFilter::snapshot_into_quantized(offload::ByteWriter& w,
                                             const geo::BBox& venue) const {
  const std::size_t n = px_.size();
  const geo::BBox grid = venue.empty()
                             ? geo::BBox{{-kQuantGridMargin, -kQuantGridMargin},
                                         {kQuantGridMargin, kQuantGridMargin}}
                             : venue.inflated(kQuantGridMargin);
  const double x_lo = grid.min.x;
  const double x_range = std::max(grid.width(), kQuantMinRange);
  const double y_lo = grid.min.y;
  const double y_range = std::max(grid.height(), kQuantMinRange);
  w.put_u32(static_cast<std::uint32_t>(n));
  // The grid is stored in the stream: restore needs no venue, and a
  // changed venue between snapshots only changes the codes, never the
  // decode of old waves.
  w.put_f64(x_lo);
  w.put_f64(x_range);
  w.put_f64(y_lo);
  w.put_f64(y_range);
  for (std::size_t i = 0; i < n; ++i) {
    w.put_u16(quantize_u16(px_[i], x_lo, x_range));
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.put_u16(quantize_u16(py_[i], y_lo, y_range));
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Headings are wrapped to (-pi, pi] by init()/predict(); the grid
    // covers exactly one turn, so the only clamp is pi -> pi - step.
    w.put_u16(quantize_u16(heading_[i], -std::numbers::pi, 2.0 * std::numbers::pi));
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.put_u16(quantize_u16(scale_[i], kQuantScaleLo, kQuantScaleRange));
  }
  // Weights encode relative to the cloud maximum. The max weight uses
  // code 65535 over divisor 65535, so it dequantizes *exactly* (q/65535
  // == 1.0): the restored cloud's max equals the stored w_max and the
  // relative codes requantize unchanged. It also guarantees at least one
  // strictly positive weight, so a restored cloud can never collapse to
  // an all-zero (NaN-mean) state.
  double w_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isfinite(weight_[i]) && weight_[i] > w_max) w_max = weight_[i];
  }
  w.put_f64(w_max);
  for (std::size_t i = 0; i < n; ++i) {
    double ratio = w_max > 0.0 ? weight_[i] / w_max : 0.0;
    if (!std::isfinite(ratio) || ratio < 0.0) ratio = 0.0;
    if (ratio > 1.0) ratio = 1.0;
    w.put_u16(static_cast<std::uint16_t>(std::lround(ratio * 65535.0)));
  }
  stats::snapshot_engine(rng_.engine(), w);
}

bool ParticleFilter::restore_from_quantized(offload::ByteReader& r) {
  const std::size_t n = px_.size();
  std::uint32_t count;
  if (!r.get_u32(count) || count != n) return false;
  double x_lo, x_range, y_lo, y_range;
  if (!r.get_f64(x_lo) || !r.get_f64(x_range) || !r.get_f64(y_lo) ||
      !r.get_f64(y_range)) {
    return false;
  }
  // A hostile stream could carry NaN/inf grid parameters; dequantizing
  // through them would poison every particle, so reject up front.
  if (!std::isfinite(x_lo) || !std::isfinite(y_lo) ||
      !std::isfinite(x_range) || !std::isfinite(y_range) ||
      x_range <= 0.0 || y_range <= 0.0) {
    return false;
  }
  // Scratch-decode-then-commit, same as restore_from.
  std::vector<double> nx(n), ny(n), nh(n), ns(n), nw(n);
  const auto read_axis = [&r, n](std::vector<double>& out, double lo,
                                 double range) {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint16_t q;
      if (!r.get_u16(q)) return false;
      out[i] = dequantize_u16(q, lo, range);
    }
    return true;
  };
  if (!read_axis(nx, x_lo, x_range) || !read_axis(ny, y_lo, y_range) ||
      !read_axis(nh, -std::numbers::pi, 2.0 * std::numbers::pi) ||
      !read_axis(ns, kQuantScaleLo, kQuantScaleRange)) {
    return false;
  }
  double w_max;
  if (!r.get_f64(w_max) || !std::isfinite(w_max) || w_max < 0.0) return false;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t q;
    if (!r.get_u16(q)) return false;
    // Division by 65535 last would round; dividing the code first makes
    // q == 65535 an exact 1.0, restoring the max weight bit-exactly.
    nw[i] = w_max > 0.0 ? (static_cast<double>(q) / 65535.0) * w_max
                        : 1.0 / static_cast<double>(n);
  }
  std::mt19937_64 engine;
  if (!stats::restore_engine(engine, r)) return false;
  px_ = std::move(nx);
  py_ = std::move(ny);
  heading_ = std::move(nh);
  scale_ = std::move(ns);
  weight_ = std::move(nw);
  rng_.engine() = engine;
  return true;
}

std::size_t ParticleFilter::storage_bytes() const {
  return (px_.capacity() + py_.capacity() + heading_.capacity() +
          scale_.capacity() + weight_.capacity() + gather_.capacity() +
          noise_h_.capacity() + noise_s_.capacity() + trig_sin_.capacity() +
          trig_cos_.capacity()) *
             sizeof(double) +
         (raw_a_.capacity() + raw_b_.capacity()) * sizeof(std::uint64_t) +
         pick_.capacity() * sizeof(std::uint32_t);
}

}  // namespace uniloc::filter
