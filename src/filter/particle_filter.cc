#include "filter/particle_filter.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace uniloc::filter {

ParticleFilter::ParticleFilter(std::size_t num_particles, stats::Rng rng)
    : particles_(num_particles), rng_(rng) {
  assert(num_particles > 0);
}

void ParticleFilter::init(geo::Vec2 pos, double heading, double pos_sd,
                          double heading_sd, double scale_sd) {
  for (Particle& p : particles_) {
    p.pos = {pos.x + rng_.normal(0.0, pos_sd), pos.y + rng_.normal(0.0, pos_sd)};
    p.heading = geo::wrap_angle(heading + rng_.normal(0.0, heading_sd));
    p.step_scale = std::max(0.5, 1.0 + rng_.normal(0.0, scale_sd));
    p.weight = 1.0 / static_cast<double>(particles_.size());
  }
}

void ParticleFilter::attach_metrics(obs::MetricsRegistry* registry,
                                    const std::string& prefix) {
  if (registry == nullptr) {
    predict_us_ = nullptr;
    resample_us_ = nullptr;
    return;
  }
  predict_us_ = &registry->histogram(prefix + ".predict_us");
  resample_us_ = &registry->histogram(prefix + ".resample_us");
}

void ParticleFilter::predict(double step_len, double dheading,
                             double step_len_sd, double heading_sd) {
  obs::ScopedTimer timer(predict_us_);
  for (Particle& p : particles_) {
    p.heading = geo::wrap_angle(p.heading + dheading +
                                rng_.normal(0.0, heading_sd));
    const double len =
        std::max(0.0, step_len * p.step_scale + rng_.normal(0.0, step_len_sd));
    p.pos += geo::Vec2{std::cos(p.heading), std::sin(p.heading)} * len;
  }
}

void ParticleFilter::reweight(
    const std::function<double(const Particle&)>& likelihood) {
  reweight_indexed(
      [&likelihood](std::size_t, const Particle& p) { return likelihood(p); });
}

void ParticleFilter::reweight_indexed(
    const std::function<double(std::size_t, const Particle&)>& likelihood) {
  double total = 0.0;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    Particle& p = particles_[i];
    p.weight *= likelihood(i, p);
    total += p.weight;
  }
  if (total <= 0.0) {
    // Every particle was killed (e.g. all crossed a wall): reset to uniform
    // rather than dividing by zero; the caller's map constraints will
    // re-shape the cloud on subsequent updates.
    const double w = 1.0 / static_cast<double>(particles_.size());
    for (Particle& p : particles_) p.weight = w;
    return;
  }
  for (Particle& p : particles_) p.weight /= total;
}

void ParticleFilter::normalize_weights() {
  double total = 0.0;
  for (const Particle& p : particles_) total += p.weight;
  if (total <= 0.0) {
    const double w = 1.0 / static_cast<double>(particles_.size());
    for (Particle& p : particles_) p.weight = w;
    return;
  }
  for (Particle& p : particles_) p.weight /= total;
}

double ParticleFilter::effective_sample_size() const {
  double sum2 = 0.0;
  for (const Particle& p : particles_) sum2 += p.weight * p.weight;
  return sum2 > 0.0 ? 1.0 / sum2 : 0.0;
}

void ParticleFilter::resample(double ess_threshold_fraction) {
  obs::ScopedTimer timer(resample_us_);
  normalize_weights();
  const double n = static_cast<double>(particles_.size());
  if (effective_sample_size() >= ess_threshold_fraction * n) return;

  std::vector<Particle> next;
  next.reserve(particles_.size());
  const double step = 1.0 / n;
  double u = rng_.uniform(0.0, step);
  double cum = particles_[0].weight;
  std::size_t i = 0;
  for (std::size_t k = 0; k < particles_.size(); ++k) {
    while (u > cum && i + 1 < particles_.size()) {
      ++i;
      cum += particles_[i].weight;
    }
    Particle p = particles_[i];
    p.weight = step;
    next.push_back(p);
    u += step;
  }
  particles_ = std::move(next);
}

geo::Vec2 ParticleFilter::mean() const {
  geo::Vec2 m;
  double total = 0.0;
  for (const Particle& p : particles_) {
    m += p.pos * p.weight;
    total += p.weight;
  }
  return total > 0.0 ? m / total : geo::Vec2{};
}

double ParticleFilter::mean_heading() const {
  double sx = 0.0, sy = 0.0;
  for (const Particle& p : particles_) {
    sx += std::cos(p.heading) * p.weight;
    sy += std::sin(p.heading) * p.weight;
  }
  return std::atan2(sy, sx);
}

double ParticleFilter::spread() const {
  const geo::Vec2 m = mean();
  double s = 0.0, total = 0.0;
  for (const Particle& p : particles_) {
    s += geo::distance2(p.pos, m) * p.weight;
    total += p.weight;
  }
  return total > 0.0 ? std::sqrt(s / total) : 0.0;
}

}  // namespace uniloc::filter
