// Online location predictor used for feature computation.
//
// The fingerprint-density feature beta1 needs the *user's location* before
// any scheme has produced this epoch's estimate. During training the true
// location is known; online, UniLoc predicts it with a second-order HMM
// over a local grid of candidate cells (paper Sec. III-B). The predictor
// here maintains a belief over the cells of a small moving window; the
// second-order transition kernel scores a candidate next cell by how well
// it continues the motion implied by the previous two cells.
#pragma once

#include <optional>
#include <vector>

#include "geo/vec2.h"
#include "offload/bytes.h"

namespace uniloc::filter {

class LocationPredictor {
 public:
  struct Config {
    double cell_size_m = 3.0;       ///< Local grid resolution.
    int half_extent_cells = 4;      ///< Window is (2h+1)^2 cells.
    double obs_sd_m = 6.0;          ///< Observation likelihood spread.
    double motion_sd_m = 2.0;       ///< Second-order continuation spread.
  };

  LocationPredictor() : LocationPredictor(Config{}) {}
  explicit LocationPredictor(Config cfg);

  /// Feed the latest combined location estimate (observation).
  void observe(geo::Vec2 estimate);

  /// Predicted current location; empty before the first observation.
  std::optional<geo::Vec2> predict() const;

  /// Positional uncertainty (RMS spread of the belief), 0 before start.
  double uncertainty() const;

  void reset();

  /// Snapshot codec. Only the second-order state is serialized: the cell
  /// window and belief are rebuilt from scratch by every observe(), so
  /// restoring the state alone reproduces observe()/predict() bit for
  /// bit.
  void snapshot_into(offload::ByteWriter& w) const;
  bool restore_from(offload::ByteReader& r);

 private:
  struct State {
    geo::Vec2 prev;
    geo::Vec2 cur;
    bool has_prev{false};
    bool has_cur{false};
  };

  Config cfg_;
  State state_;
  std::vector<geo::Vec2> cells_;    ///< Current window cell centers.
  std::vector<double> belief_;      ///< Belief over cells_.
};

}  // namespace uniloc::filter
