#include "filter/location_predictor.h"

#include <cmath>

#include "stats/gaussian.h"

namespace uniloc::filter {

LocationPredictor::LocationPredictor(Config cfg) : cfg_(cfg) {}

void LocationPredictor::reset() {
  state_ = State{};
  cells_.clear();
  belief_.clear();
}

void LocationPredictor::observe(geo::Vec2 estimate) {
  // Build the window around the motion-extrapolated point so the belief
  // tracks the walker even between observations of mediocre quality.
  geo::Vec2 center = estimate;
  geo::Vec2 velocity{0.0, 0.0};
  if (state_.has_cur && state_.has_prev) {
    velocity = state_.cur - state_.prev;
    center = state_.cur + velocity;  // second-order extrapolation
  } else if (state_.has_cur) {
    center = state_.cur;
  }

  // The window is rebuilt directly in the member buffers: observe() only
  // reads state_ (never the previous window), so writing in place is
  // numerically identical to rebuilding from scratch -- and after the
  // first observation the fixed-size window never reallocates.
  const int h = cfg_.half_extent_cells;
  std::vector<geo::Vec2>& cells = cells_;
  cells.clear();
  cells.reserve(static_cast<std::size_t>(2 * h + 1) *
                static_cast<std::size_t>(2 * h + 1));
  for (int iy = -h; iy <= h; ++iy) {
    for (int ix = -h; ix <= h; ++ix) {
      cells.push_back({center.x + ix * cfg_.cell_size_m,
                       center.y + iy * cfg_.cell_size_m});
    }
  }

  std::vector<double>& belief = belief_;
  belief.assign(cells.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    // Motion prior: a cell is likely if it continues the (prev -> cur)
    // motion; before two observations exist, the prior is flat.
    double prior = 1.0;
    if (state_.has_cur && state_.has_prev) {
      const geo::Vec2 expected = state_.cur + velocity;
      const double d = geo::distance(cells[i], expected);
      prior = stats::normal_pdf(d / cfg_.motion_sd_m);
    }
    const double obs = stats::normal_pdf(
        geo::distance(cells[i], estimate) / cfg_.obs_sd_m);
    belief[i] = prior * obs;
    total += belief[i];
  }
  if (total > 0.0) {
    for (double& b : belief) b /= total;
  } else {
    const double u = 1.0 / static_cast<double>(belief.size());
    for (double& b : belief) b = u;
  }

  // Advance the second-order state with the belief mean.
  geo::Vec2 mean{};
  for (std::size_t i = 0; i < cells_.size(); ++i) mean += cells_[i] * belief_[i];
  state_.prev = state_.cur;
  state_.has_prev = state_.has_cur;
  state_.cur = mean;
  state_.has_cur = true;
}

std::optional<geo::Vec2> LocationPredictor::predict() const {
  if (!state_.has_cur) return std::nullopt;
  return state_.cur;
}

void LocationPredictor::snapshot_into(offload::ByteWriter& w) const {
  w.put_f64(state_.prev.x);
  w.put_f64(state_.prev.y);
  w.put_f64(state_.cur.x);
  w.put_f64(state_.cur.y);
  w.put_bool(state_.has_prev);
  w.put_bool(state_.has_cur);
}

bool LocationPredictor::restore_from(offload::ByteReader& r) {
  State s;
  if (!r.get_f64(s.prev.x) || !r.get_f64(s.prev.y) || !r.get_f64(s.cur.x) ||
      !r.get_f64(s.cur.y) || !r.get_bool(s.has_prev) ||
      !r.get_bool(s.has_cur)) {
    return false;
  }
  state_ = s;
  // The window is derived state; the next observe() rebuilds it.
  cells_.clear();
  belief_.clear();
  return true;
}

double LocationPredictor::uncertainty() const {
  if (belief_.empty()) return 0.0;
  geo::Vec2 mean{};
  for (std::size_t i = 0; i < cells_.size(); ++i) mean += cells_[i] * belief_[i];
  double s = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    s += geo::distance2(cells_[i], mean) * belief_[i];
  }
  return std::sqrt(s);
}

}  // namespace uniloc::filter
