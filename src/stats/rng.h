// Deterministic random-number utilities.
//
// Every stochastic component in the simulator takes an explicit seed so
// that benches reproduce the same tables run-to-run. splitmix64 is used to
// derive independent sub-seeds and as the hash behind the spatial noise
// field.
#pragma once

#include <cstdint>
#include <random>

namespace uniloc::stats {

/// splitmix64 hash step; good avalanche, cheap, stable across platforms.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Combine seeds/ids into one 64-bit stream id.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

/// Uniform [0,1) double from a 64-bit hash value (53 mantissa bits).
constexpr double hash_to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Seeded mersenne-twister engine wrapper with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::mt19937_64& engine() { return engine_; }
  const std::mt19937_64& engine() const { return engine_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard or parameterised normal draw.
  double normal(double mean = 0.0, double sd = 1.0) {
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child generator for a named sub-stream.
  Rng fork(std::uint64_t stream_id) {
    return Rng(hash_combine(engine_(), stream_id));
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace uniloc::stats
