#include "stats/ecdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace uniloc::stats {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  if (sorted_.empty()) throw std::runtime_error("Ecdf::quantile: empty");
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  const double lo = sorted_.front(), hi = sorted_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

}  // namespace uniloc::stats
