// Runtime control for the vectorized kernels.
//
// The SIMD kernels (fingerprint batch scoring, particle predict/reweight,
// the fusion RSSI-spatial kernel) are written so that their results are
// BIT-IDENTICAL to the scalar reference paths: every lane owns one
// item (fingerprint / particle) and accumulates its terms in exactly the
// scalar order, using only IEEE-exact operations (+, -, *, /, sqrt,
// blends) plus the deterministic polynomial transcendentals in
// stats/vecmath.h that scalar and vector code share. Vectorization here
// never reorders a floating-point reduction (DESIGN.md section 16).
//
// Because the two paths agree bit for bit, the mode switch below is a
// pure performance knob -- and that equality is exactly what the
// vectorization-aware differential tier pins:
//
//   * compile time: building with -DUNILOC_NO_SIMD=ON defines the
//     UNILOC_NO_SIMD macro and compiles the vector kernels out entirely
//     (the scalar-fallback build of scripts/check.sh);
//   * process start: the UNILOC_NO_SIMD=1 environment variable starts the
//     process in scalar mode;
//   * tests: ScopedSimd flips the mode within a scope so one process can
//     run the same workload both ways and compare bitwise
//     (tests/test_simd_kernels.cc, proptest invariant I8).
//
// The mode is a process-wide atomic read at kernel entry. It is NOT meant
// to be toggled while worker threads are mid-epoch (tests toggle it
// between runs); reading it concurrently is safe.
#pragma once

namespace uniloc::stats {

/// True when the vectorized kernels should run. Always false in
/// UNILOC_NO_SIMD builds; otherwise defaults to true unless the
/// UNILOC_NO_SIMD=1 environment variable was set at process start.
bool simd_enabled();

/// Override the mode (no-op in UNILOC_NO_SIMD builds, which have no
/// vector kernels to enable). Prefer ScopedSimd in tests.
void set_simd_enabled(bool enabled);

/// RAII mode flip for differential tests: run a workload scalar, restore,
/// run it vectorized, compare bitwise.
class ScopedSimd {
 public:
  explicit ScopedSimd(bool enabled) : prev_(simd_enabled()) {
    set_simd_enabled(enabled);
  }
  ~ScopedSimd() { set_simd_enabled(prev_); }
  ScopedSimd(const ScopedSimd&) = delete;
  ScopedSimd& operator=(const ScopedSimd&) = delete;

 private:
  bool prev_;
};

}  // namespace uniloc::stats
