// Descriptive statistics over samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace uniloc::stats {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> v);

/// Sample variance (n-1 denominator). Returns 0 for fewer than 2 samples.
double variance(std::span<const double> v);

/// Sample standard deviation.
double stddev(std::span<const double> v);

/// Root-mean-square error between predictions and ground truth.
/// Spans must have equal, non-zero length.
double rmse(std::span<const double> predicted, std::span<const double> truth);

/// RMSE normalized by the mean of the ground truth (paper Eq. 7:
/// "normalized Root-Mean-Square Error of the predicted localization error").
double normalized_rmse(std::span<const double> predicted,
                       std::span<const double> truth);

/// Minimum / maximum of a non-empty span.
double min_of(std::span<const double> v);
double max_of(std::span<const double> v);

/// Linear-interpolated percentile, q in [0, 100]. Sorts a copy.
double percentile(std::vector<double> v, double q);

/// Median shorthand.
inline double median(std::vector<double> v) {
  return percentile(std::move(v), 50.0);
}

}  // namespace uniloc::stats
