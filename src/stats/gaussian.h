// Univariate Gaussian distribution helpers.
//
// UniLoc models each scheme's predicted localization error as
// Y_t ~ N(mu_t, sigma_eps) and computes the confidence
// c_t = P(Y_t <= tau) (paper Eq. 2) via the Gaussian CDF.
#pragma once

namespace uniloc::stats {

/// Standard normal probability density.
double normal_pdf(double x);

/// Probability density of N(mean, sd) at x.
double normal_pdf(double x, double mean, double sd);

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// CDF of N(mean, sd) at x. sd must be > 0.
double normal_cdf(double x, double mean, double sd);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). p must be in (0, 1).
double normal_quantile(double p);

/// A Gaussian distribution value object.
struct Gaussian {
  double mean{0.0};
  double sd{1.0};

  double pdf(double x) const { return normal_pdf(x, mean, sd); }
  double cdf(double x) const { return normal_cdf(x, mean, sd); }
};

}  // namespace uniloc::stats
