// Univariate Gaussian distribution helpers.
//
// UniLoc models each scheme's predicted localization error as
// Y_t ~ N(mu_t, sigma_eps) and computes the confidence
// c_t = P(Y_t <= tau) (paper Eq. 2) via the Gaussian CDF.
#pragma once

#include <cassert>

#include "stats/vecmath.h"

namespace uniloc::stats {

/// Standard normal probability density. Inline and built on det_exp so
/// the scalar reference pipeline, the SIMD kernels and the UNILOC_NO_SIMD
/// fallback build all evaluate the identical operation sequence
/// (DESIGN.md section 16).
inline double normal_pdf(double x) {
  constexpr double inv_sqrt_2pi = 0.3989422804014327;
  return inv_sqrt_2pi * det_exp(-0.5 * x * x);
}

/// Density of the standard normal at sqrt(x2), taking the SQUARED
/// argument. Hot kernels that compute a Euclidean distance only to feed
/// it here (the fusion candidate reweight) pass (dx*dx + dy*dy) / sd^2
/// directly and skip both the sqrt and its re-squaring -- one vsqrtpd
/// and one vdivpd per lane, the two divider-port ops the rest of the
/// kernel has to wait on.
inline double normal_pdf_sq(double x2) {
  constexpr double inv_sqrt_2pi = 0.3989422804014327;
  return inv_sqrt_2pi * det_exp(-0.5 * x2);
}

/// Probability density of N(mean, sd) at x.
inline double normal_pdf(double x, double mean, double sd) {
  assert(sd > 0.0);
  return normal_pdf((x - mean) / sd) / sd;
}

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// CDF of N(mean, sd) at x. sd must be > 0.
double normal_cdf(double x, double mean, double sd);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). p must be in (0, 1).
double normal_quantile(double p);

/// A Gaussian distribution value object.
struct Gaussian {
  double mean{0.0};
  double sd{1.0};

  double pdf(double x) const { return normal_pdf(x, mean, sd); }
  double cdf(double x) const { return normal_cdf(x, mean, sd); }
};

}  // namespace uniloc::stats
