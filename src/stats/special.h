// Special functions needed for regression inference.
#pragma once

namespace uniloc::stats {

/// Natural log of the gamma function (Lanczos approximation).
double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b), x in [0,1].
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `dof` degrees of freedom.
double student_t_cdf(double t, double dof);

/// Two-sided p-value for a t statistic with `dof` degrees of freedom.
double t_test_p_value(double t, double dof);

}  // namespace uniloc::stats
