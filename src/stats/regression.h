// Ordinary-least-squares multiple linear regression with inference.
//
// This is the error-modeling engine of UniLoc (paper Sec. III): for each
// localization scheme the localization error y is regressed on the
// scheme-family's data features x_1..x_p,
//     y_i = b0 + b1 x_1i + ... + bp x_pi + eps_i,
// and the fitted model ships with per-coefficient p-values, R^2 and the
// residual moments (mu_eps, sigma_eps) that Table II reports and that the
// online confidence computation (Eq. 2) consumes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace uniloc::stats {

/// One fitted coefficient with its inference statistics.
struct Coefficient {
  std::string name;
  double estimate{0.0};
  double std_error{0.0};
  double t_stat{0.0};
  double p_value{1.0};
};

/// A fitted linear model.
struct LinearModel {
  std::vector<Coefficient> coefficients;  ///< Intercept first (if fitted).
  bool has_intercept{true};
  double r_squared{0.0};
  double adjusted_r_squared{0.0};
  double residual_mean{0.0};   ///< mu_eps; ~0 by construction with intercept.
  double residual_sd{0.0};     ///< sigma_eps (sqrt of SSE/(n-k)).
  std::size_t n_samples{0};

  /// Predict y for a feature vector (without intercept column).
  double predict(std::span<const double> x) const;

  /// Raw coefficient estimates in order (intercept first if present).
  std::vector<double> betas() const;
};

/// Fit y ~ X by OLS. `x` is row-major: x[i] is sample i's feature vector.
/// All rows must have the same length p >= 1 and n must exceed the number
/// of fitted parameters. Throws std::invalid_argument on malformed input
/// and std::runtime_error on a singular normal-equation matrix.
LinearModel fit_ols(const std::vector<std::vector<double>>& x,
                    const std::vector<double>& y,
                    const std::vector<std::string>& feature_names = {},
                    bool with_intercept = true);

}  // namespace uniloc::stats
