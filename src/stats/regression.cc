#include "stats/regression.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "stats/matrix.h"
#include "stats/special.h"

namespace uniloc::stats {

double LinearModel::predict(std::span<const double> x) const {
  const std::size_t p = coefficients.size() - (has_intercept ? 1 : 0);
  if (x.size() != p) {
    throw std::invalid_argument("predict: feature vector has wrong size");
  }
  std::size_t idx = 0;
  double y = 0.0;
  if (has_intercept) y = coefficients[idx++].estimate;
  for (double xi : x) y += coefficients[idx++].estimate * xi;
  return y;
}

std::vector<double> LinearModel::betas() const {
  std::vector<double> out;
  out.reserve(coefficients.size());
  for (const auto& c : coefficients) out.push_back(c.estimate);
  return out;
}

LinearModel fit_ols(const std::vector<std::vector<double>>& x,
                    const std::vector<double>& y,
                    const std::vector<std::string>& feature_names,
                    bool with_intercept) {
  const std::size_t n = x.size();
  if (n == 0 || n != y.size()) {
    throw std::invalid_argument("fit_ols: empty or mismatched data");
  }
  const std::size_t p = x[0].size();
  if (p == 0) throw std::invalid_argument("fit_ols: no features");
  for (const auto& row : x) {
    if (row.size() != p) {
      throw std::invalid_argument("fit_ols: ragged feature rows");
    }
  }
  const std::size_t k = p + (with_intercept ? 1 : 0);  // fitted parameters
  if (n <= k) throw std::invalid_argument("fit_ols: too few samples");
  if (!feature_names.empty() && feature_names.size() != p) {
    throw std::invalid_argument("fit_ols: feature_names size mismatch");
  }

  // Design matrix.
  Matrix X(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t c = 0;
    if (with_intercept) X(i, c++) = 1.0;
    for (std::size_t j = 0; j < p; ++j) X(i, c++) = x[i][j];
  }
  const Matrix Xt = X.transpose();
  Matrix XtX = Xt * X;
  // Tiny ridge keeps nearly-collinear designs (e.g. a feature that barely
  // varies in a training venue) invertible without meaningfully biasing
  // well-conditioned fits.
  double trace = 0.0;
  for (std::size_t c = 0; c < k; ++c) trace += XtX(c, c);
  const double ridge = 1e-10 * std::max(1.0, trace / static_cast<double>(k));
  for (std::size_t c = 0; c < k; ++c) XtX(c, c) += ridge;
  Matrix XtX_inv = XtX.inverse();

  std::vector<double> Xty(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < n; ++i) Xty[c] += X(i, c) * y[i];
  }
  const std::vector<double> beta = XtX_inv * Xty;

  // Residuals.
  double sse = 0.0, res_sum = 0.0;
  double y_mean = 0.0;
  for (double yi : y) y_mean += yi;
  y_mean /= static_cast<double>(n);
  double sst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double yhat = 0.0;
    for (std::size_t c = 0; c < k; ++c) yhat += X(i, c) * beta[c];
    const double r = y[i] - yhat;
    sse += r * r;
    res_sum += r;
    sst += (y[i] - y_mean) * (y[i] - y_mean);
  }
  const double dof = static_cast<double>(n - k);
  const double sigma2 = sse / dof;

  LinearModel model;
  model.has_intercept = with_intercept;
  model.n_samples = n;
  model.residual_mean = res_sum / static_cast<double>(n);
  model.residual_sd = std::sqrt(sigma2);
  model.r_squared = sst > 0.0 ? 1.0 - sse / sst : 0.0;
  model.adjusted_r_squared =
      sst > 0.0 ? 1.0 - (sse / dof) / (sst / static_cast<double>(n - 1)) : 0.0;

  model.coefficients.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    Coefficient& coef = model.coefficients[c];
    if (with_intercept && c == 0) {
      coef.name = "(intercept)";
    } else {
      const std::size_t j = c - (with_intercept ? 1 : 0);
      coef.name = feature_names.empty() ? "x" + std::to_string(j + 1)
                                        : feature_names[j];
    }
    coef.estimate = beta[c];
    coef.std_error = std::sqrt(sigma2 * XtX_inv(c, c));
    if (coef.std_error > 0.0) {
      coef.t_stat = coef.estimate / coef.std_error;
      coef.p_value = t_test_p_value(coef.t_stat, dof);
    } else {
      coef.t_stat = 0.0;
      coef.p_value = 1.0;
    }
  }
  return model;
}

}  // namespace uniloc::stats
