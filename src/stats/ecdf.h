// Empirical cumulative distribution function.
//
// Every "CDF of localization error" figure in the paper (Figs. 7, 8a-8d)
// is generated from one of these.
#pragma once

#include <cstddef>
#include <vector>

namespace uniloc::stats {

class Ecdf {
 public:
  Ecdf() = default;
  /// Build from samples (copied and sorted).
  explicit Ecdf(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// Fraction of samples <= x.
  double at(double x) const;

  /// Value below which fraction `p` (in [0,1]) of samples fall
  /// (linear interpolation between order statistics).
  double quantile(double p) const;

  /// Evenly spaced (x, F(x)) pairs suitable for plotting,
  /// from min sample to max sample.
  std::vector<std::pair<double, double>> curve(std::size_t points = 50) const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace uniloc::stats
