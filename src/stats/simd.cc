#include "stats/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace uniloc::stats {

namespace {

bool initial_mode() {
#ifdef UNILOC_NO_SIMD
  return false;
#else
  const char* env = std::getenv("UNILOC_NO_SIMD");
  if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    return false;
  }
  return true;
#endif
}

std::atomic<bool>& mode() {
  static std::atomic<bool> enabled{initial_mode()};
  return enabled;
}

}  // namespace

bool simd_enabled() { return mode().load(std::memory_order_relaxed); }

void set_simd_enabled(bool enabled) {
#ifdef UNILOC_NO_SIMD
  (void)enabled;
#else
  mode().store(enabled, std::memory_order_relaxed);
#endif
}

}  // namespace uniloc::stats
