#include "stats/noise_field.h"

#include <cassert>
#include <cmath>

#include "stats/rng.h"

namespace uniloc::stats {

NoiseField::NoiseField(std::uint64_t stream, double correlation_m,
                       double amplitude)
    : stream_(stream), correlation_m_(correlation_m), amplitude_(amplitude) {
  assert(correlation_m > 0.0);
}

double NoiseField::lattice(std::int64_t ix, std::int64_t iy) const {
  const std::uint64_t h = splitmix64(
      hash_combine(stream_, hash_combine(static_cast<std::uint64_t>(ix),
                                         static_cast<std::uint64_t>(iy))));
  return 2.0 * hash_to_unit(h) - 1.0;
}

double NoiseField::at(geo::Vec2 p) const {
  const double gx = p.x / correlation_m_;
  const double gy = p.y / correlation_m_;
  const auto x0 = static_cast<std::int64_t>(std::floor(gx));
  const auto y0 = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(x0);
  const double fy = gy - static_cast<double>(y0);
  // Smoothstep for C1-continuous interpolation.
  const double sx = fx * fx * (3.0 - 2.0 * fx);
  const double sy = fy * fy * (3.0 - 2.0 * fy);
  const double v00 = lattice(x0, y0);
  const double v10 = lattice(x0 + 1, y0);
  const double v01 = lattice(x0, y0 + 1);
  const double v11 = lattice(x0 + 1, y0 + 1);
  const double a = v00 + (v10 - v00) * sx;
  const double b = v01 + (v11 - v01) * sx;
  // Lattice values are uniform in [-1,1] (sd ~= 0.577); scale so that the
  // field's point-wise sd is ~amplitude.
  return (a + (b - a) * sy) * amplitude_ * 1.732;
}

}  // namespace uniloc::stats
