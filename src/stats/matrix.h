// Small dense matrix with the operations regression needs.
//
// The design-matrix sizes in UniLoc are tiny (N x p with p <= 4), so a
// straightforward row-major double matrix with Gaussian-elimination
// inversion is both sufficient and easy to verify.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace uniloc::stats {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix transpose() const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(double s) const;

  /// Matrix-vector product.
  std::vector<double> operator*(const std::vector<double>& v) const;

  /// Inverse via Gauss-Jordan with partial pivoting.
  /// Throws std::runtime_error on (near-)singular input.
  Matrix inverse() const;

  /// Solve A x = b for x (this = A). Throws on singular A.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Max absolute element difference against another matrix.
  double max_abs_diff(const Matrix& o) const;

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

}  // namespace uniloc::stats
