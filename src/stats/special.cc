#include "stats/special.h"

#include <cassert>
#include <cmath>

namespace uniloc::stats {

double log_gamma(double x) { return std::lgamma(x); }

namespace {

// Continued fraction for the incomplete beta function (Lentz's method,
// Numerical Recipes betacf).
double beta_cf(double a, double b, double x) {
  constexpr int max_iter = 300;
  constexpr double eps = 3e-14;
  constexpr double fpmin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < fpmin) d = fpmin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= max_iter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < eps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  assert(x >= 0.0 && x <= 1.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta =
      log_gamma(a + b) - log_gamma(a) - log_gamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  assert(dof > 0.0);
  const double x = dof / (dof + t * t);
  const double p = 0.5 * incomplete_beta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double t_test_p_value(double t, double dof) {
  const double x = dof / (dof + t * t);
  return incomplete_beta(dof / 2.0, 0.5, x);
}

}  // namespace uniloc::stats
