// Binary snapshot codec for the mt19937_64 engines hoisted into the
// filters.
//
// The standard guarantees an engine round-trips through its textual
// stream representation (a whitespace-separated list of decimal words:
// the 312 state words followed by the read position). We re-encode those
// tokens as fixed-width little-endian u64s -- ~2.5 KB per engine instead
// of ~7 KB of ASCII -- and validate on restore: the token count must be
// exactly state_size + 1 and the position token must not index past the
// state array, so a bit-flipped snapshot is rejected instead of leaving
// the engine reading out of bounds.
#pragma once

#include <random>
#include <sstream>
#include <vector>

#include "offload/bytes.h"

namespace uniloc::stats {

inline void snapshot_engine(const std::mt19937_64& engine,
                            offload::ByteWriter& w) {
  std::ostringstream os;
  os << engine;
  std::istringstream is(os.str());
  std::vector<std::uint64_t> tokens;
  std::uint64_t t;
  while (is >> t) tokens.push_back(t);
  w.put_u32(static_cast<std::uint32_t>(tokens.size()));
  for (const std::uint64_t token : tokens) w.put_u64(token);
}

inline bool restore_engine(std::mt19937_64& engine, offload::ByteReader& r) {
  constexpr std::size_t kTokens = std::mt19937_64::state_size + 1;
  std::uint32_t count;
  if (!r.get_u32(count) || count != kTokens) return false;
  std::ostringstream os;
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < kTokens; ++i) {
    std::uint64_t token;
    if (!r.get_u64(token)) return false;
    if (i > 0) os << ' ';
    os << token;
    last = token;
  }
  // The final token is the read position; past-the-end would make the
  // next draw index out of bounds inside the engine.
  if (last > std::mt19937_64::state_size) return false;
  std::istringstream is(os.str());
  std::mt19937_64 restored;
  is >> restored;
  if (is.fail()) return false;
  engine = restored;
  return true;
}

}  // namespace uniloc::stats
