// Deterministic, spatially-correlated scalar noise field (value noise).
//
// Radio shadowing must be *static in space* (the same at fingerprinting
// time and at online-measurement time, so that RSSI fingerprints carry
// location information) but vary smoothly between nearby locations. A
// hash-based value-noise field gives exactly that: a pure function of
// (stream id, position) with controllable correlation length and amplitude,
// reproducible across runs without storing anything.
#pragma once

#include <cstdint>

#include "geo/vec2.h"

namespace uniloc::stats {

class NoiseField {
 public:
  /// `stream` separates independent fields (e.g. one per access point);
  /// `correlation_m` is the lattice spacing (decorrelation distance);
  /// `amplitude` scales the output to roughly N(0, amplitude^2).
  NoiseField(std::uint64_t stream, double correlation_m, double amplitude);

  /// Field value at a position; smooth, deterministic, zero-mean.
  double at(geo::Vec2 p) const;

  double amplitude() const { return amplitude_; }
  double correlation() const { return correlation_m_; }

 private:
  /// Pseudo-random value in [-1, 1] at an integer lattice point.
  double lattice(std::int64_t ix, std::int64_t iy) const;

  std::uint64_t stream_;
  double correlation_m_;
  double amplitude_;
};

}  // namespace uniloc::stats
