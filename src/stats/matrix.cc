#include "stats/matrix.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace uniloc::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& o) const {
  assert(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < o.cols_; ++c) out(r, c) += v * o(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += o.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= o.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

Matrix Matrix::inverse() const {
  if (rows_ != cols_) throw std::runtime_error("inverse: non-square matrix");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-12) {
      throw std::runtime_error("inverse: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= f * a(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

std::vector<double> Matrix::solve(const std::vector<double>& b) const {
  return inverse() * b;
}

double Matrix::max_abs_diff(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - o.data_[i]));
  return m;
}

}  // namespace uniloc::stats
