// Deterministic, vectorization-safe transcendentals.
//
// The SIMD epoch kernels need exp/sin/cos inside `#pragma omp simd`
// loops. libm's implementations cannot be used there: they are opaque
// calls (no vector clones without -mveclibabi), and even where vector
// variants exist they are not bit-identical to the scalar entry points.
// Instead the hot paths -- scalar reference and vector kernel alike --
// share the branchless polynomial implementations below, so the "same
// math" guarantee of the differential tier holds bit for bit:
//
//   * plain +, -, *, / only, no std::fma and no branches (ternaries
//     compile to blends/cmov). The tree is compiled with
//     -ffp-contract=off, so the compiler cannot contract a*b+c into an
//     FMA in one build and not another: every operation sequence below
//     evaluates identically whether it runs in a scalar call, a
//     vectorized lane, a UNILOC_NO_SIMD fallback build, or another
//     IEEE-754 platform.
//   * accuracy ~2 ulp against libm over the argument ranges the pipeline
//     produces (det_exp: all finite x; det_sincos: |x| <= a few pi --
//     the particle headings are wrap_angle()d into (-pi, pi]).
//
// Switching stats::normal_pdf (and the fusion/particle kernels) onto
// these functions changed every trace by ~1 ulp per epoch, which the
// chaotic particle filter amplifies over a walk; the golden traces were
// regenerated once (UNILOC_UPDATE_GOLDEN=1) when this landed. From then
// on every build -- SIMD, scalar-mode, UNILOC_NO_SIMD -- reproduces the
// committed traces bit-identically, which is what lets the differential
// harness stay tolerance-free (DESIGN.md section 16).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace uniloc::stats {

// `#pragma omp simd` spelled as a macro so kernels compile warning-free
// in UNILOC_NO_SIMD builds (which omit -fopenmp-simd).
#if defined(UNILOC_NO_SIMD)
#define UNILOC_PRAGMA_SIMD
#else
#define UNILOC_PRAGMA_SIMD _Pragma("omp simd")
#endif

namespace detail {

/// 1.5 * 2^52: adding it rounds an |x| < 2^51 double to integer with the
/// mantissa low bits holding the two's-complement integer value -- the
/// branchless (and convert-free, hence trivially vectorizable)
/// round-to-nearest used by the range reductions below.
inline constexpr double kRoundShift = 6755399441055744.0;

/// 2^e for an integral e in [-1075, 1025] held in a double, by building
/// the IEEE bit pattern directly. Exponents below -1022 are handled by
/// the callers splitting e in halves.
inline double pow2_int(double e) {
  const std::int64_t i = std::bit_cast<std::int64_t>(e + kRoundShift) -
                         std::bit_cast<std::int64_t>(kRoundShift);
  return std::bit_cast<double>((i + 1023) << 52);
}

}  // namespace detail

/// Deterministic exp(x). Branchless Cody-Waite reduction (x = k ln2 + r,
/// |r| <= ln2/2) + degree-13 Taylor Horner evaluation, 2^k by exponent
/// construction. Correct limits: +inf -> +inf, -inf -> 0, NaN -> NaN,
/// overflow -> +inf, underflow -> gradual to 0.
inline double det_exp(double x) {
  constexpr double kLog2e = 1.44269504088896338700e+00;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;

  // Clamp the scaled argument so k stays in range; the first ternary is
  // written to also swallow NaN/-inf (comparison false -> constant).
  double t = x * kLog2e;
  t = t > -1075.0 ? t : -1075.0;
  t = t < 1025.0 ? t : 1025.0;
  const double k = (t + detail::kRoundShift) - detail::kRoundShift;
  const double r = (x - k * kLn2Hi) - k * kLn2Lo;

  // exp(r) = sum r^i / i!, i = 0..13 (|r| <= 0.3466 -> remainder < 5e-18).
  double p = 1.0 / 6227020800.0;
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;

  // 2^k in two powers so k down to -1075 (subnormal results) stays
  // representable; both halves are normal powers of two, so the only
  // rounding is the final (possibly subnormal) multiply.
  const double k1 = (k * 0.5 + detail::kRoundShift) - detail::kRoundShift;
  const double k2 = k - k1;
  double res = p * detail::pow2_int(k1) * detail::pow2_int(k2);

  // Out-of-range x (including +/-inf) bypassed the reduction's accuracy;
  // pin the limits. NaN fails both comparisons and flows through.
  res = x > 709.782712893384 ? std::numeric_limits<double>::infinity() : res;
  res = x < -745.2 ? 0.0 : res;
  return res;
}

/// Deterministic simultaneous sin/cos. Branchless pi/2 reduction with
/// quadrant selection; accurate (~2 ulp) for |x| up to a few hundred,
/// self-consistent (but inaccurate vs libm) beyond. NaN propagates.
inline void det_sincos(double x, double& sin_out, double& cos_out) {
  constexpr double kTwoOverPi = 6.36619772367581382433e-01;
  constexpr double kPio2Hi = 1.57079632679489655800e+00;
  constexpr double kPio2Lo = 6.12323399573676603587e-17;

  double t = x * kTwoOverPi;
  t = t > -4.5e15 ? t : 0.0;  // swallow -inf/NaN: j := 0, r goes NaN.
  t = t < 4.5e15 ? t : 0.0;
  const double tr = t + detail::kRoundShift;
  const double j = tr - detail::kRoundShift;
  const std::int64_t q = std::bit_cast<std::int64_t>(tr) & 3;
  const double r = (x - j * kPio2Hi) - j * kPio2Lo;
  const double w = r * r;

  // sin(r)/r and cos(r) Taylor series on |r| <= pi/4 (+rounding slack).
  double ps = 1.0 / 1307674368000.0;
  ps = ps * w - 1.0 / 6227020800.0;
  ps = ps * w + 1.0 / 39916800.0;
  ps = ps * w - 1.0 / 362880.0;
  ps = ps * w + 1.0 / 5040.0;
  ps = ps * w - 1.0 / 120.0;
  ps = ps * w + 1.0 / 6.0;
  const double sr = r - r * (w * ps);

  double pc = -1.0 / 87178291200.0;
  pc = pc * w + 1.0 / 479001600.0;
  pc = pc * w - 1.0 / 3628800.0;
  pc = pc * w + 1.0 / 40320.0;
  pc = pc * w - 1.0 / 720.0;
  pc = pc * w + 1.0 / 24.0;
  pc = pc * w - 0.5;
  const double cr = 1.0 + w * pc;

  // x = j*pi/2 + r: quadrant q swaps and/or negates the pair.
  const bool swap = (q & 1) != 0;
  const double ssel = swap ? cr : sr;
  const double csel = swap ? sr : cr;
  sin_out = q >= 2 ? -ssel : ssel;
  cos_out = (q == 1 || q == 2) ? -csel : csel;
}

/// Deterministic ln(x) for positive normal x (the Box-Muller uniforms are
/// in [2^-53, 1], so subnormal/zero/negative handling is not needed; such
/// inputs produce garbage, not traps). Reduction x = 2^e * m with m in
/// [sqrt(2)/2, sqrt(2)), then ln(m) = 2 atanh(s), s = (m-1)/(m+1), by a
/// degree-9 odd series in s^2 (|s| <= 0.172 -> truncation ~1e-15
/// relative). Same determinism rules as det_exp: plain arithmetic,
/// ternary selects, no libm.
inline double det_log(double x) {
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kSqrt2 = 1.41421356237309514547e+00;

  const std::int64_t bits = std::bit_cast<std::int64_t>(x);
  double e = static_cast<double>(((bits >> 52) & 0x7FF) - 1023);
  double m = std::bit_cast<double>(
      (bits & 0x000FFFFFFFFFFFFFLL) | 0x3FF0000000000000LL);
  // Shift the mantissa window from [1, 2) to [sqrt(2)/2, sqrt(2)) so s
  // stays small on both sides of 1.
  const bool high = m >= kSqrt2;
  m = high ? m * 0.5 : m;
  e = high ? e + 1.0 : e;

  const double s = (m - 1.0) / (m + 1.0);
  const double s2 = s * s;
  double p = 1.0 / 19.0;
  p = p * s2 + 1.0 / 17.0;
  p = p * s2 + 1.0 / 15.0;
  p = p * s2 + 1.0 / 13.0;
  p = p * s2 + 1.0 / 11.0;
  p = p * s2 + 1.0 / 9.0;
  p = p * s2 + 1.0 / 7.0;
  p = p * s2 + 1.0 / 5.0;
  p = p * s2 + 1.0 / 3.0;
  p = p * s2 + 1.0;
  const double ln_m = 2.0 * s * p;
  return e * kLn2Hi + (ln_m + e * kLn2Lo);
}

/// Deterministic standard-normal pair from two raw engine words
/// (Box-Muller). u1 = ((a >> 11) + 1) * 2^-53 in (0, 1] keeps the log
/// argument away from zero; u2 = (b >> 11) * 2^-53 in [0, 1) spins the
/// angle. A pure function of the two words built entirely from det_log /
/// det_sincos / IEEE sqrt, so the normal stream consumed by the particle
/// filter is bit-identical in scalar and vectorized builds -- and on any
/// IEEE-754 platform, unlike std::normal_distribution, whose algorithm
/// is implementation-defined.
inline void det_normal_pair(std::uint64_t a, std::uint64_t b, double& z0,
                            double& z1) {
  constexpr double kTwoPow53Inv = 1.0 / 9007199254740992.0;
  constexpr double kTwoPi = 6.28318530717958647693e+00;
  const double u1 = static_cast<double>((a >> 11) + 1) * kTwoPow53Inv;
  const double u2 = static_cast<double>(b >> 11) * kTwoPow53Inv;
  const double r = std::sqrt(-2.0 * det_log(u1));
  double s, c;
  det_sincos(kTwoPi * u2, s, c);
  z0 = r * c;
  z1 = r * s;
}

}  // namespace uniloc::stats
