#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace uniloc::stats {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double rmse(std::span<const double> predicted, std::span<const double> truth) {
  if (predicted.size() != truth.size() || predicted.empty()) {
    throw std::invalid_argument("rmse: size mismatch or empty");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(predicted.size()));
}

double normalized_rmse(std::span<const double> predicted,
                       std::span<const double> truth) {
  const double denom = mean(truth);
  if (denom == 0.0) throw std::invalid_argument("normalized_rmse: zero mean");
  return rmse(predicted, truth) / denom;
}

double min_of(std::span<const double> v) {
  assert(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double max_of(std::span<const double> v) {
  assert(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) throw std::invalid_argument("percentile: empty sample");
  q = std::clamp(q, 0.0, 100.0);
  std::sort(v.begin(), v.end());
  const double pos = q / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace uniloc::stats
