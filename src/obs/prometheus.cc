#include "obs/prometheus.h"

#include <charconv>
#include <cmath>

#include "obs/metrics.h"

namespace uniloc::obs {

namespace {

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  const std::to_chars_result res =
      std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry,
                            const std::string& prefix) {
  std::string out;
  for (const auto& [name, c] : registry.counters()) {
    const std::string pname = prefix + prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string pname = prefix + prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + format_double(g.value()) + "\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string pname = prefix + prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      cum += counts[b];
      out += pname + "_bucket{le=\"" + format_double(bounds[b]) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) +
           "\n";
    out += pname + "_sum " + format_double(h.sum()) + "\n";
    out += pname + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

}  // namespace uniloc::obs
