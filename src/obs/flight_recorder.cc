#include "obs/flight_recorder.h"

#include <algorithm>
#include <fstream>

#include "obs/json.h"

namespace uniloc::obs {

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kHello: return "hello";
    case FlightKind::kEpochSubmit: return "epoch_submit";
    case FlightKind::kEpochAccepted: return "epoch_accepted";
    case FlightKind::kRetry: return "retry";
    case FlightKind::kTimeout: return "timeout";
    case FlightKind::kBackpressure: return "backpressure";
    case FlightKind::kFallbackEnter: return "fallback_enter";
    case FlightKind::kFallbackExit: return "fallback_exit";
    case FlightKind::kLocalEpoch: return "local_epoch";
    case FlightKind::kRehello: return "rehello";
    case FlightKind::kServerEpoch: return "server_epoch";
    case FlightKind::kRestore: return "restore";
    case FlightKind::kCrash: return "crash";
    case FlightKind::kSloBreach: return "slo_breach";
    case FlightKind::kError: return "error";
    case FlightKind::kMigrateOut: return "migrate_out";
    case FlightKind::kMigrateIn: return "migrate_in";
  }
  return "unknown";
}

std::string to_json_line(const FlightEvent& ev) {
  JsonWriter w;
  w.begin_object();
  w.kv("session", ev.session_id);
  w.kv("epoch", ev.epoch);
  w.kv("kind", flight_kind_name(ev.kind));
  w.kv("a", ev.a);
  w.kv("b", ev.b);
  w.kv("x", ev.x);
  w.end_object();
  return w.str();
}

FlightRecorder::FlightRecorder(std::size_t capacity_per_session)
    : capacity_(std::max<std::size_t>(capacity_per_session, 1)) {}

void FlightRecorder::record(const FlightEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  Ring& ring = rings_[ev.session_id];
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(ev);
  } else {
    ring.buf[ring.next] = ev;
    ring.next = (ring.next + 1) % capacity_;
  }
  ++ring.seen;
  ++total_;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<std::uint64_t> FlightRecorder::session_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> ids;
  ids.reserve(rings_.size());
  for (const auto& [id, ring] : rings_) ids.push_back(id);
  return ids;  // std::map iterates in ascending key order
}

std::vector<FlightEvent> FlightRecorder::ordered_events(
    const Ring& ring) const {
  std::vector<FlightEvent> out;
  out.reserve(ring.buf.size());
  if (ring.buf.size() < capacity_) {
    out = ring.buf;  // never wrapped: already oldest-first
  } else {
    out.insert(out.end(), ring.buf.begin() + static_cast<std::ptrdiff_t>(
                                                 ring.next),
               ring.buf.end());
    out.insert(out.end(), ring.buf.begin(),
               ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.next));
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::session_events(
    std::uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = rings_.find(session_id);
  if (it == rings_.end()) return {};
  return ordered_events(it->second);
}

std::string FlightRecorder::dump_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [id, ring] : rings_) {
    JsonWriter header;
    header.begin_object();
    header.kv("session", id);
    header.kv("events_seen", ring.seen);
    header.kv("events_kept",
              static_cast<std::uint64_t>(ring.buf.size()));
    header.end_object();
    out += header.str();
    out += '\n';
    for (const FlightEvent& ev : ordered_events(ring)) {
      out += to_json_line(ev);
      out += '\n';
    }
  }
  return out;
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f.is_open()) return false;
  f << dump_jsonl();
  return f.good();
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  total_ = 0;
}

}  // namespace uniloc::obs
