// Prometheus text exposition (format 0.0.4) for a MetricsRegistry.
//
// Counters and gauges render as single samples; histograms render as
// cumulative `_bucket{le="..."}` series ending in le="+Inf", plus `_sum`
// and `_count`. Metric names are sanitized for Prometheus (every
// character outside [a-zA-Z0-9_:] becomes '_') and prefixed, so
// "svc.request_us" exports as "uniloc_svc_request_us".
#pragma once

#include <string>

namespace uniloc::obs {

class MetricsRegistry;

/// Sanitize one metric name (no prefix applied).
std::string prometheus_name(const std::string& name);

/// Render the whole registry. Deterministic: registries are ordered
/// maps, so identical contents produce identical text.
std::string prometheus_text(const MetricsRegistry& registry,
                            const std::string& prefix = "uniloc_");

}  // namespace uniloc::obs
