// RAII latency timer feeding a metrics histogram.
//
// The null-object contract that keeps detached instrumentation free:
// constructed with a nullptr histogram, the timer performs no clock reads
// at all -- hot paths can therefore be instrumented unconditionally and
// pay only an untaken branch until someone attaches a registry.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace uniloc::obs {

class ScopedTimer {
 public:
  /// Records elapsed microseconds into `hist` on destruction; no-op when
  /// `hist` is null.
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = Clock::now();
  }

  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->observe(std::chrono::duration<double, std::micro>(
                         Clock::now() - start_)
                         .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  Histogram* hist_;
  Clock::time_point start_{};
};

}  // namespace uniloc::obs
