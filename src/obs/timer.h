// RAII latency timer feeding a metrics histogram.
//
// The null-object contract that keeps detached instrumentation free:
// constructed with a nullptr histogram, the timer performs no clock reads
// at all -- hot paths can therefore be instrumented unconditionally and
// pay only an untaken branch until someone attaches a registry.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace uniloc::obs {

class ScopedTimer {
 public:
  /// Records elapsed microseconds into `hist` on destruction; no-op when
  /// `hist` is null.
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = Clock::now();
  }

  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->observe(std::chrono::duration<double, std::micro>(
                         Clock::now() - start_)
                         .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  Histogram* hist_;
  Clock::time_point start_{};
};

/// Manual start/read timer for spans that cross scopes or threads (e.g. a
/// request timed from acceptance on the submitting thread to completion
/// on a worker). Unlike ScopedTimer it is copyable -- the start point is
/// a value that can travel with the work item -- and it never touches a
/// histogram itself: the owner reads elapsed_us() and records wherever
/// (and under whatever lock) it wants.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  void restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point start_;
};

}  // namespace uniloc::obs
