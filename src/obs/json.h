// Minimal streaming JSON writer for the telemetry exporters.
//
// The observability layer emits machine-readable artifacts (JSONL epoch
// traces, BENCH_*.json reports, registry dumps) without external
// dependencies; this writer covers exactly the subset those exporters
// need: objects, arrays, string escaping, and IEEE doubles with
// non-finite values mapped to null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace uniloc::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside the current object; must be followed by exactly one value
  /// (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);  ///< NaN / Inf serialize as null.
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& null_value();

  /// Shorthand for key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

  /// JSON string-escape `s` (no surrounding quotes).
  static std::string escape(std::string_view s);

 private:
  void element_prefix();

  std::string out_;
  std::vector<bool> first_in_container_;
  bool after_key_{false};
};

}  // namespace uniloc::obs
