// Minimal streaming JSON writer + reader for the telemetry exporters.
//
// The observability layer emits machine-readable artifacts (JSONL epoch
// traces, BENCH_*.json reports, registry dumps) without external
// dependencies; this writer covers exactly the subset those exporters
// need: objects, arrays, string escaping, and IEEE doubles with
// non-finite values mapped to null (JSON has no NaN/Inf). The reader is
// the writer's inverse -- it parses everything JsonWriter can emit, so
// tests and tooling can round-trip artifacts without external parsers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uniloc::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside the current object; must be followed by exactly one value
  /// (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);  ///< NaN / Inf serialize as null.
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& null_value();

  /// Shorthand for key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

  /// JSON string-escape `s` (no surrounding quotes).
  static std::string escape(std::string_view s);

 private:
  void element_prefix();

  std::string out_;
  std::vector<bool> first_in_container_;
  bool after_key_{false};
};

/// Parsed JSON document node. Object members keep insertion order (the
/// writer emits deterministically ordered output; the reader preserves
/// it so byte-level and structural comparisons agree).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> items;                            ///< kArray

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// number rounded to uint64 (0 when not a number or negative).
  std::uint64_t as_u64() const;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Returns nullopt on any syntax error. Handles the
/// full escape set JsonWriter::escape emits, including \uXXXX.
std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace uniloc::obs
