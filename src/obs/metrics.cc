#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "io/table.h"
#include "obs/json.h"

namespace uniloc::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

std::vector<double> Histogram::default_latency_bounds_us() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    if (decade < 1e6) {
      bounds.push_back(2.0 * decade);
      bounds.push_back(5.0 * decade);
    }
  }
  return bounds;
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double rank = q / 100.0 * static_cast<double>(count_);
  // The largest value a percentile may report: the recorded max when it
  // is finite, otherwise the last finite bound. This keeps the overflow
  // bucket (and explicit +inf observations) from leaking +inf into
  // reports.
  double cap = max_;
  if (!std::isfinite(cap)) {
    cap = 0.0;
    for (auto it = bounds_.rbegin(); it != bounds_.rend(); ++it) {
      if (std::isfinite(*it)) {
        cap = *it;
        break;
      }
    }
  }
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const double next = cum + static_cast<double>(buckets_[b]);
    if (rank <= next) {
      // Interpolate inside bucket b; the recorded min/max tighten the
      // first and last populated buckets' edges, and `cap` replaces any
      // non-finite edge (overflow bucket, +inf bound, +inf min/max).
      double lo = b == 0 ? min_ : bounds_[b - 1];
      double hi = b < bounds_.size() ? bounds_[b] : max_;
      if (!std::isfinite(lo)) lo = cap;
      if (!std::isfinite(hi)) hi = cap;
      if (std::isfinite(min_)) lo = std::max(lo, min_);
      hi = std::min(hi, cap);
      if (hi <= lo) return lo;
      const double frac =
          (rank - cum) / static_cast<double>(buckets_[b]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return cap;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram{}).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram{std::move(bounds)})
      .first->second;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("mean", h.mean());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.kv("p50", h.percentile(50.0));
    w.kv("p90", h.percentile(90.0));
    w.kv("p99", h.percentile(99.0));
    // Sparse bucket dump: only populated buckets, Prometheus-style
    // upper-edge labels ("le"), overflow edge serialized as null (+inf).
    w.key("buckets").begin_array();
    const auto& counts = h.bucket_counts();
    const auto& bounds = h.upper_bounds();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;
      w.begin_object();
      w.key("le");
      if (b < bounds.size()) {
        w.value(bounds[b]);
      } else {
        w.null_value();
      }
      w.kv("count", counts[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

io::Table MetricsRegistry::to_table() const {
  io::Table t({"metric", "type", "count", "mean", "p50", "p90", "p99",
               "max", "value"});
  for (const auto& [name, c] : counters_) {
    t.add_row({name, "counter", "", "", "", "", "", "",
               std::to_string(c.value())});
  }
  for (const auto& [name, g] : gauges_) {
    t.add_row({name, "gauge", "", "", "", "", "", "",
               io::Table::num(g.value())});
  }
  for (const auto& [name, h] : histograms_) {
    t.add_row({name, "histogram", std::to_string(h.count()),
               io::Table::num(h.mean()), io::Table::num(h.percentile(50.0)),
               io::Table::num(h.percentile(90.0)),
               io::Table::num(h.percentile(99.0)), io::Table::num(h.max()),
               ""});
  }
  return t;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace uniloc::obs
