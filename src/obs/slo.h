// SLO monitor: sliding-window latency + error budgets with burn rates.
//
// Two budgets over the last `window` requests:
//   * latency: at most `latency_budget` of requests slower than
//     `latency_slo_us`;
//   * errors: at most `error_budget` of requests failing.
// A burn rate is the observed bad fraction divided by its budget -- 1.0
// means the budget is being consumed exactly as fast as it is granted;
// above 1.0 the SLO is breached. Burn rates, the windowed p99, and the
// breach state export as `slo.*` gauges so the future shard rebalancer
// (ROADMAP) can consume them, and the breach edge fires a callback the
// server wires to a flight-recorder dump.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace uniloc::obs {

class MetricsRegistry;

struct SloConfig {
  double latency_slo_us{250'000.0};  ///< "Slow" threshold per request.
  double latency_budget{0.05};       ///< Allowed slow fraction.
  double error_budget{0.02};         ///< Allowed error fraction.
  std::size_t window{512};           ///< Sliding window, in requests.
  std::size_t min_samples{32};       ///< No verdicts before this many.
};

/// Thread-safe. observe() is a mutex + ring write with incremental slow
/// and error counts; p99 is computed on demand from the window.
class SloMonitor {
 public:
  /// `registry` (optional) receives slo.latency_burn_rate,
  /// slo.error_burn_rate, slo.breached gauges and an slo.breaches
  /// counter, refreshed on every observe().
  explicit SloMonitor(SloConfig cfg = {},
                      MetricsRegistry* registry = nullptr);

  /// One finished request. Fires on_breach on each healthy-to-breached
  /// edge (outside the internal lock).
  void observe(double latency_us, bool error);

  double latency_burn_rate() const;
  double error_burn_rate() const;
  double p99_latency_us() const;  ///< Over the current window.
  bool breached() const;
  std::uint64_t breaches() const;  ///< Healthy->breached edges seen.
  std::uint64_t samples() const;   ///< Lifetime observations.

  const SloConfig& config() const { return cfg_; }

  /// Invoked on each healthy->breached transition. Set before traffic
  /// starts; not guarded against concurrent mutation.
  std::function<void()> on_breach;

 private:
  struct Sample {
    double latency_us{0.0};
    bool slow{false};
    bool error{false};
  };

  double latency_burn_locked() const;
  double error_burn_locked() const;
  bool breached_locked() const;

  mutable std::mutex mu_;
  SloConfig cfg_;
  std::vector<Sample> ring_;
  std::size_t next_{0};
  std::size_t filled_{0};
  std::size_t slow_in_window_{0};
  std::size_t errors_in_window_{0};
  std::uint64_t total_{0};
  std::uint64_t breach_edges_{0};
  bool was_breached_{false};

  class Gauge* g_latency_burn_{nullptr};
  class Gauge* g_error_burn_{nullptr};
  class Gauge* g_breached_{nullptr};
  class Gauge* g_p99_{nullptr};
  class Counter* c_breaches_{nullptr};
};

}  // namespace uniloc::obs
