#include "obs/slo.h"

#include <algorithm>

#include "obs/metrics.h"

namespace uniloc::obs {

SloMonitor::SloMonitor(SloConfig cfg, MetricsRegistry* registry)
    : cfg_(cfg) {
  cfg_.window = std::max<std::size_t>(cfg_.window, 1);
  cfg_.min_samples = std::max<std::size_t>(cfg_.min_samples, 1);
  ring_.resize(cfg_.window);
  if (registry != nullptr) {
    g_latency_burn_ = &registry->gauge("slo.latency_burn_rate");
    g_error_burn_ = &registry->gauge("slo.error_burn_rate");
    g_breached_ = &registry->gauge("slo.breached");
    g_p99_ = &registry->gauge("slo.p99_latency_us");
    c_breaches_ = &registry->counter("slo.breaches");
  }
}

double SloMonitor::latency_burn_locked() const {
  if (filled_ == 0 || cfg_.latency_budget <= 0.0) return 0.0;
  const double frac =
      static_cast<double>(slow_in_window_) / static_cast<double>(filled_);
  return frac / cfg_.latency_budget;
}

double SloMonitor::error_burn_locked() const {
  if (filled_ == 0 || cfg_.error_budget <= 0.0) return 0.0;
  const double frac =
      static_cast<double>(errors_in_window_) / static_cast<double>(filled_);
  return frac / cfg_.error_budget;
}

bool SloMonitor::breached_locked() const {
  if (filled_ < cfg_.min_samples) return false;
  return latency_burn_locked() > 1.0 || error_burn_locked() > 1.0;
}

void SloMonitor::observe(double latency_us, bool error) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (filled_ == cfg_.window) {
      const Sample& old = ring_[next_];
      if (old.slow) --slow_in_window_;
      if (old.error) --errors_in_window_;
    } else {
      ++filled_;
    }
    Sample s;
    s.latency_us = latency_us;
    s.slow = latency_us > cfg_.latency_slo_us;
    s.error = error;
    ring_[next_] = s;
    next_ = (next_ + 1) % cfg_.window;
    if (s.slow) ++slow_in_window_;
    if (s.error) ++errors_in_window_;
    ++total_;

    const bool now_breached = breached_locked();
    if (now_breached && !was_breached_) {
      ++breach_edges_;
      fire = true;
      if (c_breaches_ != nullptr) c_breaches_->inc();
    }
    was_breached_ = now_breached;

    if (g_latency_burn_ != nullptr) {
      g_latency_burn_->set(latency_burn_locked());
      g_error_burn_->set(error_burn_locked());
      g_breached_->set(now_breached ? 1.0 : 0.0);
    }
  }
  // p99 gauge + breach callback run outside mu_: p99 re-locks, and the
  // callback typically dumps a flight recorder (its own lock).
  if (g_p99_ != nullptr) g_p99_->set(p99_latency_us());
  if (fire && on_breach) on_breach();
}

double SloMonitor::latency_burn_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_burn_locked();
}

double SloMonitor::error_burn_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_burn_locked();
}

double SloMonitor::p99_latency_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (filled_ == 0) return 0.0;
  std::vector<double> lat;
  lat.reserve(filled_);
  for (std::size_t i = 0; i < filled_; ++i) {
    lat.push_back(ring_[i].latency_us);
  }
  const std::size_t idx =
      std::min(lat.size() - 1,
               static_cast<std::size_t>(0.99 * static_cast<double>(
                                                   lat.size())));
  std::nth_element(lat.begin(),
                   lat.begin() + static_cast<std::ptrdiff_t>(idx),
                   lat.end());
  return lat[idx];
}

bool SloMonitor::breached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breached_locked();
}

std::uint64_t SloMonitor::breaches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breach_edges_;
}

std::uint64_t SloMonitor::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace uniloc::obs
