#include "obs/trace.h"

#include <stdexcept>

#include "obs/json.h"

namespace uniloc::obs {

std::string to_json_line(const TraceEvent& ev) {
  JsonWriter w;
  w.begin_object();
  w.kv("epoch", ev.epoch);
  w.kv("t", ev.t);
  w.kv("indoor", ev.indoor);
  w.kv("tau", ev.tau);
  w.kv("uniloc1_choice", ev.uniloc1_choice);
  w.kv("oracle_choice", ev.oracle_choice);
  w.kv("gps_was_enabled", ev.gps_was_enabled);
  w.kv("gps_enable_next", ev.gps_enable_next);
  w.key("uniloc1").begin_array().value(ev.uniloc1_x).value(ev.uniloc1_y)
      .end_array();
  w.key("uniloc2").begin_array().value(ev.uniloc2_x).value(ev.uniloc2_y)
      .end_array();
  if (ev.has_truth) {
    w.key("truth").begin_array().value(ev.truth_x).value(ev.truth_y)
        .end_array();
    w.kv("uniloc1_err", ev.uniloc1_err);
    w.kv("uniloc2_err", ev.uniloc2_err);
  }
  w.key("schemes").begin_array();
  for (const SchemeTrace& s : ev.schemes) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("available", s.available);
    w.kv("mu", s.predicted_mu);
    w.kv("sigma", s.predicted_sigma);
    w.kv("confidence", s.confidence);
    w.kv("weight", s.weight);
    w.kv("err", s.error_m);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(path), os_(&owned_) {
  if (!owned_.is_open()) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(&os) {}

void JsonlTraceSink::on_epoch(const TraceEvent& ev) {
  *os_ << to_json_line(ev) << '\n';
  ++events_;
}

void JsonlTraceSink::flush() { os_->flush(); }

}  // namespace uniloc::obs
