// Causal span tracing across the request path.
//
// A span is one timed step of one epoch's journey -- client send, link
// fault decision, server queue wait, strand wait, decode, a scheme's
// localize, fusion, encode, downlink -- stitched into a tree by
// (trace_id, span_id, parent_id). Design rules mirror the metrics layer:
//
//   * Null-object contract: every instrumented component holds a
//     SpanTracer* defaulting to nullptr. Detached tracing performs no
//     clock reads and no allocation -- a branch on a null pointer is the
//     entire overhead (verified by bench/micro_ops).
//   * begin() is allocation-free (the handle stores literal name
//     pointers); serialization happens only at end(), under a short
//     mutex around the sink.
//   * Ambient context: code that cannot thread trace ids through its
//     signatures (Link::send, server submit) adopts the calling thread's
//     TraceScope, so causality survives API boundaries untouched.
//
// Spans serialize as JSONL -- one self-describing object per line, same
// convention as obs::TraceSink epoch traces -- and convert to Chrome
// trace_event format via scripts/trace2chrome.py.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace uniloc::obs {

/// One completed span. String fields are copied from the handle's
/// literal pointers at end() time.
struct SpanEvent {
  std::uint64_t trace_id{0};
  std::uint64_t span_id{0};
  std::uint64_t parent_id{0};  ///< 0 = root of its trace.
  std::uint64_t session_id{0};
  std::string name;      ///< e.g. "svc.epoch", "scheme.WiFi".
  std::string category;  ///< "client" | "link" | "svc" | "core".
  std::string note;      ///< Optional annotation ("retry", "drop", ...).
  std::uint64_t start_us{0};
  std::uint64_t dur_us{0};
};

/// Serialize one span as a single JSON object (no trailing newline).
std::string to_json_line(const SpanEvent& ev);

class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const SpanEvent& ev) = 0;
  virtual void flush() {}
};

/// Swallows everything; for overhead measurement and detached-but-live
/// tracers.
class NullSpanSink final : public SpanSink {
 public:
  void on_span(const SpanEvent&) override {}
};

/// Buffers spans in memory; tests inspect the tree directly.
class VectorSpanSink final : public SpanSink {
 public:
  void on_span(const SpanEvent& ev) override;

  std::vector<SpanEvent> events() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
};

/// Streams spans to a file (or caller-owned stream), one JSON object per
/// line.
class JsonlSpanSink final : public SpanSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  explicit JsonlSpanSink(const std::string& path);
  explicit JsonlSpanSink(std::ostream& os);

  void on_span(const SpanEvent& ev) override;
  void flush() override;

  std::size_t spans_written() const;

 private:
  mutable std::mutex mu_;
  std::ofstream owned_;
  std::ostream* os_;
  std::size_t spans_{0};
};

/// In-flight span. Copyable value so spans can cross threads (begun on
/// the submit thread, ended on a worker) without shared state. Name and
/// category must point at storage outliving the span (string literals,
/// or per-component cached names).
struct SpanHandle {
  std::uint64_t trace_id{0};
  std::uint64_t span_id{0};
  std::uint64_t parent_id{0};
  std::uint64_t session_id{0};
  std::uint64_t start_us{0};
  const char* name{""};
  const char* category{""};
};

/// Thread-local trace context, for plumbing causality through APIs whose
/// signatures cannot carry ids (Link::send, server submit).
struct TraceContext {
  std::uint64_t trace_id{0};
  std::uint64_t parent_span{0};
  std::uint64_t session_id{0};
};

/// The calling thread's ambient context ({0,0,0} when none is set).
TraceContext current_trace();

/// RAII set/restore of the ambient context.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

/// Span factory + emitter. begin()/end() are safe from any thread: ids
/// come from relaxed atomics, emission serializes on a mutex around the
/// sink. The opened/closed counters make span leaks (a begin with no
/// matching end) mechanically checkable -- the chaos gate asserts they
/// are equal after every scripted disaster.
class SpanTracer {
 public:
  /// `sink` must outlive the tracer. `now_us` defaults to a steady
  /// monotonic clock; inject a sim::VirtualClock reader for
  /// deterministic timestamps.
  explicit SpanTracer(SpanSink* sink,
                      std::function<std::uint64_t()> now_us = {});

  /// Fresh trace id for a new epoch's span tree.
  std::uint64_t next_trace_id() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Open a span. trace_id == 0 adopts the ambient TraceContext when one
  /// is set (parent defaults to the ambient parent span), otherwise a
  /// fresh trace id is allocated (self-rooted span).
  SpanHandle begin(const char* name, const char* category,
                   std::uint64_t trace_id = 0, std::uint64_t parent_id = 0,
                   std::uint64_t session_id = 0);

  /// Close and emit. Safe to call exactly once per handle.
  void end(const SpanHandle& h, const char* note = "");

  void flush();

  std::uint64_t spans_opened() const {
    return opened_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_closed() const {
    return closed_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t now() const;

  SpanSink* sink_;
  std::function<std::uint64_t()> now_us_;
  std::atomic<std::uint64_t> next_span_id_{1};
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::uint64_t> opened_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::mutex emit_mu_;
};

/// RAII span: begins on construction when `tracer` is non-null, ends on
/// destruction (or an explicit finish() with a note). Detached (null
/// tracer) cost is one branch.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(SpanTracer* tracer, const char* name, const char* category,
             std::uint64_t trace_id = 0, std::uint64_t parent_id = 0,
             std::uint64_t session_id = 0)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      handle_ = tracer_->begin(name, category, trace_id, parent_id,
                               session_id);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  void finish(const char* note = "") {
    if (tracer_ != nullptr) {
      tracer_->end(handle_, note);
      tracer_ = nullptr;
    }
  }

  /// The open span's id (0 when detached) -- parent for child spans.
  std::uint64_t id() const { return handle_.span_id; }
  std::uint64_t trace() const { return handle_.trace_id; }

 private:
  SpanTracer* tracer_{nullptr};
  SpanHandle handle_;
};

}  // namespace uniloc::obs
