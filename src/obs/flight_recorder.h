// Per-session flight recorder.
//
// A fixed-size ring buffer of the last N epoch events per session --
// submits, retries, timeouts, backpressure, fallback entry/exit,
// re-hellos, and the server's per-epoch scheme choice. When something
// goes wrong (a crash, a restore mismatch, an SLO breach) the recorder
// is dumped as JSONL next to the checkpoint files, so a post-mortem can
// reconstruct exactly what the failing session's last N epochs did
// without re-running anything.
//
// Determinism contract: FlightEvent carries NO wall-clock timestamps --
// every field is derived from the deterministic simulation (epoch
// indices, attempt counts, scheme indices, virtual-time latencies), so a
// same-seed rerun at workers == 0 produces a byte-identical dump. That
// property is what makes flight dumps diffable across reruns and is
// locked by the chaos tests.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace uniloc::obs {

enum class FlightKind : std::uint8_t {
  kHello = 1,
  kEpochSubmit = 2,     ///< Client sent an epoch frame. a = attempt 0.
  kEpochAccepted = 3,   ///< Reply landed. a = attempts, x = error (m).
  kRetry = 4,           ///< Timed out / dropped; resending. a = attempt.
  kTimeout = 5,         ///< Attempts exhausted. a = attempts used.
  kBackpressure = 6,    ///< Server shed the request (inbox full).
  kFallbackEnter = 7,   ///< Client entered degraded local mode.
  kFallbackExit = 8,    ///< Probe succeeded; back to server mode.
  kLocalEpoch = 9,      ///< Served by the local fallback. x = error (m).
  kRehello = 10,        ///< Client re-registered after eviction.
  kServerEpoch = 11,    ///< Server decision. a = scheme, b = indoor, x = tau.
  kRestore = 12,        ///< Session state restored from a checkpoint.
  kCrash = 13,          ///< CrashInjector killed the server.
  kSloBreach = 14,      ///< SloMonitor burn rate crossed 1.0.
  kError = 15,          ///< Malformed frame / server-side error.
  kMigrateOut = 16,     ///< Session extracted for shard migration.
                        ///< a = serialized bytes.
  kMigrateIn = 17,      ///< Session adopted from a kMigrate payload.
                        ///< a = serialized bytes.
};

const char* flight_kind_name(FlightKind k);

/// One recorded event. `a`, `b`, `x` are kind-specific (documented per
/// enumerator above); unused fields stay zero so serialization is
/// deterministic.
struct FlightEvent {
  std::uint64_t session_id{0};
  std::uint64_t epoch{0};  ///< Client epoch index / server epochs served.
  FlightKind kind{FlightKind::kError};
  std::int64_t a{0};
  std::int64_t b{0};
  double x{0.0};
};

/// Serialize one event as a single JSON object (no trailing newline).
std::string to_json_line(const FlightEvent& ev);

/// Thread-safe ring-per-session store. Recording is a mutex + ring write
/// (no allocation after a session's first `capacity` events); dumping
/// walks sessions in id order, events oldest to newest.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity_per_session = 64);

  void record(const FlightEvent& ev);

  std::size_t capacity_per_session() const { return capacity_; }
  std::uint64_t total_recorded() const;
  std::vector<std::uint64_t> session_ids() const;  ///< Sorted.
  /// Oldest-to-newest retained events for one session.
  std::vector<FlightEvent> session_events(std::uint64_t session_id) const;

  /// Full JSONL dump: per session (ascending id) one header line
  /// {"session":..,"events_seen":..,"events_kept":..} followed by its
  /// retained events, oldest first. Deterministic: identical recording
  /// sequences produce identical bytes.
  std::string dump_jsonl() const;

  /// Write dump_jsonl() to `path`. Returns false on I/O failure.
  bool dump_to_file(const std::string& path) const;

  void clear();

 private:
  struct Ring {
    std::vector<FlightEvent> buf;  ///< Capacity-bounded storage.
    std::size_t next{0};           ///< Overwrite cursor once full.
    std::uint64_t seen{0};         ///< Lifetime events recorded.
  };

  std::vector<FlightEvent> ordered_events(const Ring& ring) const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<std::uint64_t, Ring> rings_;
  std::uint64_t total_{0};
};

}  // namespace uniloc::obs
