// Machine-readable bench reports.
//
// Every bench binary prints its human tables as before and additionally
// writes BENCH_<name>.json: accuracy percentiles for each result series
// plus the full contents of a metrics registry (the per-stage timing
// histograms the run accumulated). The files are the repo's perf
// trajectory -- diffable across commits, greppable by tooling.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace uniloc::obs {

class MetricsRegistry;

class BenchReport {
 public:
  /// `registry` (may be null) is snapshotted at to_json()/write() time.
  explicit BenchReport(std::string name,
                       const MetricsRegistry* registry = nullptr);

  /// One accuracy series (e.g. per-epoch errors of "UniLoc2"). Stored by
  /// value; percentiles are computed at serialization time.
  void add_series(const std::string& series, std::vector<double> samples);

  /// One named scalar result (e.g. a duty-cycle fraction).
  void add_scalar(const std::string& name, double value);

  const std::string& name() const { return name_; }
  std::string default_path() const { return "BENCH_" + name_ + ".json"; }

  std::string to_json() const;

  /// Write to `path` (default_path() when empty). Returns the path
  /// written, or "" on I/O failure.
  std::string write(const std::string& path = "") const;

  /// One compact history record: bench name, caller-supplied timestamp
  /// (this layer never reads a clock -- pass one in via env/arg),
  /// scalars, and per-series summary percentiles. No raw samples, no
  /// registry dump; a line is meant to be grepped across months of runs.
  std::string history_line(const std::string& timestamp) const;

  /// Append history_line() + '\n' to `path` (creating it when absent).
  /// Returns false on I/O failure.
  bool append_history(const std::string& path,
                      const std::string& timestamp) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> samples;
  };

  std::string name_;
  const MetricsRegistry* registry_;
  std::vector<Series> series_;
  std::vector<std::pair<std::string, double>> scalars_;
};

}  // namespace uniloc::obs
