#include "obs/report.h"

#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "stats/descriptive.h"

namespace uniloc::obs {

BenchReport::BenchReport(std::string name, const MetricsRegistry* registry)
    : name_(std::move(name)), registry_(registry) {}

void BenchReport::add_series(const std::string& series,
                             std::vector<double> samples) {
  series_.push_back({series, std::move(samples)});
}

void BenchReport::add_scalar(const std::string& name, double value) {
  scalars_.emplace_back(name, value);
}

std::string BenchReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", name_);
  w.key("series").begin_object();
  for (const Series& s : series_) {
    w.key(s.name).begin_object();
    w.kv("n", static_cast<std::uint64_t>(s.samples.size()));
    if (!s.samples.empty()) {
      w.kv("mean", stats::mean(s.samples));
      w.kv("p50", stats::percentile(s.samples, 50.0));
      w.kv("p90", stats::percentile(s.samples, 90.0));
      w.kv("p95", stats::percentile(s.samples, 95.0));
      w.kv("min", stats::min_of(s.samples));
      w.kv("max", stats::max_of(s.samples));
    }
    w.end_object();
  }
  w.end_object();
  w.key("scalars").begin_object();
  for (const auto& [name, value] : scalars_) w.kv(name, value);
  w.end_object();
  w.end_object();  // root
  // Registry dump is pre-serialized JSON; splice it in verbatim.
  std::string out = w.str();
  out.pop_back();  // reopen the root: drop its trailing '}'
  out += ",\"metrics\":";
  out += registry_ != nullptr ? registry_->to_json()
                              : std::string("{}");
  out += '}';
  return out;
}

std::string BenchReport::write(const std::string& path) const {
  const std::string target = path.empty() ? default_path() : path;
  std::ofstream f(target);
  if (!f.is_open()) return "";
  f << to_json() << '\n';
  return f.good() ? target : "";
}

std::string BenchReport::history_line(const std::string& timestamp) const {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", name_);
  w.kv("ts", timestamp);
  w.key("scalars").begin_object();
  for (const auto& [name, value] : scalars_) w.kv(name, value);
  w.end_object();
  w.key("series").begin_object();
  for (const Series& s : series_) {
    w.key(s.name).begin_object();
    w.kv("n", static_cast<std::uint64_t>(s.samples.size()));
    if (!s.samples.empty()) {
      w.kv("mean", stats::mean(s.samples));
      w.kv("p50", stats::percentile(s.samples, 50.0));
      w.kv("p90", stats::percentile(s.samples, 90.0));
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

bool BenchReport::append_history(const std::string& path,
                                 const std::string& timestamp) const {
  std::ofstream f(path, std::ios::app);
  if (!f.is_open()) return false;
  f << history_line(timestamp) << '\n';
  return f.good();
}

}  // namespace uniloc::obs
