// Per-epoch structured tracing.
//
// One TraceEvent captures everything UniLoc decided in an epoch -- which
// schemes ran, their predicted error N(mu, sigma), the confidence each
// earned against tau, the BMA weights, UniLoc1's pick vs. the oracle's,
// and the GPS duty decision -- so a whole walk can be replayed, diffed,
// or post-processed offline. The JSONL sink streams one self-describing
// JSON object per line; the null sink makes tracing free when unused.
#pragma once

#include <cstdint>
#include <fstream>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace uniloc::obs {

struct SchemeTrace {
  std::string name;
  bool available{false};
  double predicted_mu{std::numeric_limits<double>::quiet_NaN()};
  double predicted_sigma{std::numeric_limits<double>::quiet_NaN()};
  double confidence{0.0};
  double weight{0.0};
  /// Ground-truth error in meters; NaN when truth is unknown or the
  /// scheme was unavailable.
  double error_m{std::numeric_limits<double>::quiet_NaN()};
};

struct TraceEvent {
  std::uint64_t epoch{0};  ///< Index within the walk, 0-based.
  double t{0.0};           ///< Walk time (s).
  bool indoor{false};      ///< IODetector's classification.
  double tau{0.0};         ///< Adaptive confidence threshold (m).
  int uniloc1_choice{-1};  ///< Scheme index UniLoc1 selected (-1: none).
  int oracle_choice{-1};   ///< Ground-truth best scheme (-1: unknown).
  bool gps_was_enabled{true};
  bool gps_enable_next{true};
  double uniloc1_x{0.0}, uniloc1_y{0.0};
  double uniloc2_x{0.0}, uniloc2_y{0.0};
  bool has_truth{false};
  double truth_x{0.0}, truth_y{0.0};
  double uniloc1_err{std::numeric_limits<double>::quiet_NaN()};
  double uniloc2_err{std::numeric_limits<double>::quiet_NaN()};
  std::vector<SchemeTrace> schemes;  ///< Index-aligned with the registry.
};

/// Serialize one event as a single JSON object (no trailing newline).
std::string to_json_line(const TraceEvent& ev);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_epoch(const TraceEvent& ev) = 0;
  virtual void flush() {}
};

/// Swallows everything; for code paths that want a non-null sink.
class NullTraceSink final : public TraceSink {
 public:
  void on_epoch(const TraceEvent&) override {}
};

/// Streams events to a file (or caller-owned stream), one JSON object per
/// line.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  explicit JsonlTraceSink(const std::string& path);
  explicit JsonlTraceSink(std::ostream& os);

  void on_epoch(const TraceEvent& ev) override;
  void flush() override;

  std::size_t events_written() const { return events_; }

 private:
  std::ofstream owned_;
  std::ostream* os_;
  std::size_t events_{0};
};

}  // namespace uniloc::obs
