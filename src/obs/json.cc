#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace uniloc::obs {

void JsonWriter::element_prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_in_container_.empty()) return;
  if (first_in_container_.back()) {
    first_in_container_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ += '{';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ += '[';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  element_prefix();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null_value();
  element_prefix();
  // Shortest representation that parses back to exactly `v` -- the old
  // "%.9g" silently dropped up to 8 bits of mantissa, so values did not
  // survive a write/read round trip.
  char buf[32];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  element_prefix();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  element_prefix();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber || number < 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(number));
}

namespace {

/// Recursive-descent parser over the JsonWriter output grammar.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    JsonValue root;
    if (!parse_value(root, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return consume_literal("null");
      default:
        out.kind = JsonValue::Kind::kNumber;
        return parse_number(out.number);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue member;
      if (!parse_value(member, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          const std::from_chars_result res = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (res.ptr != text_.data() + pos_ + 4) return false;
          pos_ += 4;
          // The writer only emits \u for control characters (< 0x20);
          // decode the BMP subset as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const std::from_chars_result res = std::from_chars(begin, end, out);
    if (res.ec != std::errc() || res.ptr == begin) return false;
    pos_ += static_cast<std::size_t>(res.ptr - begin);
    return true;
  }

  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).run();
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace uniloc::obs
