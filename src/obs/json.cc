#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace uniloc::obs {

void JsonWriter::element_prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_in_container_.empty()) return;
  if (first_in_container_.back()) {
    first_in_container_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ += '{';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ += '[';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  element_prefix();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null_value();
  element_prefix();
  // Shortest representation that parses back to exactly `v` -- the old
  // "%.9g" silently dropped up to 8 bits of mantissa, so values did not
  // survive a write/read round trip.
  char buf[32];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  element_prefix();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  element_prefix();
  out_ += "null";
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace uniloc::obs
