// Metrics registry: counters, gauges, and fixed-bucket histograms.
//
// Design rules (the whole pipeline hangs instrumentation off these):
//   * Plain structs, no locks, no mandatory globals. A registry is an
//     ordinary value you create, attach to components, and export. A
//     process-default registry exists purely for convenience
//     (default_registry()); nothing uses it implicitly.
//   * Null-object instrumentation: components hold Histogram* / Counter*
//     pointers that default to nullptr. Detached instrumentation performs
//     no clock reads and no hash lookups -- a branch on a null pointer is
//     the entire overhead (verified by bench/micro_ops).
//   * Instrument references returned by the registry stay valid for the
//     registry's lifetime (node-based storage), so components resolve
//     names once at attach time, never on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace uniloc::io {
class Table;
}

namespace uniloc::obs {

/// Monotonically increasing event count. inc() is lock-free and safe to
/// call from any number of worker threads concurrently (relaxed atomics:
/// counts are exact, cross-counter ordering is not promised).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-observed value of some quantity. set()/add() are thread-safe;
/// add() uses a CAS loop so concurrent deltas never lose updates.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with exact count/sum/min/max and
/// bucket-interpolated percentiles. Bucket i counts observations with
/// upper_bounds[i-1] < v <= upper_bounds[i]; one implicit overflow bucket
/// catches everything above the last bound.
class Histogram {
 public:
  /// Default bounds suit latencies in microseconds (1 us .. 1 s).
  Histogram() : Histogram(default_latency_bounds_us()) {}
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Linear interpolation inside the bucket containing the q-th
  /// percentile rank (q in [0, 100]); exact at the recorded min/max.
  /// Never reports a non-finite value: observations landing in the
  /// overflow bucket (or explicit +inf observations) are clamped to the
  /// last finite upper bound, so downstream JSON/Prometheus exports stay
  /// numeric.
  double percentile(double q) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// bucket_counts().size() == upper_bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }

  void reset();

  /// 1-2-5 series from 1 us to 1e6 us.
  static std::vector<double> default_latency_bounds_us();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Named instrument store. Lookup is by exact name; the first caller of a
/// name creates the instrument, later callers get the same object.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Creates with explicit bounds; bounds are ignored when `name` exists.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Zero every instrument, keeping registrations (and therefore all
  /// pointers held by attached components) valid.
  void reset();

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Machine-readable dump: {"counters":{..},"gauges":{..},
  /// "histograms":{name:{count,sum,mean,min,max,p50,p90,p99,buckets}}}.
  std::string to_json() const;

  /// Human-readable dump via io::Table (one row per instrument).
  io::Table to_table() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Process-default registry for convenience wiring (benches, CLI). Never
/// consulted implicitly by instrumented components.
MetricsRegistry& default_registry();

}  // namespace uniloc::obs
