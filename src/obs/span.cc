#include "obs/span.h"

#include <chrono>
#include <stdexcept>

#include "obs/json.h"

namespace uniloc::obs {

namespace {

thread_local TraceContext g_trace_context;

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string to_json_line(const SpanEvent& ev) {
  JsonWriter w;
  w.begin_object();
  w.kv("trace", ev.trace_id);
  w.kv("span", ev.span_id);
  w.kv("parent", ev.parent_id);
  w.kv("session", ev.session_id);
  w.kv("name", ev.name);
  w.kv("cat", ev.category);
  if (!ev.note.empty()) w.kv("note", ev.note);
  w.kv("start_us", ev.start_us);
  w.kv("dur_us", ev.dur_us);
  w.end_object();
  return w.str();
}

void VectorSpanSink::on_span(const SpanEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(ev);
}

std::vector<SpanEvent> VectorSpanSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t VectorSpanSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void VectorSpanSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

JsonlSpanSink::JsonlSpanSink(const std::string& path)
    : owned_(path), os_(&owned_) {
  if (!owned_.is_open()) {
    throw std::runtime_error("JsonlSpanSink: cannot open " + path);
  }
}

JsonlSpanSink::JsonlSpanSink(std::ostream& os) : os_(&os) {}

void JsonlSpanSink::on_span(const SpanEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  *os_ << to_json_line(ev) << '\n';
  ++spans_;
}

void JsonlSpanSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  os_->flush();
}

std::size_t JsonlSpanSink::spans_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

TraceContext current_trace() { return g_trace_context; }

TraceScope::TraceScope(TraceContext ctx) : prev_(g_trace_context) {
  g_trace_context = ctx;
}

TraceScope::~TraceScope() { g_trace_context = prev_; }

SpanTracer::SpanTracer(SpanSink* sink, std::function<std::uint64_t()> now_us)
    : sink_(sink), now_us_(std::move(now_us)) {}

std::uint64_t SpanTracer::now() const {
  return now_us_ ? now_us_() : steady_now_us();
}

SpanHandle SpanTracer::begin(const char* name, const char* category,
                             std::uint64_t trace_id, std::uint64_t parent_id,
                             std::uint64_t session_id) {
  SpanHandle h;
  if (trace_id == 0) {
    const TraceContext ctx = g_trace_context;
    if (ctx.trace_id != 0) {
      trace_id = ctx.trace_id;
      if (parent_id == 0) parent_id = ctx.parent_span;
      if (session_id == 0) session_id = ctx.session_id;
    } else {
      trace_id = next_trace_id();
    }
  }
  h.trace_id = trace_id;
  h.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  h.parent_id = parent_id;
  h.session_id = session_id;
  h.start_us = now();
  h.name = name;
  h.category = category;
  opened_.fetch_add(1, std::memory_order_relaxed);
  return h;
}

void SpanTracer::end(const SpanHandle& h, const char* note) {
  const std::uint64_t end_us = now();
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (sink_ == nullptr) return;
  SpanEvent ev;
  ev.trace_id = h.trace_id;
  ev.span_id = h.span_id;
  ev.parent_id = h.parent_id;
  ev.session_id = h.session_id;
  ev.name = h.name;
  ev.category = h.category;
  ev.note = note;
  ev.start_us = h.start_us;
  ev.dur_us = end_us >= h.start_us ? end_us - h.start_us : 0;
  std::lock_guard<std::mutex> lock(emit_mu_);
  sink_->on_span(ev);
}

void SpanTracer::flush() {
  if (sink_ == nullptr) return;
  std::lock_guard<std::mutex> lock(emit_mu_);
  sink_->flush();
}

}  // namespace uniloc::obs
