// ShardRouter: N in-process LocalizationServers behind one Endpoint.
//
// The fleet layer (DESIGN.md section 14). Placement is consistent
// hashing on session id (shard/hash_ring.h) plus an override table for
// sessions that no longer live on their ring shard (migrated or
// resurrected after a shard crash). The router is wire-transparent:
// clients speak the exact same frames as against a single server, so
// run_load / FaultyLink / the differential harness drive a fleet
// unmodified, and a fleet run at workers=0 per shard is bit-identical
// to the single-server run with the same seeds.
//
// Live migration protocol (one session, shard A -> shard B):
//
//   ROUTING --mark migrating--> BUFFERING: new frames for the session
//     park in the router (promise retained), nothing reaches A or B.
//   A.extract_session: pin against TTL eviction, drain the strand
//     (quiesce), serialize as one snapshot-codec record, erase from A.
//   B <- kMigrate frame: B validates the payload at its hostile-input
//     boundary and rebuilds the session (factory + restore_from, same
//     discipline as checkpoint restore).
//     * ack   -> override[sid] = B
//     * error -> re-adopt the payload on A (rollback; the session is
//       never lost, the move just didn't happen).
//   REPLAYING: buffered frames are submitted to the final home in
//     arrival order; new frames keep buffering until the backlog is
//     empty, then the session returns to ROUTING.
//
// Whole-shard crash recovery: checkpoint_all() keeps each shard's last
// snapshot; crash_shard(k) drops k from the ring (its sessions' frames
// get kUnknownSession -> clients re-hello onto survivors);
// recover_shard(k) splits k's last checkpoint into single-session
// kMigrate payloads and adopts each onto its ring owner among the
// survivors -- zero sessions lost, every one resumes from its
// checkpointed state.
//
// Rebalancing: rebalance() reads each shard's svc.live_sessions /
// svc.queue_depth gauges (per-shard registries owned by the router) and
// the shared SloMonitor, and migrates the lowest-id sessions off the
// hottest shard onto the coldest until the gap halves (bounded by
// RebalancePolicy::max_moves).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "shard/hash_ring.h"
#include "svc/endpoint.h"
#include "svc/server.h"

namespace uniloc::obs {
class Counter;
class MetricsRegistry;
}  // namespace uniloc::obs

namespace uniloc::shard {

/// When and how hard rebalance() acts. Sessions are counted per shard;
/// `hot_factor` is relative to the fleet mean.
struct RebalancePolicy {
  double hot_factor{1.5};
  /// Never move unless the hottest shard holds at least this many more
  /// sessions than the coldest (hysteresis against ping-pong).
  std::size_t min_gap{2};
  /// Migrations per rebalance() call.
  std::size_t max_moves{4};
};

struct RouterConfig {
  std::size_t shards{4};
  std::size_t vnodes_per_shard{64};
  /// Perturbs the ring layout; same seed => same placement (replays).
  std::uint64_t seed{0};
  /// Template applied to every shard's LocalizationServer.
  svc::ServerConfig server;
  /// Optional per-shard adjustment of the template (e.g. distinct
  /// checkpoint directories) before the shard is constructed. The
  /// router chains its own `on_evict` hook after whatever this sets:
  /// eviction must erase the session's routing override or the table
  /// grows without bound.
  std::function<void(std::size_t shard, svc::ServerConfig& cfg)> tune;
  RebalancePolicy rebalance;
  /// Test seam: called between extract and adopt of every migration,
  /// while the session exists on no shard and the router buffers its
  /// frames. The eviction/“concurrent uplink” races are pinned here.
  std::function<void(std::uint64_t session_id, std::size_t from,
                     std::size_t to)>
      on_migration_extracted;
};

class ShardRouter : public svc::Endpoint {
 public:
  /// `registry` (optional) takes the router's own shard.* instruments;
  /// each shard gets its own private registry for the svc.* family.
  ShardRouter(RouterConfig cfg, svc::UnilocFactory factory,
              obs::MetricsRegistry* registry = nullptr);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Route one encoded frame to its owning shard. kStatus frames are
  /// admin: their session_id names a shard index instead of a session.
  std::future<std::vector<std::uint8_t>> submit(
      std::vector<std::uint8_t> request) override;

  /// Move one live session onto shard `to` (see protocol above). False
  /// when the session is unknown, already moving, or either end is dead;
  /// true when the session ends up on `to` (including the no-op case).
  bool migrate(std::uint64_t session_id, std::size_t to);

  /// One rebalancing pass; returns sessions migrated (0 = balanced).
  std::size_t rebalance();

  /// Snapshot every alive shard (quiescing its sessions) and retain the
  /// bytes as that shard's recovery checkpoint.
  void checkpoint_all();

  /// Kill shard k: membership, overrides and in-RAM sessions are gone.
  /// Frames routed to its sessions yield kUnknownSession until the
  /// client re-hellos (onto a survivor) or recover_shard() resurrects
  /// the population. No-op on an already-dead shard.
  void crash_shard(std::size_t k);

  /// Resurrect shard k's sessions from its last checkpoint onto the
  /// surviving shards. Returns sessions recovered. Sessions whose id is
  /// already live somewhere (the client re-helloed first) are skipped --
  /// the live state is newer than the checkpoint.
  std::size_t recover_shard(std::size_t k);

  /// Bring shard k back (empty) as a migration/placement target. Its
  /// recovered sessions stay where they were resurrected (overrides
  /// keep routing them) until rebalance() or migrate() moves them.
  void revive_shard(std::size_t k);

  std::size_t shard_count() const { return servers_.size(); }
  bool alive(std::size_t k) const;
  svc::LocalizationServer& server(std::size_t k) { return *servers_[k]; }
  obs::MetricsRegistry& shard_registry(std::size_t k) {
    return *registries_[k];
  }
  /// Last checkpoint_all() snapshot of shard k (empty before the first).
  const std::vector<std::uint8_t>& last_checkpoint(std::size_t k) const {
    return checkpoints_[k];
  }
  /// Routing-override entries currently held. Bounded by the live
  /// population: evictions and kBye erase their entries (regression
  /// hook for the unbounded-overrides bug).
  std::size_t override_count() const {
    std::lock_guard<std::mutex> lock(route_mu_);
    return overrides_.size();
  }

  /// The shard a frame for `session_id` would be routed to right now.
  std::size_t shard_of(std::uint64_t session_id) const;
  /// Fleet-wide live session count.
  std::size_t live_sessions() const;

  void shutdown();

 private:
  struct BufferedFrame {
    std::vector<std::uint8_t> request;
    std::shared_ptr<std::promise<std::vector<std::uint8_t>>> promise;
  };

  std::future<std::vector<std::uint8_t>> reply_error(std::uint64_t sid,
                                                     svc::ErrorCode code);
  /// Current home under route_mu_ (override wins over the ring).
  std::size_t home_of_locked(std::uint64_t session_id) const;
  /// Replay a migrating session's parked frames against its final home,
  /// then clear the migrating mark (loops until no new frames parked).
  void drain_buffer(std::uint64_t session_id, std::size_t home);
  /// Adopt one standalone payload on shard k via the kMigrate path.
  std::optional<svc::ErrorCode> adopt_on(
      std::size_t k, std::uint64_t session_id,
      const std::vector<std::uint8_t>& payload);

  RouterConfig cfg_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries_;
  std::vector<std::unique_ptr<svc::LocalizationServer>> servers_;
  std::vector<std::vector<std::uint8_t>> checkpoints_;

  /// Guards ring_, overrides_, migrating_, buffers_, alive_.
  mutable std::mutex route_mu_;
  HashRing ring_;
  std::map<std::uint64_t, std::size_t> overrides_;
  std::set<std::uint64_t> migrating_;
  std::map<std::uint64_t, std::vector<BufferedFrame>> buffers_;
  std::vector<bool> alive_;

  // Router-level instruments (shard.*), null when no registry.
  obs::Counter* migrations_{nullptr};
  obs::Counter* migration_failures_{nullptr};
  obs::Counter* rebalances_{nullptr};
  obs::Counter* crashes_{nullptr};
  obs::Counter* recovered_sessions_{nullptr};
  obs::Counter* buffered_frames_{nullptr};
};

}  // namespace uniloc::shard
