// Consistent-hash ring with virtual nodes.
//
// The router's placement function: each shard owns `vnodes_per_shard`
// points on a 64-bit ring, a session id hashes to a point, and the
// session belongs to the shard owning the first vnode at or after that
// point (wrapping). The properties the shard tests pin:
//
//   * Deterministic: placement is a pure function of (seed, shard set,
//     vnodes_per_shard) -- two routers built with the same seed agree on
//     every assignment, which is what makes sharded runs replayable.
//   * Minimal disruption: removing a shard re-homes only the keys that
//     shard owned (its vnodes disappear; every other arc is untouched),
//     and adding a shard steals only the arcs its new vnodes split --
//     ~K/N of the keys, not a global reshuffle.
//
// The ring is a sorted vector rebuilt on membership change; lookups are
// a binary search. Membership changes are rare (crash/recovery, scale
// events) and the fleet is in-process, so simplicity wins over an
// incremental structure.
#pragma once

#include <cstdint>
#include <vector>

namespace uniloc::shard {

class HashRing {
 public:
  /// `seed` perturbs every vnode point and key hash, so distinct fleets
  /// (or property-test repetitions) see independent layouts.
  explicit HashRing(std::uint64_t seed = 0,
                    std::size_t vnodes_per_shard = 64);

  /// Idempotent; a shard's vnode points depend only on (seed, shard).
  void add_shard(std::size_t shard);
  void remove_shard(std::size_t shard);
  bool contains(std::size_t shard) const;

  /// The owning shard of `key`. Must not be called on an empty ring.
  std::size_t owner_of(std::uint64_t key) const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t vnodes_per_shard() const { return vnodes_per_shard_; }
  /// Current membership, ascending.
  std::vector<std::size_t> shards() const { return shards_; }

 private:
  struct Vnode {
    std::uint64_t point;
    std::size_t shard;
  };

  void rebuild();

  std::uint64_t seed_;
  std::size_t vnodes_per_shard_;
  std::vector<std::size_t> shards_;  ///< Sorted membership.
  std::vector<Vnode> ring_;          ///< Sorted by (point, shard).
};

}  // namespace uniloc::shard
