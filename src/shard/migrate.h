// Checkpoint splitting for shard recovery.
//
// A dead shard leaves behind one full-server snapshot (svc/checkpoint.h)
// taken at its last checkpoint. Recovery re-homes that population onto
// the survivors session by session, and each survivor's adoption path is
// the same kMigrate codec live migration uses -- so the splitter's job
// is to cut the N-session snapshot into N standalone single-session
// payloads (snapshot header + one record each).
//
// Like every snapshot consumer this is a hostile-input boundary: a
// truncated or corrupted checkpoint yields an empty result, never UB.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace uniloc::shard {

/// (session id, standalone kMigrate payload) per session, in the
/// snapshot's (ascending-id) order. Empty when `snapshot` is malformed,
/// truncated, or holds no sessions.
std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
split_snapshot_sessions(const std::vector<std::uint8_t>& snapshot);

}  // namespace uniloc::shard
