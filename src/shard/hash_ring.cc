#include "shard/hash_ring.h"

#include <algorithm>

#include "stats/rng.h"

namespace uniloc::shard {

namespace {

std::uint64_t vnode_point(std::uint64_t seed, std::size_t shard,
                          std::size_t replica) {
  // Chain the avalanche mixer so (shard, replica) pairs land independently
  // even for the small sequential values the fleet actually uses.
  return stats::hash_combine(
      stats::hash_combine(seed, 0x5348'4152'4421ull + shard),
      0x564E'4F44'45ull + replica);
}

std::uint64_t key_point(std::uint64_t seed, std::uint64_t key) {
  return stats::hash_combine(seed ^ 0x4B45'59ull, key);
}

}  // namespace

HashRing::HashRing(std::uint64_t seed, std::size_t vnodes_per_shard)
    : seed_(seed),
      vnodes_per_shard_(std::max<std::size_t>(vnodes_per_shard, 1)) {}

bool HashRing::contains(std::size_t shard) const {
  return std::binary_search(shards_.begin(), shards_.end(), shard);
}

void HashRing::add_shard(std::size_t shard) {
  if (contains(shard)) return;
  shards_.insert(std::upper_bound(shards_.begin(), shards_.end(), shard),
                 shard);
  rebuild();
}

void HashRing::remove_shard(std::size_t shard) {
  const auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it == shards_.end() || *it != shard) return;
  shards_.erase(it);
  rebuild();
}

void HashRing::rebuild() {
  ring_.clear();
  ring_.reserve(shards_.size() * vnodes_per_shard_);
  for (const std::size_t shard : shards_) {
    for (std::size_t r = 0; r < vnodes_per_shard_; ++r) {
      ring_.push_back({vnode_point(seed_, shard, r), shard});
    }
  }
  // Tie-break equal points by shard id so the layout is a total order:
  // membership changes can never flip the winner of a point collision.
  std::sort(ring_.begin(), ring_.end(), [](const Vnode& a, const Vnode& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

std::size_t HashRing::owner_of(std::uint64_t key) const {
  const std::uint64_t p = key_point(seed_, key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), p,
      [](const Vnode& v, std::uint64_t point) { return v.point < point; });
  return it != ring_.end() ? it->shard : ring_.front().shard;
}

}  // namespace uniloc::shard
