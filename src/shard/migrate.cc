#include "shard/migrate.h"

#include "offload/bytes.h"
#include "svc/checkpoint.h"

namespace uniloc::shard {

std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
split_snapshot_sessions(const std::vector<std::uint8_t>& snapshot) {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> out;
  offload::ByteReader r(snapshot.data(), snapshot.size());
  // Preserve the payload version: a checkpoint collapsed from a
  // quantized delta chain is v2, and each split record must carry the
  // same version or adoption would parse quantized bytes as f64.
  std::uint8_t version;
  if (!svc::check_snapshot_header(r, version)) return out;
  std::uint64_t accepted_since_scan;
  std::uint32_t count;
  if (!r.get_u64(accepted_since_scan) || !r.get_u32(count) ||
      count > svc::kMaxSnapshotSessions) {
    return out;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t record_start = r.pos();
    svc::SessionRecordHeader rec;
    if (!svc::read_session_record_header(r, rec) ||
        !r.skip(rec.payload_len)) {
      out.clear();  // a torn tail must not ship half a population
      return out;
    }
    // Re-frame the record verbatim: header + the snapshot's own bytes,
    // so adoption restores exactly what the dead shard checkpointed.
    offload::ByteWriter w;
    svc::write_snapshot_header(w, version);
    w.put_bytes(snapshot.data() + record_start, r.pos() - record_start);
    out.emplace_back(rec.id, w.take());
  }
  if (r.remaining() != 0) out.clear();
  return out;
}

}  // namespace uniloc::shard
