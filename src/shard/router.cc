#include "shard/router.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "shard/migrate.h"

namespace uniloc::shard {

ShardRouter::ShardRouter(RouterConfig cfg, svc::UnilocFactory factory,
                         obs::MetricsRegistry* registry)
    : cfg_(std::move(cfg)),
      ring_(cfg_.seed, cfg_.vnodes_per_shard) {
  const std::size_t n = std::max<std::size_t>(cfg_.shards, 1);
  registries_.reserve(n);
  servers_.reserve(n);
  checkpoints_.resize(n);
  alive_.assign(n, true);
  for (std::size_t k = 0; k < n; ++k) {
    registries_.push_back(std::make_unique<obs::MetricsRegistry>());
    svc::ServerConfig sc = cfg_.server;
    if (cfg_.tune) cfg_.tune(k, sc);
    // Propagate TTL eviction to the routing table: without this every
    // kHello leaves a permanent overrides_ entry even after the shard
    // forgot the session, so override churn (hello -> idle -> evict)
    // grows the map without bound. Compare-and-erase only when the
    // override still points at the evicting shard -- a session that
    // migrated away since is someone else's to track. Lock order is
    // safe: eviction fires inside servers_[k]->submit / evict_idle, and
    // the router never calls into a server while holding route_mu_.
    const std::function<void(std::uint64_t)> user_evict = sc.on_evict;
    sc.on_evict = [this, k, user_evict](std::uint64_t sid) {
      {
        std::lock_guard<std::mutex> lock(route_mu_);
        const auto it = overrides_.find(sid);
        if (it != overrides_.end() && it->second == k) overrides_.erase(it);
      }
      if (user_evict) user_evict(sid);
    };
    servers_.push_back(std::make_unique<svc::LocalizationServer>(
        std::move(sc), factory, registries_.back().get()));
    ring_.add_shard(k);
  }
  if (registry != nullptr) {
    migrations_ = &registry->counter("shard.migrations");
    migration_failures_ = &registry->counter("shard.migration_failures");
    rebalances_ = &registry->counter("shard.rebalances");
    crashes_ = &registry->counter("shard.crashes");
    recovered_sessions_ = &registry->counter("shard.recovered_sessions");
    buffered_frames_ = &registry->counter("shard.buffered_frames");
  }
}

ShardRouter::~ShardRouter() { shutdown(); }

void ShardRouter::shutdown() {
  for (const std::unique_ptr<svc::LocalizationServer>& s : servers_) {
    s->shutdown();
  }
}

bool ShardRouter::alive(std::size_t k) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return k < alive_.size() && alive_[k];
}

std::size_t ShardRouter::home_of_locked(std::uint64_t session_id) const {
  const auto it = overrides_.find(session_id);
  if (it != overrides_.end()) return it->second;
  return ring_.owner_of(session_id);
}

std::size_t ShardRouter::shard_of(std::uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return home_of_locked(session_id);
}

std::size_t ShardRouter::live_sessions() const {
  std::size_t n = 0;
  for (const std::unique_ptr<svc::LocalizationServer>& s : servers_) {
    n += s->live_sessions();
  }
  return n;
}

std::future<std::vector<std::uint8_t>> ShardRouter::reply_error(
    std::uint64_t sid, svc::ErrorCode code) {
  std::promise<std::vector<std::uint8_t>> promise;
  promise.set_value(svc::encode_frame(svc::make_error_frame(sid, code)));
  return promise.get_future();
}

std::future<std::vector<std::uint8_t>> ShardRouter::submit(
    std::vector<std::uint8_t> request) {
  // The router validates framing before routing: a frame it cannot
  // attribute to a session must not consume any shard's cycles.
  const svc::DecodeResult decoded = svc::decode_frame(request);
  if (!decoded.frame.has_value()) {
    return reply_error(0, svc::ErrorCode::kMalformed);
  }
  const svc::Frame& frame = *decoded.frame;
  const std::uint64_t sid = frame.session_id;

  // kStatus is admin, not session traffic: session_id names the shard.
  if (frame.type == svc::FrameType::kStatus) {
    if (sid >= servers_.size()) {
      return reply_error(sid, svc::ErrorCode::kUnknownSession);
    }
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      if (!alive_[sid]) {
        return reply_error(sid, svc::ErrorCode::kShuttingDown);
      }
    }
    return servers_[sid]->submit(std::move(request));
  }

  std::size_t home;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (migrating_.count(sid) != 0) {
      // The session is in flight between shards: park the frame; the
      // migration's replay phase delivers it (in arrival order) to the
      // final home and fulfills this promise.
      auto promise =
          std::make_shared<std::promise<std::vector<std::uint8_t>>>();
      std::future<std::vector<std::uint8_t>> future = promise->get_future();
      buffers_[sid].push_back({std::move(request), promise});
      if (buffered_frames_ != nullptr) buffered_frames_->inc();
      return future;
    }
    home = home_of_locked(sid);
    if (!alive_[home]) {
      // Dead shard: the client's re-hello will route through the ring,
      // which no longer contains the dead shard, onto a survivor.
      return reply_error(sid, svc::ErrorCode::kUnknownSession);
    }
    if (frame.type == svc::FrameType::kHello) {
      // Pin the session to its creation shard. The ring is only the
      // *initial* placement: once live, a session's home survives any
      // later membership change (a revived shard must not steal routing
      // for a session resurrected elsewhere).
      overrides_[sid] = home;
    } else if (frame.type == svc::FrameType::kBye) {
      overrides_.erase(sid);
    }
  }
  return servers_[home]->submit(std::move(request));
}

std::optional<svc::ErrorCode> ShardRouter::adopt_on(
    std::size_t k, std::uint64_t session_id,
    const std::vector<std::uint8_t>& payload) {
  svc::Frame frame;
  frame.type = svc::FrameType::kMigrate;
  frame.session_id = session_id;
  frame.payload = payload;
  const std::vector<std::uint8_t> reply_bytes =
      servers_[k]->submit(svc::encode_frame(frame)).get();
  const svc::DecodeResult reply = svc::decode_frame(reply_bytes);
  if (!reply.frame.has_value()) return svc::ErrorCode::kMalformed;
  if (reply.frame->type == svc::FrameType::kReply) return std::nullopt;
  const std::optional<svc::ErrorCode> code = svc::error_code(*reply.frame);
  return code.has_value() ? *code : svc::ErrorCode::kMalformed;
}

void ShardRouter::drain_buffer(std::uint64_t session_id, std::size_t home) {
  for (;;) {
    std::vector<BufferedFrame> batch;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      const auto it = buffers_.find(session_id);
      if (it == buffers_.end() || it->second.empty()) {
        buffers_.erase(session_id);
        migrating_.erase(session_id);
        return;
      }
      batch.swap(it->second);
    }
    for (BufferedFrame& bf : batch) {
      bf.promise->set_value(
          servers_[home]->submit(std::move(bf.request)).get());
    }
  }
}

bool ShardRouter::migrate(std::uint64_t session_id, std::size_t to) {
  if (to >= servers_.size()) return false;
  std::size_t from;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (!alive_[to]) return false;
    if (migrating_.count(session_id) != 0) return false;
    from = home_of_locked(session_id);
    if (!alive_[from]) return false;
    if (from == to) return true;
    migrating_.insert(session_id);
  }

  // No router lock is held through extract/transfer/adopt: the strand
  // drain inside extract_session can wait on worker threads, and other
  // sessions must keep routing meanwhile.
  const std::optional<std::vector<std::uint8_t>> payload =
      servers_[from]->extract_session(session_id);
  if (!payload.has_value()) {
    drain_buffer(session_id, from);
    return false;
  }
  if (cfg_.on_migration_extracted) {
    cfg_.on_migration_extracted(session_id, from, to);
  }

  std::size_t final_home = from;
  if (!adopt_on(to, session_id, *payload).has_value()) {
    final_home = to;
    std::lock_guard<std::mutex> lock(route_mu_);
    overrides_[session_id] = to;
  } else {
    // Rollback: the target refused (hostile payload can't happen here,
    // but kSessionExists can); re-adopt on the source so the session is
    // never lost. The source just extracted it, so this cannot refuse.
    adopt_on(from, session_id, *payload);
    if (migration_failures_ != nullptr) migration_failures_->inc();
  }
  if (final_home == to && migrations_ != nullptr) migrations_->inc();
  drain_buffer(session_id, final_home);
  return final_home == to;
}

std::size_t ShardRouter::rebalance() {
  // Hot/cold detection reads the per-shard svc.* gauges (what a remote
  // control plane would scrape), not private server state.
  std::vector<std::size_t> candidates;
  double total = 0.0;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    for (std::size_t k = 0; k < servers_.size(); ++k) {
      if (alive_[k]) candidates.push_back(k);
    }
  }
  if (candidates.size() < 2) return 0;

  std::size_t hot = candidates.front(), cold = candidates.front();
  double hot_n = -1.0, hot_q = -1.0, cold_n = -1.0;
  for (const std::size_t k : candidates) {
    const double n = registries_[k]->gauge("svc.live_sessions").value();
    const double q = registries_[k]->gauge("svc.queue_depth").value();
    total += n;
    if (n > hot_n || (n == hot_n && q > hot_q)) {
      hot = k;
      hot_n = n;
      hot_q = q;
    }
    if (cold_n < 0.0 || n < cold_n) {
      cold = k;
      cold_n = n;
    }
  }
  const double mean = total / static_cast<double>(candidates.size());
  const double gap = hot_n - cold_n;
  const bool slo_breached =
      cfg_.server.slo != nullptr && cfg_.server.slo->breached();
  const bool hot_by_count = hot_n > cfg_.rebalance.hot_factor * mean &&
                            gap >= static_cast<double>(cfg_.rebalance.min_gap);
  // An SLO breach escalates: act on any imbalance at all, the fleet is
  // already burning error budget.
  if (!hot_by_count && !(slo_breached && gap >= 1.0)) return 0;

  std::size_t moves = static_cast<std::size_t>(gap / 2.0);
  moves = std::clamp<std::size_t>(moves, 1, cfg_.rebalance.max_moves);
  // Deterministic victim choice: the hot shard's lowest session ids.
  const svc::ServerStatus st = servers_[hot]->status();
  std::size_t moved = 0;
  for (const svc::SessionStatus& ss : st.sessions) {
    if (moved >= moves) break;
    if (migrate(ss.id, cold)) ++moved;
  }
  if (moved > 0 && rebalances_ != nullptr) rebalances_->inc();
  return moved;
}

void ShardRouter::checkpoint_all() {
  for (std::size_t k = 0; k < servers_.size(); ++k) {
    bool take;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      take = alive_[k];
    }
    if (take) checkpoints_[k] = servers_[k]->snapshot();
  }
}

void ShardRouter::crash_shard(std::size_t k) {
  if (k >= servers_.size()) return;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (!alive_[k]) return;
    if (ring_.shard_count() <= 1) return;  // last shard standing stays up
    alive_[k] = false;
    ring_.remove_shard(k);
    // Sessions homed on k now route through the (k-less) ring: their
    // next frame gets kUnknownSession and the client re-hellos onto a
    // survivor -- unless recover_shard() resurrects them first.
    for (auto it = overrides_.begin(); it != overrides_.end();) {
      it = it->second == k ? overrides_.erase(it) : std::next(it);
    }
  }
  servers_[k]->crash();
  if (crashes_ != nullptr) crashes_->inc();
}

std::size_t ShardRouter::recover_shard(std::size_t k) {
  if (k >= servers_.size()) return 0;
  const auto records = split_snapshot_sessions(checkpoints_[k]);
  std::size_t recovered = 0;
  for (const auto& [sid, payload] : records) {
    std::size_t target;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      if (ring_.shard_count() == 0) break;
      target = home_of_locked(sid);
      if (!alive_[target]) continue;
    }
    // kSessionExists means the client already re-helloed onto the target
    // (its live state is newer than the checkpoint): keep the live one.
    if (!adopt_on(target, sid, payload).has_value()) {
      std::lock_guard<std::mutex> lock(route_mu_);
      overrides_[sid] = target;
      ++recovered;
    }
  }
  if (recovered_sessions_ != nullptr && recovered > 0) {
    recovered_sessions_->inc(recovered);
  }
  return recovered;
}

void ShardRouter::revive_shard(std::size_t k) {
  if (k >= servers_.size()) return;
  std::lock_guard<std::mutex> lock(route_mu_);
  if (alive_[k]) return;
  alive_[k] = true;
  ring_.add_shard(k);
}

}  // namespace uniloc::shard
