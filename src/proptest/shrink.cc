#include "proptest/shrink.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace uniloc::proptest {

namespace {

/// Greedy shrink state: `best` always fails; every probe spends budget.
class Shrinker {
 public:
  Shrinker(CaseSpec best, const FailFn& fails, std::size_t budget,
           ShrinkStats* stats)
      : best_(std::move(best)), fails_(fails), budget_(budget),
        stats_(stats) {}

  const CaseSpec& best() const { return best_; }

  bool exhausted() const { return budget_ == 0; }

  /// True when `candidate` still fails: it becomes the new best.
  bool accept(const CaseSpec& candidate) {
    if (budget_ == 0 || candidate == best_) return false;
    --budget_;
    if (stats_ != nullptr) ++stats_->attempts;
    if (!fails_(candidate)) return false;
    best_ = candidate;
    if (stats_ != nullptr) ++stats_->accepted;
    return true;
  }

  /// Minimize an integral field toward `floor`: floor first (one probe
  /// often wins outright), then binary search between floor and the
  /// current value. The oracle need not be monotone in the field -- any
  /// failing probe is simply kept -- monotonicity only makes the search
  /// optimal.
  template <typename T, typename Set>
  void minimize(T current, T floor, const Set& set) {
    if (current <= floor) return;
    CaseSpec c = best_;
    set(c, floor);
    if (accept(c)) return;
    T lo = floor + 1;
    T hi = current;
    while (lo < hi && !exhausted()) {
      const T mid = lo + (hi - lo) / 2;
      CaseSpec m = best_;
      set(m, mid);
      if (accept(m)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }

 private:
  CaseSpec best_;
  const FailFn& fails_;
  std::size_t budget_;
  ShrinkStats* stats_;
};

}  // namespace

CaseSpec shrink_case(const CaseSpec& failing, const FailFn& still_fails,
                     std::size_t budget, ShrinkStats* stats) {
  Shrinker s(failing, still_fails, budget, stats);

  // One pass is usually enough (each field is independent), but a
  // smaller world can unlock a smaller fleet and vice versa -- loop to a
  // fixpoint, bounded by the budget.
  for (int round = 0; round < 3 && !s.exhausted(); ++round) {
    const CaseSpec before = s.best();

    // --- pass 1: the big scalars, most impactful first ----------------
    s.minimize<std::uint32_t>(s.best().epochs, 1,
                              [](CaseSpec& c, std::uint32_t v) {
                                c.epochs = v;
                              });
    s.minimize<std::uint32_t>(s.best().walkers, 1,
                              [](CaseSpec& c, std::uint32_t v) {
                                c.walkers = v;
                              });
    s.minimize<std::uint32_t>(s.best().burst, 1,
                              [](CaseSpec& c, std::uint32_t v) {
                                c.burst = v;
                              });
    s.minimize<int>(s.best().place.walkways, 1, [](CaseSpec& c, int v) {
      c.place.walkways = v;
    });
    s.minimize<int>(s.best().place.legs_per_walkway, 1,
                    [](CaseSpec& c, int v) { c.place.legs_per_walkway = v; });
    s.minimize<int>(static_cast<int>(s.best().place.leg_length_m), 5,
                    [](CaseSpec& c, int v) {
                      c.place.leg_length_m = static_cast<double>(v);
                    });
    s.minimize<int>(s.best().place.cell_towers, 0, [](CaseSpec& c, int v) {
      c.place.cell_towers = v;
    });
    s.minimize<std::uint32_t>(s.best().workers, 0,
                              [](CaseSpec& c, std::uint32_t v) {
                                c.workers = v;
                              });
    s.minimize<std::uint32_t>(s.best().batch, 0,
                              [](CaseSpec& c, std::uint32_t v) {
                                c.batch = v;
                              });
    s.minimize<std::uint32_t>(s.best().shards, 1,
                              [](CaseSpec& c, std::uint32_t v) {
                                c.shards = v;
                                if (v <= 1) {
                                  c.migration_churn = false;
                                  c.churn.clear();
                                }
                              });

    // --- pass 2: the schedules ----------------------------------------
    {
      // Churn events, then crash rounds, then blackout windows -- each
      // "whole list empty?" probe first, then element-wise removal.
      CaseSpec c = s.best();
      c.churn.clear();
      s.accept(c);
      bool changed = true;
      while (changed && !s.exhausted()) {
        changed = false;
        for (std::size_t i = 0; i < s.best().churn.size(); ++i) {
          CaseSpec m = s.best();
          m.churn.erase(m.churn.begin() + static_cast<std::ptrdiff_t>(i));
          if (s.accept(m)) {
            changed = true;
            break;
          }
        }
      }
    }
    {
      CaseSpec c = s.best();
      c.faults.crash_rounds.clear();
      c.crash_restore = false;
      s.accept(c);
      bool changed = true;
      while (changed && !s.exhausted()) {
        changed = false;
        for (std::size_t i = 0; i < s.best().faults.crash_rounds.size();
             ++i) {
          CaseSpec m = s.best();
          m.faults.crash_rounds.erase(m.faults.crash_rounds.begin() +
                                      static_cast<std::ptrdiff_t>(i));
          if (s.accept(m)) {
            changed = true;
            break;
          }
        }
      }
    }
    {
      CaseSpec c = s.best();
      c.faults.blackouts.clear();
      s.accept(c);
      bool changed = true;
      while (changed && !s.exhausted()) {
        changed = false;
        for (std::size_t i = 0; i < s.best().faults.blackouts.size(); ++i) {
          CaseSpec m = s.best();
          m.faults.blackouts.erase(m.faults.blackouts.begin() +
                                   static_cast<std::ptrdiff_t>(i));
          if (s.accept(m)) {
            changed = true;
            break;
          }
        }
      }
    }

    // --- pass 3: zero the knobs ---------------------------------------
    {
      CaseSpec c = s.best();
      c.faults.rates = fault::FaultRates{};
      s.accept(c);
    }
    for (int field = 0; field < 6; ++field) {
      CaseSpec c = s.best();
      switch (field) {
        case 0: c.faults.rates.drop = 0.0; break;
        case 1: c.faults.rates.duplicate = 0.0; break;
        case 2: c.faults.rates.reorder = 0.0; break;
        case 3: c.faults.rates.corrupt = 0.0; break;
        case 4: c.faults.rates.base_delay_us = 0; break;
        case 5: c.faults.rates.jitter_delay_us = 0; break;
      }
      s.accept(c);
    }
    {
      CaseSpec c = s.best();
      c.migration_churn = false;
      s.accept(c);
    }
    {
      CaseSpec c = s.best();
      c.delta_chain = false;
      s.accept(c);
    }
    {
      CaseSpec c = s.best();
      c.gait = sim::GaitProfile{};
      s.accept(c);
    }

    if (s.best() == before) break;  // fixpoint
  }
  return s.best();
}

}  // namespace uniloc::proptest
