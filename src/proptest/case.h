// CaseSpec: one generated chaos scenario, in full.
//
// A case is everything the oracle needs to rebuild a world and rerun a
// failure: the venue recipe, the deployment seed, the walker fleet and
// its gait, the fault schedule, and the service shape (workers, shards,
// crash/restore and membership churn). It serializes to ONE line of
// JSON -- the reproducer format the engine persists into the corpus and
// prints as `UNILOC_REPRO ...` on any violation -- and parses back
// bit-equivalently, so a failure found on a CI box replays anywhere.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/generate.h"
#include "sim/builders.h"
#include "sim/imu_sim.h"

namespace uniloc::proptest {

/// One membership-churn event for the fleet pass: at the end of round
/// `round`, either remove a live shard (checkpoint, crash, resurrect its
/// sessions on the survivors) or add a previously-removed shard back.
struct ChurnEvent {
  std::uint32_t round{0};
  bool add{false};  ///< false = remove a shard, true = revive one.

  bool operator==(const ChurnEvent&) const = default;
};

struct CaseSpec {
  /// The seed this case was expanded from; identifies it in repro lines.
  std::uint64_t case_seed{0};

  // --- world --------------------------------------------------------
  sim::RandomPlaceSpec place;
  std::uint64_t deploy_seed{42};

  // --- walkers ------------------------------------------------------
  std::uint32_t walkers{2};
  std::uint32_t epochs{10};  ///< Max epochs per walker.
  std::uint32_t burst{1};    ///< Epochs submitted per round per walker.
  std::uint64_t load_seed{2024};
  sim::GaitProfile gait{};

  // --- wire ---------------------------------------------------------
  fault::PlanSpec faults;

  // --- service shape ------------------------------------------------
  /// > 0 adds a workers-N pass that must be bit-identical to workers-0.
  std::uint32_t workers{0};
  /// > 1 adds a fleet pass (ShardRouter over `shards` servers) that must
  /// be bit-identical to the single server.
  std::uint32_t shards{1};
  /// Rotate every session one shard over each round of the fleet pass.
  bool migration_churn{false};
  /// Membership churn applied during the fleet pass.
  std::vector<ChurnEvent> churn;
  /// > 1 adds a batched pass (ServerConfig::epoch_batch = batch) with the
  /// SIMD kernels forced off that must be bit-identical to the base pass
  /// (invariant I8: batched == unbatched AND scalar == vector).
  std::uint32_t batch{0};
  /// Run a crash/restore pass at faults.crash_rounds that must be
  /// bit-identical to the uninterrupted run.
  bool crash_restore{false};
  /// Run a delta-chain crash pass (invariant I9): the server checkpoints
  /// via keyframe+delta waves and every scripted crash restores through
  /// collapse_chain instead of a monolithic snapshot. Only meaningful
  /// when faults.crash_rounds is non-empty.
  bool delta_chain{false};

  bool operator==(const CaseSpec&) const = default;
};

/// One-line JSON, deterministic member order (byte-stable per spec).
std::string to_json(const CaseSpec& spec);

/// Inverse of to_json. nullopt on malformed input (bad syntax, missing
/// or mistyped members) -- a hostile corpus line must never crash.
std::optional<CaseSpec> from_json(const std::string& line);

/// The greppable one-line failure report:
///   UNILOC_REPRO seed=<case_seed> cases=<cases_in_run> spec=<json>
std::string repro_line(const CaseSpec& spec, std::size_t cases_in_run);

}  // namespace uniloc::proptest
