// The oracle: runs one CaseSpec end to end and checks the global
// invariants the paper's correctness story rests on. Whatever the
// generated world, gait, fault schedule, crash points or fleet churn do:
//
//   I1  BMA weights are a proper distribution over the AVAILABLE schemes
//       (each in [0,1], zero where unavailable, summing to 1 whenever
//       anything ran) -- the posterior stays a distribution.
//   I2  Every fix is finite and on the premises (venue bbox + margin),
//       server fixes and local-fallback fixes alike.
//   I3  Traffic accounting is an odometer: the uplink byte counter never
//       decreases, retransmitted bytes ride on top of first attempts,
//       and the registry agrees with the report.
//   I4  Every submitted epoch is answered: accepted, served locally, or
//       explicitly errored/backpressured -- never silently lost.
//   I5  checkpoint/restore is invisible: a run crashed and restored at
//       the scheduled rounds is bit-identical to the undisturbed run.
//   I6  Worker count is invisible: workers-N == workers-0, bit for bit.
//   I7  The fleet is invisible: a ShardRouter over N shards -- through
//       migration rotation and membership churn -- serves the exact
//       stream of a single server, and no session is ever lost.
//   I8  Vectorization and batching are invisible: a pass through the
//       cross-session EpochBatcher (epoch_batch = spec.batch) with the
//       SIMD kernels forced OFF (stats::ScopedSimd) reproduces the base
//       pass -- which runs unbatched with the kernels ON -- bit for bit.
//       One comparison pins both equalities: batched == unbatched and
//       scalar == vector, NaN-aware like every pass comparison.
//   I9  Delta-chain durability is invisible: a run that checkpoints via
//       keyframe+delta waves (dirty sessions only) and restores every
//       scripted crash through collapse_chain is bit-identical to the
//       undisturbed run, and the collapse never rejects a wave the
//       server itself wrote.
//
// Violations come back as strings (the engine is gtest-free); each
// carries enough context to read the failure without rerunning it.
#pragma once

#include <string>
#include <vector>

#include "core/trainer.h"
#include "proptest/case.h"

namespace uniloc::proptest {

struct Verdict {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// First violation (the shrinker's label), or "" when ok.
  std::string summary() const {
    return violations.empty() ? std::string() : violations.front();
  }
};

/// Which differential passes run_case executes on top of the base run.
/// Tests force shapes (e.g. the TSan workers pass) through these and
/// through EngineConfig::mutate.
struct OracleOptions {
  bool check_crash_restore{true};
  bool check_workers{true};
  bool check_fleet{true};
  bool check_batch{true};
  bool check_delta_chain{true};
};

/// Run `spec` and return every invariant violation found. `models` is
/// the shared trained-model set (training is the expensive part; the
/// caller trains once per process).
Verdict run_case(const CaseSpec& spec, const core::TrainedModels& models,
                 const OracleOptions& opts = {});

}  // namespace uniloc::proptest
