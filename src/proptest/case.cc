#include "proptest/case.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.h"

namespace uniloc::proptest {

namespace {

// 64-bit seeds travel as hex STRINGS: the JSON reader stores numbers as
// doubles, which would silently truncate seeds above 2^53 and break the
// byte-identical replay contract.
std::string u64_str(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_u64(const obs::JsonValue* v, std::uint64_t* out) {
  if (v == nullptr || !v->is_string()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->string.c_str(), &end, 0);
  if (end == nullptr || *end != '\0' || v->string.empty()) return false;
  *out = parsed;
  return true;
}

bool parse_double(const obs::JsonValue* v, double* out) {
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number;
  return true;
}

bool parse_u32(const obs::JsonValue* v, std::uint32_t* out) {
  if (v == nullptr || !v->is_number() || v->number < 0) return false;
  *out = static_cast<std::uint32_t>(v->as_u64());
  return true;
}

bool parse_int(const obs::JsonValue* v, int* out) {
  if (v == nullptr || !v->is_number()) return false;
  *out = static_cast<int>(v->number);
  return true;
}

bool parse_size(const obs::JsonValue* v, std::size_t* out) {
  if (v == nullptr || !v->is_number() || v->number < 0) return false;
  *out = static_cast<std::size_t>(v->as_u64());
  return true;
}

bool parse_bool(const obs::JsonValue* v, bool* out) {
  if (v == nullptr || !v->is_bool()) return false;
  *out = v->boolean;
  return true;
}

}  // namespace

std::string to_json(const CaseSpec& s) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("seed", u64_str(s.case_seed));

  w.key("place").begin_object();
  w.kv("seed", u64_str(s.place.seed));
  w.kv("walkways", s.place.walkways);
  w.kv("legs", s.place.legs_per_walkway);
  w.kv("leg_len", s.place.leg_length_m);
  w.kv("mix", s.place.venue_mix);
  w.kv("towers", s.place.cell_towers);
  w.end_object();

  w.kv("deploy_seed", u64_str(s.deploy_seed));
  w.kv("walkers", static_cast<std::uint64_t>(s.walkers));
  w.kv("epochs", static_cast<std::uint64_t>(s.epochs));
  w.kv("burst", static_cast<std::uint64_t>(s.burst));
  w.kv("load_seed", u64_str(s.load_seed));

  w.key("gait").begin_object();
  w.kv("step_len", s.gait.step_length_m);
  w.kv("step_period", s.gait.step_period_s);
  w.kv("trembling", s.gait.trembling);
  w.end_object();

  w.key("faults").begin_object();
  w.kv("seed", u64_str(s.faults.seed));
  w.kv("drop", s.faults.rates.drop);
  w.kv("dup", s.faults.rates.duplicate);
  w.kv("reorder", s.faults.rates.reorder);
  w.kv("corrupt", s.faults.rates.corrupt);
  w.kv("delay_us", s.faults.rates.base_delay_us);
  w.kv("jitter_us", s.faults.rates.jitter_delay_us);
  w.key("blackouts").begin_array();
  for (const auto& [from, to] : s.faults.blackouts) {
    w.begin_array();
    w.value(static_cast<std::uint64_t>(from));
    w.value(static_cast<std::uint64_t>(to));
    w.end_array();
  }
  w.end_array();
  w.key("crashes").begin_array();
  for (const std::size_t r : s.faults.crash_rounds) {
    w.value(static_cast<std::uint64_t>(r));
  }
  w.end_array();
  w.end_object();

  w.kv("workers", static_cast<std::uint64_t>(s.workers));
  w.kv("batch", static_cast<std::uint64_t>(s.batch));
  w.kv("shards", static_cast<std::uint64_t>(s.shards));
  w.kv("migration_churn", s.migration_churn);
  w.key("churn").begin_array();
  for (const ChurnEvent& e : s.churn) {
    w.begin_object();
    w.kv("round", static_cast<std::uint64_t>(e.round));
    w.kv("add", e.add);
    w.end_object();
  }
  w.end_array();
  w.kv("crash_restore", s.crash_restore);
  w.kv("delta_chain", s.delta_chain);
  w.end_object();
  return w.str();
}

std::optional<CaseSpec> from_json(const std::string& line) {
  const std::optional<obs::JsonValue> doc = obs::parse_json(line);
  if (!doc || !doc->is_object()) return std::nullopt;
  CaseSpec s;
  if (!parse_u64(doc->find("seed"), &s.case_seed)) return std::nullopt;

  const obs::JsonValue* place = doc->find("place");
  if (place == nullptr || !place->is_object()) return std::nullopt;
  if (!parse_u64(place->find("seed"), &s.place.seed) ||
      !parse_int(place->find("walkways"), &s.place.walkways) ||
      !parse_int(place->find("legs"), &s.place.legs_per_walkway) ||
      !parse_double(place->find("leg_len"), &s.place.leg_length_m) ||
      !parse_int(place->find("mix"), &s.place.venue_mix) ||
      !parse_int(place->find("towers"), &s.place.cell_towers)) {
    return std::nullopt;
  }

  if (!parse_u64(doc->find("deploy_seed"), &s.deploy_seed) ||
      !parse_u32(doc->find("walkers"), &s.walkers) ||
      !parse_u32(doc->find("epochs"), &s.epochs) ||
      !parse_u32(doc->find("burst"), &s.burst) ||
      !parse_u64(doc->find("load_seed"), &s.load_seed)) {
    return std::nullopt;
  }

  const obs::JsonValue* gait = doc->find("gait");
  if (gait == nullptr || !gait->is_object()) return std::nullopt;
  if (!parse_double(gait->find("step_len"), &s.gait.step_length_m) ||
      !parse_double(gait->find("step_period"), &s.gait.step_period_s) ||
      !parse_double(gait->find("trembling"), &s.gait.trembling)) {
    return std::nullopt;
  }

  const obs::JsonValue* faults = doc->find("faults");
  if (faults == nullptr || !faults->is_object()) return std::nullopt;
  std::uint64_t delay = 0, jitter = 0;
  if (!parse_u64(faults->find("seed"), &s.faults.seed) ||
      !parse_double(faults->find("drop"), &s.faults.rates.drop) ||
      !parse_double(faults->find("dup"), &s.faults.rates.duplicate) ||
      !parse_double(faults->find("reorder"), &s.faults.rates.reorder) ||
      !parse_double(faults->find("corrupt"), &s.faults.rates.corrupt)) {
    return std::nullopt;
  }
  const obs::JsonValue* delay_v = faults->find("delay_us");
  const obs::JsonValue* jitter_v = faults->find("jitter_us");
  if (delay_v == nullptr || !delay_v->is_number() || jitter_v == nullptr ||
      !jitter_v->is_number()) {
    return std::nullopt;
  }
  delay = delay_v->as_u64();
  jitter = jitter_v->as_u64();
  s.faults.rates.base_delay_us = delay;
  s.faults.rates.jitter_delay_us = jitter;

  const obs::JsonValue* blackouts = faults->find("blackouts");
  if (blackouts == nullptr || !blackouts->is_array()) return std::nullopt;
  for (const obs::JsonValue& b : blackouts->items) {
    if (!b.is_array() || b.items.size() != 2) return std::nullopt;
    std::size_t from = 0, to = 0;
    if (!parse_size(&b.items[0], &from) || !parse_size(&b.items[1], &to)) {
      return std::nullopt;
    }
    s.faults.blackouts.emplace_back(from, to);
  }
  const obs::JsonValue* crashes = faults->find("crashes");
  if (crashes == nullptr || !crashes->is_array()) return std::nullopt;
  for (const obs::JsonValue& c : crashes->items) {
    std::size_t r = 0;
    if (!parse_size(&c, &r)) return std::nullopt;
    s.faults.crash_rounds.push_back(r);
  }

  if (!parse_u32(doc->find("workers"), &s.workers) ||
      !parse_u32(doc->find("shards"), &s.shards) ||
      !parse_bool(doc->find("migration_churn"), &s.migration_churn)) {
    return std::nullopt;
  }
  // "batch" is newer than the oldest corpus lines: absent means 0 (no
  // batched pass), present must be well-typed.
  const obs::JsonValue* batch = doc->find("batch");
  if (batch != nullptr && !parse_u32(batch, &s.batch)) return std::nullopt;
  const obs::JsonValue* churn = doc->find("churn");
  if (churn == nullptr || !churn->is_array()) return std::nullopt;
  for (const obs::JsonValue& e : churn->items) {
    if (!e.is_object()) return std::nullopt;
    ChurnEvent ev;
    if (!parse_u32(e.find("round"), &ev.round) ||
        !parse_bool(e.find("add"), &ev.add)) {
      return std::nullopt;
    }
    s.churn.push_back(ev);
  }
  if (!parse_bool(doc->find("crash_restore"), &s.crash_restore)) {
    return std::nullopt;
  }
  // "delta_chain" is newer than the oldest corpus lines: absent means
  // false (no I9 pass), present must be well-typed.
  const obs::JsonValue* delta_chain = doc->find("delta_chain");
  if (delta_chain != nullptr && !parse_bool(delta_chain, &s.delta_chain)) {
    return std::nullopt;
  }
  return s;
}

std::string repro_line(const CaseSpec& spec, std::size_t cases_in_run) {
  return "UNILOC_REPRO seed=" + u64_str(spec.case_seed) +
         " cases=" + std::to_string(cases_in_run) + " spec=" + to_json(spec);
}

}  // namespace uniloc::proptest
