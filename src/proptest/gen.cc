#include "proptest/gen.h"

#include "stats/rng.h"

namespace uniloc::proptest {

CaseSpec generate_case(std::uint64_t engine_seed, std::size_t index) {
  const std::uint64_t case_seed = stats::hash_combine(engine_seed, index);
  stats::Rng rng(case_seed);

  CaseSpec s;
  s.case_seed = case_seed;

  // World: a small venue (1-3 routes, 2-6 legs) so a deployment builds
  // in milliseconds and a shrunk case is already near-minimal.
  s.place.seed = stats::hash_combine(case_seed, 1);
  s.place.walkways = rng.uniform_int(1, 3);
  s.place.legs_per_walkway = rng.uniform_int(2, 6);
  s.place.leg_length_m = rng.uniform(10.0, 28.0);
  s.place.venue_mix = rng.uniform_int(0, 3);
  s.place.cell_towers = rng.uniform_int(0, 4);
  s.deploy_seed = stats::hash_combine(case_seed, 2);

  // Walkers: tiny fleets, short walks.
  s.walkers = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  s.epochs = static_cast<std::uint32_t>(rng.uniform_int(4, 16));
  s.burst = rng.chance(0.25) ? 2 : 1;
  s.load_seed = stats::hash_combine(case_seed, 3);
  s.gait.step_length_m = rng.uniform(0.5, 0.9);
  s.gait.step_period_s = rng.uniform(0.4, 0.8);
  s.gait.trembling = rng.uniform(0.0, 0.8);

  // Wire: rounds ~= epochs / burst (what the blackout/crash windows key
  // on); the +2 covers the hello and bye rounds.
  fault::PlanLimits limits;
  limits.rounds = s.epochs / s.burst + 2;
  s.faults = fault::generate_plan_spec(stats::hash_combine(case_seed, 4),
                                       limits);
  s.crash_restore = !s.faults.crash_rounds.empty();
  // Half the crashing cases also run the I9 delta-chain pass: same crash
  // schedule, but restoring through keyframe+delta collapse.
  s.delta_chain = s.crash_restore && rng.chance(0.5);

  // Service shape: a quarter of the cases run a workers-N differential
  // pass, two-fifths a fleet pass, and fleet cases mix in migration
  // rotation and membership churn.
  s.workers = rng.chance(0.25)
                  ? static_cast<std::uint32_t>(rng.uniform_int(1, 4))
                  : 0;
  // A quarter of the cases run the I8 batched+scalar differential pass.
  s.batch = rng.chance(0.25)
                ? static_cast<std::uint32_t>(rng.uniform_int(2, 6))
                : 0;
  s.shards = rng.chance(0.4)
                 ? static_cast<std::uint32_t>(rng.uniform_int(2, 4))
                 : 1;
  if (s.shards > 1) {
    s.migration_churn = rng.chance(0.5);
    if (rng.chance(0.5) && s.epochs >= 4) {
      const int events = rng.uniform_int(1, 2);
      std::uint32_t round = 0;
      for (int e = 0; e < events; ++e) {
        round += static_cast<std::uint32_t>(
            rng.uniform_int(1, static_cast<int>(s.epochs / 2)));
        // Alternate remove/add so every revive has something to revive.
        s.churn.push_back({round, e % 2 == 1});
      }
    }
  }
  return s;
}

}  // namespace uniloc::proptest
