// The property-test engine: corpus replay, generation, oracle, shrink,
// persist -- the loop every proptest suite runs.
//
//   Engine e(cfg, oracle);
//   EngineReport r = e.run();
//
// run() first replays every reproducer in the corpus file (yesterday's
// minimal failures guard today's code), then generates cfg.cases fresh
// cases from cfg.seed. Each failure:
//
//   1. prints the greppable `UNILOC_REPRO seed=... cases=... spec=...`
//      line (stderr) with the full generator parameters,
//   2. shrinks it to a locally minimal failing spec (budgeted),
//   3. prints the shrunk reproducer the same way, and
//   4. appends the shrunk spec to the corpus file (one JSON line).
//
// The case sequence is a pure function of cfg.seed: case_at(i) returns
// byte-identical specs across runs, processes and platforms (tier-1
// pins this). The oracle is injected, so tests drive the engine with
// synthetic bugs to prove shrinking works end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "proptest/case.h"
#include "proptest/oracle.h"

namespace uniloc::proptest {

/// Runs one case; the engine only reads Verdict::ok(). Wrap run_case()
/// with the trained models bound, or inject a synthetic bug in tests.
using OracleFn = std::function<Verdict(const CaseSpec&)>;

struct EngineConfig {
  std::uint64_t seed{20260808};
  /// Fresh cases to generate (corpus replays are on top of this).
  std::size_t cases{64};
  /// When set, UNILOC_PROPTEST_CASES overrides `cases` (the deep-gate
  /// lever: check.sh runs 64 quick / 512 deep without a rebuild).
  bool use_env{true};
  /// JSONL reproducer corpus; replayed first, minimal failures appended.
  /// Empty = no corpus (generation only).
  std::string corpus_path;
  /// Append shrunk failures to corpus_path (off for read-only replay).
  bool persist_failures{true};
  bool shrink{true};
  std::size_t shrink_budget{160};
  /// Stop after this many distinct failing cases (shrinking is
  /// expensive; one minimal reproducer is what a human debugs first).
  std::size_t max_failures{1};
  /// Applied to every generated case before it runs: force a shape
  /// (e.g. `c.shards = 3` for a churn-only suite). Corpus replays are
  /// NOT mutated -- a reproducer replays exactly as persisted.
  std::function<void(CaseSpec& spec, std::size_t index)> mutate;
};

struct CaseFailure {
  CaseSpec spec;          ///< As generated (or loaded from the corpus).
  CaseSpec shrunk;        ///< == spec when shrinking is off/na.
  Verdict verdict;        ///< The original spec's violations.
  bool from_corpus{false};
  std::string repro;      ///< The shrunk spec's UNILOC_REPRO line.
};

struct EngineReport {
  std::size_t cases_run{0};        ///< Fresh generated cases executed.
  std::size_t corpus_replayed{0};  ///< Reproducers replayed first.
  std::vector<CaseFailure> failures;

  bool ok() const { return failures.empty(); }
};

class Engine {
 public:
  Engine(EngineConfig cfg, OracleFn oracle);

  /// The i-th case this engine would run: generate_case + mutate. Pure.
  CaseSpec case_at(std::size_t index) const;

  /// cfg.cases, or UNILOC_PROPTEST_CASES when use_env and it is set.
  std::size_t planned_cases() const;

  /// Corpus replay + generation sweep. See the header comment.
  EngineReport run();

 private:
  std::vector<CaseSpec> load_corpus() const;
  void record_failure(const CaseSpec& spec, Verdict verdict, bool from_corpus,
                      std::size_t planned, EngineReport* report);

  EngineConfig cfg_;
  OracleFn oracle_;
};

}  // namespace uniloc::proptest
