#include "proptest/oracle.h"

#include <cmath>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/deployment.h"
#include "core/runner.h"
#include "core/uniloc.h"
#include "fault/crash.h"
#include "fault/link.h"
#include "geo/bbox.h"
#include "obs/metrics.h"
#include "shard/router.h"
#include "sim/builders.h"
#include "stats/simd.h"
#include "svc/loadgen.h"
#include "svc/server.h"

namespace uniloc::proptest {

namespace {

/// Fixed slack over the venue bbox for server-side fixes: GPS errors of
/// tens of meters are in-model (open-sky mean ~13.5 m, far worse under a
/// degraded sky), so "on the premises" means the bbox plus the error the
/// worst admissible scheme can contribute -- NOT a tight fence. What this
/// invariant actually hunts is divergence: NaN/Inf fixes and posteriors
/// that walked off the map.
constexpr double kServerMarginM = 75.0;

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool same(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return a == b;
}

/// Link decorator pinning I3's odometer half: the uplink byte counter
/// observed at send time never decreases.
class OdometerLink : public svc::Link {
 public:
  OdometerLink(std::unique_ptr<svc::Link> inner, const obs::Counter* up,
               std::vector<std::string>* violations, std::mutex* mu)
      : inner_(std::move(inner)), up_(up), violations_(violations), mu_(mu) {}

  std::future<svc::LinkReply> send(std::vector<std::uint8_t> request) override {
    const std::uint64_t now = up_->value();
    if (now < last_seen_) {
      const std::lock_guard<std::mutex> lock(*mu_);
      violations_->push_back("I3: uplink byte counter went backwards (" +
                             std::to_string(last_seen_) + " -> " +
                             std::to_string(now) + ")");
    }
    last_seen_ = now;
    return inner_->send(std::move(request));
  }

 private:
  std::unique_ptr<svc::Link> inner_;
  const obs::Counter* up_;
  std::uint64_t last_seen_{0};
  std::vector<std::string>* violations_;
  std::mutex* mu_;
};

/// Everything one pass over the load generator produces.
struct PassResult {
  svc::LoadReport report;
  std::uint64_t uplink_counter{0};
};

class CaseRunner {
 public:
  CaseRunner(const CaseSpec& spec, const core::TrainedModels& models)
      : spec_(spec),
        models_(models),
        deployment_(core::make_deployment(
            sim::random_place(spec.place),
            core::DeploymentOptions{.seed = spec.deploy_seed})),
        venue_(deployment_.place->bounds()),
        plan_(fault::build_plan(spec.faults)) {}

  Verdict run(const OracleOptions& opts);

 private:
  svc::UnilocFactory factory() {
    return [this](std::uint64_t sid) {
      return std::make_unique<core::Uniloc>(core::make_uniloc(
          deployment_, models_, {}, false, /*seed=*/7 + sid));
    };
  }

  /// on_epoch hook shared by every pass: I1 + I2 on the served decision.
  /// Thread-safe (workers > 0 call it from the pool).
  void check_decision(const core::EpochDecision& d, const std::string& label);

  /// Shared LoadGenConfig: same walkers / epochs / gait / faulty link in
  /// every pass, so the differential passes compare apples to apples.
  svc::LoadGenConfig load_config(const obs::Counter* up);

  /// Which crash machinery (if any) rides along with a single-server
  /// pass: monolithic snapshot/restore (I5) or keyframe+delta chain
  /// collapse (I9).
  enum class Injector { kNone, kSnapshot, kChain };

  PassResult run_single(int workers, Injector injector,
                        const std::string& label,
                        std::size_t epoch_batch = 1);
  PassResult run_fleet();

  void check_report(const PassResult& pass);
  void compare_passes(const PassResult& ref, const PassResult& other,
                      const std::string& label);

  void violation(const std::string& what) {
    const std::lock_guard<std::mutex> lock(mu_);
    violations_.push_back(what);
  }

  const CaseSpec& spec_;
  const core::TrainedModels& models_;
  core::Deployment deployment_;
  geo::BBox venue_;
  fault::FaultPlan plan_;
  std::mutex mu_;
  std::vector<std::string> violations_;
};

void CaseRunner::check_decision(const core::EpochDecision& d,
                                const std::string& label) {
  // I1: a proper BMA distribution over the available schemes.
  if (d.weight.size() != d.outputs.size()) {
    violation("I1: " + label + " weight/output size mismatch (" +
              std::to_string(d.weight.size()) + " vs " +
              std::to_string(d.outputs.size()) + ")");
    return;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < d.weight.size(); ++i) {
    const double w = d.weight[i];
    if (!(w >= 0.0 && w <= 1.0 + 1e-9)) {
      violation("I1: " + label + " weight[" + std::to_string(i) + "] = " +
                fmt(w) + " outside [0,1]");
      return;
    }
    if (!d.outputs[i].available && w != 0.0) {
      violation("I1: " + label + " unavailable scheme " + std::to_string(i) +
                " carries weight " + fmt(w));
      return;
    }
    sum += w;
  }
  if (sum != 0.0 && std::abs(sum - 1.0) > 1e-9) {
    violation("I1: " + label + " weights sum to " + fmt(sum));
  }
  // I2: the fused fix is finite and on the premises.
  if (!std::isfinite(d.uniloc2.x) || !std::isfinite(d.uniloc2.y)) {
    violation("I2: " + label + " non-finite fix (" + fmt(d.uniloc2.x) + ", " +
              fmt(d.uniloc2.y) + ")");
  } else if (!venue_.inflated(kServerMarginM).contains(d.uniloc2)) {
    violation("I2: " + label + " fix (" + fmt(d.uniloc2.x) + ", " +
              fmt(d.uniloc2.y) + ") left the venue");
  }
}

svc::LoadGenConfig CaseRunner::load_config(const obs::Counter* up) {
  svc::LoadGenConfig lg;
  lg.walkers = spec_.walkers;
  lg.max_epochs_per_walker = spec_.epochs;
  lg.burst = spec_.burst;
  lg.seed = spec_.load_seed;
  lg.walk.gait = spec_.gait;
  lg.resilience.retry.max_retries = 1;
  lg.resilience.probe_period = 2;
  lg.resilience.record_timeline = true;
  lg.make_link = [this, up](svc::Endpoint& s, std::uint64_t sid) {
    std::unique_ptr<svc::Link> link = std::make_unique<svc::DirectLink>(&s);
    link = std::make_unique<fault::FaultyLink>(std::move(link), &plan_, sid);
    return std::make_unique<OdometerLink>(std::move(link), up, &violations_,
                                          &mu_);
  };
  return lg;
}

PassResult CaseRunner::run_single(int workers, Injector injector,
                                  const std::string& label,
                                  std::size_t epoch_batch) {
  obs::MetricsRegistry reg;
  svc::ServerConfig scfg;
  scfg.workers = workers;
  scfg.epoch_batch = epoch_batch;
  scfg.on_epoch = [this, label](std::uint64_t,
                                const core::EpochDecision& d) {
    check_decision(d, label);
  };
  svc::LocalizationServer server(scfg, factory(), &reg);

  const obs::Counter* up = &reg.counter("offload.uplink_bytes");
  svc::LoadGenConfig lg = load_config(up);

  fault::CrashInjector snap_injector(&server, &plan_);
  fault::ChainCrashInjector chain_injector(&server, &plan_);
  if (injector == Injector::kSnapshot) {
    lg.on_round = [&snap_injector](std::size_t round) {
      snap_injector.on_round(round);
    };
  } else if (injector == Injector::kChain) {
    lg.on_round = [&chain_injector](std::size_t round) {
      chain_injector.on_round(round);
    };
  }

  PassResult pass;
  pass.report = run_load(server, deployment_, lg, &reg);
  pass.uplink_counter = up->value();
  if (injector == Injector::kSnapshot &&
      snap_injector.restore_failures() > 0) {
    violation("I5: " + std::to_string(snap_injector.restore_failures()) +
              " restore(s) of our own snapshot failed");
  }
  if (injector == Injector::kChain && chain_injector.restore_failures() > 0) {
    violation("I9: " + std::to_string(chain_injector.restore_failures()) +
              " collapse-restore(s) of our own delta chain failed");
  }
  return pass;
}

PassResult CaseRunner::run_fleet() {
  obs::MetricsRegistry reg;
  shard::RouterConfig rcfg;
  rcfg.shards = spec_.shards;
  rcfg.server.workers = 0;
  const std::string label = "fleet";
  rcfg.server.on_epoch = [this, label](std::uint64_t,
                                       const core::EpochDecision& d) {
    check_decision(d, label);
  };
  shard::ShardRouter router(rcfg, factory(), &reg);

  const obs::Counter* up = &reg.counter("offload.uplink_bytes");
  svc::LoadGenConfig lg = load_config(up);

  std::set<std::size_t> dead;
  std::size_t next_victim = 0;
  lg.on_round = [&, this](std::size_t round) {
    // Checkpoint every round so a membership removal always has a fresh
    // snapshot to resurrect from (same cadence as ShardCrashInjector).
    if (!spec_.churn.empty()) router.checkpoint_all();
    for (const ChurnEvent& e : spec_.churn) {
      if (e.round != round) continue;
      if (e.add) {
        if (!dead.empty()) {
          const std::size_t k = *dead.begin();
          router.revive_shard(k);
          dead.erase(k);
        }
      } else if (dead.size() + 1 < router.shard_count()) {
        // Remove a live shard, rotating the victim; its whole session
        // population must resurrect on the survivors.
        std::size_t k = next_victim % router.shard_count();
        while (dead.count(k) != 0) k = (k + 1) % router.shard_count();
        next_victim = k + 1;
        router.crash_shard(k);
        router.recover_shard(k);
        dead.insert(k);
      }
    }
    if (spec_.migration_churn) {
      // Rotate every live session one shard over, skipping the dead.
      for (std::uint64_t sid = 1; sid <= spec_.walkers; ++sid) {
        std::size_t to = (router.shard_of(sid) + 1) % router.shard_count();
        while (dead.count(to) != 0) to = (to + 1) % router.shard_count();
        router.migrate(sid, to);
      }
    }
  };

  PassResult pass;
  pass.report = run_load(router, deployment_, lg, &reg);
  pass.uplink_counter = up->value();
  // I7's zero-session-loss half: every walker said bye and no recovered
  // ghost lingers anywhere in the fleet.
  if (router.live_sessions() != 0) {
    violation("I7: fleet still holds " +
              std::to_string(router.live_sessions()) +
              " session(s) after all walkers left");
  }
  return pass;
}

void CaseRunner::check_report(const PassResult& pass) {
  const svc::LoadReport& r = pass.report;
  // I3: retransmissions ride on top of first attempts, and the registry
  // odometer agrees with the report.
  if (r.traffic.uplink_bytes < r.traffic.retransmitted_bytes) {
    violation("I3: retransmitted bytes (" +
              std::to_string(r.traffic.retransmitted_bytes) +
              ") exceed total uplink (" +
              std::to_string(r.traffic.uplink_bytes) + ")");
  }
  if (r.retries_total > 0 && r.traffic.retransmitted_bytes == 0) {
    violation("I3: " + std::to_string(r.retries_total) +
              " retries but zero retransmitted bytes");
  }
  if (pass.uplink_counter != r.traffic.uplink_bytes) {
    violation("I3: registry uplink counter (" +
              std::to_string(pass.uplink_counter) +
              ") disagrees with the report (" +
              std::to_string(r.traffic.uplink_bytes) + ")");
  }
  // "Every epoch is answered" at run granularity: a run where NOTHING
  // happened -- no server accept, no local fallback, no explicit error /
  // backpressure, not even a timeout -- silently lost its traffic.
  // (total_epochs alone is zero legitimately: a blackout covering the
  // whole run pushes every epoch onto the local fallback.)
  if (r.total_epochs == 0 && r.local_epochs_total == 0 &&
      r.error_total == 0 && r.backpressure_total == 0 &&
      r.timeouts_total == 0 && spec_.epochs > 0 && spec_.walkers > 0) {
    violation("I4: the run served zero epochs and reported no failures");
  }
  // I4: every epoch a walker submitted is accounted for, and the
  // per-walker tallies agree with the timeline they summarize.
  //
  // Client-side fixes include local PDR dead-reckoning during outages,
  // which drifts from the last fix -- grant the walk's worth of slack on
  // top of the server margin.
  const double margin =
      kServerMarginM + spec_.epochs * std::max(0.1, spec_.gait.step_length_m);
  for (const svc::WalkerOutcome& w : r.walkers) {
    const std::string at = "walker " + std::to_string(w.session_id);
    if (w.timeline.size() > spec_.epochs) {
      violation("I4: " + at + " ran " + std::to_string(w.timeline.size()) +
                " epochs, cap was " + std::to_string(spec_.epochs));
    }
    std::size_t server_epochs = 0;
    std::size_t local_epochs = 0;
    for (const svc::EpochEvent& e : w.timeline) {
      if (e.source == svc::EpochEvent::Source::kServer) ++server_epochs;
      if (e.source == svc::EpochEvent::Source::kLocal) ++local_epochs;
      if (e.source != svc::EpochEvent::Source::kSkipped) {
        // I2, client side: local-fallback estimates stay near the venue.
        if (!std::isfinite(e.estimate.x) || !std::isfinite(e.estimate.y)) {
          violation("I2: " + at + " epoch " + std::to_string(e.epoch) +
                    " non-finite client estimate");
        } else if (!venue_.inflated(margin).contains(e.estimate)) {
          violation("I2: " + at + " epoch " + std::to_string(e.epoch) +
                    " client estimate (" + fmt(e.estimate.x) + ", " +
                    fmt(e.estimate.y) + ") left the venue");
        }
      }
    }
    if (server_epochs != w.epochs_accepted || local_epochs != w.local_epochs) {
      violation("I4: " + at + " tallies disagree with its timeline (" +
                std::to_string(server_epochs) + "/" +
                std::to_string(w.epochs_accepted) + " server, " +
                std::to_string(local_epochs) + "/" +
                std::to_string(w.local_epochs) + " local)");
    }
  }
}

void CaseRunner::compare_passes(const PassResult& ref, const PassResult& other,
                                const std::string& label) {
  const svc::LoadReport& a = ref.report;
  const svc::LoadReport& b = other.report;
  if (a.walkers.size() != b.walkers.size() ||
      a.total_epochs != b.total_epochs) {
    violation(label + ": report shape diverged (" +
              std::to_string(a.total_epochs) + " vs " +
              std::to_string(b.total_epochs) + " epochs)");
    return;
  }
  for (std::size_t w = 0; w < a.walkers.size(); ++w) {
    const svc::WalkerOutcome& x = a.walkers[w];
    const svc::WalkerOutcome& y = b.walkers[w];
    const std::string at = label + ": walker " + std::to_string(x.session_id);
    if (x.session_id != y.session_id || x.walkway != y.walkway ||
        x.epochs_accepted != y.epochs_accepted ||
        x.local_epochs != y.local_epochs || x.errors != y.errors ||
        x.backpressure != y.backpressure || x.rehellos != y.rehellos ||
        x.retries != y.retries || x.timeouts != y.timeouts ||
        !same(x.mean_error_m, y.mean_error_m) ||
        !same(x.final_estimate.x, y.final_estimate.x) ||
        !same(x.final_estimate.y, y.final_estimate.y)) {
      violation(at + " outcome diverged");
      return;
    }
    if (x.timeline.size() != y.timeline.size()) {
      violation(at + " timeline length diverged (" +
                std::to_string(x.timeline.size()) + " vs " +
                std::to_string(y.timeline.size()) + ")");
      return;
    }
    for (std::size_t e = 0; e < x.timeline.size(); ++e) {
      const svc::EpochEvent& p = x.timeline[e];
      const svc::EpochEvent& q = y.timeline[e];
      if (p.epoch != q.epoch || p.source != q.source ||
          p.attempts != q.attempts || p.degraded_after != q.degraded_after ||
          p.rehello != q.rehello || !same(p.estimate.x, q.estimate.x) ||
          !same(p.estimate.y, q.estimate.y) || !same(p.error_m, q.error_m)) {
        violation(at + " diverged at epoch " + std::to_string(e));
        return;
      }
    }
  }
}

Verdict CaseRunner::run(const OracleOptions& opts) {
  // Base pass: one server, deterministic inline mode, no crashes. Every
  // differential pass below must reproduce its stream bit for bit.
  const PassResult ref = run_single(/*workers=*/0, Injector::kNone, "base");
  check_report(ref);

  if (opts.check_crash_restore && spec_.crash_restore &&
      !spec_.faults.crash_rounds.empty()) {
    compare_passes(ref,
                   run_single(/*workers=*/0, Injector::kSnapshot, "crash"),
                   "I5 (crash/restore)");
  }

  if (opts.check_delta_chain && spec_.delta_chain &&
      !spec_.faults.crash_rounds.empty()) {
    compare_passes(ref,
                   run_single(/*workers=*/0, Injector::kChain, "chain"),
                   "I9 (delta chain)");
  }

  if (opts.check_workers && spec_.workers > 0) {
    compare_passes(ref,
                   run_single(static_cast<int>(spec_.workers),
                              Injector::kNone, "workers"),
                   "I6 (workers)");
  }

  if (opts.check_fleet && spec_.shards > 1) {
    compare_passes(ref, run_fleet(), "I7 (fleet)");
  }

  if (opts.check_batch && spec_.batch > 1) {
    // I8, both halves in one comparison: route the stream through the
    // EpochBatcher (workers=0 drains batches inline, so the pass stays
    // deterministic) AND force the scalar kernels. The base pass above
    // ran unbatched with SIMD on -- equality pins batched == unbatched
    // and scalar == vector at once.
    const stats::ScopedSimd scalar_only(false);
    compare_passes(ref,
                   run_single(/*workers=*/0, Injector::kNone, "batch",
                              /*epoch_batch=*/spec_.batch),
                   "I8 (batch+scalar)");
  }

  Verdict v;
  v.violations = std::move(violations_);
  return v;
}

}  // namespace

Verdict run_case(const CaseSpec& spec, const core::TrainedModels& models,
                 const OracleOptions& opts) {
  CaseRunner runner(spec, models);
  return runner.run(opts);
}

}  // namespace uniloc::proptest
