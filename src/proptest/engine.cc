#include "proptest/engine.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <utility>

#include "proptest/gen.h"
#include "proptest/shrink.h"

namespace uniloc::proptest {

Engine::Engine(EngineConfig cfg, OracleFn oracle)
    : cfg_(std::move(cfg)), oracle_(std::move(oracle)) {}

CaseSpec Engine::case_at(std::size_t index) const {
  CaseSpec spec = generate_case(cfg_.seed, index);
  if (cfg_.mutate) cfg_.mutate(spec, index);
  return spec;
}

std::size_t Engine::planned_cases() const {
  if (cfg_.use_env) {
    if (const char* env = std::getenv("UNILOC_PROPTEST_CASES")) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') return static_cast<std::size_t>(n);
    }
  }
  return cfg_.cases;
}

std::vector<CaseSpec> Engine::load_corpus() const {
  std::vector<CaseSpec> corpus;
  if (cfg_.corpus_path.empty()) return corpus;
  std::ifstream in(cfg_.corpus_path);
  if (!in) return corpus;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (std::optional<CaseSpec> spec = from_json(line)) {
      corpus.push_back(*std::move(spec));
    } else {
      std::fprintf(stderr, "proptest: skipping malformed corpus line: %s\n",
                   line.c_str());
    }
  }
  return corpus;
}

void Engine::record_failure(const CaseSpec& spec, Verdict verdict,
                            bool from_corpus, std::size_t planned,
                            EngineReport* report) {
  // Satellite contract: every violation prints a greppable line with the
  // FULL generator parameters before any shrinking touches them.
  std::fprintf(stderr, "%s\n", repro_line(spec, planned).c_str());
  for (const std::string& v : verdict.violations) {
    std::fprintf(stderr, "proptest:   %s\n", v.c_str());
  }

  CaseFailure f;
  f.spec = spec;
  f.shrunk = spec;
  f.verdict = std::move(verdict);
  f.from_corpus = from_corpus;

  if (cfg_.shrink) {
    ShrinkStats stats;
    f.shrunk = shrink_case(
        spec, [this](const CaseSpec& c) { return !oracle_(c).ok(); },
        cfg_.shrink_budget, &stats);
    if (!(f.shrunk == spec)) {
      std::fprintf(stderr,
                   "proptest: shrunk in %zu attempts (%zu accepted):\n",
                   stats.attempts, stats.accepted);
      std::fprintf(stderr, "%s\n", repro_line(f.shrunk, planned).c_str());
    }
  }
  f.repro = repro_line(f.shrunk, planned);

  // A reproducer loaded FROM the corpus is already persisted; appending
  // it again would grow the file on every failing run.
  if (cfg_.persist_failures && !cfg_.corpus_path.empty() && !from_corpus) {
    std::ofstream out(cfg_.corpus_path, std::ios::app);
    if (out) out << to_json(f.shrunk) << "\n";
  }
  report->failures.push_back(std::move(f));
}

EngineReport Engine::run() {
  EngineReport report;
  const std::size_t planned = planned_cases();

  // Yesterday's minimal failures first: a regression on a known
  // reproducer is the cheapest, most readable signal the engine emits.
  for (const CaseSpec& spec : load_corpus()) {
    ++report.corpus_replayed;
    Verdict v = oracle_(spec);
    if (!v.ok()) {
      record_failure(spec, std::move(v), /*from_corpus=*/true, planned,
                     &report);
      if (report.failures.size() >= cfg_.max_failures) return report;
    }
  }

  for (std::size_t i = 0; i < planned; ++i) {
    const CaseSpec spec = case_at(i);
    ++report.cases_run;
    Verdict v = oracle_(spec);
    if (!v.ok()) {
      record_failure(spec, std::move(v), /*from_corpus=*/false, planned,
                     &report);
      if (report.failures.size() >= cfg_.max_failures) return report;
    }
  }
  return report;
}

}  // namespace uniloc::proptest
