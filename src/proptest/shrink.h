// Automatic shrinking: given a failing CaseSpec and a predicate that
// re-runs it, find a (locally) minimal spec that still fails.
//
// The shrinker never needs to know WHY a case fails -- it only asks
// "does this smaller candidate still fail?". Passes, repeated to a
// fixpoint under an evaluation budget:
//
//   1. scalar minimization -- epochs, walkers, burst, venue size
//      (walkways / legs / leg length / towers), workers, shards --
//      floor-first, then binary search between the floor and the
//      current value (greedy: any failing probe becomes the new best);
//   2. list minimization -- churn events, crash rounds, blackout
//      windows: try empty, then dropping each element;
//   3. field zeroing -- fault rates, link delays, migration churn,
//      gait back to the default profile.
//
// Every accepted candidate strictly simplifies the spec, so the loop
// terminates; the budget caps total oracle re-runs (each one is an
// end-to-end simulation, so shrinking cost dominates discovery cost).
#pragma once

#include <cstdint>
#include <functional>

#include "proptest/case.h"

namespace uniloc::proptest {

/// Re-runs a candidate spec; true = the failure reproduces. (Typically
/// wraps the oracle: `[&](const CaseSpec& s) { return !run_case(s,
/// models).ok(); }`. Tests inject synthetic bugs here.)
using FailFn = std::function<bool(const CaseSpec&)>;

struct ShrinkStats {
  std::size_t attempts{0};  ///< Oracle evaluations spent.
  std::size_t accepted{0};  ///< Candidates that still failed (kept).
};

/// Shrink `failing` (which must fail under `still_fails`) to a locally
/// minimal failing spec. At most `budget` evaluations of `still_fails`.
CaseSpec shrink_case(const CaseSpec& failing, const FailFn& still_fails,
                     std::size_t budget = 160, ShrinkStats* stats = nullptr);

}  // namespace uniloc::proptest
