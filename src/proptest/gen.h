// The case generator: expands (engine_seed, index) into a CaseSpec.
//
// Generation is a pure function -- no global state, no call-order
// dependence -- so an engine seeded identically produces a byte-identical
// case sequence on every run (the determinism contract test_proptest
// pins). Case sizes are deliberately small: the point of hundreds of
// cases is breadth across worlds and schedules, not depth per case; the
// shrinker relies on the same smallness to converge fast.
#pragma once

#include <cstddef>
#include <cstdint>

#include "proptest/case.h"

namespace uniloc::proptest {

CaseSpec generate_case(std::uint64_t engine_seed, std::size_t index);

}  // namespace uniloc::proptest
