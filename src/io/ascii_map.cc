#include "io/ascii_map.h"

#include <algorithm>
#include <cmath>

namespace uniloc::io {

namespace {

class Raster {
 public:
  Raster(const geo::BBox& bounds, int width_chars)
      : bounds_(bounds),
        scale_(static_cast<double>(width_chars) /
               std::max(1.0, bounds.width())),
        width_(width_chars),
        // Terminal cells are ~2x taller than wide; halve the row density.
        height_(std::max(1, static_cast<int>(std::lround(
                                bounds.height() * scale_ / 2.0)))),
        cells_(static_cast<std::size_t>(width_ + 1) *
                   static_cast<std::size_t>(height_ + 1),
               ' ') {}

  void plot(geo::Vec2 p, char c) {
    const int x = static_cast<int>((p.x - bounds_.min.x) * scale_);
    const int y = static_cast<int>((bounds_.max.y - p.y) * scale_ / 2.0);
    if (x < 0 || x > width_ || y < 0 || y > height_) return;
    char& cell = cells_[static_cast<std::size_t>(y) *
                            static_cast<std::size_t>(width_ + 1) +
                        static_cast<std::size_t>(x)];
    // Later layers win only over "weaker" glyphs.
    static const std::string priority = " .#A*To SE";
    if (priority.find(cell) <= priority.find(c)) cell = c;
  }

  void plot_line(geo::Vec2 a, geo::Vec2 b, char c) {
    const double len = geo::distance(a, b);
    const int steps = std::max(1, static_cast<int>(len * scale_));
    for (int i = 0; i <= steps; ++i) {
      plot(geo::lerp(a, b, static_cast<double>(i) / steps), c);
    }
  }

  std::string to_string() const {
    std::string out;
    out.reserve(cells_.size() + static_cast<std::size_t>(height_ + 1));
    for (int y = 0; y <= height_; ++y) {
      std::string row(cells_.begin() +
                          static_cast<long>(y) * (width_ + 1),
                      cells_.begin() +
                          static_cast<long>(y + 1) * (width_ + 1));
      // Trim trailing spaces.
      while (!row.empty() && row.back() == ' ') row.pop_back();
      out += row;
      out += '\n';
    }
    return out;
  }

 private:
  geo::BBox bounds_;
  double scale_;
  int width_;
  int height_;
  std::vector<char> cells_;
};

}  // namespace

std::string render_ascii_map(const sim::Place& place,
                             const AsciiMapOptions& opts,
                             const std::vector<geo::Vec2>& trajectory) {
  geo::BBox bounds = place.bounds();
  if (opts.show_towers) {
    for (const sim::CellTower& t : place.cell_towers()) bounds.extend(t.pos);
    bounds = bounds.inflated(5.0);
  }
  Raster raster(bounds, opts.width_chars);

  for (const sim::Walkway& w : place.walkways()) {
    const auto& pts = w.line.points();
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
      raster.plot_line(pts[i], pts[i + 1], '.');
    }
  }
  if (opts.show_walls) {
    for (const geo::Segment& s : place.walls()) {
      raster.plot_line(s.a, s.b, '#');
    }
  }
  if (opts.show_access_points) {
    for (const sim::AccessPoint& ap : place.access_points()) {
      raster.plot(ap.pos, 'A');
    }
  }
  if (opts.show_landmarks) {
    for (const sim::Landmark& l : place.landmarks()) raster.plot(l.pos, '*');
  }
  if (opts.show_towers) {
    for (const sim::CellTower& t : place.cell_towers()) raster.plot(t.pos, 'T');
  }
  for (const geo::Vec2& p : trajectory) raster.plot(p, 'o');
  if (!trajectory.empty()) {
    raster.plot(trajectory.front(), 'S');
    raster.plot(trajectory.back(), 'E');
  }
  return raster.to_string();
}

}  // namespace uniloc::io
