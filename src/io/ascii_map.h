// ASCII rendering of a venue: walkways, walls, infrastructure, and
// optionally a trajectory overlay. Handy for eyeballing generated worlds
// and for documenting experiments in plain text.
#pragma once

#include <string>
#include <vector>

#include "geo/vec2.h"
#include "sim/place.h"

namespace uniloc::io {

struct AsciiMapOptions {
  int width_chars = 100;   ///< Output raster width.
  bool show_walls = true;
  bool show_access_points = true;
  bool show_landmarks = true;
  bool show_towers = false;  ///< Towers are usually far outside the frame.
};

/// Legend:  . walkway   # wall   A access point   * landmark   T tower
///          o trajectory sample   S trajectory start   E trajectory end
std::string render_ascii_map(const sim::Place& place,
                             const AsciiMapOptions& opts = {},
                             const std::vector<geo::Vec2>& trajectory = {});

}  // namespace uniloc::io
