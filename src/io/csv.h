// Minimal CSV writer for exporting experiment series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace uniloc::io {

class CsvWriter {
 public:
  /// Open `path` for writing and emit the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Write a data row. Values are formatted with max precision.
  void write_row(const std::vector<double>& values);

  /// Write a row of preformatted strings (quoted if they contain commas).
  void write_row(const std::vector<std::string>& values);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

/// Parse RFC 4180 CSV text into rows of unescaped fields. Quoted fields
/// may contain separators, doubled quotes ("" unescapes to ") and line
/// breaks; both \n and \r\n row terminators are accepted. The round-trip
/// partner of CsvWriter (tests pin writer -> parser identity).
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace uniloc::io
