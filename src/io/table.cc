#include "io/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace uniloc::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string Table::pct(double fraction, int digits) {
  return num(fraction * 100.0, digits) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace uniloc::io
