#include "io/csv.h"

#include <sstream>
#include <stdexcept>

namespace uniloc::io {

namespace {
std::string quote_if_needed(const std::string& s) {
  if (s.find(',') == std::string::npos && s.find('"') == std::string::npos) {
    return s;
  }
  std::string q = "\"";
  for (char ch : s) {
    if (ch == '"') q += '"';
    q += ch;
  }
  q += '"';
  return q;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
}

void CsvWriter::write_row(const std::vector<double>& values) {
  if (values.size() != columns_) {
    throw std::invalid_argument("CsvWriter: column count mismatch");
  }
  std::ostringstream os;
  os.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  out_ << os.str() << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& values) {
  if (values.size() != columns_) {
    throw std::invalid_argument("CsvWriter: column count mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << quote_if_needed(values[i]);
  }
  out_ << '\n';
}

}  // namespace uniloc::io
