#include "io/csv.h"

#include <sstream>
#include <stdexcept>

namespace uniloc::io {

namespace {
std::string quote_if_needed(const std::string& s) {
  // RFC 4180: a field containing a separator, a quote, or a line break
  // (embedded newlines are legal inside quoted fields) must be quoted.
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string q = "\"";
  for (char ch : s) {
    if (ch == '"') q += '"';
    q += ch;
  }
  q += '"';
  return q;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
}

void CsvWriter::write_row(const std::vector<double>& values) {
  if (values.size() != columns_) {
    throw std::invalid_argument("CsvWriter: column count mismatch");
  }
  std::ostringstream os;
  os.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  out_ << os.str() << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& values) {
  if (values.size() != columns_) {
    throw std::invalid_argument("CsvWriter: column count mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << quote_if_needed(values[i]);
  }
  out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  bool field_started = false;  // distinguishes "" (one empty row) from ""

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    field_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // doubled quote: literal "
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += ch;  // separators and line breaks are literal here
      }
      continue;
    }
    switch (ch) {
      case '"':
        quoted = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // a separator implies a following field
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        field += ch;
        field_started = true;
        break;
    }
  }
  // Final row without a trailing terminator.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace uniloc::io
