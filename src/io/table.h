// Fixed-width text table printer for bench output.
//
// Every bench regenerates one of the paper's tables or figure series; this
// printer renders them as aligned monospace tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace uniloc::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row of already-formatted cells. Missing cells render empty.
  void add_row(std::vector<std::string> cells);

  /// Format a double with `digits` decimals.
  static std::string num(double v, int digits = 2);

  /// Format a percentage (0.123 -> "12.3%").
  static std::string pct(double fraction, int digits = 1);

  /// Render to a stream with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Render to a string.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uniloc::io
