#include "sim/gps_sim.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace uniloc::sim {

GpsSimulator::GpsSimulator(const geo::LocalFrame& frame, GpsParams params)
    : frame_(frame), params_(params) {}

std::optional<GpsFix> GpsSimulator::sample(geo::Vec2 true_pos,
                                           double sky_visibility,
                                           stats::Rng& rng) const {
  sky_visibility = std::clamp(sky_visibility, 0.0, 1.0);
  if (sky_visibility < params_.min_visibility_for_fix) return std::nullopt;

  // Satellite count scales with visible sky; Poisson-ish jitter.
  const double expected_sats = params_.open_sky_satellites * sky_visibility;
  const int sats = std::max(
      0, static_cast<int>(std::lround(expected_sats + rng.normal(0.0, 1.0))));
  // HDOP degrades as geometry worsens with fewer satellites.
  const double hdop = params_.open_sky_hdop / std::max(0.05, sky_visibility) +
                      std::fabs(rng.normal(0.0, 0.3));
  if (sats <= params_.min_satellites - 1 || hdop >= params_.max_hdop) {
    return std::nullopt;
  }

  // Radial error: Gaussian magnitude (truncated at 0), uniform direction.
  // Partial sky inflates the error roughly inversely with visibility.
  const double inflate = 1.0 / std::max(0.25, sky_visibility);
  const double mag =
      std::max(0.0, rng.normal(params_.open_sky_error_mean_m * inflate,
                               params_.open_sky_error_sd_m * inflate));
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const geo::Vec2 reported =
      true_pos + geo::Vec2{std::cos(theta), std::sin(theta)} * mag;

  GpsFix fix;
  fix.pos = frame_.to_geo(reported);
  fix.hdop = hdop;
  fix.num_satellites = sats;
  return fix;
}

}  // namespace uniloc::sim
