#include "sim/walker.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace uniloc::sim {

Walker::Walker(const Place* place, const RadioEnvironment* radio,
               std::size_t walkway_index, WalkConfig cfg)
    : place_(place),
      radio_(radio),
      walkway_index_(walkway_index),
      cfg_(cfg),
      rng_(cfg.seed),
      gps_sim_(place->frame(), cfg.gps),
      imu_sim_(cfg.imu, stats::hash_combine(cfg.seed, 0x1407)),
      ambient_sim_(cfg.ambient, stats::hash_combine(cfg.seed, 0xA3B1)) {
  assert(place != nullptr && radio != nullptr);
  if (walkway_index >= place->walkways().size()) {
    throw std::out_of_range("Walker: walkway index");
  }
  prev_heading_ = walkway().line.heading_at(0.0);
}

const Walkway& Walker::walkway() const {
  return place_->walkways()[walkway_index_];
}

geo::Vec2 Walker::start_position() const {
  return walkway().line.point_at(0.0);
}

double Walker::start_heading() const { return walkway().line.heading_at(0.0); }

bool Walker::done() const {
  return arclen_ + cfg_.gait.step_length_m > walkway().line.length();
}

SensorFrame Walker::step(bool gps_enabled) {
  const geo::Polyline& line = walkway().line;
  // Natural per-step length variation (~5%).
  const double step_len =
      std::max(0.3, cfg_.gait.step_length_m * (1.0 + rng_.normal(0.0, 0.05)));
  arclen_ = std::min(line.length(), arclen_ + step_len);
  t_ += cfg_.gait.step_period_s;

  SensorFrame f;
  f.t = t_;
  const PathSegment& seg = walkway().segment_at(arclen_);
  f.truth_env = seg.type;

  // Pedestrians wander laterally inside the corridor rather than tracing
  // the centerline (AR(1) lateral offset, clamped to the walkable width).
  const double max_lat = std::max(0.2, seg.corridor_width_m / 2.0 - 0.3);
  const double prev_lateral = lateral_;
  lateral_ = std::clamp(
      0.93 * lateral_ + rng_.normal(0.0, seg.corridor_width_m * 0.05),
      -max_lat, max_lat);
  const geo::Vec2 center = line.point_at(arclen_);
  const geo::Vec2 tangent = line.tangent_at(arclen_);
  f.truth_pos = center + tangent.perp() * lateral_;
  f.truth_heading = geo::wrap_angle(
      tangent.angle() + std::atan2(lateral_ - prev_lateral, step_len));
  f.truth_arclen = arclen_;

  const bool indoor = is_indoor(seg.type);
  const double dheading = geo::angle_diff(f.truth_heading, prev_heading_);
  prev_heading_ = f.truth_heading;

  // Radio scans as the reference device sees them, shifted by the walk's
  // quasi-static per-transmitter drift, then transformed by the phone
  // actually carried.
  stats::Rng scan_rng = rng_.fork(0x5CA4);
  auto apply_bias = [this](std::vector<ApReading> scan, double sd,
                           std::uint64_t stream) {
    if (sd <= 0.0) return scan;
    for (ApReading& r : scan) {
      const std::uint64_t h = stats::hash_combine(
          stats::hash_combine(cfg_.seed, stream),
          static_cast<std::uint64_t>(r.id));
      // Box-Muller-free Gaussian-ish offset: sum of three uniforms.
      const double u = (stats::hash_to_unit(h) +
                        stats::hash_to_unit(stats::splitmix64(h)) +
                        stats::hash_to_unit(stats::splitmix64(h ^ 0x9E37))) /
                           1.5 - 1.0;  // ~N(0, 0.33) in [-1, 1]
      r.rssi_dbm += u * 3.0 * sd;
    }
    return scan;
  };
  f.wifi = cfg_.device.transform(
      apply_bias(radio_->wifi_scan(f.truth_pos, scan_rng),
                 cfg_.wifi_bias_sd_db, 0xB1A5),
      scan_rng);
  f.cell = cfg_.device.transform(
      apply_bias(radio_->cell_scan(f.truth_pos, scan_rng),
                 cfg_.cell_bias_sd_db, 0xB1A6),
      scan_rng);

  f.gps_enabled = gps_enabled;
  if (gps_enabled) {
    stats::Rng gps_rng = rng_.fork(0x6A5F);
    f.gps = gps_sim_.sample(f.truth_pos, sky_visibility(seg.type), gps_rng);
  }

  f.imu = imu_sim_.step_trace(cfg_.gait, f.truth_heading, dheading, indoor);
  f.ambient = ambient_sim_.sample(seg.type);

  // Landmark recognition: the front-end fires when the walker passes
  // within a landmark's detection radius; each landmark triggers at most
  // once per pass, with a kind-dependent recognition rate (turns are easy
  // to sense with the gyroscope; doors and WiFi signatures are less
  // reliably matched).
  auto recognition_rate = [](LandmarkKind k) {
    switch (k) {
      case LandmarkKind::kTurn: return 0.85;
      case LandmarkKind::kDoor: return 0.50;
      case LandmarkKind::kWifiSignature: return 0.60;
    }
    return 0.5;
  };
  const auto& lms = place_->landmarks();
  for (std::size_t i = 0; i < lms.size(); ++i) {
    const bool near = geo::distance(lms[i].pos, f.truth_pos) <=
                      lms[i].detect_radius_m;
    const bool was_near = near_landmark_.count(i) > 0;
    if (near && !was_near && rng_.chance(recognition_rate(lms[i].kind))) {
      f.landmarks.push_back(
          {lms[i].pos, seg.type, static_cast<int>(lms[i].kind)});
    }
    if (near) {
      near_landmark_.insert(i);
    } else {
      near_landmark_.erase(i);
    }
  }
  return f;
}

}  // namespace uniloc::sim
