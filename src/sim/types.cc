#include "sim/types.h"

namespace uniloc::sim {

const char* segment_name(SegmentType t) {
  switch (t) {
    case SegmentType::kOffice: return "office";
    case SegmentType::kCorridor: return "corridor";
    case SegmentType::kBasement: return "basement";
    case SegmentType::kCarPark: return "car_park";
    case SegmentType::kOpenSpace: return "open_space";
    case SegmentType::kMallAisle: return "mall_aisle";
  }
  return "unknown";
}

double sky_visibility(SegmentType t) {
  switch (t) {
    case SegmentType::kOffice: return 0.05;
    case SegmentType::kCorridor: return 0.15;
    case SegmentType::kBasement: return 0.0;
    case SegmentType::kCarPark: return 0.10;
    case SegmentType::kOpenSpace: return 1.0;
    case SegmentType::kMallAisle: return 0.0;
  }
  return 0.0;
}

double default_corridor_width(SegmentType t) {
  switch (t) {
    case SegmentType::kOffice: return 3.5;
    case SegmentType::kCorridor: return 4.5;
    case SegmentType::kBasement: return 4.0;
    case SegmentType::kCarPark: return 8.0;
    case SegmentType::kOpenSpace: return 14.0;
    case SegmentType::kMallAisle: return 5.0;
  }
  return 4.0;
}

}  // namespace uniloc::sim
