// Walker: advances a pedestrian along a walkway one step at a time and
// assembles the per-step SensorFrame from all sensor simulators.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>

#include "sim/device.h"
#include "sim/place.h"
#include "sim/sensor_frame.h"

namespace uniloc::sim {

struct WalkConfig {
  GaitProfile gait{};
  DeviceModel device = nexus_5x();
  GpsParams gps{};
  ImuParams imu{};
  AmbientParams ambient{};
  /// Quasi-static per-transmitter RSSI drift between the offline
  /// fingerprint collection and this walk (people, doors, humidity,
  /// interference): a constant per-(walk, transmitter) offset.
  double wifi_bias_sd_db{4.0};
  double cell_bias_sd_db{1.0};
  std::uint64_t seed{1};
};

class Walker {
 public:
  /// Walk along `place.walkways()[walkway_index]` from its start.
  Walker(const Place* place, const RadioEnvironment* radio,
         std::size_t walkway_index, WalkConfig cfg);

  /// True start position (schemes that need a known start, like PDR, are
  /// given this -- same as the paper, which starts every trace at a known
  /// point).
  geo::Vec2 start_position() const;
  double start_heading() const;

  /// True whether another step fits on the walkway.
  bool done() const;

  /// Advance one step and return the sensed frame.
  /// `gps_enabled`: the energy controller's duty-cycling decision.
  SensorFrame step(bool gps_enabled = true);

  /// Current true arc-length along the walkway.
  double arclen() const { return arclen_; }
  const Walkway& walkway() const;

 private:
  const Place* place_;
  const RadioEnvironment* radio_;
  std::size_t walkway_index_;
  WalkConfig cfg_;
  stats::Rng rng_;
  GpsSimulator gps_sim_;
  ImuSimulator imu_sim_;
  AmbientSimulator ambient_sim_;
  double arclen_{0.0};
  double t_{0.0};
  double prev_heading_{0.0};
  double lateral_{0.0};  ///< Lateral wander offset from the centerline.
  std::set<std::size_t> near_landmark_;  ///< Landmarks currently in range.
};

}  // namespace uniloc::sim
