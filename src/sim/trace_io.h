// Sensor-trace recording and replay.
//
// A recorded walk (the full per-epoch SensorFrame stream, ground truth
// included) can be saved to a portable text format and replayed later --
// the dataset workflow of real localization research: collect once,
// evaluate many algorithm variants offline against identical inputs.
// bench and test runs replay byte-identical traces regardless of
// simulator version drift.
//
// Format: line-oriented, one record per line, '#' comments, documented in
// write_trace(). Floats are printed with enough digits to round-trip.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sensor_frame.h"

namespace uniloc::sim {

struct Trace {
  std::string venue;              ///< Free-form provenance tag.
  double step_period_s{0.55};
  geo::Vec2 start_pos;            ///< StartCondition for schemes.
  double start_heading{0.0};
  std::vector<SensorFrame> frames;
};

/// Serialize a trace. Throws std::runtime_error on I/O failure.
void write_trace(const Trace& trace, const std::string& path);
void write_trace(const Trace& trace, std::ostream& os);

/// Parse a trace. Throws std::runtime_error on malformed input.
Trace read_trace(const std::string& path);
Trace read_trace(std::istream& is);

}  // namespace uniloc::sim
