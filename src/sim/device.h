// Device (phone model) heterogeneity.
//
// Two phones observe different RSSI from the same signal; the paper models
// the relation between devices A and B as RSSI_A = alpha * RSSI_B + delta
// with alpha close to 1 ([38], Sec. III-B). The fingerprint database is
// collected with the reference device (Nexus 5X); online experiments with
// the LG G3 exercise the offset-calibration path (Fig. 8d).
#pragma once

#include <string>
#include <vector>

#include "sim/radio.h"

namespace uniloc::sim {

struct DeviceModel {
  std::string name{"reference"};
  double rssi_alpha{1.0};
  double rssi_delta_db{0.0};
  double extra_noise_sd_db{0.0};  ///< Chipset-specific measurement noise.

  /// Transform a scan taken by the reference device into what this device
  /// would report.
  std::vector<ApReading> transform(std::vector<ApReading> scan,
                                   stats::Rng& rng) const;
};

/// The two phones of the paper's evaluation.
DeviceModel nexus_5x();  ///< Reference device (Qualcomm QCA6174).
DeviceModel lg_g3();     ///< Heterogeneous device (Broadcom BCM4339).

}  // namespace uniloc::sim
