// Radio propagation: log-distance path loss + static spatial shadowing +
// temporal noise.
//
// RSSI(d) = P_tx(1m) - 10 n log10(d) - L_wall + S(pos) + N_t
// where S is a per-transmitter spatially-correlated field that is *fixed
// over time* (so offline fingerprints and online scans agree up to N_t --
// the paper collects online scans "within half an hour" of the offline
// fingerprints) and N_t is i.i.d. temporal noise per scan.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/vec2.h"
#include "sim/place.h"
#include "sim/types.h"
#include "stats/noise_field.h"
#include "stats/rng.h"

namespace uniloc::sim {

struct RadioParams {
  double path_loss_exp_indoor{3.0};
  double path_loss_exp_outdoor{2.3};
  double wall_penetration_db{12.0};  ///< Applied when indoor flag differs.
  double shadow_sd_db{5.0};
  double shadow_corr_m{10.0};
  double temporal_sd_db{3.5};
  double audible_threshold_dbm{-90.0};
  double basement_extra_loss_db{35.0};  ///< WiFi cannot reach basements.
};

struct CellRadioParams {
  double path_loss_exp{3.2};
  double shadow_sd_db{7.0};
  double shadow_corr_m{30.0};
  double temporal_sd_db{1.2};
  double audible_threshold_dbm{-110.0};
  double indoor_loss_db{10.0};
  double basement_loss_db{22.0};  ///< Strong, but some towers still audible.
  /// Additional loss for towers without basement line-of-entry. Moderate
  /// (campus basements: most towers stay weakly audible) by default; the
  /// mall deployment raises it so only ~2 towers are receivable on its
  /// basement floor (paper Sec. V-B3).
  double nonreachable_extra_db{18.0};
};

struct ApReading {
  int id{0};
  double rssi_dbm{0.0};
};

/// Deterministic-in-space radio environment over a Place.
class RadioEnvironment {
 public:
  /// `shadow_seed` fixes the spatial shadowing realisation of the venue.
  RadioEnvironment(const Place* place, RadioParams wifi_params,
                   CellRadioParams cell_params, std::uint64_t shadow_seed);

  /// Mean (noise-free) WiFi RSSI of one AP at a position, or nullopt if
  /// below the audibility threshold. Used for fingerprint ground truth.
  std::optional<double> wifi_mean_rssi(const AccessPoint& ap,
                                       geo::Vec2 pos) const;

  /// One WiFi scan at `pos`: audible APs with temporal noise applied.
  std::vector<ApReading> wifi_scan(geo::Vec2 pos, stats::Rng& rng) const;

  /// Like wifi_scan but with zero temporal noise (fingerprint collection
  /// averages several samples; the paper uses one sample per AP, so scans
  /// for the offline database should use wifi_scan too).
  std::vector<ApReading> wifi_scan_noiseless(geo::Vec2 pos) const;

  std::optional<double> cell_mean_rssi(const CellTower& tower,
                                       geo::Vec2 pos) const;
  std::vector<ApReading> cell_scan(geo::Vec2 pos, stats::Rng& rng) const;
  std::vector<ApReading> cell_scan_noiseless(geo::Vec2 pos) const;

  const RadioParams& wifi_params() const { return wifi_; }
  const CellRadioParams& cell_params() const { return cell_; }

 private:
  double wifi_path_rssi(const AccessPoint& ap, geo::Vec2 pos) const;
  double cell_path_rssi(const CellTower& tower, geo::Vec2 pos) const;

  const Place* place_;
  RadioParams wifi_;
  CellRadioParams cell_;
  std::uint64_t shadow_seed_;
  std::vector<stats::NoiseField> ap_shadow_;     ///< One field per AP.
  std::vector<stats::NoiseField> tower_shadow_;  ///< One field per tower.
};

}  // namespace uniloc::sim
