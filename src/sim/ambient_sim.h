// Ambient sensors feeding IODetector: light and magnetic-field variance.
//
// IODetector [36] classifies indoor vs outdoor from low-power sensors:
// light intensity (daylight outdoors is orders of magnitude brighter),
// magnetic-field fluctuation (steel structures indoors) and cellular
// signal strength. The ambient simulator provides the first two; cellular
// comes from RadioEnvironment.
#pragma once

#include "sim/types.h"
#include "stats/rng.h"

namespace uniloc::sim {

struct AmbientReading {
  double light_lux{0.0};
  double mag_field_sd_ut{0.0};  ///< Short-window magnetic fluctuation (uT).
};

struct AmbientParams {
  double outdoor_day_lux{12000.0};
  double indoor_lux{350.0};
  double basement_lux{120.0};
  double outdoor_mag_sd{0.8};
  double indoor_mag_sd{4.5};
};

class AmbientSimulator {
 public:
  AmbientSimulator(AmbientParams params, std::uint64_t seed);

  AmbientReading sample(SegmentType env);

 private:
  AmbientParams params_;
  stats::Rng rng_;
};

}  // namespace uniloc::sim
