// Venue builders: the places of the paper's evaluation.
//
//  * campus()          -- eight daily paths (Fig. 4), 2.78 km total with
//                         ~0.8 km outdoor; Path 1 is the 320 m daily path
//                         of Fig. 2 (office, corridor, basement, car park,
//                         open space).
//  * office_place()    -- the 56 x 20 m office used to train the indoor
//                         error models (Sec. III-B) and in Fig. 8c.
//  * open_space_place()-- the urban open space used to train the outdoor
//                         models and in Fig. 8b.
//  * mall_place()      -- one 95 x 27 m floor of a shopping mall
//                         (basement floor: only ~2 cell towers audible),
//                         Fig. 8a.
//
// Builders deterministically deploy WiFi APs, cell towers and PDR
// landmarks; all randomness is derived from the `seed` argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/place.h"

namespace uniloc::sim {

/// One straight stretch of a walkway under construction.
struct Leg {
  SegmentType type{SegmentType::kCorridor};
  double length_m{10.0};
  double turn_after_deg{0.0};  ///< CCW turn applied after this leg.
  double width_m{0.0};         ///< Corridor width; 0 = type default.
};

/// Build a walkway from consecutive legs starting at `start` with initial
/// heading `heading_deg` (CCW from +x). Consecutive legs of the same type
/// merge into one PathSegment.
Walkway make_walkway(std::string name, geo::Vec2 start, double heading_deg,
                     const std::vector<Leg>& legs);

/// Deploy WiFi APs along every walkway of `place` with per-segment-type
/// spacing, offset laterally from the path. Deterministic given `seed`.
void deploy_access_points(Place& place, std::uint64_t seed);

/// Deploy door / signature landmarks along walkways (offices get doors,
/// corridors get WiFi signatures; basements and open spaces stay bare,
/// which is what makes PDR drift there).
void deploy_landmarks(Place& place, std::uint64_t seed);

Place campus(std::uint64_t seed = 42);
Place office_place(std::uint64_t seed = 42);
Place open_space_place(std::uint64_t seed = 42);
Place mall_place(std::uint64_t seed = 42);

/// A second, differently-shaped campus (three paths, other infrastructure
/// seeds) that no bench trains or tunes on -- the genuinely-unseen "new
/// place" used in the Table III transfer validation.
Place campus_b(std::uint64_t seed = 1234);

/// Everything sim needs to conjure a venue from a seed: the property-test
/// engine's generator seam. One reproducer line captures a whole world.
struct RandomPlaceSpec {
  std::uint64_t seed{1};
  int walkways{2};            ///< Walkable routes (clamped to >= 1).
  int legs_per_walkway{4};    ///< Straight stretches per route (>= 1).
  double leg_length_m{18.0};  ///< Mean leg length (clamped to [4, 60]).
  /// Segment-type palette: 0 office floor, 1 mall floor, 2 outdoor
  /// (open space + car park), 3 everything including basements.
  int venue_mix{0};
  int cell_towers{2};  ///< Clamped to [0, 8].

  bool operator==(const RandomPlaceSpec&) const = default;
};

/// Build a venue from a spec: rectilinear walkways with random typed
/// legs, the standard AP/landmark deployment, and randomly-sited cell
/// towers. Pure function of the spec -- identical specs yield identical
/// places, which is what makes a proptest reproducer replayable.
Place random_place(const RandomPlaceSpec& spec);

/// Add `count` random rectilinear walkways of ~`length_m` of type `type`
/// inside the place's current bounds (the "10 different 300-m
/// trajectories" of the Fig. 8 venues). Returns indices of new walkways.
std::vector<std::size_t> add_random_walkways(Place& place, int count,
                                             double length_m, SegmentType type,
                                             std::uint64_t seed);

}  // namespace uniloc::sim
