// SensorFrame: everything the phone sensed during one epoch (one step).
//
// This is the s_t of the paper: the complete real-time sensor context
// from which schemes localize and from which UniLoc computes error-model
// features. Ground truth rides along for the harness (error measurement,
// training-database construction) but is never read by schemes or by the
// UniLoc core at localization time.
#pragma once

#include <optional>
#include <vector>

#include "geo/vec2.h"
#include "sim/ambient_sim.h"
#include "sim/gps_sim.h"
#include "sim/imu_sim.h"
#include "sim/radio.h"
#include "sim/types.h"

namespace uniloc::sim {

/// A recognized PDR calibration landmark (paper Sec. II, following
/// UnLoc [12]): the landmark-detection front-end matched a sensor
/// signature (turn, door, WiFi signature) against the landmark map and
/// reports the landmark's known map position. Detection is itself a
/// sensing process; the simulator emits these with a miss probability and
/// only while the walker actually passes the landmark.
struct LandmarkObservation {
  geo::Vec2 map_pos;  ///< Position of the matched landmark on the map.
  SegmentType env{SegmentType::kCorridor};
  int kind{0};        ///< Mirrors LandmarkKind.
};

struct SensorFrame {
  double t{0.0};  ///< Seconds since walk start (end of this step).

  std::vector<ApReading> wifi;   ///< WiFi scan (empty if nothing audible).
  std::vector<ApReading> cell;   ///< Cellular scan.
  std::optional<GpsFix> gps;     ///< Present only when GPS was enabled and
                                 ///< produced a valid fix.
  bool gps_enabled{true};        ///< Duty-cycling decision for this epoch.
  std::vector<ImuSample> imu;    ///< 50 Hz samples covering this step.
  AmbientReading ambient;        ///< Light / magnetic (IODetector inputs).
  std::vector<LandmarkObservation> landmarks;  ///< Recognized this epoch.

  // --- harness-only ground truth ------------------------------------
  geo::Vec2 truth_pos;
  double truth_heading{0.0};
  SegmentType truth_env{SegmentType::kOpenSpace};
  double truth_arclen{0.0};  ///< Along the walked walkway.
};

}  // namespace uniloc::sim
