#include "sim/ambient_sim.h"

#include <algorithm>
#include <cmath>

namespace uniloc::sim {

AmbientSimulator::AmbientSimulator(AmbientParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

AmbientReading AmbientSimulator::sample(SegmentType env) {
  AmbientReading r;
  double lux_mean;
  double mag_sd_mean;
  switch (env) {
    case SegmentType::kOpenSpace:
      lux_mean = params_.outdoor_day_lux;
      mag_sd_mean = params_.outdoor_mag_sd;
      break;
    case SegmentType::kBasement:
    case SegmentType::kMallAisle:
      lux_mean = params_.basement_lux;
      mag_sd_mean = params_.indoor_mag_sd;
      break;
    case SegmentType::kCorridor:
      // Semi-open corridors get some daylight; the paper still labels them
      // indoor -- IODetector has to work harder here.
      lux_mean = params_.indoor_lux * 4.0;
      mag_sd_mean = params_.indoor_mag_sd * 0.6;
      break;
    default:
      lux_mean = params_.indoor_lux;
      mag_sd_mean = params_.indoor_mag_sd;
      break;
  }
  r.light_lux = std::max(0.0, lux_mean * (1.0 + rng_.normal(0.0, 0.25)));
  r.mag_field_sd_ut = std::max(0.0, mag_sd_mean * (1.0 + rng_.normal(0.0, 0.3)));
  return r;
}

}  // namespace uniloc::sim
